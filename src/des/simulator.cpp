#include "des/simulator.hpp"

#include "common/error.hpp"

namespace dqcsim::des {

bool Simulator::step() {
  if (queue_.empty()) return false;
  // The clock advances between event extraction and callback dispatch, so
  // the callback observes now() == its own timestamp (same contract as the
  // previous pop-then-run design) without a separate next_time() pass.
  queue_.dispatch_next([this](SimTime t) {
    now_ = t;
    ++executed_;
  });
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime t_end) {
  DQCSIM_EXPECTS_MSG(t_end >= now_, "cannot run backwards in time");
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    step();
    ++executed;
  }
  now_ = t_end;
  return executed;
}

}  // namespace dqcsim::des
