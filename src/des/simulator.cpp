#include "des/simulator.hpp"

#include <utility>

#include "common/error.hpp"

namespace dqcsim::des {

EventId Simulator::schedule_at(SimTime t, std::function<void()> action) {
  DQCSIM_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  return queue_.schedule(t, std::move(action));
}

EventId Simulator::schedule_in(SimTime delay, std::function<void()> action) {
  DQCSIM_EXPECTS_MSG(delay >= 0.0, "delay must be nonnegative");
  return queue_.schedule(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, action] = queue_.pop();
  now_ = time;
  ++executed_;
  action();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(SimTime t_end) {
  DQCSIM_EXPECTS_MSG(t_end >= now_, "cannot run backwards in time");
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    step();
    ++executed;
  }
  now_ = t_end;
  return executed;
}

}  // namespace dqcsim::des
