/// \file event_queue.hpp
/// \brief Deterministic priority event queue for discrete-event simulation.
///
/// Events fire in nondecreasing time order; ties are broken by insertion
/// order (FIFO), which keeps simulations bit-reproducible for a fixed seed.
///
/// Implementation: a ladder-queue-style three-tier index over a pooled
/// event store (see event_pool.hpp), replacing the earlier std::function +
/// std::priority_queue design:
///
///  - `run_`      a sorted dispatch window, popped from the front in O(1);
///  - `near_`     a small 4-ary min-heap for inserts that land inside the
///                current window (rare in steady state);
///  - `overflow_` an unsorted spill list for inserts beyond the window —
///                the common case — appended in O(1).
///
/// When the window and near heap drain, the nearest half of the overflow is
/// partitioned out (nth_element) and sorted into a fresh window, so every
/// event is sorted O(1) amortized times with bulk-sort constants instead of
/// per-event heap sifts. Cancellation destroys the callback and releases
/// the pool slot immediately; the stale index entry is skipped on surfacing
/// and compacted away once dead entries outnumber live ones, so memory is
/// bounded by O(live + recently cancelled) — no tombstone accumulation.
/// All three tiers order by (time, insertion seq), exactly the old
/// (time, id) ordering, so every simulation statistic is bit-identical.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "des/event_pool.hpp"

namespace dqcsim::des {

/// Opaque handle identifying a scheduled event (usable for cancellation).
/// Encodes (slot, generation); 0 is never a valid handle.
using EventId = std::uint64_t;

/// Min-queue of timestamped callbacks with stable FIFO tie-breaking, O(1)
/// amortized cancellation, and allocation-free steady state.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `action` to fire at absolute time `time`.
  /// Precondition: time must be finite and >= 0.
  /// Allocation-free when the callback fits the pool's inline storage and
  /// the pool/index are warm; oversized closures are boxed (counted).
  template <typename F>
  EventId schedule(SimTime time, F&& action) {
    DQCSIM_EXPECTS_MSG(std::isfinite(time) && time >= 0.0,
                       "event time must be finite and nonnegative");
    const std::uint32_t slot = pool_.allocate();
    detail::EventRecord& rec = pool_[slot];
    // Callback construction or index growth may throw (copying an lvalue
    // functor, boxed/bad_alloc): roll the slot back so the pool stays
    // consistent.
    try {
      using Fn = std::decay_t<F>;
      if constexpr (detail::fits_inline_v<Fn>) {
        ::new (static_cast<void*>(rec.storage)) Fn(std::forward<F>(action));
        rec.ops = &detail::InlineCallback<Fn>::ops;
      } else {
        Fn* boxed = new Fn(std::forward<F>(action));
        std::memcpy(rec.storage, &boxed, sizeof boxed);
        rec.ops = &detail::BoxedCallback<Fn>::ops;
        ++oversized_allocations_;
      }
      insert_index(IndexEntry{time, next_seq_, slot, rec.generation});
    } catch (...) {
      if (rec.ops != nullptr) {
        detail::destroy_callback(rec.ops, rec.storage);
        rec.ops = nullptr;
      }
      pool_.release(slot);
      throw;
    }
    rec.pending = 1;
    ++next_seq_;
    ++size_;
    return make_id(slot, rec.generation);
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired,
  /// currently-dispatching, or unknown event is a no-op. Returns true if
  /// the event was pending. The callback is destroyed and its pool slot
  /// released immediately; the index entry is purged lazily (amortized
  /// O(1), bounded memory).
  bool cancel(EventId id) noexcept;

  /// True when no pending events remain.
  bool empty() const noexcept { return size_ == 0; }

  /// Time of the earliest pending event. Precondition: !empty().
  /// (Non-const: may settle the dispatch window past cancelled entries.)
  SimTime next_time();

  /// Remove the earliest pending event and invoke its callback in place.
  /// Returns the event's time. Precondition: !empty().
  /// The callback may re-enter the queue (schedule/cancel) freely; its own
  /// slot is off every index tier while it runs.
  SimTime dispatch_next() {
    return dispatch_next([](SimTime) {});
  }

  /// As dispatch_next(), but invoke `before_invoke(time)` between event
  /// extraction and the callback — the Simulator advances its clock there
  /// without paying for a separate next_time() pass.
  template <typename Pre>
  SimTime dispatch_next(Pre&& before_invoke) {
    DQCSIM_EXPECTS(!empty());
    settle_front();
    const IndexEntry entry = extract_min();
    detail::EventRecord& rec = pool_[entry.slot];
    rec.pending = 0;
    --size_;
    // The record is out of every index tier and not yet on the free list,
    // so the callback may schedule (growing the pool) or cancel freely
    // without its own storage being reused underneath it. Block storage is
    // stable, so `rec` stays valid across pool growth. The finalizer
    // releases the slot even when before_invoke or the callback throws.
    // (reset() must not be called from inside a dispatching callback.)
    struct Finalizer {
      EventPool& pool;
      detail::EventRecord& rec;
      std::uint32_t slot;
      ~Finalizer() {
        detail::destroy_callback(rec.ops, rec.storage);
        rec.ops = nullptr;
        pool.release(slot);
      }
    } finalizer{pool_, rec, entry.slot};
    before_invoke(entry.time);
    rec.ops->invoke(rec.storage);
    return entry.time;
  }

  /// Number of pending events.
  std::size_t size() const noexcept { return size_; }

  /// Drop every pending event (destroying the callbacks) but retain all
  /// pool and index capacity, ready for reuse by the next trial.
  void reset() noexcept {
    pool_.reset();
    run_.clear();
    run_head_ = 0;
    near_.clear();
    overflow_.clear();
    horizon_ = -1.0;
    dead_ = 0;
    size_ = 0;
    next_seq_ = 0;
  }

  /// Pre-grow the pool and index to hold `events` pending events.
  void reserve(std::size_t events) {
    pool_.reserve(events);
    run_.reserve(events);
    overflow_.reserve(events);
  }

  // --- introspection (tests and benchmarks) -------------------------------
  /// Slab blocks currently owned by the event pool.
  std::size_t pool_blocks() const noexcept { return pool_.num_blocks(); }
  /// Record slots carved out of the slab (the pending-event high-water mark).
  std::size_t pool_slots() const noexcept { return pool_.num_slots(); }
  /// Index entries across all tiers, including not-yet-purged cancelled
  /// ones. Bounded by size() + cancelled-since-last-compaction.
  std::size_t index_entries() const noexcept {
    return (run_.size() - run_head_) + near_.size() + overflow_.size();
  }
  /// Callbacks that exceeded the inline storage and were boxed on the heap.
  std::uint64_t oversized_allocations() const noexcept {
    return oversized_allocations_;
  }

 private:
  /// One queued event reference. `gen` detects entries whose event was
  /// cancelled (the record's generation moved on).
  struct IndexEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  /// Strict ordering: earlier time first, then earlier insertion (FIFO).
  /// Bitwise combination keeps the comparison branchless (sift decisions on
  /// irregular times mispredict otherwise).
  static bool before(const IndexEntry& a, const IndexEntry& b) noexcept {
    return (a.time < b.time) | ((a.time == b.time) & (a.seq < b.seq));
  }

  bool entry_live(const IndexEntry& e) const noexcept {
    const detail::EventRecord& rec = pool_[e.slot];
    return rec.generation == e.gen && rec.pending != 0;
  }

  /// Route a fresh entry to the near heap (inside the dispatch window) or
  /// the overflow spill (beyond it). Entries at exactly the horizon go to
  /// the overflow: their seq is newer than the window boundary's, so they
  /// sort after it.
  void insert_index(const IndexEntry& entry) {
    if (entry.time < horizon_) {
      push_near(entry);
    } else {
      overflow_.push_back(entry);
    }
  }

  void push_near(const IndexEntry& entry);
  void pop_near_root() noexcept;

  /// Index of the smallest child of near-heap node `pos`, or `n` when the
  /// node is a leaf.
  std::size_t near_best_child(std::size_t pos, std::size_t n) const noexcept;

  /// Drop cancelled entries from the window front / near top, rebuilding
  /// the window from the overflow when both drain. Precondition: !empty().
  /// Postcondition: the earliest live entry is at run_[run_head_] or
  /// near_.front().
  void settle_front();

  /// True when the dispatch window's front entry precedes the near-heap
  /// top (the single tier-selection rule next_time/extract_min share).
  bool run_front_wins() const noexcept;

  /// Extract the earliest live entry. Precondition: settled front.
  IndexEntry extract_min() noexcept;

  /// Sort the nearest chunk of the overflow into a fresh dispatch window.
  void rebuild_run();

  /// Purge dead entries from every tier (amortized against cancels).
  void compact();

  EventPool pool_;
  std::vector<IndexEntry> run_;       ///< sorted window; pop at run_head_
  std::size_t run_head_ = 0;
  std::vector<IndexEntry> near_;      ///< 4-ary min-heap, window stragglers
  std::vector<IndexEntry> overflow_;  ///< unsorted, beyond the window
  SimTime horizon_ = -1.0;  ///< window upper bound (exclusive for routing)
  std::size_t dead_ = 0;    ///< cancelled entries still in the index
  std::size_t size_ = 0;    ///< live (pending) events
  std::uint64_t next_seq_ = 0;
  std::uint64_t oversized_allocations_ = 0;
};

}  // namespace dqcsim::des
