/// \file event_queue.hpp
/// \brief Deterministic priority event queue for discrete-event simulation.
///
/// Events fire in nondecreasing time order; ties are broken by insertion
/// order (FIFO), which keeps simulations bit-reproducible for a fixed seed.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dqcsim::des {

/// Simulation time. The runtime uses units of one local CNOT latency.
using SimTime = double;

/// Opaque handle identifying a scheduled event (usable for cancellation).
using EventId = std::uint64_t;

/// Min-heap of timestamped callbacks with stable FIFO tie-breaking and
/// O(log n) lazy cancellation.
class EventQueue {
 public:
  /// Schedule `action` to fire at absolute time `time`.
  /// Precondition: time must be finite and >= 0.
  EventId schedule(SimTime time, std::function<void()> action);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// unknown event is a no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  /// True when no pending (non-cancelled) events remain.
  bool empty() const noexcept;

  /// Time of the earliest pending event. Precondition: !empty().
  SimTime next_time() const;

  /// Remove and return the earliest pending event's action and time.
  /// Precondition: !empty().
  std::pair<SimTime, std::function<void()>> pop();

  /// Number of pending (non-cancelled) events.
  std::size_t size() const noexcept { return pending_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // earlier insertion first
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t pending_ = 0;
};

}  // namespace dqcsim::des
