#include "des/event_queue.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace dqcsim::des {

EventId EventQueue::schedule(SimTime time, std::function<void()> action) {
  DQCSIM_EXPECTS_MSG(std::isfinite(time) && time >= 0.0,
                     "event time must be finite and nonnegative");
  const EventId id = next_id_++;
  heap_.push(Entry{time, id, std::move(action)});
  ++pending_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: mark the id; the entry is skipped when it surfaces.
  const bool inserted = cancelled_.insert(id).second;
  if (!inserted) return false;
  if (pending_ == 0) {
    cancelled_.erase(id);
    return false;
  }
  --pending_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() &&
         cancelled_.count(heap_.top().id) != 0) {
    const_cast<std::unordered_set<EventId>&>(cancelled_).erase(heap_.top().id);
    const_cast<decltype(heap_)&>(heap_).pop();
  }
}

bool EventQueue::empty() const noexcept { return pending_ == 0; }

SimTime EventQueue::next_time() const {
  DQCSIM_EXPECTS(!empty());
  drop_cancelled();
  return heap_.top().time;
}

std::pair<SimTime, std::function<void()>> EventQueue::pop() {
  DQCSIM_EXPECTS(!empty());
  drop_cancelled();
  // Safe: priority_queue::top() is const-ref; moving the action out requires
  // a const_cast but the entry is popped immediately afterwards.
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<SimTime, std::function<void()>> result{top.time,
                                                   std::move(top.action)};
  heap_.pop();
  --pending_;
  return result;
}

}  // namespace dqcsim::des
