#include "des/event_queue.hpp"

#include <algorithm>

namespace dqcsim::des {

namespace {
/// Smallest dispatch window carved out of the overflow per rebuild. Large
/// enough to amortize the partition cost, small enough that a window is
/// usually consumed before inserts land inside it.
constexpr std::size_t kMinRunLength = 64;
}  // namespace

// DQCSIM_HOT
bool EventQueue::cancel(EventId id) noexcept {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (slot >= pool_.num_slots()) return false;
  detail::EventRecord& rec = pool_[slot];
  // Valid only while pending: generation matches and the event has not
  // been extracted. A currently-dispatching event is no longer pending, so
  // cancelling it (e.g. from inside its own callback) is a no-op, as is
  // any stale handle.
  if (rec.generation != generation || rec.pending == 0) return false;
  rec.pending = 0;
  detail::destroy_callback(rec.ops, rec.storage);
  rec.ops = nullptr;
  pool_.release(slot);
  --size_;
  ++dead_;
  // The index entry is left in place; it is skipped when it surfaces. Once
  // the dead outnumber the live, one O(entries) sweep reclaims them all —
  // amortized O(1) per cancel, memory bounded by live + recent cancels.
  if (dead_ > size_ + 4 * kMinRunLength) compact();
  return true;
}

void EventQueue::settle_front() {
  for (;;) {
    if (dead_ != 0) {
      // Drop cancelled entries surfacing at the window front or near top.
      while (run_head_ < run_.size() && !entry_live(run_[run_head_])) {
        ++run_head_;
        --dead_;
      }
      while (!near_.empty() && !entry_live(near_.front())) {
        pop_near_root();
        --dead_;
      }
    }
    if (run_head_ < run_.size() || !near_.empty()) return;
    run_.clear();
    run_head_ = 0;
    rebuild_run();
  }
}

bool EventQueue::run_front_wins() const noexcept {
  if (run_head_ >= run_.size()) return false;
  return near_.empty() || before(run_[run_head_], near_.front());
}

// DQCSIM_HOT
EventQueue::IndexEntry EventQueue::extract_min() noexcept {
  if (run_front_wins()) return run_[run_head_++];
  const IndexEntry top = near_.front();
  pop_near_root();
  return top;
}

SimTime EventQueue::next_time() {
  DQCSIM_EXPECTS(!empty());
  settle_front();
  return run_front_wins() ? run_[run_head_].time : near_.front().time;
}

// DQCSIM_HOT
void EventQueue::push_near(const IndexEntry& entry) {
  // DQCSIM_LINT_ALLOW(hot-alloc): the near heap grows to its high-water
  // mark once per reused queue (reserve() sizes it at reset); steady-state
  // appends land in already-reserved capacity, measured alloc-free by
  // perf_micro's SteadyStateChurn operator-new counter.
  near_.push_back(entry);
  std::size_t pos = near_.size() - 1;
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!before(entry, near_[parent])) break;
    near_[pos] = near_[parent];
    pos = parent;
  }
  near_[pos] = entry;
}

std::size_t EventQueue::near_best_child(std::size_t pos,
                                        std::size_t n) const noexcept {
  const std::size_t first_child = 4 * pos + 1;
  if (first_child >= n) return n;
  const std::size_t last_child = std::min(first_child + 4, n);
  std::size_t best = first_child;
  for (std::size_t c = first_child + 1; c < last_child; ++c) {
    if (before(near_[c], near_[best])) best = c;
  }
  return best;
}

// DQCSIM_HOT
void EventQueue::pop_near_root() noexcept {
  const IndexEntry last = near_.back();
  near_.pop_back();
  const std::size_t n = near_.size();
  if (n == 0) return;
  // Bottom-up removal: pull the min-child chain into the root hole, then
  // sift the former tail entry up from the bottom.
  std::size_t hole = 0;
  for (std::size_t best; (best = near_best_child(hole, n)) < n;
       hole = best) {
    near_[hole] = near_[best];
  }
  std::size_t pos = hole;
  while (pos > 0) {
    const std::size_t parent = (pos - 1) >> 2;
    if (!before(last, near_[parent])) break;
    near_[pos] = near_[parent];
    pos = parent;
  }
  near_[pos] = last;
}

void EventQueue::rebuild_run() {
  // Purge dead overflow entries while we are touching them anyway.
  if (dead_ > 0) {
    const auto first_dead = std::remove_if(
        overflow_.begin(), overflow_.end(),
        [this](const IndexEntry& e) { return !entry_live(e); });
    dead_ -= static_cast<std::size_t>(overflow_.end() - first_dead);
    overflow_.erase(first_dead, overflow_.end());
  }
  DQCSIM_ENSURES_MSG(!overflow_.empty(),
                     "event index lost track of pending events");
  const auto earlier = [](const IndexEntry& a, const IndexEntry& b) {
    return before(a, b);
  };
  const std::size_t total = overflow_.size();
  std::size_t take = total;
  if (total > 2 * kMinRunLength) {
    // Partition the nearest half (at least kMinRunLength) into the window;
    // the far half stays unsorted and keeps taking O(1) appends.
    take = std::max(kMinRunLength, total / 2);
    std::nth_element(overflow_.begin(),
                     overflow_.begin() + static_cast<std::ptrdiff_t>(take),
                     overflow_.end(), earlier);
  }
  run_.assign(overflow_.begin(),
              overflow_.begin() + static_cast<std::ptrdiff_t>(take));
  run_head_ = 0;
  std::sort(run_.begin(), run_.end(), earlier);
  // Backfill the extracted prefix from the tail (take <= total / 2 unless
  // everything was taken, so source and destination never overlap).
  if (take < total) {
    std::copy(overflow_.end() - static_cast<std::ptrdiff_t>(take),
              overflow_.end(),
              overflow_.begin());
  }
  overflow_.resize(total - take);
  horizon_ = run_.back().time;
}

void EventQueue::compact() {
  const auto dead_pred = [this](const IndexEntry& e) {
    return !entry_live(e);
  };
  overflow_.erase(
      std::remove_if(overflow_.begin(), overflow_.end(), dead_pred),
      overflow_.end());
  // The window must stay sorted: stable removal preserves order.
  run_.erase(run_.begin(),
             run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
  run_head_ = 0;
  run_.erase(std::remove_if(run_.begin(), run_.end(), dead_pred),
             run_.end());
  near_.erase(std::remove_if(near_.begin(), near_.end(), dead_pred),
              near_.end());
  // Re-heapify the near tier (Floyd's bottom-up construction).
  if (near_.size() > 1) {
    const std::size_t n = near_.size();
    for (std::size_t i = (n - 2) / 4 + 1; i-- > 0;) {
      const IndexEntry entry = near_[i];
      std::size_t pos = i;
      for (std::size_t best; (best = near_best_child(pos, n)) < n &&
                             before(near_[best], entry);
           pos = best) {
        near_[pos] = near_[best];
      }
      near_[pos] = entry;
    }
  }
  dead_ = 0;
}

}  // namespace dqcsim::des
