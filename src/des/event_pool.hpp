/// \file event_pool.hpp
/// \brief Slab-allocated store of fixed-size event records with small-buffer
/// callback storage — the allocation-free backing of EventQueue.
///
/// Records live in stable 256-slot blocks (a slab) threaded by a free list,
/// so steady-state schedule/cancel/pop cycles perform no heap allocation:
/// the slab grows to the high-water mark of simultaneously pending events
/// and is reused from then on. Callbacks are stored in-place when they fit
/// `kInlineCallbackBytes` (every callback the runtime schedules does); larger
/// closures fall back to one boxed heap allocation, counted so benchmarks
/// and tests can assert the fallback never fires on the hot path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace dqcsim::des {

/// Simulation time. The runtime uses units of one local CNOT latency.
using SimTime = double;

namespace detail {

/// Inline capacity for stored callbacks. Sized for the engine's largest
/// steady-state closure (a `this` pointer plus a few gate indices) with room
/// to spare; anything bigger is boxed on the heap.
inline constexpr std::size_t kInlineCallbackBytes = 48;

/// Sentinel: end of the free list.
inline constexpr std::uint32_t kNullSlot = 0xFFFFFFFFu;

/// Type-erased manual vtable for a stored callback. `destroy` is null for
/// trivially destructible inline callbacks (the common case) so the
/// dispatch path can skip the indirect call.
struct CallbackOps {
  void (*invoke)(void* storage);
  void (*destroy)(void* storage) noexcept;
};

inline void destroy_callback(const CallbackOps* ops, void* storage) noexcept {
  if (ops->destroy != nullptr) ops->destroy(storage);
}

template <typename F>
struct InlineCallback {
  static void invoke(void* storage) { (*static_cast<F*>(storage))(); }
  static void destroy(void* storage) noexcept {
    static_cast<F*>(storage)->~F();
  }
  static constexpr CallbackOps ops{
      &invoke, std::is_trivially_destructible_v<F> ? nullptr : &destroy};
};

template <typename F>
struct BoxedCallback {
  static F* box(void* storage) noexcept {
    F* p;
    std::memcpy(&p, storage, sizeof p);
    return p;
  }
  static void invoke(void* storage) { (*box(storage))(); }
  static void destroy(void* storage) noexcept { delete box(storage); }
  static constexpr CallbackOps ops{&invoke, &destroy};
};

template <typename F>
inline constexpr bool fits_inline_v =
    sizeof(F) <= kInlineCallbackBytes &&
    alignof(F) <= alignof(std::max_align_t) &&
    std::is_nothrow_move_constructible_v<F>;

/// One pooled event: the callback plus liveness bookkeeping. The sort key
/// (time, seq) lives only in EventQueue's index entries, not here. Records
/// never move: blocks are stable, so a callback may safely execute from
/// its own slot while re-entrant scheduling grows the pool.
struct EventRecord {
  alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  const CallbackOps* ops = nullptr;  ///< null while the slot is free
  std::uint32_t generation = 1;      ///< bumped on release; 0 never valid
  std::uint32_t next_free = kNullSlot;
  std::uint8_t pending = 0;  ///< scheduled and not yet extracted/cancelled
};

}  // namespace detail

/// Growing slab of EventRecords with a free list. Slots are identified by a
/// dense uint32 index; `operator[]` is O(1) and references stay valid across
/// growth (storage is chunked, never reallocated).
class EventPool {
 public:
  static constexpr std::uint32_t kBlockShift = 8;
  static constexpr std::uint32_t kBlockSlots = 1u << kBlockShift;  // 256
  static constexpr std::uint32_t kBlockMask = kBlockSlots - 1;

  detail::EventRecord& operator[](std::uint32_t slot) noexcept {
    return blocks_[slot >> kBlockShift].get()[slot & kBlockMask];
  }
  const detail::EventRecord& operator[](std::uint32_t slot) const noexcept {
    return blocks_[slot >> kBlockShift].get()[slot & kBlockMask];
  }

  /// Take a free slot, growing the slab by one block when exhausted. The
  /// returned record's generation is valid; all other fields are stale.
  std::uint32_t allocate() {
    if (free_head_ != detail::kNullSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = (*this)[slot].next_free;
      ++live_;
      return slot;
    }
    if (num_slots_ == blocks_.size() * kBlockSlots) {
      blocks_.push_back(std::make_unique<detail::EventRecord[]>(kBlockSlots));
    }
    ++live_;
    return num_slots_++;
  }

  /// Return a slot to the free list. The callback must already be destroyed.
  void release(std::uint32_t slot) noexcept {
    detail::EventRecord& rec = (*this)[slot];
    if (++rec.generation == 0) rec.generation = 1;
    rec.pending = 0;
    rec.next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  /// Destroy every live callback and rebuild the free list (ascending slot
  /// order, for deterministic reuse). Keeps all blocks: capacity is retained
  /// across trials.
  void reset() noexcept {
    free_head_ = detail::kNullSlot;
    for (std::uint32_t slot = num_slots_; slot-- > 0;) {
      detail::EventRecord& rec = (*this)[slot];
      if (rec.ops != nullptr) {
        destroy_callback(rec.ops, rec.storage);
        rec.ops = nullptr;
        if (++rec.generation == 0) rec.generation = 1;
      }
      rec.pending = 0;
      rec.next_free = free_head_;
      free_head_ = slot;
    }
    live_ = 0;
  }

  /// Grow the slab until it holds at least `slots` carved records, threading
  /// the new ones onto the free list.
  void reserve(std::size_t slots) {
    while (num_slots_ < slots) {
      if (num_slots_ == blocks_.size() * kBlockSlots) {
        blocks_.push_back(
            std::make_unique<detail::EventRecord[]>(kBlockSlots));
      }
      detail::EventRecord& rec = (*this)[num_slots_];
      rec.next_free = free_head_;
      free_head_ = num_slots_;
      ++num_slots_;
    }
  }

  std::uint32_t num_slots() const noexcept { return num_slots_; }
  std::size_t num_blocks() const noexcept { return blocks_.size(); }
  std::size_t live() const noexcept { return live_; }

 private:
  std::vector<std::unique_ptr<detail::EventRecord[]>> blocks_;
  std::uint32_t num_slots_ = 0;
  std::uint32_t free_head_ = detail::kNullSlot;
  std::size_t live_ = 0;
};

}  // namespace dqcsim::des
