/// \file simulator.hpp
/// \brief Discrete-event simulation engine: a clock plus an event queue.
///
/// Both the entanglement-generation service and the DQC runtime engine are
/// processes driven by one shared Simulator, which is what lets gate
/// execution react to EPR-pair arrivals at exact event timestamps.

#pragma once

#include <utility>

#include "common/error.hpp"
#include "des/event_queue.hpp"

namespace dqcsim::des {

/// Event-driven simulation engine with an absolute clock.
///
/// Time never flows backwards: scheduling an event before `now()` throws.
/// Scheduling is allocation-free in steady state (see EventQueue); a
/// Simulator is designed to be reset() and reused across Monte-Carlo trials
/// so its event pool is warm from the second trial on.
class Simulator {
 public:
  /// Current simulation time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute time `t`. Precondition: t >= now().
  template <typename F>
  EventId schedule_at(SimTime t, F&& action) {
    DQCSIM_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
    return queue_.schedule(t, std::forward<F>(action));
  }

  /// Schedule `action` after a nonnegative delay relative to now().
  template <typename F>
  EventId schedule_in(SimTime delay, F&& action) {
    DQCSIM_EXPECTS_MSG(delay >= 0.0, "delay must be nonnegative");
    return queue_.schedule(now_ + delay, std::forward<F>(action));
  }

  /// Cancel a pending event; no-op if already fired. Returns true if pending.
  bool cancel(EventId id) noexcept { return queue_.cancel(id); }

  /// Execute the single earliest pending event. Returns false if none.
  bool step();

  /// Run until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kNoEventLimit);

  /// Run events with time <= t_end, then advance the clock to exactly t_end.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime t_end);

  /// True when no pending events remain.
  bool idle() const noexcept { return queue_.empty(); }

  /// Time of the earliest pending event (the instant the next step() would
  /// advance the clock to). Precondition: !idle(). Non-const: may settle
  /// the queue's dispatch window past cancelled entries.
  SimTime next_event_time() { return queue_.next_time(); }

  /// Number of pending events.
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Total number of events executed since construction (or last reset()).
  std::size_t executed_events() const noexcept { return executed_; }

  /// Drop all pending events and rewind the clock to 0, retaining the event
  /// pool's capacity. Must not be called from inside an event callback.
  void reset() noexcept {
    queue_.reset();
    now_ = 0.0;
    executed_ = 0;
  }

  /// The underlying queue (introspection for tests and benchmarks).
  const EventQueue& queue() const noexcept { return queue_; }

  /// Pre-grow the event pool (see EventQueue::reserve).
  void reserve_events(std::size_t events) { queue_.reserve(events); }

  static constexpr std::size_t kNoEventLimit = ~std::size_t{0};

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::size_t executed_ = 0;
};

}  // namespace dqcsim::des
