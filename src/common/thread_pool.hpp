/// \file thread_pool.hpp
/// \brief Minimal fixed-size thread pool used to fan Monte-Carlo experiment
/// runs across cores.
///
/// Deliberately simple (one locked FIFO, no work stealing): experiment tasks
/// are coarse — one full ExecutionEngine run each — so queue contention is
/// negligible next to task cost. Determinism is the caller's job: tasks must
/// write to disjoint, pre-sized slots so the completion order never affects
/// the result (see runtime::run_design).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dqcsim {

/// Fixed-size pool of worker threads draining a shared FIFO of jobs.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Blocks until queued jobs finish, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one job. Jobs must not throw (wrap work that can throw and
  /// capture the exception; parallel_for does this for you).
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run body(i) for i in [0, n), distributed over the pool's workers via a
  /// shared atomic index. Blocks until all n calls return. The first
  /// exception thrown by any call is rethrown here (remaining indices still
  /// run). With size() == 0 this degenerates to an inline serial loop.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// As parallel_for, but body receives (worker, i) where worker is a dense
  /// id in [0, min(size(), n)) identifying the draining task: calls with
  /// the same worker id never run concurrently, so each worker can own a
  /// reusable workspace (e.g. a runtime::RunContext). The serial fallback
  /// uses worker 0.
  void parallel_for_workers(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// std::thread::hardware_concurrency(), but never 0.
  static std::size_t hardware_threads() noexcept;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals workers: job or stop
  std::condition_variable idle_cv_;  ///< signals wait_idle: drained
  std::queue<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Convenience: run body(i) for i in [0, n) on a transient pool of
/// `num_threads` workers (0 = hardware_threads()). Serial and inline when
/// the resolved thread count or n is <= 1, so single-threaded callers pay
/// no threading cost at all.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads = 0);

/// Number of distinct worker ids parallel_for_workers(n, body, num_threads)
/// will use — size a per-worker workspace array with this before the call.
std::size_t parallel_worker_count(std::size_t n,
                                  std::size_t num_threads = 0) noexcept;

/// Worker-id variant of the transient-pool parallel_for: body receives
/// (worker, i) with worker in [0, parallel_worker_count(n, num_threads)).
/// Calls sharing a worker id never run concurrently.
void parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t num_threads = 0);

}  // namespace dqcsim
