/// \file json.hpp
/// \brief Minimal JSON document builder for machine-readable outputs
/// (benchmark reports, CI artifacts). Write-only by design: the repo's
/// consumers of these files are external tools (CI scripts, plotting),
/// so no parser is provided.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dqcsim {

/// A JSON value: null, bool, number, string, array, or object. Object keys
/// keep insertion order so emitted reports diff cleanly.
class JsonValue {
 public:
  JsonValue() = default;  ///< null
  JsonValue(bool b);
  JsonValue(double d);
  JsonValue(std::int64_t i);
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::size_t u) : JsonValue(static_cast<double>(u)) {}
  JsonValue(const char* s);
  JsonValue(std::string s);

  static JsonValue object();
  static JsonValue array();

  /// Object member access (creates the member; value types only).
  /// Precondition: this is an object.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Append to an array. Precondition: this is an array.
  JsonValue& push(JsonValue v);

  /// Serialize. `indent` > 0 pretty-prints with that many spaces.
  /// Non-finite numbers serialize as null (JSON has no inf/nan).
  std::string dump(int indent = 2) const;

  /// Serialize to a file; throws ConfigError when the file cannot be
  /// opened or written.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Type { Null, Bool, Number, String, Array, Object };

  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool num_is_int_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace dqcsim
