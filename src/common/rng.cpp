#include "common/rng.hpp"

#include <cmath>

namespace dqcsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

// DQCSIM_HOT
Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

// DQCSIM_HOT
double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

// DQCSIM_HOT
void Rng::fill_uniform(double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = uniform();
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation with rejection.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  // Inversion method: floor(log(U) / log(1-p)).
  const double u = 1.0 - uniform();  // in (0, 1]
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

double Rng::exponential(double mean) noexcept {
  return -mean * std::log(1.0 - uniform());
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

}  // namespace dqcsim
