/// \file csv.hpp
/// \brief Minimal CSV writer so every benchmark can dump machine-readable
/// series next to its console table (one file per figure/table).

#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dqcsim {

/// Writes RFC-4180-style CSV (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Open `path` for writing and emit the header row.
  /// Throws ConfigError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one data row. Precondition: cells.size() == header width.
  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

  /// Quote/escape a single field per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& field);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace dqcsim
