#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace dqcsim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DQCSIM_EXPECTS(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DQCSIM_EXPECTS_MSG(cells.size() == headers_.size(),
                     "row width must match header count");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::fmt(std::size_t v) { return std::to_string(v); }
std::string TablePrinter::fmt(int v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& cells,
                            bool left_align_first) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << " | ";
      const auto pad = widths[c] - cells[c].size();
      if (c == 0 && left_align_first) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };
  emit_row(headers_, /*left_align_first=*/true);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, /*left_align_first=*/true);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace dqcsim
