/// \file table.hpp
/// \brief Aligned console table printer used by the benchmark harness to
/// reproduce the paper's tables and figure series as readable text output.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dqcsim {

/// Builds a table row by row and renders it with aligned columns.
///
/// Example output:
/// ```
/// benchmark     | design    |   depth | rel_ideal
/// --------------+-----------+---------+----------
/// QAOA-r8-32    | sync_buf  |  111.62 |      1.74
/// ```
class TablePrinter {
 public:
  /// Define the column headers; fixes the column count for all rows.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row of pre-formatted cells.
  /// Precondition: cells.size() == number of headers.
  void add_row(std::vector<std::string> cells);

  /// Format a double with the given precision (helper for cells).
  static std::string fmt(double v, int precision = 2);

  /// Format an integer cell.
  static std::string fmt(std::size_t v);
  static std::string fmt(int v);

  /// Render the table into the stream.
  void print(std::ostream& os) const;

  /// Render the table to a string.
  std::string to_string() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqcsim
