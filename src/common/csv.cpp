#include "common/csv.hpp"

#include "common/error.hpp"

namespace dqcsim {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw ConfigError("cannot open CSV output file: " + path);
  DQCSIM_EXPECTS(!header.empty());
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  DQCSIM_EXPECTS_MSG(cells.size() == width_,
                     "CSV row width must match header width");
  write_row(cells);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace dqcsim
