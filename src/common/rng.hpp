/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for simulations.
///
/// All stochastic components of dqcsim (entanglement-generation success,
/// workload generation, partitioner tie-breaking) draw from this generator so
/// that every experiment is reproducible from a single 64-bit seed.
/// The engine is xoshiro256** (Blackman & Vigna), seeded via splitmix64.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dqcsim {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// used with standard `<random>` distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; distinct seeds give independent streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Fill `out[0..n)` with uniform doubles in [0, 1), consuming the stream
  /// exactly as n successive uniform() calls would. Batching the draws for
  /// a known-size consumer (e.g. all purification rounds of one remote
  /// gate) keeps the loop branch-free without perturbing replay.
  void fill_uniform(double* out, std::size_t n) noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Number of failures before the first success of a Bernoulli(p) process;
  /// i.e. a geometric variate with support {0, 1, 2, ...}.
  /// Precondition: 0 < p <= 1.
  std::uint64_t geometric(double p) noexcept;

  /// Exponential variate with the given mean (inversion method). uniform()
  /// is in [0, 1), so the log argument stays in (0, 1] and the result is
  /// finite and non-negative. This is the blessed wrapper for Exp sampling:
  /// callers in result-affecting subsystems must use it instead of spelling
  /// the -mean * log(1 - u) inversion with raw libm (docs/ARCHITECTURE.md
  /// "Determinism rules", no-raw-libm).
  double exponential(double mean) noexcept;

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-run seeding in sweeps).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dqcsim
