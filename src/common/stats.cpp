#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dqcsim {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::ci95_half_width() const noexcept {
  return 1.96 * stderr_mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  DQCSIM_EXPECTS(bins > 0);
  DQCSIM_EXPECTS(lo < hi);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard fp rounding at hi edge
    ++counts_[idx];
  }
}

std::size_t Histogram::bin_count(std::size_t i) const {
  DQCSIM_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_edge(std::size_t i) const {
  DQCSIM_EXPECTS(i <= counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double mean_of(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev_of(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

}  // namespace dqcsim
