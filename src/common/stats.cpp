#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dqcsim {

void Accumulator::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (!hist_counts_.empty()) {
    if (x < hist_lo_) {
      ++hist_under_;
    } else if (x >= hist_hi_) {
      ++hist_over_;
    } else {
      auto idx = static_cast<std::size_t>((x - hist_lo_) / hist_width_);
      idx = std::min(idx, hist_counts_.size() - 1);  // guard fp at hi edge
      ++hist_counts_[idx];
    }
  }
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0 && !histogram_enabled()) {
    *this = other;
    return;
  }
  DQCSIM_EXPECTS(hist_counts_.size() == other.hist_counts_.size());
  DQCSIM_EXPECTS(hist_counts_.empty() ||
                 (hist_lo_ == other.hist_lo_ && hist_hi_ == other.hist_hi_));
  hist_under_ += other.hist_under_;
  hist_over_ += other.hist_over_;
  for (std::size_t i = 0; i < hist_counts_.size(); ++i) {
    hist_counts_[i] += other.hist_counts_[i];
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::ci95_half_width() const noexcept {
  return 1.96 * stderr_mean();
}

void Accumulator::enable_histogram(double lo, double hi, std::size_t bins) {
  DQCSIM_EXPECTS(bins > 0);
  DQCSIM_EXPECTS(lo < hi);
  DQCSIM_EXPECTS(n_ == 0);
  hist_lo_ = lo;
  hist_hi_ = hi;
  hist_width_ = (hi - lo) / static_cast<double>(bins);
  hist_under_ = 0;
  hist_over_ = 0;
  hist_counts_.assign(bins, 0);
}

double Accumulator::quantile(double q) const {
  DQCSIM_EXPECTS(histogram_enabled());
  if (n_ == 0) return 0.0;
  std::vector<double> edges(hist_counts_.size() + 1);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i] = hist_lo_ + hist_width_ * static_cast<double>(i);
  }
  return quantile_from_bins(hist_counts_.data(), hist_counts_.size(),
                            edges.data(), hist_under_, hist_over_, min_, max_,
                            q);
}

double quantile_from_bins(const std::uint64_t* counts, std::size_t bins,
                          const double* edges, std::uint64_t underflow,
                          std::uint64_t overflow, double min_value,
                          double max_value, double q) noexcept {
  std::uint64_t total = underflow + overflow;
  for (std::size_t i = 0; i < bins; ++i) total += counts[i];
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  if (q <= 0.0) return min_value;
  if (q >= 1.0) return max_value;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  // Each populated segment interpolates linearly over its overlap with the
  // observed [min, max] range, so a single-valued distribution reports the
  // exact value and quantiles never leave the range.
  if (underflow > 0) {
    const double mass = static_cast<double>(underflow);
    if (cum + mass >= target) {
      const double hi = std::min(edges[0], max_value);
      return min_value + (target - cum) / mass * (hi - min_value);
    }
    cum += mass;
  }
  for (std::size_t i = 0; i < bins; ++i) {
    if (counts[i] == 0) continue;
    const double mass = static_cast<double>(counts[i]);
    if (cum + mass >= target) {
      const double lo = std::max(edges[i], min_value);
      const double hi = std::min(edges[i + 1], max_value);
      return lo + (target - cum) / mass * (hi - lo);
    }
    cum += mass;
  }
  const double lo = std::max(edges[bins], min_value);
  const double mass = static_cast<double>(overflow);
  return lo + (target - cum) / mass * (max_value - lo);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  DQCSIM_EXPECTS(bins > 0);
  DQCSIM_EXPECTS(lo < hi);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard fp rounding at hi edge
    ++counts_[idx];
  }
}

std::size_t Histogram::bin_count(std::size_t i) const {
  DQCSIM_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_edge(std::size_t i) const {
  DQCSIM_EXPECTS(i <= counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double mean_of(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stddev_of(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

}  // namespace dqcsim
