#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace dqcsim {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_workers(n, [&body](std::size_t, std::size_t i) { body(i); });
}

void ThreadPool::parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (size() == 0 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  const auto drain = [&](std::size_t worker) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(worker, i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) error = std::current_exception();
      }
    }
  };

  // One draining task per worker id; a task may migrate to whichever pool
  // thread picks it up, but two tasks never share an id, so id-keyed
  // workspaces are race-free.
  const std::size_t tasks = std::min(size(), n);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([&drain, t] { drain(t); });
  }
  wait_idle();

  if (failed.load()) std::rethrow_exception(error);
}

std::size_t ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads) {
  parallel_for_workers(
      n, [&body](std::size_t, std::size_t i) { body(i); }, num_threads);
}

std::size_t parallel_worker_count(std::size_t n,
                                  std::size_t num_threads) noexcept {
  if (num_threads == 0) num_threads = ThreadPool::hardware_threads();
  num_threads = std::min(num_threads, n);
  return num_threads <= 1 ? 1 : num_threads;
}

void parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t num_threads) {
  const std::size_t workers = parallel_worker_count(n, num_threads);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  ThreadPool pool(workers);
  pool.parallel_for_workers(n, body);
}

}  // namespace dqcsim
