#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace dqcsim {

JsonValue::JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
JsonValue::JsonValue(double d) : type_(Type::Number), num_(d) {}
JsonValue::JsonValue(std::int64_t i)
    : type_(Type::Number), num_(static_cast<double>(i)), num_is_int_(true) {}
JsonValue::JsonValue(const char* s) : type_(Type::String), str_(s) {}
JsonValue::JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  DQCSIM_EXPECTS_MSG(type_ == Type::Object, "set() requires a JSON object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(v));
  return *this;
}

JsonValue& JsonValue::push(JsonValue v) {
  DQCSIM_EXPECTS_MSG(type_ == Type::Array, "push() requires a JSON array");
  arr_.push_back(std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double d, bool is_int) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  char buf[32];
  if (is_int) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  return buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : "";
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: out += format_number(num_, num_is_int_); break;
    case Type::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) {
          out += ',';
          if (indent <= 0) out += ' ';
        }
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(obj_[i].first);
        out += "\": ";
        obj_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < obj_.size()) {
          out += ',';
          if (indent <= 0) out += ' ';
        }
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::write_file(const std::string& path, int indent) const {
  std::ofstream out(path);
  if (!out) throw ConfigError("cannot open JSON output file: " + path);
  out << dump(indent) << '\n';
  if (!out) throw ConfigError("failed writing JSON output file: " + path);
}

}  // namespace dqcsim
