/// \file stats.hpp
/// \brief Streaming statistics used to aggregate multi-seed experiment runs.
///
/// The paper reports the average of 50 runs per configuration; Accumulator
/// provides numerically stable mean/variance (Welford), extrema, and a 95 %
/// normal-approximation confidence interval for those aggregates.

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dqcsim {

/// Numerically stable streaming mean / variance / extrema accumulator.
class Accumulator {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel Welford merge).
  /// Histogram configurations (see enable_histogram()) must match when both
  /// sides carry observations.
  void merge(const Accumulator& other);

  /// Number of observations added so far.
  std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Standard error of the mean.
  double stderr_mean() const noexcept;

  /// Half-width of the 95 % confidence interval for the mean
  /// (normal approximation, appropriate for the 50-run averages used here).
  double ci95_half_width() const noexcept;

  /// Smallest observation; 0 when empty (like mean(); check count() to
  /// distinguish. The extrema must stay finite: ±inf leaked into bench
  /// reports, where JSON has no representation and emitted `null`).
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }

  /// Largest observation; 0 when empty (see min()).
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  /// Opt in to a fixed-bin histogram backing quantile(): `bins` equal-width
  /// bins over [lo, hi), with integer underflow/overflow tails for samples
  /// outside the range. Off by default so that default-constructed
  /// accumulators stay allocation-free — the engine resets its per-trial
  /// accumulators by assignment on the hot path. Must be called before the
  /// first add(); samples are not re-binned retroactively.
  /// Preconditions: bins > 0, lo < hi, count() == 0.
  void enable_histogram(double lo, double hi, std::size_t bins);

  /// Whether enable_histogram() has been called.
  bool histogram_enabled() const noexcept { return !hist_counts_.empty(); }

  /// Interpolated q-quantile of the observed distribution. Requires
  /// enable_histogram(); q is clamped to [0, 1]; 0 when empty (the same
  /// convention as mean()/min()/max()). Tail mass outside [lo, hi)
  /// interpolates against the exact min()/max(), so quantiles never leave
  /// the observed range.
  double quantile(double q) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  // Optional quantile histogram (enable_histogram); empty when disabled.
  double hist_lo_ = 0.0;
  double hist_hi_ = 0.0;
  double hist_width_ = 0.0;
  std::uint64_t hist_under_ = 0;
  std::uint64_t hist_over_ = 0;
  std::vector<std::uint64_t> hist_counts_;
};

/// Fixed-bin histogram over [lo, hi); used for arrival-pattern analysis.
class Histogram {
 public:
  /// Create a histogram of `bins` equal-width bins covering [lo, hi).
  /// Preconditions: bins > 0, lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation; values outside [lo, hi) are counted in
  /// underflow/overflow and do not affect the bins.
  void add(double x) noexcept;

  std::size_t num_bins() const noexcept { return counts_.size(); }
  /// Count in bin i. Precondition: i < num_bins().
  std::size_t bin_count(std::size_t i) const;
  /// Lower edge of bin i. Precondition: i <= num_bins().
  double bin_edge(std::size_t i) const;
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Interpolated quantile over integer bin counts with ascending `edges`
/// (`bins + 1` entries; bin i covers [edges[i], edges[i+1])). Underflow
/// mass interpolates over [min_value, edges[0]] and overflow mass over
/// [edges[bins], max_value], clamped so the result stays inside the
/// observed [min_value, max_value]. Returns 0 when the total count is
/// zero; q is clamped to [0, 1]. Shared by Accumulator::quantile and the
/// observability registry histograms (obs::Hist).
double quantile_from_bins(const std::uint64_t* counts, std::size_t bins,
                          const double* edges, std::uint64_t underflow,
                          std::uint64_t overflow, double min_value,
                          double max_value, double q) noexcept;

/// Population standard deviation of a sample (convenience for tests).
double stddev_of(const std::vector<double>& xs) noexcept;

/// Arithmetic mean of a sample; 0 when empty (convenience for tests).
double mean_of(const std::vector<double>& xs) noexcept;

}  // namespace dqcsim
