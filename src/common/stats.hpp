/// \file stats.hpp
/// \brief Streaming statistics used to aggregate multi-seed experiment runs.
///
/// The paper reports the average of 50 runs per configuration; Accumulator
/// provides numerically stable mean/variance (Welford), extrema, and a 95 %
/// normal-approximation confidence interval for those aggregates.

#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace dqcsim {

/// Numerically stable streaming mean / variance / extrema accumulator.
class Accumulator {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel Welford merge).
  void merge(const Accumulator& other) noexcept;

  /// Number of observations added so far.
  std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Standard error of the mean.
  double stderr_mean() const noexcept;

  /// Half-width of the 95 % confidence interval for the mean
  /// (normal approximation, appropriate for the 50-run averages used here).
  double ci95_half_width() const noexcept;

  /// Smallest observation; 0 when empty (like mean(); check count() to
  /// distinguish. The extrema must stay finite: ±inf leaked into bench
  /// reports, where JSON has no representation and emitted `null`).
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }

  /// Largest observation; 0 when empty (see min()).
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); used for arrival-pattern analysis.
class Histogram {
 public:
  /// Create a histogram of `bins` equal-width bins covering [lo, hi).
  /// Preconditions: bins > 0, lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one observation; values outside [lo, hi) are counted in
  /// underflow/overflow and do not affect the bins.
  void add(double x) noexcept;

  std::size_t num_bins() const noexcept { return counts_.size(); }
  /// Count in bin i. Precondition: i < num_bins().
  std::size_t bin_count(std::size_t i) const;
  /// Lower edge of bin i. Precondition: i <= num_bins().
  double bin_edge(std::size_t i) const;
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Population standard deviation of a sample (convenience for tests).
double stddev_of(const std::vector<double>& xs) noexcept;

/// Arithmetic mean of a sample; 0 when empty (convenience for tests).
double mean_of(const std::vector<double>& xs) noexcept;

}  // namespace dqcsim
