/// \file error.hpp
/// \brief Error handling primitives shared across the dqcsim library.
///
/// Follows the C++ Core Guidelines (I.5/I.6, E.x): preconditions are checked
/// at the public API boundary and violations throw a typed exception carrying
/// the failing expression and location, so callers can distinguish usage
/// errors from simulation-level failures.

#pragma once

#include <stdexcept>
#include <string>

namespace dqcsim {

/// Exception thrown when a public-API precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Exception thrown when the simulation reaches an internally inconsistent
/// state (an invariant, not a caller precondition, was violated).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Exception thrown when a configuration value is out of its valid domain.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace detail
}  // namespace dqcsim

/// Check a caller-facing precondition; throws dqcsim::PreconditionError.
#define DQCSIM_EXPECTS(expr)                                                  \
  do {                                                                        \
    if (!(expr))                                                              \
      ::dqcsim::detail::throw_precondition(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Check a caller-facing precondition with an explanatory message.
#define DQCSIM_EXPECTS_MSG(expr, msg)                                         \
  do {                                                                        \
    if (!(expr))                                                              \
      ::dqcsim::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws dqcsim::InvariantError.
#define DQCSIM_ENSURES(expr)                                                  \
  do {                                                                        \
    if (!(expr))                                                              \
      ::dqcsim::detail::throw_invariant(#expr, __FILE__, __LINE__, "");       \
  } while (false)

/// Check an internal invariant with an explanatory message.
#define DQCSIM_ENSURES_MSG(expr, msg)                                         \
  do {                                                                        \
    if (!(expr))                                                              \
      ::dqcsim::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));    \
  } while (false)
