/// \file dqcsim.hpp
/// \brief Umbrella header: the full public API of the dqcsim library.
///
/// dqcsim reproduces "Hardware-Software Co-design for Distributed Quantum
/// Computing" (DAC 2025): a 2-node DQC architecture simulator with
/// entanglement buffering, asynchronous generation, and adaptive remote-gate
/// scheduling. Typical usage:
///
/// \code
///   using namespace dqcsim;
///   Circuit qc = gen::make_qft(32);
///   auto part = runtime::partition_circuit(qc, /*num_nodes=*/2);
///   runtime::ArchConfig config;                 // paper defaults
///   auto agg = runtime::run_design(qc, part.assignment, config,
///                                  runtime::DesignKind::AsyncBuf,
///                                  /*runs=*/50);
///   std::cout << agg.depth.mean() << ' ' << agg.fidelity.mean() << '\n';
/// \endcode

#pragma once

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

#include "des/event_queue.hpp"
#include "des/simulator.hpp"

#include "circuit/circuit.hpp"
#include "circuit/commutation.hpp"
#include "circuit/dag.hpp"
#include "circuit/fusion.hpp"
#include "circuit/gate.hpp"
#include "circuit/interaction_graph.hpp"
#include "circuit/qasm.hpp"

#include "gen/benchmarks.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/regular_graph.hpp"
#include "gen/tlim.hpp"

#include "partition/coarsen.hpp"
#include "partition/fm_refine.hpp"
#include "partition/graph.hpp"
#include "partition/initial_partition.hpp"
#include "partition/partitioner.hpp"

#include "qsim/channels.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/gates_matrices.hpp"
#include "qsim/statevector.hpp"

#include "noise/fidelity_ledger.hpp"
#include "noise/purification.hpp"
#include "noise/teleport_fidelity.hpp"
#include "noise/werner.hpp"

#include "ent/buffer_pool.hpp"
#include "ent/generation_service.hpp"
#include "ent/link_params.hpp"
#include "ent/trace.hpp"

#include "net/mapping.hpp"
#include "net/router.hpp"
#include "net/swap.hpp"
#include "net/topology.hpp"

#include "obs/histogram.hpp"
#include "obs/observe.hpp"
#include "obs/registry.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

#include "sched/adaptive_policy.hpp"
#include "sched/remote_gates.hpp"
#include "sched/segmentation.hpp"
#include "sched/variants.hpp"

#include "runtime/arch_config.hpp"
#include "runtime/design.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"
#include "runtime/metrics.hpp"
