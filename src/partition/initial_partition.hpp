/// \file initial_partition.hpp
/// \brief Initial bipartition heuristics applied at the coarsest level.
///
/// Two seeds are tried per trial: greedy graph growing (BFS region growing
/// by gain) and a balanced random split. The multilevel driver takes the
/// best of several trials before refinement.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "partition/graph.hpp"

namespace dqcsim::partition {

/// Grow part 0 greedily from a random seed vertex until it holds
/// `fraction` of the total vertex weight; remaining vertices form part 1.
/// At each step the frontier vertex with the highest gain (external minus
/// internal edge weight) joins part 0. Precondition: 0 < fraction < 1.
std::vector<int> greedy_graph_growing_bipartition(const Graph& g, Rng& rng,
                                                  double fraction = 0.5);

/// Random bipartition: vertices are shuffled and assigned to part 0 until
/// `fraction` of the total weight is reached. Precondition: 0 < fraction < 1.
std::vector<int> random_balanced_bipartition(const Graph& g, Rng& rng,
                                             double fraction = 0.5);

/// Run `trials` of each heuristic and return the assignment with the
/// smallest cut among those within the part-0 weight window
/// [fraction*total/max_balance, fraction*total*max_balance] (and likewise
/// for part 1); if none qualifies, the closest-to-balanced is returned.
/// Precondition: g.num_nodes() >= 2.
std::vector<int> best_initial_bipartition(const Graph& g, Rng& rng,
                                          int trials, double max_balance,
                                          double fraction = 0.5);

}  // namespace dqcsim::partition
