/// \file partitioner.hpp
/// \brief Multilevel k-way graph partitioner (the METIS substitute).
///
/// Pipeline per bisection: heavy-edge-matching coarsening until the graph is
/// small, best-of-N initial bipartition, then FM refinement at every
/// uncoarsening level. k-way partitions are produced by recursive bisection.
/// The paper (§IV-A) partitions qubit interaction graphs with METIS to
/// minimise remote operations; this module plays that role.

#pragma once

#include <cstdint>
#include <vector>

#include "partition/fm_refine.hpp"
#include "partition/graph.hpp"

namespace dqcsim::partition {

/// Partitioner options.
struct PartitionOptions {
  /// Maximum allowed balance ratio (1.0 = perfect balance, METIS-style
  /// small tolerance by default; the DQC architecture needs exactly equal
  /// data-qubit counts per node, so keep this at 1.0 for even graphs).
  double max_balance = 1.0;

  /// Stop coarsening when the graph has at most this many vertices.
  NodeId coarsen_target = 24;

  /// Initial-partition trials at the coarsest level.
  int initial_trials = 8;

  /// FM passes per uncoarsening level.
  int refine_passes = 16;

  /// Independent multilevel restarts per bisection (best cut wins).
  int restarts = 4;

  /// Seed for all randomized components.
  std::uint64_t seed = 1;
};

/// Result of a partitioning call.
struct PartitionResult {
  std::vector<int> assignment;  ///< part id in [0, k) per vertex
  int k = 0;
  Weight cut = 0;               ///< total crossing edge weight
  double balance = 0.0;         ///< balance_ratio of the result
};

/// Partition `g` into `k` parts of (near-)equal vertex weight minimising the
/// crossing edge weight. Preconditions: k >= 1 and k <= g.num_nodes().
PartitionResult multilevel_partition(const Graph& g, int k,
                                     const PartitionOptions& opts = {});

}  // namespace dqcsim::partition
