#include "partition/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dqcsim::partition {

Graph::Graph(NodeId n) {
  DQCSIM_EXPECTS(n >= 0);
  adj_.resize(static_cast<std::size_t>(n));
  node_weight_.assign(static_cast<std::size_t>(n), 1);
}

void Graph::check_node(NodeId u) const {
  DQCSIM_EXPECTS_MSG(u >= 0 && u < num_nodes(), "node id out of range");
}

void Graph::add_edge(NodeId u, NodeId v, Weight w) {
  check_node(u);
  check_node(v);
  DQCSIM_EXPECTS_MSG(u != v, "self-loops are not allowed");
  DQCSIM_EXPECTS_MSG(w > 0, "edge weight must be positive");
  auto& au = adj_[static_cast<std::size_t>(u)];
  auto it = std::find_if(au.begin(), au.end(),
                         [v](const auto& p) { return p.first == v; });
  if (it != au.end()) {
    it->second += w;
    auto& av = adj_[static_cast<std::size_t>(v)];
    auto jt = std::find_if(av.begin(), av.end(),
                           [u](const auto& p) { return p.first == u; });
    jt->second += w;
  } else {
    au.emplace_back(v, w);
    adj_[static_cast<std::size_t>(v)].emplace_back(u, w);
    ++num_edges_;
  }
  total_edge_weight_ += w;
}

Weight Graph::edge_weight(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  for (const auto& [n, w] : adj_[static_cast<std::size_t>(u)]) {
    if (n == v) return w;
  }
  return 0;
}

const std::vector<std::pair<NodeId, Weight>>& Graph::neighbors(
    NodeId u) const {
  check_node(u);
  return adj_[static_cast<std::size_t>(u)];
}

Weight Graph::node_weight(NodeId u) const {
  check_node(u);
  return node_weight_[static_cast<std::size_t>(u)];
}

void Graph::set_node_weight(NodeId u, Weight w) {
  check_node(u);
  DQCSIM_EXPECTS_MSG(w > 0, "node weight must be positive");
  node_weight_[static_cast<std::size_t>(u)] = w;
}

Weight Graph::total_node_weight() const noexcept {
  Weight total = 0;
  for (Weight w : node_weight_) total += w;
  return total;
}

Weight Graph::weighted_degree(NodeId u) const {
  check_node(u);
  Weight total = 0;
  for (const auto& [n, w] : adj_[static_cast<std::size_t>(u)]) total += w;
  return total;
}

Weight cut_weight(const Graph& g, const std::vector<int>& assignment) {
  DQCSIM_EXPECTS(assignment.size() ==
                 static_cast<std::size_t>(g.num_nodes()));
  Weight cut = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const auto& [v, w] : g.neighbors(u)) {
      if (u < v && assignment[static_cast<std::size_t>(u)] !=
                       assignment[static_cast<std::size_t>(v)]) {
        cut += w;
      }
    }
  }
  return cut;
}

std::vector<Weight> part_weights(const Graph& g,
                                 const std::vector<int>& assignment, int k) {
  DQCSIM_EXPECTS(k > 0);
  DQCSIM_EXPECTS(assignment.size() ==
                 static_cast<std::size_t>(g.num_nodes()));
  std::vector<Weight> weights(static_cast<std::size_t>(k), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int p = assignment[static_cast<std::size_t>(u)];
    DQCSIM_EXPECTS_MSG(p >= 0 && p < k, "part id out of range");
    weights[static_cast<std::size_t>(p)] += g.node_weight(u);
  }
  return weights;
}

double balance_ratio(const Graph& g, const std::vector<int>& assignment,
                     int k) {
  const auto weights = part_weights(g, assignment, k);
  const Weight total = g.total_node_weight();
  if (total == 0) return 1.0;
  const Weight heaviest = *std::max_element(weights.begin(), weights.end());
  const double average =
      static_cast<double>(total) / static_cast<double>(k);
  return static_cast<double>(heaviest) / average;
}

}  // namespace dqcsim::partition
