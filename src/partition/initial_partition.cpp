#include "partition/initial_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::partition {
namespace {

Weight target_weight(const Graph& g, double fraction) {
  return static_cast<Weight>(
      std::llround(fraction * static_cast<double>(g.total_node_weight())));
}

/// Deviation of part 0's weight from the requested target (for ranking
/// infeasible candidates).
Weight target_deviation(const Graph& g, const std::vector<int>& assignment,
                        Weight target) {
  Weight part0 = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (assignment[static_cast<std::size_t>(u)] == 0) part0 += g.node_weight(u);
  }
  return std::llabs(part0 - target);
}

}  // namespace

std::vector<int> greedy_graph_growing_bipartition(const Graph& g, Rng& rng,
                                                  double fraction) {
  const NodeId n = g.num_nodes();
  DQCSIM_EXPECTS(n >= 2);
  DQCSIM_EXPECTS(fraction > 0.0 && fraction < 1.0);
  std::vector<int> assignment(static_cast<std::size_t>(n), 1);

  const Weight target = target_weight(g, fraction);
  Weight grown = 0;

  // gain[u] tracks 2 * (edge weight into part 0) for frontier candidates;
  // maximizing it minimizes the eventual cut increase of adding u.
  std::vector<Weight> gain(static_cast<std::size_t>(n), 0);
  std::vector<char> in_part0(static_cast<std::size_t>(n), 0);
  std::vector<char> on_frontier(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> frontier;

  auto seed = static_cast<NodeId>(rng.uniform_int(
      static_cast<std::uint64_t>(n)));
  frontier.push_back(seed);
  on_frontier[static_cast<std::size_t>(seed)] = 1;

  while (grown < target) {
    if (frontier.empty()) {
      // Disconnected graph (or a drained frontier of over-weight vertices):
      // restart from a vertex that still fits under the target. If nothing
      // fits the target is unreachable exactly — stop rather than spin.
      NodeId restart = -1;
      for (NodeId u = 0; u < n; ++u) {
        if (!in_part0[static_cast<std::size_t>(u)] &&
            !on_frontier[static_cast<std::size_t>(u)] &&
            grown + g.node_weight(u) <= target) {
          restart = u;
          break;
        }
      }
      if (restart < 0) break;
      frontier.push_back(restart);
      on_frontier[static_cast<std::size_t>(restart)] = 1;
    }

    std::size_t best_idx = 0;
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      if (gain[static_cast<std::size_t>(frontier[i])] >
          gain[static_cast<std::size_t>(frontier[best_idx])]) {
        best_idx = i;
      }
    }
    const NodeId u = frontier[best_idx];
    frontier[best_idx] = frontier.back();
    frontier.pop_back();
    on_frontier[static_cast<std::size_t>(u)] = 0;

    if (grown + g.node_weight(u) > target && grown > 0) continue;

    in_part0[static_cast<std::size_t>(u)] = 1;
    assignment[static_cast<std::size_t>(u)] = 0;
    grown += g.node_weight(u);
    for (const auto& [v, w] : g.neighbors(u)) {
      if (in_part0[static_cast<std::size_t>(v)]) continue;
      gain[static_cast<std::size_t>(v)] += 2 * w;
      if (!on_frontier[static_cast<std::size_t>(v)]) {
        on_frontier[static_cast<std::size_t>(v)] = 1;
        frontier.push_back(v);
      }
    }
  }
  return assignment;
}

std::vector<int> random_balanced_bipartition(const Graph& g, Rng& rng,
                                             double fraction) {
  const NodeId n = g.num_nodes();
  DQCSIM_EXPECTS(n >= 2);
  DQCSIM_EXPECTS(fraction > 0.0 && fraction < 1.0);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) order[static_cast<std::size_t>(u)] = u;
  rng.shuffle(order);

  std::vector<int> assignment(static_cast<std::size_t>(n), 1);
  const Weight target = target_weight(g, fraction);
  Weight grown = 0;
  for (NodeId u : order) {
    if (grown + g.node_weight(u) > target) continue;
    assignment[static_cast<std::size_t>(u)] = 0;
    grown += g.node_weight(u);
    if (grown == target) break;
  }
  return assignment;
}

std::vector<int> best_initial_bipartition(const Graph& g, Rng& rng,
                                          int trials, double max_balance,
                                          double fraction) {
  DQCSIM_EXPECTS(g.num_nodes() >= 2);
  DQCSIM_EXPECTS(trials > 0);
  DQCSIM_EXPECTS(max_balance >= 1.0);
  const Weight target = target_weight(g, fraction);
  // Feasibility window for part-0 weight around the target.
  const auto lo = static_cast<Weight>(
      std::floor(static_cast<double>(target) / max_balance));
  const auto hi = static_cast<Weight>(
      std::ceil(static_cast<double>(target) * max_balance));

  std::vector<int> best;
  Weight best_cut = std::numeric_limits<Weight>::max();
  Weight best_dev = std::numeric_limits<Weight>::max();
  bool best_feasible = false;

  const auto consider = [&](std::vector<int> candidate) {
    const Weight cut = cut_weight(g, candidate);
    const Weight dev = target_deviation(g, candidate, target);
    Weight part0 = target - dev <= target ? target - dev : target + dev;
    // Recompute part0 exactly for the window test.
    part0 = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (candidate[static_cast<std::size_t>(u)] == 0) {
        part0 += g.node_weight(u);
      }
    }
    const bool feasible = part0 >= lo && part0 <= hi;
    bool better;
    if (best.empty()) {
      better = true;
    } else if (feasible != best_feasible) {
      better = feasible;
    } else if (feasible) {
      better = cut < best_cut;
    } else {
      better = dev < best_dev;
    }
    if (better) {
      best = std::move(candidate);
      best_cut = cut;
      best_dev = dev;
      best_feasible = feasible;
    }
  };

  for (int t = 0; t < trials; ++t) {
    consider(greedy_graph_growing_bipartition(g, rng, fraction));
    consider(random_balanced_bipartition(g, rng, fraction));
  }
  return best;
}

}  // namespace dqcsim::partition
