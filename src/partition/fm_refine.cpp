#include "partition/fm_refine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::partition {
namespace {

/// Gain of moving vertex u to the other side: external minus internal
/// incident edge weight.
Weight move_gain(const Graph& g, const std::vector<int>& assignment,
                 NodeId u) {
  Weight gain = 0;
  const int side = assignment[static_cast<std::size_t>(u)];
  for (const auto& [v, w] : g.neighbors(u)) {
    if (assignment[static_cast<std::size_t>(v)] == side) {
      gain -= w;
    } else {
      gain += w;
    }
  }
  return gain;
}

}  // namespace

FmStats fm_refine_bipartition(const Graph& g, std::vector<int>& assignment,
                              const FmOptions& opts) {
  const NodeId n = g.num_nodes();
  DQCSIM_EXPECTS(assignment.size() == static_cast<std::size_t>(n));
  DQCSIM_EXPECTS(opts.max_balance >= 1.0);
  DQCSIM_EXPECTS(opts.max_passes > 0);

  DQCSIM_EXPECTS(opts.target_fraction > 0.0 && opts.target_fraction < 1.0);

  FmStats stats;
  stats.initial_cut = cut_weight(g, assignment);
  Weight current_cut = stats.initial_cut;

  const Weight total = g.total_node_weight();
  const double target0 = opts.target_fraction * static_cast<double>(total);
  const double target1 = static_cast<double>(total) - target0;
  // Ceiling keeps exact-balance (max_balance == 1.0) targets achievable when
  // the split is not an integer (e.g. odd totals).
  const std::array<Weight, 2> max_part_weight = {
      static_cast<Weight>(std::ceil(opts.max_balance * target0 - 1e-9)),
      static_cast<Weight>(std::ceil(opts.max_balance * target1 - 1e-9))};
  // Classic FM needs transient imbalance: with a hard per-move bound an
  // exactly balanced partition would admit no move at all, freezing every
  // pass in the initial local minimum. Allow one heaviest-vertex overshoot
  // during the move sequence; the best-prefix selection below only accepts
  // prefixes whose balance satisfies the hard bound again.
  Weight heaviest_node = 0;
  for (NodeId u = 0; u < n; ++u) {
    heaviest_node = std::max(heaviest_node, g.node_weight(u));
  }

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    ++stats.passes;

    auto weights = part_weights(g, assignment, 2);
    std::vector<Weight> gain(static_cast<std::size_t>(n));
    std::vector<char> locked(static_cast<std::size_t>(n), 0);
    for (NodeId u = 0; u < n; ++u) {
      gain[static_cast<std::size_t>(u)] = move_gain(g, assignment, u);
    }

    // Tentative move sequence with running best prefix.
    std::vector<NodeId> moved;
    moved.reserve(static_cast<std::size_t>(n));
    Weight running_cut = current_cut;
    Weight best_prefix_cut = current_cut;
    std::size_t best_prefix_len = 0;
    const auto balanced = [&] {
      return weights[0] <= max_part_weight[0] &&
             weights[1] <= max_part_weight[1];
    };

    for (NodeId step = 0; step < n; ++step) {
      // Highest-gain unlocked vertex whose move keeps both sides within the
      // soft (transient) bound.
      NodeId best = -1;
      Weight best_gain = std::numeric_limits<Weight>::min();
      for (NodeId u = 0; u < n; ++u) {
        if (locked[static_cast<std::size_t>(u)]) continue;
        const int from = assignment[static_cast<std::size_t>(u)];
        const int to = 1 - from;
        if (weights[static_cast<std::size_t>(to)] + g.node_weight(u) >
            max_part_weight[static_cast<std::size_t>(to)] + heaviest_node) {
          continue;
        }
        // When a side already exceeds its hard bound, only drain it.
        if (!balanced() &&
            weights[static_cast<std::size_t>(from)] <=
                max_part_weight[static_cast<std::size_t>(from)]) {
          continue;
        }
        if (gain[static_cast<std::size_t>(u)] > best_gain) {
          best_gain = gain[static_cast<std::size_t>(u)];
          best = u;
        }
      }
      if (best < 0) break;

      // Apply the move tentatively.
      const int from = assignment[static_cast<std::size_t>(best)];
      const int to = 1 - from;
      assignment[static_cast<std::size_t>(best)] = to;
      weights[static_cast<std::size_t>(from)] -= g.node_weight(best);
      weights[static_cast<std::size_t>(to)] += g.node_weight(best);
      locked[static_cast<std::size_t>(best)] = 1;
      running_cut -= best_gain;
      moved.push_back(best);

      // Update neighbour gains incrementally.
      for (const auto& [v, w] : g.neighbors(best)) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        if (assignment[static_cast<std::size_t>(v)] == to) {
          gain[static_cast<std::size_t>(v)] -= 2 * w;
        } else {
          gain[static_cast<std::size_t>(v)] += 2 * w;
        }
      }

      // Only prefixes whose balance satisfies the hard bound may be kept.
      if (running_cut < best_prefix_cut && balanced()) {
        best_prefix_cut = running_cut;
        best_prefix_len = moved.size();
      }
    }

    // Roll back moves beyond the best prefix.
    for (std::size_t i = moved.size(); i > best_prefix_len; --i) {
      const NodeId u = moved[i - 1];
      assignment[static_cast<std::size_t>(u)] =
          1 - assignment[static_cast<std::size_t>(u)];
    }
    stats.moves_kept += static_cast<int>(best_prefix_len);

    if (best_prefix_cut >= current_cut) break;  // no improvement this pass
    current_cut = best_prefix_cut;
  }

  stats.final_cut = cut_weight(g, assignment);
  DQCSIM_ENSURES_MSG(stats.final_cut <= stats.initial_cut,
                     "FM must never worsen the cut");
  return stats;
}

}  // namespace dqcsim::partition
