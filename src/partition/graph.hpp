/// \file graph.hpp
/// \brief Weighted undirected graph used by the multilevel partitioner.
///
/// Vertices carry integer weights (aggregated qubit multiplicities after
/// coarsening); edges carry integer weights (two-qubit gate multiplicities).
/// Parallel edge insertions accumulate into a single weighted edge.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace dqcsim::partition {

using NodeId = std::int32_t;
using Weight = std::int64_t;

/// Undirected weighted graph with weighted vertices.
class Graph {
 public:
  /// Create a graph with `n` vertices of unit weight and no edges.
  explicit Graph(NodeId n = 0);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }

  /// Number of distinct undirected edges.
  std::size_t num_edges() const noexcept { return num_edges_; }

  /// Add weight `w` to edge {u, v} (creating it if absent).
  /// Preconditions: u != v, both in range, w > 0.
  void add_edge(NodeId u, NodeId v, Weight w = 1);

  /// Weight of edge {u, v}; 0 when the edge is absent.
  Weight edge_weight(NodeId u, NodeId v) const;

  /// Neighbour list of `u` as (neighbour, weight) pairs.
  const std::vector<std::pair<NodeId, Weight>>& neighbors(NodeId u) const;

  /// Vertex weight (1 unless set explicitly or aggregated by coarsening).
  Weight node_weight(NodeId u) const;
  void set_node_weight(NodeId u, Weight w);

  /// Sum of all vertex weights.
  Weight total_node_weight() const noexcept;

  /// Sum of all edge weights.
  Weight total_edge_weight() const noexcept { return total_edge_weight_; }

  /// Sum of weights of edges incident to `u`.
  Weight weighted_degree(NodeId u) const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<std::pair<NodeId, Weight>>> adj_;
  std::vector<Weight> node_weight_;
  std::size_t num_edges_ = 0;
  Weight total_edge_weight_ = 0;
};

/// Total weight of edges crossing between different parts.
/// Precondition: assignment.size() == graph.num_nodes(); entries in [0, k).
Weight cut_weight(const Graph& g, const std::vector<int>& assignment);

/// Weight of the heaviest part divided by the average part weight
/// (1.0 = perfectly balanced).
double balance_ratio(const Graph& g, const std::vector<int>& assignment,
                     int k);

/// Per-part total vertex weights.
std::vector<Weight> part_weights(const Graph& g,
                                 const std::vector<int>& assignment, int k);

}  // namespace dqcsim::partition
