#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial_partition.hpp"

namespace dqcsim::partition {
namespace {

/// One multilevel V-cycle: coarsen, initial-partition, uncoarsen + refine.
std::vector<int> multilevel_bisect_once(const Graph& g, double fraction,
                                        const PartitionOptions& opts,
                                        Rng& rng) {
  // Coarsening chain (level 0 = finest).
  std::vector<CoarseLevel> levels;
  const Graph* current = &g;
  while (current->num_nodes() > opts.coarsen_target) {
    CoarseLevel next = coarsen_heavy_edge_matching(*current, rng);
    // Matching failed to shrink the graph (e.g. no edges): stop coarsening.
    if (next.graph.num_nodes() >= current->num_nodes()) break;
    levels.push_back(std::move(next));
    current = &levels.back().graph;
  }

  FmOptions fm_opts;
  fm_opts.max_balance = opts.max_balance;
  fm_opts.target_fraction = fraction;
  fm_opts.max_passes = opts.refine_passes;

  std::vector<int> assignment = best_initial_bipartition(
      *current, rng, opts.initial_trials, opts.max_balance, fraction);
  fm_refine_bipartition(*current, assignment, fm_opts);

  // Uncoarsen with refinement at every level.
  for (std::size_t i = levels.size(); i-- > 0;) {
    assignment = project_assignment(assignment, levels[i].fine_to_coarse);
    const Graph& fine = (i == 0) ? g : levels[i - 1].graph;
    fm_refine_bipartition(fine, assignment, fm_opts);
  }
  return assignment;
}

/// Best-of-`opts.restarts` multilevel bisection.
std::vector<int> multilevel_bisect(const Graph& g, double fraction,
                                   const PartitionOptions& opts, Rng& rng) {
  std::vector<int> best;
  Weight best_cut = 0;
  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts; ++r) {
    std::vector<int> candidate = multilevel_bisect_once(g, fraction, opts, rng);
    const Weight cut = cut_weight(g, candidate);
    if (best.empty() || cut < best_cut) {
      best = std::move(candidate);
      best_cut = cut;
    }
  }
  return best;
}

/// Extract the subgraph induced by vertices with `assignment[u] == side`;
/// returns the subgraph and the local→global vertex map.
std::pair<Graph, std::vector<NodeId>> induced_subgraph(
    const Graph& g, const std::vector<int>& assignment, int side) {
  std::vector<NodeId> global_of;
  std::vector<NodeId> local_of(static_cast<std::size_t>(g.num_nodes()), -1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (assignment[static_cast<std::size_t>(u)] == side) {
      local_of[static_cast<std::size_t>(u)] =
          static_cast<NodeId>(global_of.size());
      global_of.push_back(u);
    }
  }
  Graph sub(static_cast<NodeId>(global_of.size()));
  for (NodeId lu = 0; lu < sub.num_nodes(); ++lu) {
    const NodeId u = global_of[static_cast<std::size_t>(lu)];
    sub.set_node_weight(lu, g.node_weight(u));
    for (const auto& [v, w] : g.neighbors(u)) {
      const NodeId lv = local_of[static_cast<std::size_t>(v)];
      if (lv >= 0 && lu < lv) sub.add_edge(lu, lv, w);
    }
  }
  return {std::move(sub), std::move(global_of)};
}

/// Recursively partition vertices of `g` into parts [part_base,
/// part_base + k), writing part ids into `out` through `global_of`.
void recursive_bisect(const Graph& g, const std::vector<NodeId>& global_of,
                      int k, int part_base, const PartitionOptions& opts,
                      Rng& rng, std::vector<int>& out) {
  if (k == 1) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out[static_cast<std::size_t>(global_of[static_cast<std::size_t>(u)])] =
          part_base;
    }
    return;
  }
  const int k0 = k / 2;
  const int k1 = k - k0;
  const double fraction = static_cast<double>(k0) / static_cast<double>(k);
  const std::vector<int> split = multilevel_bisect(g, fraction, opts, rng);

  for (int side = 0; side < 2; ++side) {
    auto [sub, sub_global] = induced_subgraph(g, split, side);
    // Map the subgraph's local ids to ids in the original graph.
    for (auto& id : sub_global) {
      id = global_of[static_cast<std::size_t>(id)];
    }
    recursive_bisect(sub, sub_global, side == 0 ? k0 : k1,
                     side == 0 ? part_base : part_base + k0, opts, rng, out);
  }
}

}  // namespace

PartitionResult multilevel_partition(const Graph& g, int k,
                                     const PartitionOptions& opts) {
  DQCSIM_EXPECTS(k >= 1);
  DQCSIM_EXPECTS_MSG(k <= g.num_nodes(),
                     "cannot split into more parts than vertices");
  DQCSIM_EXPECTS(opts.max_balance >= 1.0);

  Rng rng(opts.seed);
  PartitionResult result;
  result.k = k;
  result.assignment.assign(static_cast<std::size_t>(g.num_nodes()), 0);

  if (k > 1) {
    std::vector<NodeId> identity(static_cast<std::size_t>(g.num_nodes()));
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      identity[static_cast<std::size_t>(u)] = u;
    }
    recursive_bisect(g, identity, k, 0, opts, rng, result.assignment);
  }

  result.cut = cut_weight(g, result.assignment);
  result.balance = balance_ratio(g, result.assignment, k);
  return result;
}

}  // namespace dqcsim::partition
