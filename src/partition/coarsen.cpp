#include "partition/coarsen.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dqcsim::partition {

CoarseLevel coarsen_heavy_edge_matching(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> visit_order(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) visit_order[static_cast<std::size_t>(u)] = u;
  rng.shuffle(visit_order);

  constexpr NodeId kUnmatched = -1;
  std::vector<NodeId> match(static_cast<std::size_t>(n), kUnmatched);
  for (NodeId u : visit_order) {
    if (match[static_cast<std::size_t>(u)] != kUnmatched) continue;
    NodeId best = kUnmatched;
    Weight best_weight = 0;
    for (const auto& [v, w] : g.neighbors(u)) {
      if (match[static_cast<std::size_t>(v)] != kUnmatched) continue;
      if (w > best_weight) {
        best_weight = w;
        best = v;
      }
    }
    if (best != kUnmatched) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // matched with itself
    }
  }

  // Assign coarse ids: each matched pair (u < v) or singleton gets one id.
  std::vector<NodeId> fine_to_coarse(static_cast<std::size_t>(n), kUnmatched);
  NodeId next_coarse = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (fine_to_coarse[static_cast<std::size_t>(u)] != kUnmatched) continue;
    const NodeId v = match[static_cast<std::size_t>(u)];
    fine_to_coarse[static_cast<std::size_t>(u)] = next_coarse;
    fine_to_coarse[static_cast<std::size_t>(v)] = next_coarse;
    ++next_coarse;
  }

  Graph coarse(next_coarse);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId cu = fine_to_coarse[static_cast<std::size_t>(u)];
    if (match[static_cast<std::size_t>(u)] == u ||
        u < match[static_cast<std::size_t>(u)]) {
      Weight cw = g.node_weight(u);
      if (match[static_cast<std::size_t>(u)] != u) {
        cw += g.node_weight(match[static_cast<std::size_t>(u)]);
      }
      coarse.set_node_weight(cu, cw);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const NodeId cu = fine_to_coarse[static_cast<std::size_t>(u)];
    for (const auto& [v, w] : g.neighbors(u)) {
      if (u >= v) continue;  // visit each fine edge once
      const NodeId cv = fine_to_coarse[static_cast<std::size_t>(v)];
      if (cu != cv) coarse.add_edge(cu, cv, w);
    }
  }

  DQCSIM_ENSURES(coarse.total_node_weight() == g.total_node_weight());
  return CoarseLevel{std::move(coarse), std::move(fine_to_coarse)};
}

std::vector<int> project_assignment(
    const std::vector<int>& coarse_assignment,
    const std::vector<NodeId>& fine_to_coarse) {
  std::vector<int> fine(fine_to_coarse.size());
  for (std::size_t u = 0; u < fine_to_coarse.size(); ++u) {
    const auto cu = static_cast<std::size_t>(fine_to_coarse[u]);
    DQCSIM_EXPECTS(cu < coarse_assignment.size());
    fine[u] = coarse_assignment[cu];
  }
  return fine;
}

}  // namespace dqcsim::partition
