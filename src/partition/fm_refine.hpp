/// \file fm_refine.hpp
/// \brief Fiduccia–Mattheyses 2-way refinement with a balance constraint.
///
/// Each pass tentatively moves every vertex once (highest-gain feasible move
/// first, hill-climbing allowed) and then rolls back to the best prefix —
/// the classic FM schedule. Passes repeat until a pass yields no improvement.

#pragma once

#include <vector>

#include "partition/graph.hpp"

namespace dqcsim::partition {

/// Refinement options.
struct FmOptions {
  /// Maximum allowed ratio of a part's weight to its target weight.
  /// 1.0 forces perfect balance (only possible when the targets are
  /// achievable exactly).
  double max_balance = 1.0;

  /// Fraction of the total vertex weight that part 0 should hold
  /// (0.5 = equal halves; recursive bisection uses other fractions).
  double target_fraction = 0.5;

  /// Upper bound on the number of full FM passes.
  int max_passes = 16;
};

/// Statistics of one refinement invocation (for tests and diagnostics).
struct FmStats {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  int passes = 0;
  int moves_kept = 0;
};

/// Refine a bipartition in place; returns pass statistics.
/// Preconditions: assignment has one entry in {0,1} per vertex and is
/// feasible w.r.t. opts.max_balance (infeasible inputs are tolerated: the
/// pass will move toward feasibility because only feasible moves are made).
FmStats fm_refine_bipartition(const Graph& g, std::vector<int>& assignment,
                              const FmOptions& opts = {});

}  // namespace dqcsim::partition
