/// \file coarsen.hpp
/// \brief Heavy-edge-matching coarsening for the multilevel partitioner.
///
/// Coarsening repeatedly contracts a maximal matching that prefers heavy
/// edges, halving the graph while preserving cut structure — the same
/// strategy METIS uses. Contracted vertex weights accumulate so balance
/// constraints remain meaningful on coarse graphs.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "partition/graph.hpp"

namespace dqcsim::partition {

/// One coarsening step: the coarse graph plus the fine→coarse vertex map.
struct CoarseLevel {
  Graph graph;                     ///< contracted graph
  std::vector<NodeId> fine_to_coarse;  ///< size = fine graph's num_nodes()
};

/// Contract a heavy-edge maximal matching of `g`.
///
/// Vertices are visited in random order (`rng` breaks ties deterministically
/// for a fixed seed); each unmatched vertex matches its heaviest unmatched
/// neighbour. Unmatched vertices are copied through. The coarse graph keeps
/// accumulated vertex weights and merged edge weights (self-edges dropped).
CoarseLevel coarsen_heavy_edge_matching(const Graph& g, Rng& rng);

/// Project a coarse-graph assignment back onto the fine graph.
std::vector<int> project_assignment(const std::vector<int>& coarse_assignment,
                                    const std::vector<NodeId>& fine_to_coarse);

}  // namespace dqcsim::partition
