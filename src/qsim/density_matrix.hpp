/// \file density_matrix.hpp
/// \brief Dense density-matrix simulator for small mixed-state systems.
///
/// The paper estimates remote-gate fidelity "through the evaluation of the
/// gate teleportation circuit which includes a noisy Bell state, noisy local
/// 2-qubit gates, and a noisy single-qubit measurement" (§IV-C). That
/// evaluation involves at most a handful of qubits, so a dense 4^n
/// representation is exact and fast. Qubit 0 is the least significant bit
/// of the computational-basis index.

#pragma once

#include <cstddef>
#include <vector>

#include "qsim/gates_matrices.hpp"

namespace dqcsim::qsim {

/// Dense density matrix over `num_qubits` qubits (dim = 2^n).
class DensityMatrix {
 public:
  /// Initialize to the pure state |0...0><0...0|.
  /// Precondition: 1 <= num_qubits <= 14 (memory guard: 4^14 = 256 MB).
  explicit DensityMatrix(int num_qubits);

  /// Initialize from a pure state vector (normalized internally).
  /// Precondition: amplitudes.size() == 2^num_qubits for some n in [1, 14].
  explicit DensityMatrix(const std::vector<Complex>& amplitudes);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return dim_; }

  /// Matrix element rho[r][c].
  Complex element(std::size_t r, std::size_t c) const;

  /// Apply a one-qubit unitary on `q`: rho -> U rho U^dag.
  void apply_1q(const Mat2& u, int q);

  /// Apply a two-qubit unitary; `q_high` is the gate's first operand
  /// (the high bit of the matrix index), `q_low` the second.
  void apply_2q(const Mat4& u, int q_high, int q_low);

  /// Apply a gate from the circuit IR (unitary kinds only).
  void apply_gate(const Gate& g);

  /// One-qubit Pauli channel: rho -> (1-px-py-pz) rho + px X rho X + ...
  /// Preconditions: probabilities nonnegative, px+py+pz <= 1.
  void pauli_channel(int q, double px, double py, double pz);

  /// One-qubit depolarizing channel with probability p of full
  /// depolarization (px = py = pz = p/4 convention is NOT used here:
  /// rho -> (1-p) rho + p I/2 (x) tr_q rho).
  void depolarize_1q(int q, double p);

  /// Two-qubit depolarizing channel: rho -> (1-p) rho + p I/4 (x) tr rho.
  void depolarize_2q(int q0, int q1, double p);

  /// Probability of measuring `q` in state |1> (Born rule).
  double prob_one(int q) const;

  /// Projective Z measurement of `q` returning both branches:
  /// result[outcome] = (probability, normalized post-measurement state).
  /// Zero-probability branches carry an all-zero matrix.
  struct MeasurementBranches {
    double prob[2];
    std::vector<DensityMatrix> state;  ///< size 2, indexed by outcome
  };
  MeasurementBranches measure_branches(int q) const;

  /// Non-selective Z measurement (dephasing of `q`): off-diagnonal blocks
  /// between |0>_q and |1>_q vanish.
  void dephase(int q);

  /// Trace out one qubit, returning the reduced density matrix.
  DensityMatrix partial_trace(int q) const;

  /// Trace of the matrix (1 for normalized states).
  double trace() const;

  /// Purity tr(rho^2).
  double purity() const;

  /// Fidelity with a pure state: <psi| rho |psi>.
  /// Precondition: amplitudes.size() == dim().
  double fidelity_with_pure(const std::vector<Complex>& psi) const;

  /// Tensor product: this (low qubits) with other (high qubits).
  DensityMatrix tensor(const DensityMatrix& other) const;

  /// Hermitian check within tolerance (diagnostic).
  bool is_hermitian(double tol = 1e-10) const;

  // --- canonical states -----------------------------------------------

  /// Convex-style combination wa * a + wb * b (weights may be any
  /// nonnegative reals; callers are responsible for normalization).
  /// Precondition: a.dim() == b.dim().
  static DensityMatrix mix(const DensityMatrix& a, double wa,
                           const DensityMatrix& b, double wb);

  /// |Phi+> = (|00> + |11>)/sqrt(2) Bell pair on 2 qubits.
  static DensityMatrix bell_phi_plus();

  /// Werner state with fidelity F to |Phi+>:
  /// rho = w |Phi+><Phi+| + (1-w) I/4 with w = (4F-1)/3.
  /// Precondition: 0.25 <= F <= 1.
  static DensityMatrix werner(double fidelity);

 private:
  DensityMatrix() = default;  // for internal construction

  std::size_t idx(std::size_t r, std::size_t c) const noexcept {
    return r * dim_ + c;
  }

  int num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<Complex> data_;  ///< row-major dim x dim
};

}  // namespace dqcsim::qsim
