#include "qsim/statevector.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dqcsim::qsim {

Statevector::Statevector(int num_qubits) : Statevector(num_qubits, 0) {}

Statevector::Statevector(int num_qubits, std::size_t basis_index) {
  DQCSIM_EXPECTS_MSG(num_qubits >= 1 && num_qubits <= 24,
                     "statevector limited to 24 qubits");
  num_qubits_ = num_qubits;
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  DQCSIM_EXPECTS(basis_index < amps_.size());
  amps_[basis_index] = Complex{1.0, 0.0};
}

Statevector::Statevector(std::vector<Complex> amplitudes) {
  const std::size_t d = amplitudes.size();
  DQCSIM_EXPECTS_MSG(d >= 2 && d <= (std::size_t{1} << 24) &&
                         (d & (d - 1)) == 0,
                     "amplitude count must be a power of two");
  int n = 0;
  while ((std::size_t{1} << n) < d) ++n;
  double norm2_in = 0.0;
  for (const Complex& a : amplitudes) norm2_in += std::norm(a);
  DQCSIM_EXPECTS_MSG(norm2_in > 0.0, "state must be nonzero");
  const double inv = 1.0 / std::sqrt(norm2_in);
  for (Complex& a : amplitudes) a *= inv;
  num_qubits_ = n;
  amps_ = std::move(amplitudes);
}

Complex Statevector::amplitude(std::size_t i) const {
  DQCSIM_EXPECTS(i < amps_.size());
  return amps_[i];
}

void Statevector::apply_1q(const Mat2& u, int q) {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & mask) continue;
    const Complex a = amps_[i];
    const Complex b = amps_[i | mask];
    amps_[i] = u[0] * a + u[1] * b;
    amps_[i | mask] = u[2] * a + u[3] * b;
  }
}

void Statevector::apply_2q(const Mat4& u, int q_high, int q_low) {
  DQCSIM_EXPECTS(q_high >= 0 && q_high < num_qubits_);
  DQCSIM_EXPECTS(q_low >= 0 && q_low < num_qubits_);
  DQCSIM_EXPECTS(q_high != q_low);
  const std::size_t mh = std::size_t{1} << q_high;
  const std::size_t ml = std::size_t{1} << q_low;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & mh) || (i & ml)) continue;
    Complex old[4];
    for (int s = 0; s < 4; ++s) {
      std::size_t idx = i;
      if (s & 2) idx |= mh;
      if (s & 1) idx |= ml;
      old[s] = amps_[idx];
    }
    for (int s = 0; s < 4; ++s) {
      Complex acc{0.0, 0.0};
      for (int t = 0; t < 4; ++t) {
        acc += u[static_cast<std::size_t>(s * 4 + t)] * old[t];
      }
      std::size_t idx = i;
      if (s & 2) idx |= mh;
      if (s & 1) idx |= ml;
      amps_[idx] = acc;
    }
  }
}

void Statevector::apply_gate(const Gate& g) {
  if (g.arity() == 1) {
    apply_1q(gate_unitary_1q(g.kind, g.param), g.q0());
  } else {
    apply_2q(gate_unitary_2q(g.kind, g.param), g.q0(), g.q1());
  }
}

void Statevector::apply_circuit(const Circuit& qc) {
  DQCSIM_EXPECTS(qc.num_qubits() <= num_qubits_);
  for (const Gate& g : qc.gates()) apply_gate(g);
}

double Statevector::prob_one(int q) const {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & mask) p += std::norm(amps_[i]);
  }
  return p;
}

double Statevector::norm2() const {
  double n = 0.0;
  for (const Complex& a : amps_) n += std::norm(a);
  return n;
}

double Statevector::fidelity_with(const Statevector& other) const {
  DQCSIM_EXPECTS(other.amps_.size() == amps_.size());
  Complex overlap{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    overlap += std::conj(other.amps_[i]) * amps_[i];
  }
  return std::norm(overlap);
}

double Statevector::max_amplitude_difference(const Statevector& other) const {
  DQCSIM_EXPECTS(other.amps_.size() == amps_.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(amps_[i] - other.amps_[i]));
  }
  return max_diff;
}

Statevector qft_reference_state(int num_qubits, std::size_t k) {
  DQCSIM_EXPECTS(num_qubits >= 1 && num_qubits <= 24);
  const std::size_t dim = std::size_t{1} << num_qubits;
  DQCSIM_EXPECTS(k < dim);
  const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(dim));
  // make_qft omits the final SWAP network, which is equivalent to the exact
  // DFT applied to the bit-reversed input index (qubit 0 plays the
  // most-significant role in the textbook circuit while our basis indexing
  // is little-endian).
  std::size_t k_rev = 0;
  for (int b = 0; b < num_qubits; ++b) {
    if (k & (std::size_t{1} << b)) {
      k_rev |= std::size_t{1} << (num_qubits - 1 - b);
    }
  }
  std::vector<Complex> amps(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(j) *
                         static_cast<double>(k_rev) /
                         static_cast<double>(dim);
    amps[j] = Complex{std::cos(phase), std::sin(phase)} * inv_sqrt;
  }
  return Statevector(std::move(amps));
}

}  // namespace dqcsim::qsim
