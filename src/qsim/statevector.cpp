#include "qsim/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dqcsim::qsim {

Statevector::Statevector(int num_qubits) : Statevector(num_qubits, 0) {}

Statevector::Statevector(int num_qubits, std::size_t basis_index) {
  DQCSIM_EXPECTS_MSG(num_qubits >= 1 && num_qubits <= 24,
                     "statevector limited to 24 qubits");
  num_qubits_ = num_qubits;
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  DQCSIM_EXPECTS(basis_index < amps_.size());
  amps_[basis_index] = Complex{1.0, 0.0};
}

Statevector::Statevector(std::vector<Complex> amplitudes) {
  const std::size_t d = amplitudes.size();
  DQCSIM_EXPECTS_MSG(d >= 2 && d <= (std::size_t{1} << 24) &&
                         (d & (d - 1)) == 0,
                     "amplitude count must be a power of two");
  int n = 0;
  while ((std::size_t{1} << n) < d) ++n;
  double norm2_in = 0.0;
  for (const Complex& a : amplitudes) norm2_in += std::norm(a);
  DQCSIM_EXPECTS_MSG(norm2_in > 0.0, "state must be nonzero");
  const double inv = 1.0 / std::sqrt(norm2_in);
  for (Complex& a : amplitudes) a *= inv;
  num_qubits_ = n;
  amps_ = std::move(amplitudes);
}

Complex Statevector::amplitude(std::size_t i) const {
  DQCSIM_EXPECTS(i < amps_.size());
  return amps_[i];
}

namespace {

/// Cache block for multi-op batching: 2^15 amplitudes = 512 KiB, sized to
/// stay L2-resident while every op of a batch streams over it.
constexpr std::size_t kBlockAmps = std::size_t{1} << 15;

/// amp[x] *= ph for x in [begin, end) — the innermost diagonal kernel.
/// Unit phases are skipped entirely (e.g. three of CP's four entries).
inline void cmul_run(Complex* amp, std::size_t begin, std::size_t end,
                     const Complex ph) {
  if (ph == Complex{1.0, 0.0}) return;
  for (std::size_t x = begin; x < end; ++x) amp[x] *= ph;
}

/// Same, over every second amplitude (diagonal ops involving qubit 0).
inline void cmul_run_stride2(Complex* amp, std::size_t begin, std::size_t end,
                             const Complex ph) {
  if (ph == Complex{1.0, 0.0}) return;
  for (std::size_t x = begin; x < end; x += 2) amp[x] *= ph;
}

/// Diagonal 1q sweep over [base, end): phases d[0]/d[1] by the `mask` bit.
/// The range walks constant-phase runs so the hot loop has a loop-invariant
/// multiplier (vectorizable), never a per-amplitude table lookup.
// DQCSIM_HOT
void diag1q_range(Complex* amp, std::size_t base, std::size_t end,
                  const Complex d[2], std::size_t mask) {
  if (mask == 1) {
    cmul_run_stride2(amp, base, end, d[0]);
    cmul_run_stride2(amp, base + 1, end, d[1]);
    return;
  }
  std::size_t x = base;
  while (x < end) {
    const std::size_t run_end = std::min(end, (x | (mask - 1)) + 1);
    cmul_run(amp, x, run_end, d[(x & mask) ? 1 : 0]);
    x = run_end;
  }
}

/// Phase table of a diagonal Mat4 remapped to *sorted* bit order: entry
/// [2*hi_bit + lo_bit] where hi/lo are by mask significance, regardless of
/// the gate's operand order (`mh` = the first operand's mask).
struct SortedDiagPhases {
  Complex ds[4];
};

inline SortedDiagPhases diag2q_sorted_phases(const Mat4& u, std::size_t mh,
                                             std::size_t hi) {
  const bool high_is_hi = mh == hi;
  return {{u[0], u[high_is_hi ? 5 : 10], u[high_is_hi ? 10 : 5], u[15]}};
}

/// Diagonal 2q sweep over [base, end): `ds` is indexed by sorted bit order
/// (ds[2] selects the higher of the two masks), `lo` < `hi` are the masks.
// DQCSIM_HOT
void diag2q_range(Complex* amp, std::size_t base, std::size_t end,
                  const Complex ds[4], std::size_t lo, std::size_t hi) {
  std::size_t x = base;
  while (x < end) {
    const std::size_t seg_end = std::min(end, (x | (hi - 1)) + 1);
    const Complex* dd = ds + ((x & hi) ? 2 : 0);
    if (lo == 1) {
      cmul_run_stride2(amp, x, seg_end, dd[0]);
      cmul_run_stride2(amp, x + 1, seg_end, dd[1]);
    } else {
      std::size_t y = x;
      while (y < seg_end) {
        const std::size_t run_end = std::min(seg_end, (y | (lo - 1)) + 1);
        cmul_run(amp, y, run_end, dd[(y & lo) ? 1 : 0]);
        y = run_end;
      }
    }
    x = seg_end;
  }
}

/// Dense 1q pair update over [base, end). Precondition: 2 * stride divides
/// base and end - base, so no pair crosses the range boundary.
// DQCSIM_HOT
void dense1q_range(Complex* amp, std::size_t base, std::size_t end,
                   const Mat2& u, std::size_t stride) {
  for (std::size_t blk = base; blk < end; blk += 2 * stride) {
    for (std::size_t i = blk; i < blk + stride; ++i) {
      const Complex a = amp[i];
      const Complex b = amp[i + stride];
      amp[i] = u[0] * a + u[1] * b;
      amp[i + stride] = u[2] * a + u[3] * b;
    }
  }
}

/// A run of mutually commuting diagonal ops whose wires all fall inside two
/// 4-bit aligned nibbles of the index, folded into a single phase LUT: the
/// whole group costs one shift-mask lookup and one multiply per amplitude,
/// however many gates it absorbed. Nibble-pair addressing keeps selector
/// extraction at ~5 ALU ops while letting *every* 1q/2q diagonal op join
/// some group — a QAOA cost layer over a random graph packs into
/// O(nibble-pairs) sweeps instead of one sweep per edge.
struct DiagGroup {
  static constexpr int kGroupWires = 8;  ///< LUT selector width (2 nibbles)

  int nib1 = -1;  ///< lower nibble index (wire / 4), -1 while empty
  int nib2 = -1;  ///< higher (== nib1 for single-nibble groups)
  std::array<Complex, std::size_t{1} << kGroupWires> lut;
  /// When nonzero: every LUT entry with this wire's bit clear is exactly 1,
  /// so the sweep visits only the half-space where the bit is set (e.g. a
  /// round of QFT controlled-phase gates sharing their target).
  std::size_t skip_mask = 0;
  bool all_unit = false;  ///< the group is the identity; nothing to do

  static int nibble_of(QubitId q) { return static_cast<int>(q) / 4; }

  bool empty() const { return nib1 < 0; }

  /// Position of wire `w`'s bit within the 8-bit selector.
  std::size_t bit_pos(QubitId w) const {
    const int n = nibble_of(w);
    const int base = n == nib1 ? 0 : 4;
    return static_cast<std::size_t>(base + static_cast<int>(w) -
                                    4 * (n == nib1 ? nib1 : nib2));
  }

  /// True when `op`'s wires fit the group's (at most two) nibbles.
  bool accepts(const FusedOp& op) const {
    int nibs[2] = {nib1, nib2};
    int count = empty() ? 0 : (nib1 == nib2 ? 1 : 2);
    const int op_wires = op.arity();
    for (int k = 0; k < op_wires; ++k) {
      const int n = nibble_of(k == 0 ? op.q0 : op.q1);
      bool known = false;
      for (int t = 0; t < count; ++t) known = known || nibs[t] == n;
      if (!known) {
        if (count == 2) return false;
        nibs[count++] = n;
      }
    }
    return true;
  }

  void widen(const FusedOp& op) {
    const int op_wires = op.arity();
    for (int k = 0; k < op_wires; ++k) {
      const int n = nibble_of(k == 0 ? op.q0 : op.q1);
      if (empty()) {
        nib1 = nib2 = n;
      } else if (n != nib1 && n != nib2) {
        if (nib1 == nib2) {
          nib1 = std::min(nib1, n);
          nib2 = std::max(nib2, n);
        }
      }
    }
  }
};

/// Build the LUT for `group` from its member ops.
void finalize_group(DiagGroup& g, const FusedOp* const* members,
                    std::size_t count) {
  const std::size_t lut_size = std::size_t{1} << DiagGroup::kGroupWires;
  for (std::size_t sel = 0; sel < lut_size; ++sel) {
    Complex phase{1.0, 0.0};
    for (std::size_t m = 0; m < count; ++m) {
      const FusedOp& op = *members[m];
      const std::size_t b0 = (sel >> g.bit_pos(op.q0)) & 1u;
      if (op.arity() == 1) {
        phase *= op.m2[b0 * 3];  // Mat2 diagonal entries: 0 and 3
      } else {
        const std::size_t b1 = (sel >> g.bit_pos(op.q1)) & 1u;
        phase *= op.m4[(b0 * 2 + b1) * 5];  // Mat4 diagonal: 0, 5, 10, 15
      }
    }
    g.lut[sel] = phase;
  }
  g.all_unit = true;
  for (std::size_t sel = 0; sel < lut_size; ++sel) {
    if (g.lut[sel] != Complex{1.0, 0.0}) {
      g.all_unit = false;
      break;
    }
  }
  if (g.all_unit) return;
  // Find the best skippable selector bit: every LUT entry with that bit
  // clear is unit, so the half-space with it clear needs no visit. (A bit
  // no member reads cannot qualify unless the group is the identity, which
  // all_unit already caught, so every qualifying bit maps to a real wire.)
  for (int t = 0; t < DiagGroup::kGroupWires; ++t) {
    bool clear_half_unit = true;
    for (std::size_t sel = 0; sel < lut_size && clear_half_unit; ++sel) {
      if (((sel >> t) & 1u) == 0 && g.lut[sel] != Complex{1.0, 0.0}) {
        clear_half_unit = false;
      }
    }
    if (clear_half_unit) {
      const int wire = t < 4 ? 4 * g.nib1 + t : 4 * g.nib2 + (t - 4);
      const std::size_t mask = std::size_t{1}
                               << static_cast<std::size_t>(wire);
      if (mask > g.skip_mask) g.skip_mask = mask;
    }
  }
}

/// Apply a diagonal group to [base, end). Precondition: base is block
/// aligned (multiples of any skip stride below the block size divide it).
// DQCSIM_HOT
void apply_group_range(Complex* amp, std::size_t base, std::size_t end,
                       const DiagGroup& g) {
  if (g.all_unit) return;
  const auto s1 = static_cast<std::size_t>(4 * g.nib1);
  const auto s2 = static_cast<std::size_t>(4 * g.nib2);
  const Complex* const lut = g.lut.data();
  const auto sweep = [lut, s1, s2, amp](std::size_t b, std::size_t e,
                                        std::size_t step) {
    for (std::size_t x = b; x < e; x += step) {
      amp[x] *= lut[((x >> s1) & 0xFu) | (((x >> s2) & 0xFu) << 4)];
    }
  };
  const std::size_t m = g.skip_mask;
  if (m == 0) {
    sweep(base, end, 1);
  } else if (m >= end - base) {
    // The skip bit is constant across this block.
    if (base & m) sweep(base, end, 1);
  } else if (m == 1) {
    sweep(base + 1, end, 2);
  } else {
    for (std::size_t s = base + m; s < end; s += 2 * m) {
      sweep(s, s + m, 1);
    }
  }
}

}  // namespace

void Statevector::apply_1q(const Mat2& u, int q) {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = amps_.size();
  Complex* const amp = amps_.data();
  if (is_diagonal_matrix(u)) {
    // Diagonal fast path: constant-multiplier runs, no neighbour gather.
    const Complex d[2] = {u[0], u[3]};
    diag1q_range(amp, 0, dim, d, stride);
    return;
  }
  // Branch-free cache-blocked pair update.
  dense1q_range(amp, 0, dim, u, stride);
}

void Statevector::apply_2q(const Mat4& u, int q_high, int q_low) {
  DQCSIM_EXPECTS(q_high >= 0 && q_high < num_qubits_);
  DQCSIM_EXPECTS(q_low >= 0 && q_low < num_qubits_);
  DQCSIM_EXPECTS(q_high != q_low);
  const std::size_t mh = std::size_t{1} << q_high;
  const std::size_t ml = std::size_t{1} << q_low;
  const std::size_t dim = amps_.size();
  Complex* const amp = amps_.data();

  const std::size_t lo = mh < ml ? mh : ml;
  const std::size_t hi = mh < ml ? ml : mh;

  if (is_diagonal_matrix(u)) {
    // Diagonal fast path: constant-multiplier runs ordered by sorted bit
    // significance (remap the phase table when the operand order differs).
    const SortedDiagPhases p = diag2q_sorted_phases(u, mh, hi);
    diag2q_range(amp, 0, dim, p.ds, lo, hi);
    return;
  }

  // Branch-free enumeration of the dim/4 amplitude quadruples: expand a
  // dense counter by inserting zero bits at both operand positions (lowest
  // position first so the higher insertion sees final bit offsets).
  const std::size_t groups = dim >> 2;

  if (is_permutation_matrix(u)) {
    // Permutation-with-phases fast path (CX, CZ-like products, SWAP): one
    // source gather and one multiply per amplitude instead of a 4x4 GEMV.
    std::size_t src[4];
    Complex phase[4];
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t t = 0; t < 4; ++t) {
        if (u[s * 4 + t] != Complex{0.0, 0.0}) {
          src[s] = t;
          phase[s] = u[s * 4 + t];
        }
      }
    }
    for (std::size_t k = 0; k < groups; ++k) {
      const std::size_t i = insert_zero_bit(insert_zero_bit(k, lo), hi);
      const std::size_t idx[4] = {i, i | ml, i | mh, i | mh | ml};
      const Complex old[4] = {amp[idx[0]], amp[idx[1]], amp[idx[2]],
                              amp[idx[3]]};
      for (std::size_t s = 0; s < 4; ++s) {
        amp[idx[s]] = phase[s] * old[src[s]];
      }
    }
    return;
  }

  for (std::size_t k = 0; k < groups; ++k) {
    const std::size_t i = insert_zero_bit(insert_zero_bit(k, lo), hi);
    const std::size_t idx[4] = {i, i | ml, i | mh, i | mh | ml};
    const Complex old[4] = {amp[idx[0]], amp[idx[1]], amp[idx[2]],
                            amp[idx[3]]};
    for (std::size_t s = 0; s < 4; ++s) {
      Complex acc{0.0, 0.0};
      for (std::size_t t = 0; t < 4; ++t) {
        acc += u[s * 4 + t] * old[t];
      }
      amp[idx[s]] = acc;
    }
  }
}

void Statevector::apply_gate(const Gate& g) {
  if (g.arity() == 1) {
    apply_1q(gate_unitary_1q(g.kind, g.param), g.q0());
  } else {
    apply_2q(gate_unitary_2q(g.kind, g.param), g.q0(), g.q1());
  }
}

void Statevector::apply_circuit(const Circuit& qc) {
  DQCSIM_EXPECTS(qc.num_qubits() <= num_qubits_);
  for (const Gate& g : qc.gates()) apply_gate(g);
}

void Statevector::apply_op(const FusedOp& op) {
  if (op.arity() == 1) {
    apply_1q(op.m2, op.q0);
  } else {
    apply_2q(op.m4, op.q0, op.q1);
  }
}

void Statevector::apply_fused(const FusedCircuit& fc) {
  DQCSIM_EXPECTS(fc.num_qubits() <= num_qubits_);
  const auto& ops = fc.ops();
  const std::size_t dim = amps_.size();
  Complex* const amp = amps_.data();

  // Ops whose amplitude groups fit inside one cache block can be batched:
  // the whole run makes one DRAM pass (op-major within each L2-resident
  // block) instead of one pass per op. Diagonal ops act independently per
  // amplitude, so they always qualify; dense 1q ops qualify when their pair
  // stride stays below the block size.
  const auto blockable_1q = [](const FusedOp& op) {
    return op.arity() == 1 &&
           (std::size_t{1} << static_cast<std::size_t>(op.q0)) < kBlockAmps;
  };

  std::size_t i = 0;
  while (i < ops.size()) {
    // Gather the longest batchable run: any mix of diagonal ops (1q or 2q)
    // and block-local dense 1q ops. Within a block, ops run in program
    // order, so overlapping wires are handled exactly.
    std::size_t j = i;
    while (j < ops.size() && (ops[j].diagonal() || blockable_1q(ops[j]))) {
      ++j;
    }
    if (j - i < 2) {
      apply_op(ops[i]);
      ++i;
      continue;
    }

    // Compile the run into an action sequence: consecutive diagonal ops
    // (which mutually commute) fold into windowed phase-LUT groups when at
    // least two share a kGroupWires-wide window; everything else applies
    // per-op over each block. Order across the dense/diagonal boundary is
    // preserved, so overlapping wires are handled exactly.
    struct Action {
      const FusedOp* solo = nullptr;  ///< single op (dense or diagonal)
      DiagGroup group;                ///< otherwise a diagonal group
    };
    std::vector<Action> actions;
    std::size_t r = i;
    while (r < j) {
      if (!ops[r].diagonal()) {
        Action a;
        a.solo = &ops[r++];
        actions.push_back(std::move(a));
        continue;
      }
      std::size_t s = r;
      while (s < j && ops[s].diagonal()) ++s;
      // First-fit bin packing of the stretch into window groups (diagonal
      // ops mutually commute, so regrouping across the stretch is exact).
      struct OpenGroup {
        DiagGroup group;
        std::vector<const FusedOp*> members;
      };
      std::vector<OpenGroup> open;
      for (; r < s; ++r) {
        const FusedOp& op = ops[r];
        bool placed = false;
        for (OpenGroup& o : open) {
          if (o.group.accepts(op)) {
            o.group.widen(op);
            o.members.push_back(&op);
            placed = true;
            break;
          }
        }
        if (!placed) {
          OpenGroup o;
          o.group.widen(op);
          o.members.push_back(&op);
          open.push_back(std::move(o));
        }
      }
      for (OpenGroup& o : open) {
        Action a;
        if (o.members.size() >= 2) {
          finalize_group(a.group = o.group, o.members.data(),
                         o.members.size());
          actions.push_back(std::move(a));
        } else {
          a.solo = o.members.front();
          actions.push_back(std::move(a));
        }
      }
    }

    const auto apply_solo_range = [amp](const FusedOp& op, std::size_t base,
                                        std::size_t end) {
      if (op.arity() == 1) {
        const std::size_t stride = std::size_t{1}
                                   << static_cast<std::size_t>(op.q0);
        if (op.diagonal()) {
          const Complex d[2] = {op.m2[0], op.m2[3]};
          diag1q_range(amp, base, end, d, stride);
        } else {
          dense1q_range(amp, base, end, op.m2, stride);
        }
        return;
      }
      const std::size_t mh = std::size_t{1}
                             << static_cast<std::size_t>(op.q0);
      const std::size_t ml = std::size_t{1}
                             << static_cast<std::size_t>(op.q1);
      const std::size_t lo = mh < ml ? mh : ml;
      const std::size_t hi = mh < ml ? ml : mh;
      const SortedDiagPhases p = diag2q_sorted_phases(op.m4, mh, hi);
      diag2q_range(amp, base, end, p.ds, lo, hi);
    };

    for (std::size_t base = 0; base < dim; base += kBlockAmps) {
      const std::size_t end =
          base + kBlockAmps < dim ? base + kBlockAmps : dim;
      for (const Action& a : actions) {
        if (a.solo != nullptr) {
          apply_solo_range(*a.solo, base, end);
        } else {
          apply_group_range(amp, base, end, a.group);
        }
      }
    }
    i = j;
  }
}

double Statevector::prob_one(int q) const {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & mask) p += std::norm(amps_[i]);
  }
  return p;
}

double Statevector::norm2() const {
  double n = 0.0;
  for (const Complex& a : amps_) n += std::norm(a);
  return n;
}

double Statevector::fidelity_with(const Statevector& other) const {
  DQCSIM_EXPECTS(other.amps_.size() == amps_.size());
  Complex overlap{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    overlap += std::conj(other.amps_[i]) * amps_[i];
  }
  return std::norm(overlap);
}

double Statevector::max_amplitude_difference(const Statevector& other) const {
  DQCSIM_EXPECTS(other.amps_.size() == amps_.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(amps_[i] - other.amps_[i]));
  }
  return max_diff;
}

Statevector qft_reference_state(int num_qubits, std::size_t k) {
  DQCSIM_EXPECTS(num_qubits >= 1 && num_qubits <= 24);
  const std::size_t dim = std::size_t{1} << num_qubits;
  DQCSIM_EXPECTS(k < dim);
  const double inv_sqrt = 1.0 / std::sqrt(static_cast<double>(dim));
  // make_qft omits the final SWAP network, which is equivalent to the exact
  // DFT applied to the bit-reversed input index (qubit 0 plays the
  // most-significant role in the textbook circuit while our basis indexing
  // is little-endian).
  std::size_t k_rev = 0;
  for (int b = 0; b < num_qubits; ++b) {
    if (k & (std::size_t{1} << b)) {
      k_rev |= std::size_t{1} << (num_qubits - 1 - b);
    }
  }
  std::vector<Complex> amps(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(j) *
                         static_cast<double>(k_rev) /
                         static_cast<double>(dim);
    amps[j] = Complex{std::cos(phase), std::sin(phase)} * inv_sqrt;
  }
  return Statevector(std::move(amps));
}

}  // namespace dqcsim::qsim
