#include "qsim/channels.hpp"

#include "common/error.hpp"

namespace dqcsim::qsim {

double depolarizing_prob_for_avg_fidelity(int dim, double f_avg) {
  DQCSIM_EXPECTS_MSG(dim == 2 || dim == 4, "dim must be 2 or 4");
  const double d = static_cast<double>(dim);
  DQCSIM_EXPECTS_MSG(f_avg > 1.0 / (d + 1.0) && f_avg <= 1.0,
                     "average fidelity out of the depolarizing range");
  const double f_pro = ((d + 1.0) * f_avg - 1.0) / d;
  const double p = (1.0 - f_pro) / (1.0 - 1.0 / (d * d));
  return p;
}

void apply_noisy_1q(DensityMatrix& rho, const Mat2& u, int q, double f_avg) {
  rho.apply_1q(u, q);
  if (f_avg < 1.0) {
    rho.depolarize_1q(q, depolarizing_prob_for_avg_fidelity(2, f_avg));
  }
}

void apply_noisy_2q(DensityMatrix& rho, const Mat4& u, int q_high, int q_low,
                    double f_avg) {
  rho.apply_2q(u, q_high, q_low);
  if (f_avg < 1.0) {
    rho.depolarize_2q(q_high, q_low,
                      depolarizing_prob_for_avg_fidelity(4, f_avg));
  }
}

DensityMatrix::MeasurementBranches noisy_measure(const DensityMatrix& rho,
                                                 int q,
                                                 double readout_fidelity) {
  DQCSIM_EXPECTS(readout_fidelity >= 0.0 && readout_fidelity <= 1.0);
  auto ideal = rho.measure_branches(q);
  if (readout_fidelity >= 1.0) return ideal;

  const double f = readout_fidelity;
  DensityMatrix::MeasurementBranches noisy;
  noisy.state.clear();
  for (int reported = 0; reported < 2; ++reported) {
    const int other = 1 - reported;
    const double p_report =
        f * ideal.prob[reported] + (1.0 - f) * ideal.prob[other];
    noisy.prob[reported] = p_report;
    // State conditioned on the *reported* outcome mixes both true branches.
    const double w_true = f * ideal.prob[reported];
    const double w_flip = (1.0 - f) * ideal.prob[other];
    DensityMatrix mixed = DensityMatrix::mix(
        ideal.state[static_cast<std::size_t>(reported)], w_true,
        ideal.state[static_cast<std::size_t>(other)], w_flip);
    if (p_report > 1e-15) {
      mixed = DensityMatrix::mix(mixed, 1.0 / p_report, mixed, 0.0);
    }
    noisy.state.push_back(std::move(mixed));
  }
  return noisy;
}

}  // namespace dqcsim::qsim
