#include "qsim/density_matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dqcsim::qsim {
namespace {

constexpr int kMaxQubits = 14;  // 4^14 * 16 B = 4 GiB would be too big; 14 -> 256M entries? No:
// dim = 2^14 = 16384; dim^2 = 2.7e8 entries * 16 B ~= 4.3 GB. The practical
// guard below therefore limits to 12 qubits (dim^2 = 1.6e7, ~270 MB peak
// with channel copies). Teleportation gadgets use at most 6.
constexpr int kPracticalMaxQubits = 12;

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits) {
  DQCSIM_EXPECTS_MSG(num_qubits >= 1 && num_qubits <= kPracticalMaxQubits,
                     "density matrix limited to 12 qubits");
  static_assert(kPracticalMaxQubits <= kMaxQubits);
  num_qubits_ = num_qubits;
  dim_ = std::size_t{1} << num_qubits;
  data_.assign(dim_ * dim_, Complex{0.0, 0.0});
  data_[0] = Complex{1.0, 0.0};
}

DensityMatrix::DensityMatrix(const std::vector<Complex>& amplitudes) {
  std::size_t d = amplitudes.size();
  DQCSIM_EXPECTS_MSG(d >= 2 && (d & (d - 1)) == 0,
                     "amplitude count must be a power of two");
  int n = 0;
  while ((std::size_t{1} << n) < d) ++n;
  DQCSIM_EXPECTS(n <= kPracticalMaxQubits);

  double norm2 = 0.0;
  for (const Complex& a : amplitudes) norm2 += std::norm(a);
  DQCSIM_EXPECTS_MSG(norm2 > 0.0, "state vector must be nonzero");
  const double inv_norm = 1.0 / std::sqrt(norm2);

  num_qubits_ = n;
  dim_ = d;
  data_.resize(dim_ * dim_);
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      data_[idx(r, c)] =
          amplitudes[r] * inv_norm * std::conj(amplitudes[c]) * inv_norm;
    }
  }
}

Complex DensityMatrix::element(std::size_t r, std::size_t c) const {
  DQCSIM_EXPECTS(r < dim_ && c < dim_);
  return data_[idx(r, c)];
}

void DensityMatrix::apply_1q(const Mat2& u, int q) {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t stride = std::size_t{1} << q;
  // Left multiply by U (x) I: for each row pair walk both rows contiguously
  // (the row-major layout makes the inner loop a pair of streaming sweeps).
  for (std::size_t rb = 0; rb < dim_; rb += 2 * stride) {
    for (std::size_t r = rb; r < rb + stride; ++r) {
      Complex* const row0 = data_.data() + idx(r, 0);
      Complex* const row1 = data_.data() + idx(r + stride, 0);
      for (std::size_t c = 0; c < dim_; ++c) {
        const Complex a = row0[c];
        const Complex b = row1[c];
        row0[c] = u[0] * a + u[1] * b;
        row1[c] = u[2] * a + u[3] * b;
      }
    }
  }
  // Right multiply by U^dag: column pairs live within each row, so the
  // whole update streams one row at a time.
  for (std::size_t r = 0; r < dim_; ++r) {
    Complex* const row = data_.data() + idx(r, 0);
    for (std::size_t cb = 0; cb < dim_; cb += 2 * stride) {
      for (std::size_t c = cb; c < cb + stride; ++c) {
        const Complex a = row[c];
        const Complex b = row[c + stride];
        row[c] = a * std::conj(u[0]) + b * std::conj(u[1]);
        row[c + stride] = a * std::conj(u[2]) + b * std::conj(u[3]);
      }
    }
  }
}

void DensityMatrix::apply_2q(const Mat4& u, int q_high, int q_low) {
  DQCSIM_EXPECTS(q_high >= 0 && q_high < num_qubits_);
  DQCSIM_EXPECTS(q_low >= 0 && q_low < num_qubits_);
  DQCSIM_EXPECTS(q_high != q_low);
  const std::size_t mh = std::size_t{1} << q_high;
  const std::size_t ml = std::size_t{1} << q_low;
  const std::size_t lo = mh < ml ? mh : ml;
  const std::size_t hi = mh < ml ? ml : mh;
  const std::size_t groups = dim_ >> 2;

  // Branch-free enumeration of index quadruples: expand a dense counter by
  // inserting zero bits at both operand positions (lowest first).
  const auto expand = [lo, hi](std::size_t k) {
    return insert_zero_bit(insert_zero_bit(k, lo), hi);
  };

  // Left multiply by U (x) I: each row quadruple streams over all columns.
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t r = expand(g);
    Complex* const row[4] = {
        data_.data() + idx(r, 0), data_.data() + idx(r | ml, 0),
        data_.data() + idx(r | mh, 0), data_.data() + idx(r | mh | ml, 0)};
    for (std::size_t c = 0; c < dim_; ++c) {
      const Complex old[4] = {row[0][c], row[1][c], row[2][c], row[3][c]};
      for (std::size_t s = 0; s < 4; ++s) {
        Complex acc{0.0, 0.0};
        for (std::size_t t = 0; t < 4; ++t) {
          acc += u[s * 4 + t] * old[t];
        }
        row[s][c] = acc;
      }
    }
  }
  // Right multiply by U^dag: column quadruples live within each row.
  for (std::size_t r = 0; r < dim_; ++r) {
    Complex* const row = data_.data() + idx(r, 0);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t c = expand(g);
      const std::size_t col[4] = {c, c | ml, c | mh, c | mh | ml};
      const Complex old[4] = {row[col[0]], row[col[1]], row[col[2]],
                              row[col[3]]};
      for (std::size_t s = 0; s < 4; ++s) {
        Complex acc{0.0, 0.0};
        for (std::size_t t = 0; t < 4; ++t) {
          acc += old[t] * std::conj(u[s * 4 + t]);
        }
        row[col[s]] = acc;
      }
    }
  }
}

void DensityMatrix::apply_gate(const Gate& g) {
  if (g.arity() == 1) {
    apply_1q(gate_unitary_1q(g.kind, g.param), g.q0());
  } else {
    apply_2q(gate_unitary_2q(g.kind, g.param), g.q0(), g.q1());
  }
}

void DensityMatrix::pauli_channel(int q, double px, double py, double pz) {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  DQCSIM_EXPECTS(px >= 0.0 && py >= 0.0 && pz >= 0.0);
  const double total = px + py + pz;
  DQCSIM_EXPECTS_MSG(total <= 1.0 + 1e-12, "Pauli probabilities exceed 1");
  if (total <= 0.0) return;

  const std::size_t mask = std::size_t{1} << q;
  std::vector<Complex> out(data_.size());
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      const std::size_t rf = r ^ mask;
      const std::size_t cf = c ^ mask;
      const double sr = (r & mask) ? -1.0 : 1.0;  // Z sign on row
      const double sc = (c & mask) ? -1.0 : 1.0;  // Z sign on column
      // X rho X: flips both indices. Z rho Z: sign sr*sc.
      // Y = iXZ: flips both indices with sign (-1)^{flip parity}:
      // (Y rho Y)[r][c] = sr' * sc' * rho[rf][cf] where the signs come from
      // Y|0>=i|1>, Y|1>=-i|0>; combined phase = (r?-i:i)(c?i:-i) -> product
      // simplifies to sr*sc with an extra (-1) when r,c bits differ... use
      // exact: phase(r) = (r&mask)? -i : i ; element = phase(r)*conj(phase(c))
      const Complex phase_r = (r & mask) ? Complex{0, -1} : Complex{0, 1};
      const Complex phase_c = (c & mask) ? Complex{0, -1} : Complex{0, 1};
      const Complex y_term =
          phase_r * std::conj(phase_c) * data_[idx(rf, cf)];
      out[idx(r, c)] = (1.0 - total) * data_[idx(r, c)] +
                       px * data_[idx(rf, cf)] + py * y_term +
                       pz * sr * sc * data_[idx(r, c)];
    }
  }
  data_ = std::move(out);
}

void DensityMatrix::depolarize_1q(int q, double p) {
  DQCSIM_EXPECTS(p >= 0.0 && p <= 1.0);
  // (1-p) rho + p I/2 (x) tr_q rho == Pauli channel with px=py=pz=p/4.
  pauli_channel(q, p / 4.0, p / 4.0, p / 4.0);
}

void DensityMatrix::depolarize_2q(int q0, int q1, double p) {
  DQCSIM_EXPECTS(q0 >= 0 && q0 < num_qubits_);
  DQCSIM_EXPECTS(q1 >= 0 && q1 < num_qubits_);
  DQCSIM_EXPECTS(q0 != q1);
  DQCSIM_EXPECTS(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return;

  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  const std::size_t pair_mask = m0 | m1;

  std::vector<Complex> out(data_.size());
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      Complex mixed{0.0, 0.0};
      if ((r & pair_mask) == (c & pair_mask)) {
        // (I/4 (x) tr_pair rho)[r][c]: average over the pair subspace.
        const std::size_t rb = r & ~pair_mask;
        const std::size_t cb = c & ~pair_mask;
        for (int s = 0; s < 4; ++s) {
          std::size_t sub = 0;
          if (s & 1) sub |= m0;
          if (s & 2) sub |= m1;
          mixed += data_[idx(rb | sub, cb | sub)];
        }
        mixed *= 0.25;
      }
      out[idx(r, c)] = (1.0 - p) * data_[idx(r, c)] + p * mixed;
    }
  }
  data_ = std::move(out);
}

double DensityMatrix::prob_one(int q) const {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mask) p += data_[idx(r, r)].real();
  }
  return p;
}

DensityMatrix::MeasurementBranches DensityMatrix::measure_branches(
    int q) const {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;

  MeasurementBranches branches;
  branches.state.assign(2, *this);
  for (int outcome = 0; outcome < 2; ++outcome) {
    DensityMatrix& s = branches.state[static_cast<std::size_t>(outcome)];
    const bool keep_set = (outcome == 1);
    double prob = 0.0;
    for (std::size_t r = 0; r < dim_; ++r) {
      const bool r_set = (r & mask) != 0;
      for (std::size_t c = 0; c < dim_; ++c) {
        const bool c_set = (c & mask) != 0;
        if (r_set != keep_set || c_set != keep_set) {
          s.data_[idx(r, c)] = Complex{0.0, 0.0};
        }
      }
      if (r_set == keep_set) prob += data_[idx(r, r)].real();
    }
    branches.prob[outcome] = prob;
    if (prob > 1e-15) {
      const double inv = 1.0 / prob;
      for (auto& v : s.data_) v *= inv;
    } else {
      for (auto& v : s.data_) v = Complex{0.0, 0.0};
    }
  }
  return branches;
}

void DensityMatrix::dephase(int q) {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((r & mask) != (c & mask)) data_[idx(r, c)] = Complex{0.0, 0.0};
    }
  }
}

DensityMatrix DensityMatrix::partial_trace(int q) const {
  DQCSIM_EXPECTS(q >= 0 && q < num_qubits_);
  DQCSIM_EXPECTS_MSG(num_qubits_ >= 2, "cannot trace out the last qubit");
  const std::size_t mask = std::size_t{1} << q;
  const std::size_t low = mask - 1;

  DensityMatrix out;
  out.num_qubits_ = num_qubits_ - 1;
  out.dim_ = dim_ >> 1;
  out.data_.assign(out.dim_ * out.dim_, Complex{0.0, 0.0});

  const auto expand = [&](std::size_t i, std::size_t bit) {
    return ((i & ~low) << 1) | (bit ? mask : 0) | (i & low);
  };
  for (std::size_t r = 0; r < out.dim_; ++r) {
    for (std::size_t c = 0; c < out.dim_; ++c) {
      out.data_[r * out.dim_ + c] =
          data_[idx(expand(r, 0), expand(c, 0))] +
          data_[idx(expand(r, 1), expand(c, 1))];
    }
  }
  return out;
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) t += data_[idx(r, r)].real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{r,c} rho[r][c] * rho[c][r] = sum |rho[r][c]|^2 for
  // Hermitian rho.
  double p = 0.0;
  for (const Complex& v : data_) p += std::norm(v);
  return p;
}

double DensityMatrix::fidelity_with_pure(
    const std::vector<Complex>& psi) const {
  DQCSIM_EXPECTS(psi.size() == dim_);
  Complex f{0.0, 0.0};
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      f += std::conj(psi[r]) * data_[idx(r, c)] * psi[c];
    }
  }
  return f.real();
}

DensityMatrix DensityMatrix::tensor(const DensityMatrix& other) const {
  DQCSIM_EXPECTS(num_qubits_ + other.num_qubits_ <= kPracticalMaxQubits);
  DensityMatrix out;
  out.num_qubits_ = num_qubits_ + other.num_qubits_;
  out.dim_ = dim_ * other.dim_;
  out.data_.resize(out.dim_ * out.dim_);
  for (std::size_t rh = 0; rh < other.dim_; ++rh) {
    for (std::size_t rl = 0; rl < dim_; ++rl) {
      for (std::size_t ch = 0; ch < other.dim_; ++ch) {
        for (std::size_t cl = 0; cl < dim_; ++cl) {
          out.data_[(rh * dim_ + rl) * out.dim_ + (ch * dim_ + cl)] =
              data_[idx(rl, cl)] * other.data_[other.idx(rh, ch)];
        }
      }
    }
  }
  return out;
}

bool DensityMatrix::is_hermitian(double tol) const {
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = r; c < dim_; ++c) {
      if (std::abs(data_[idx(r, c)] - std::conj(data_[idx(c, r)])) > tol) {
        return false;
      }
    }
  }
  return true;
}

DensityMatrix DensityMatrix::mix(const DensityMatrix& a, double wa,
                                 const DensityMatrix& b, double wb) {
  DQCSIM_EXPECTS(a.dim_ == b.dim_);
  DQCSIM_EXPECTS(wa >= 0.0 && wb >= 0.0);
  DensityMatrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) {
    out.data_[i] = wa * a.data_[i] + wb * b.data_[i];
  }
  return out;
}

DensityMatrix DensityMatrix::bell_phi_plus() {
  const double s = 1.0 / std::sqrt(2.0);
  return DensityMatrix(std::vector<Complex>{{s, 0.0}, {0, 0}, {0, 0}, {s, 0.0}});
}

DensityMatrix DensityMatrix::werner(double fidelity) {
  DQCSIM_EXPECTS_MSG(fidelity >= 0.25 && fidelity <= 1.0,
                     "Werner fidelity must lie in [0.25, 1]");
  const double w = (4.0 * fidelity - 1.0) / 3.0;
  DensityMatrix rho = bell_phi_plus();
  for (std::size_t r = 0; r < rho.dim_; ++r) {
    for (std::size_t c = 0; c < rho.dim_; ++c) {
      Complex v = rho.data_[rho.idx(r, c)] * w;
      if (r == c) v += (1.0 - w) * 0.25;
      rho.data_[rho.idx(r, c)] = v;
    }
  }
  return rho;
}

}  // namespace dqcsim::qsim
