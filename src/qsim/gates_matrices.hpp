/// \file gates_matrices.hpp
/// \brief Unitary matrices for the gate vocabulary, used by the density-
/// matrix simulator to evaluate teleportation gadgets exactly.

#pragma once

#include <array>
#include <complex>

#include "circuit/gate.hpp"

namespace dqcsim::qsim {

using Complex = std::complex<double>;

/// 2x2 unitary in row-major order.
using Mat2 = std::array<Complex, 4>;

/// 4x4 unitary in row-major order. Qubit convention: the first operand is
/// the more significant bit of the 2-bit row/column index.
using Mat4 = std::array<Complex, 16>;

/// Unitary of a one-qubit gate kind. Precondition: arity 1 and unitary
/// (Measure is rejected).
Mat2 gate_unitary_1q(GateKind kind, double param = 0.0);

/// Unitary of a two-qubit gate kind (first operand = high bit).
/// Precondition: arity 2.
Mat4 gate_unitary_2q(GateKind kind, double param = 0.0);

/// Frequently used constants.
Mat2 identity2();
Mat2 pauli_x();
Mat2 pauli_y();
Mat2 pauli_z();
Mat2 hadamard();
Mat4 cnot();

/// True when U is unitary to within `tol` (max |(U U^dag - I)_ij|).
bool is_unitary(const Mat2& u, double tol = 1e-12);
bool is_unitary(const Mat4& u, double tol = 1e-12);

}  // namespace dqcsim::qsim
