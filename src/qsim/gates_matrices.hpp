/// \file gates_matrices.hpp
/// \brief Unitary matrices for the gate vocabulary, used by the density-
/// matrix simulator to evaluate teleportation gadgets exactly.

#pragma once

#include <array>
#include <complex>
#include <cstddef>

#include "circuit/gate.hpp"

namespace dqcsim::qsim {

using Complex = std::complex<double>;

/// 2x2 unitary in row-major order.
using Mat2 = std::array<Complex, 4>;

/// 4x4 unitary in row-major order. Qubit convention: the first operand is
/// the more significant bit of the 2-bit row/column index.
using Mat4 = std::array<Complex, 16>;

/// Unitary of a one-qubit gate kind. Precondition: arity 1 and unitary
/// (Measure is rejected).
Mat2 gate_unitary_1q(GateKind kind, double param = 0.0);

/// Unitary of a two-qubit gate kind (first operand = high bit).
/// Precondition: arity 2.
Mat4 gate_unitary_2q(GateKind kind, double param = 0.0);

/// Frequently used constants.
Mat2 identity2();
Mat2 pauli_x();
Mat2 pauli_y();
Mat2 pauli_z();
Mat2 hadamard();
Mat4 cnot();

/// True when U is unitary to within `tol` (max |(U U^dag - I)_ij|).
bool is_unitary(const Mat2& u, double tol = 1e-12);
bool is_unitary(const Mat4& u, double tol = 1e-12);

// --- matrix algebra (used by the gate-fusion pass) -----------------------

/// Matrix product a * b (apply b first, then a).
Mat2 matmul(const Mat2& a, const Mat2& b);
Mat4 matmul(const Mat4& a, const Mat4& b);

/// Kronecker product `high` (x) `low`: `high` acts on the more significant
/// bit of the 2-bit row/column index (the first operand of a Mat4 gate),
/// `low` on the less significant bit.
Mat4 kron(const Mat2& high, const Mat2& low);

/// Reinterpret a two-qubit unitary with its operands exchanged:
/// swap_operands(U)[ba][dc] == U[ab][cd] for bit pairs. Applying U on
/// (q_high, q_low) equals applying swap_operands(U) on (q_low, q_high).
Mat4 swap_operands(const Mat4& u);

/// Structural classification by *exact* zeros. Gate constructors and
/// products of structurally sparse matrices keep exact 0.0 entries, so no
/// tolerance is involved and fast-path kernels stay numerically faithful.
bool is_diagonal_matrix(const Mat2& u);
bool is_diagonal_matrix(const Mat4& u);

/// True when every row has exactly one nonzero entry (a qubit permutation
/// with per-branch phases, e.g. X, CX, SWAP, and their diagonal products).
bool is_permutation_matrix(const Mat4& u);

/// Widen `k` by inserting a zero bit at the position of `mask` (= 1 << p):
/// bits below p stay, bits at or above p shift up by one. The kernels use
/// it to enumerate amplitude pairs/quadruples branch-free.
inline std::size_t insert_zero_bit(std::size_t k, std::size_t mask) {
  return ((k & ~(mask - 1)) << 1) | (k & (mask - 1));
}

}  // namespace dqcsim::qsim
