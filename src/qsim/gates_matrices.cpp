#include "qsim/gates_matrices.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dqcsim::qsim {
namespace {

constexpr Complex kI{0.0, 1.0};

Complex cexp(double phi) { return {std::cos(phi), std::sin(phi)}; }

}  // namespace

Mat2 identity2() { return {1, 0, 0, 1}; }
Mat2 pauli_x() { return {0, 1, 1, 0}; }
Mat2 pauli_y() { return {0, -kI, kI, 0}; }
Mat2 pauli_z() { return {1, 0, 0, -1}; }

Mat2 hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return {s, s, s, -s};
}

Mat4 cnot() {
  // First operand (high bit) is the control.
  return {1, 0, 0, 0,  //
          0, 1, 0, 0,  //
          0, 0, 0, 1,  //
          0, 0, 1, 0};
}

Mat2 gate_unitary_1q(GateKind kind, double param) {
  const double half = param / 2.0;
  switch (kind) {
    case GateKind::H: return hadamard();
    case GateKind::X: return pauli_x();
    case GateKind::Y: return pauli_y();
    case GateKind::Z: return pauli_z();
    case GateKind::S: return {1, 0, 0, kI};
    case GateKind::Sdg: return {1, 0, 0, -kI};
    case GateKind::T: return {1, 0, 0, cexp(M_PI / 4.0)};
    case GateKind::Tdg: return {1, 0, 0, cexp(-M_PI / 4.0)};
    case GateKind::RX:
      return {std::cos(half), -kI * std::sin(half),  //
              -kI * std::sin(half), std::cos(half)};
    case GateKind::RY:
      return {std::cos(half), -std::sin(half),  //
              std::sin(half), std::cos(half)};
    case GateKind::RZ:
      return {cexp(-half), 0, 0, cexp(half)};
    default:
      throw PreconditionError("gate_unitary_1q: not a one-qubit unitary: " +
                              gate_name(kind));
  }
}

Mat4 gate_unitary_2q(GateKind kind, double param) {
  switch (kind) {
    case GateKind::CX: return cnot();
    case GateKind::CZ:
      return {1, 0, 0, 0,  //
              0, 1, 0, 0,  //
              0, 0, 1, 0,  //
              0, 0, 0, -1};
    case GateKind::CP:
      return {1, 0, 0, 0,  //
              0, 1, 0, 0,  //
              0, 0, 1, 0,  //
              0, 0, 0, cexp(param)};
    case GateKind::RZZ: {
      // exp(-i param/2 Z (x) Z): diagonal phases on |00>,|01>,|10>,|11>.
      const Complex p = cexp(-param / 2.0);
      const Complex m = cexp(param / 2.0);
      return {p, 0, 0, 0,  //
              0, m, 0, 0,  //
              0, 0, m, 0,  //
              0, 0, 0, p};
    }
    case GateKind::SWAP:
      return {1, 0, 0, 0,  //
              0, 0, 1, 0,  //
              0, 1, 0, 0,  //
              0, 0, 0, 1};
    default:
      throw PreconditionError("gate_unitary_2q: not a two-qubit unitary: " +
                              gate_name(kind));
  }
}

namespace {

template <std::size_t N>
bool unitary_impl(const std::array<Complex, N * N>& u, double tol) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      Complex dot{0.0, 0.0};
      for (std::size_t k = 0; k < N; ++k) {
        dot += u[i * N + k] * std::conj(u[j * N + k]);
      }
      const Complex expected = (i == j) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
      if (std::abs(dot - expected) > tol) return false;
    }
  }
  return true;
}

}  // namespace

bool is_unitary(const Mat2& u, double tol) { return unitary_impl<2>(u, tol); }
bool is_unitary(const Mat4& u, double tol) { return unitary_impl<4>(u, tol); }

namespace {

template <std::size_t N>
std::array<Complex, N * N> matmul_impl(const std::array<Complex, N * N>& a,
                                       const std::array<Complex, N * N>& b) {
  std::array<Complex, N * N> out{};
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t k = 0; k < N; ++k) {
      const Complex aik = a[i * N + k];
      if (aik == Complex{0.0, 0.0}) continue;  // keep structural zeros exact
      for (std::size_t j = 0; j < N; ++j) {
        out[i * N + j] += aik * b[k * N + j];
      }
    }
  }
  return out;
}

template <std::size_t N>
bool diagonal_impl(const std::array<Complex, N * N>& u) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      if (i != j && u[i * N + j] != Complex{0.0, 0.0}) return false;
    }
  }
  return true;
}

}  // namespace

Mat2 matmul(const Mat2& a, const Mat2& b) { return matmul_impl<2>(a, b); }
Mat4 matmul(const Mat4& a, const Mat4& b) { return matmul_impl<4>(a, b); }

Mat4 kron(const Mat2& high, const Mat2& low) {
  Mat4 out{};
  for (std::size_t rh = 0; rh < 2; ++rh) {
    for (std::size_t rl = 0; rl < 2; ++rl) {
      for (std::size_t ch = 0; ch < 2; ++ch) {
        for (std::size_t cl = 0; cl < 2; ++cl) {
          out[(rh * 2 + rl) * 4 + (ch * 2 + cl)] =
              high[rh * 2 + ch] * low[rl * 2 + cl];
        }
      }
    }
  }
  return out;
}

Mat4 swap_operands(const Mat4& u) {
  const auto rev = [](std::size_t s) { return ((s & 1) << 1) | (s >> 1); };
  Mat4 out{};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      out[r * 4 + c] = u[rev(r) * 4 + rev(c)];
    }
  }
  return out;
}

bool is_diagonal_matrix(const Mat2& u) { return diagonal_impl<2>(u); }
bool is_diagonal_matrix(const Mat4& u) { return diagonal_impl<4>(u); }

bool is_permutation_matrix(const Mat4& u) {
  for (std::size_t r = 0; r < 4; ++r) {
    int nonzero = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      if (u[r * 4 + c] != Complex{0.0, 0.0}) ++nonzero;
    }
    if (nonzero != 1) return false;
  }
  return true;
}

}  // namespace dqcsim::qsim
