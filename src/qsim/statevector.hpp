/// \file statevector.hpp
/// \brief Pure-state simulator for functional circuit validation.
///
/// The density-matrix simulator (density_matrix.hpp) is exact for noisy
/// few-qubit gadgets but scales as 4^n; this statevector simulator scales
/// as 2^n (practical to ~20 qubits) and is used by the test suite to check
/// *functional* properties of whole circuits: the QFT against the exact
/// discrete Fourier transform, unitary equivalence of scheduler variants,
/// and Trotter-circuit sanity. Qubit 0 is the least significant bit.

#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/fusion.hpp"
#include "qsim/gates_matrices.hpp"

namespace dqcsim::qsim {

/// Dense 2^n-amplitude pure state.
class Statevector {
 public:
  /// Initialize to |0...0>. Precondition: 1 <= num_qubits <= 24.
  explicit Statevector(int num_qubits);

  /// Initialize to a computational basis state |basis_index>.
  Statevector(int num_qubits, std::size_t basis_index);

  /// Initialize from explicit amplitudes (normalized internally).
  /// Precondition: size is a power of two in [2, 2^24], nonzero norm.
  explicit Statevector(std::vector<Complex> amplitudes);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return amps_.size(); }

  /// Amplitude of basis state |i>.
  Complex amplitude(std::size_t i) const;
  const std::vector<Complex>& amplitudes() const noexcept { return amps_; }

  /// Apply a one-qubit unitary on `q`.
  void apply_1q(const Mat2& u, int q);

  /// Apply a two-qubit unitary (`q_high` = the gate's first operand).
  void apply_2q(const Mat4& u, int q_high, int q_low);

  /// Apply a gate from the circuit IR (unitary kinds only).
  void apply_gate(const Gate& g);

  /// Run an entire circuit (must contain only unitary gates).
  void apply_circuit(const Circuit& qc);

  /// Apply a single fused op through its structural fast path.
  void apply_op(const FusedOp& op);

  /// Run a fused program (see fuse_circuit). Consecutive diagonal ops are
  /// batch-applied in one sweep over the state, so e.g. a QAOA cost layer
  /// of k RZZ gates costs one pass instead of k.
  void apply_fused(const FusedCircuit& fc);

  /// Born-rule probability of measuring qubit `q` in |1>.
  double prob_one(int q) const;

  /// Squared norm (1 for normalized states).
  double norm2() const;

  /// |<other|this>|^2.
  double fidelity_with(const Statevector& other) const;

  /// Max |amp_i - other.amp_i| (for exact-equality tests up to global
  /// phase use fidelity_with instead).
  double max_amplitude_difference(const Statevector& other) const;

 private:
  int num_qubits_;
  std::vector<Complex> amps_;
};

/// Exact output of gen::make_qft on basis state |k>: the discrete Fourier
/// transform with amplitudes exp(2*pi*i*j*rev(k)/2^n)/sqrt(2^n), where
/// rev() bit-reverses k — make_qft omits the final SWAP network and our
/// basis indexing is little-endian, which folds the reversal onto the
/// input index.
Statevector qft_reference_state(int num_qubits, std::size_t k);

}  // namespace dqcsim::qsim
