/// \file channels.hpp
/// \brief Noise-channel helpers bridging quoted gate fidelities (Table II)
/// to concrete depolarizing channels in the density-matrix simulator.
///
/// Hardware papers quote *average gate fidelity* F_avg; the corresponding
/// depolarizing probability follows from
///   F_avg = (d * F_pro + 1) / (d + 1),   F_pro = 1 - p * (1 - 1/d^2),
/// where d is the Hilbert-space dimension of the gate (2 or 4).

#pragma once

#include "qsim/density_matrix.hpp"

namespace dqcsim::qsim {

/// Depolarizing probability p that realizes average gate fidelity `f_avg`
/// on a d-dimensional gate. Preconditions: dim in {2, 4},
/// f_avg in (1/(d+1), 1].
double depolarizing_prob_for_avg_fidelity(int dim, double f_avg);

/// Apply a one-qubit unitary followed by a depolarizing channel realizing
/// average fidelity `f_avg` on qubit q.
void apply_noisy_1q(DensityMatrix& rho, const Mat2& u, int q, double f_avg);

/// Apply a two-qubit unitary followed by a two-qubit depolarizing channel
/// realizing average fidelity `f_avg`.
void apply_noisy_2q(DensityMatrix& rho, const Mat4& u, int q_high, int q_low,
                    double f_avg);

/// Noisy projective Z measurement: the physical projection is ideal but the
/// *classical outcome* is flipped with probability (1 - readout_fidelity).
/// Returns the branches with outcome probabilities already mixed over the
/// readout flip, i.e. branch[o] is the state given the *reported* outcome o.
DensityMatrix::MeasurementBranches noisy_measure(const DensityMatrix& rho,
                                                 int q,
                                                 double readout_fidelity);

}  // namespace dqcsim::qsim
