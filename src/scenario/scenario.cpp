#include "scenario/scenario.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"

namespace dqcsim::scenario {

namespace {

void require(bool ok, const std::string& msg) {
  if (!ok) throw ConfigError("Scenario: " + msg);
}

void validate_edge_target(const net::Topology& topo, int a, int b,
                          const std::string& what) {
  require(a >= 0 && b >= 0 && a < topo.num_nodes() && b < topo.num_nodes(),
          what + " endpoint outside [0, num_nodes)");
  require(topo.has_edge(a, b), what + " targets a node pair with no edge");
}

void validate_outage_window(double start, double duration,
                            const std::string& what) {
  require(std::isfinite(start) && start >= 0.0,
          what + " start must be finite and nonnegative");
  require(std::isfinite(duration) && duration > 0.0,
          what + " must recover: duration must be finite and positive");
}

void validate_track(const net::Topology& topo, const DriftTrack& t) {
  if (!(t.node_a == -1 && t.node_b == -1)) {
    validate_edge_target(topo, t.node_a, t.node_b, "drift track");
  }
  switch (t.kind) {
    case DriftKind::Step: {
      require(!t.times.empty() && t.times.size() == t.levels.size(),
              "step track needs matching times/levels");
      double prev = -1.0;
      for (std::size_t i = 0; i < t.times.size(); ++i) {
        require(std::isfinite(t.times[i]) && t.times[i] >= 0.0 &&
                    t.times[i] > prev,
                "step times must be nonnegative and strictly increasing");
        require(std::isfinite(t.levels[i]) && t.levels[i] > 0.0,
                "step levels must be positive");
        prev = t.times[i];
      }
      break;
    }
    case DriftKind::Ramp:
      require(std::isfinite(t.t0) && std::isfinite(t.t1) && t.t0 >= 0.0 &&
                  t.t1 > t.t0,
              "ramp needs 0 <= t0 < t1");
      require(std::isfinite(t.s0) && std::isfinite(t.s1) && t.s0 > 0.0 &&
                  t.s1 > 0.0,
              "ramp scales must be positive");
      break;
    case DriftKind::RandomWalk:
      require(std::isfinite(t.walk_interval) && t.walk_interval > 0.0,
              "random walk needs a positive step interval");
      require(t.walk_step >= 0.0 && t.walk_step < 1.0,
              "random walk step must be in [0, 1)");
      require(t.walk_min > 0.0 && t.walk_max >= t.walk_min,
              "random walk clamp needs 0 < walk_min <= walk_max");
      break;
  }
}

}  // namespace

void Scenario::validate(const net::Topology& topo) const {
  for (const DriftTrack& t : drift) validate_track(topo, t);
  for (const LinkOutage& o : link_outages) {
    validate_edge_target(topo, o.node_a, o.node_b, "link outage");
    validate_outage_window(o.start, o.duration, "link outage");
  }
  for (const NodeOutage& o : node_outages) {
    require(o.node >= 0 && o.node < topo.num_nodes(),
            "node outage node outside [0, num_nodes)");
    validate_outage_window(o.start, o.duration, "node outage");
  }
  for (const FailureBurst& b : bursts) {
    validate_outage_window(b.start, b.duration, "failure burst");
    if (b.edges.empty()) {
      require(b.random_edges > 0,
              "failure burst needs explicit edges or random_edges > 0");
      require(static_cast<std::size_t>(b.random_edges) <= topo.num_edges(),
              "failure burst random_edges exceeds the edge count");
    } else {
      for (const auto& [a, bb] : b.edges) {
        validate_edge_target(topo, a, bb, "failure burst");
      }
    }
  }
  if (random_failures.mtbf != 0.0) {
    require(std::isfinite(random_failures.mtbf) && random_failures.mtbf > 0.0,
            "random failure mtbf must be positive (0 disables)");
    validate_outage_window(0.0, random_failures.duration, "random failure");
  }
  for (const CalibrationSnapshot& s : snapshots) {
    require(s.node >= 0 && s.node < topo.num_nodes(),
            "calibration snapshot node outside [0, num_nodes)");
    require(std::isfinite(s.time) && s.time >= 0.0,
            "calibration snapshot time must be nonnegative");
    require(std::isfinite(s.p_succ_scale) && s.p_succ_scale > 0.0 &&
                std::isfinite(s.f0_scale) && s.f0_scale > 0.0,
            "calibration snapshot scales must be positive");
  }
  require(std::isfinite(horizon) && horizon > 0.0,
          "horizon must be finite and positive");
}

}  // namespace dqcsim::scenario
