/// \file scenario.hpp
/// \brief Fault & drift scenarios: deterministic, seed-derived schedules of
/// fabric perturbations applied per Monte-Carlo trial.
///
/// All sweeps so far assume a stationary fabric: link quality, topology, and
/// noise never change within or across trials. A Scenario perturbs the
/// interconnect over *simulated* time:
///
///  - link-quality drift: per-edge (or fabric-wide) multiplicative scales on
///    p_succ and f0 — piecewise-constant steps, linear ramps, or seeded
///    random walks, always clamped back into the field's valid domain;
///  - link and node outages with recovery windows: a down edge generates no
///    pairs, a down node takes all of its incident edges down;
///  - correlated failure bursts: one event disabling a set of edges at once
///    (explicit, or a per-trial seeded random subset);
///  - stochastic per-edge failures: an exponential up-time process with a
///    fixed repair window, for outage-rate sweeps;
///  - per-QPU calibration snapshots: at a given sim time a node's hardware
///    swaps to a different noise profile (p_succ / f0 scales on its
///    incident edges, in force until that node's next snapshot).
///
/// A Scenario is a *specification*. The concrete per-trial schedule (walk
/// steps, burst edge choice, stochastic failure times) is derived from the
/// trial seed by scenario::ScenarioRuntime — the same seed always produces
/// the same schedule, independent of thread count or sweep order, so every
/// determinism guarantee of the experiment driver carries over.
///
/// Wiring: set runtime::ArchConfig::scenario (requires a topology; the
/// all-to-all interconnect is available explicitly via
/// net::Topology::all_to_all). A null scenario is bit-identical to the
/// stationary engine. See runtime/engine.cpp for the execution semantics:
/// generation services re-read the effective link parameters at every
/// attempt-window boundary, and outages invalidate a logical link's route,
/// re-routing it through net::Router over the surviving subgraph.

#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "net/topology.hpp"

namespace dqcsim::scenario {

/// Which link parameter a drift track scales.
enum class DriftField {
  PSucc,  ///< per-attempt success probability, clamped to (0, 1]
  F0,     ///< fresh-pair fidelity, clamped to [0.25, 1]
};

/// Shape of a drift track's scale-over-time curve.
enum class DriftKind {
  Step,        ///< piecewise-constant scale levels at given times
  Ramp,        ///< linear scale from (t0, s0) to (t1, s1), held outside
  RandomWalk,  ///< seeded multiplicative walk on a fixed step grid
};

/// One time-varying multiplicative scale on a link parameter. Scales from
/// multiple tracks targeting the same edge compose by multiplication; the
/// engine clamps the scaled value back into the field's domain.
struct DriftTrack {
  DriftField field = DriftField::PSucc;
  DriftKind kind = DriftKind::Step;
  /// Target physical edge {node_a, node_b}; -1/-1 targets every edge.
  int node_a = -1;
  int node_b = -1;

  // Step: scale levels[i] applies from times[i] on (times strictly
  // increasing, scale 1 before times[0]).
  std::vector<double> times;
  std::vector<double> levels;

  // Ramp: scale s0 at t0 linearly to s1 at t1; s0 before t0, s1 after t1.
  double t0 = 0.0;
  double t1 = 0.0;
  double s0 = 1.0;
  double s1 = 1.0;

  // RandomWalk: every `walk_interval` time units the scale multiplies by
  // (1 + u), u uniform in [-walk_step, +walk_step], clamped to
  // [walk_min, walk_max]. Steps are drawn from a per-trial stream, so the
  // walk differs between trials but is identical for identical seeds.
  double walk_interval = 0.0;
  double walk_step = 0.0;
  double walk_min = 0.5;
  double walk_max = 1.5;
};

/// One physical link down for [start, start + duration).
struct LinkOutage {
  int node_a = 0;
  int node_b = 0;
  double start = 0.0;
  double duration = 0.0;
};

/// One QPU node down for [start, start + duration): all incident edges stop
/// generating. Local gate execution on the node continues — outages model
/// the entanglement fabric (fiber links and communication-qubit hardware),
/// not the compute substrate.
struct NodeOutage {
  int node = 0;
  double start = 0.0;
  double duration = 0.0;
};

/// Correlated failure burst: one event takes a *set* of edges down together
/// for [start, start + duration). Either an explicit edge list, or
/// `random_edges` distinct edges drawn per trial from the scenario stream.
struct FailureBurst {
  double start = 0.0;
  double duration = 0.0;
  std::vector<std::pair<int, int>> edges;  ///< explicit targets (may be empty)
  int random_edges = 0;                    ///< sampled when edges is empty
};

/// Stochastic per-edge failure process: every edge independently alternates
/// up-times drawn from Exp(mtbf) with fixed `duration` repair windows.
/// mtbf == 0 disables the process. Failure times derive from the trial seed
/// and the edge index, so trials are reproducible and edges independent.
struct RandomLinkFailures {
  double mtbf = 0.0;      ///< mean up-time between failures (time units)
  double duration = 0.0;  ///< repair window per failure
};

/// Per-QPU calibration snapshot: from `time` on, the node's incident edges
/// run at the scaled noise profile, until the node's next snapshot.
struct CalibrationSnapshot {
  int node = 0;
  double time = 0.0;
  double p_succ_scale = 1.0;
  double f0_scale = 1.0;
};

/// A full fault & drift scenario (see file header). Default-constructed ==
/// stationary fabric (ScenarioRuntime then reports every edge up at scale 1
/// and no schedule boundaries).
struct Scenario {
  std::vector<DriftTrack> drift;
  std::vector<LinkOutage> link_outages;
  std::vector<NodeOutage> node_outages;
  std::vector<FailureBurst> bursts;
  RandomLinkFailures random_failures;
  std::vector<CalibrationSnapshot> snapshots;

  /// Stochastic events (random failures) past this sim time are not
  /// generated — a safety horizon bounding lazy schedule extension.
  double horizon = 1e9;

  /// Mixed into every scenario-derived stream so scenario draws never
  /// collide with the engine's entanglement-generation stream.
  std::uint64_t salt = 0x5CE7A210FA;

  /// True when no component can ever perturb the fabric.
  bool empty() const noexcept {
    return drift.empty() && link_outages.empty() && node_outages.empty() &&
           bursts.empty() && random_failures.mtbf == 0.0 && snapshots.empty();
  }

  /// Throws ConfigError when any field is out of domain or targets an
  /// edge/node absent from `topo`. Every outage must recover (finite
  /// positive duration): a permanently dead link could stall a trial whose
  /// remote gates depend on it.
  void validate(const net::Topology& topo) const;
};

}  // namespace dqcsim::scenario
