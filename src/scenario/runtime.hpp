/// \file runtime.hpp
/// \brief Per-trial scenario evaluation: turns a scenario::Scenario
/// specification plus a trial seed into a concrete, queryable schedule.
///
/// One ScenarioRuntime lives inside each reusable runtime::RunContext and is
/// re-armed per trial with begin_trial(). It answers two kinds of queries:
///
///  - *Effective link parameters*: effective_p_succ / effective_f0 apply
///    every matching drift track and calibration snapshot to a base value
///    and clamp the result into the field's domain. Queries are random
///    access in time (the engine evaluates the fidelity of a buffered pair
///    at its deposit instant, which lies in the past at consumption).
///
///  - *Availability*: edge_up / node_up report the outage state, and
///    next_boundary returns the next instant any up/down state flips —
///    the engine schedules its re-routing events at exactly these times,
///    so between boundaries the availability state is constant.
///
/// Stochastic components (random-walk drift, per-edge failure processes,
/// random burst targets) draw from streams derived from
/// (trial seed, scenario salt, component index) — never from the engine's
/// generation stream — so the same seed always yields the same schedule and
/// enabling a scenario cannot perturb the entanglement-generation draws.
/// Failure processes extend lazily as next_boundary advances (trial length
/// is endogenous); the Scenario horizon bounds the extension.
///
/// Storage is reused across trials: a same-scenario re-arm performs only
/// O(active components) bookkeeping and no steady-state allocation beyond
/// the lazily grown walk/failure arrays (whose capacity is retained).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::scenario {

/// Queryable per-trial realization of a Scenario (see file header).
class ScenarioRuntime {
 public:
  /// Arm the runtime for one trial. `scenario` and `topo` must outlive the
  /// trial (the engine keeps both alive through ArchConfig shared_ptrs).
  /// The scenario must already be validated against `topo`.
  void begin_trial(const Scenario& scenario, const net::Topology& topo,
                   std::uint64_t trial_seed);

  /// True between begin_trial() and the next re-arm.
  bool active() const noexcept { return scn_ != nullptr; }

  /// `base` scaled by every matching drift track and endpoint calibration
  /// snapshot at time `t`, clamped to (0, 1].
  double effective_p_succ(std::size_t edge, double base, double t);

  /// `base` scaled like effective_p_succ, clamped to [0.25, 1].
  double effective_f0(std::size_t edge, double base, double t);

  /// Outage state at time `t`. Valid for any t already covered by
  /// next_boundary's lazy extension (the engine only queries at or before
  /// the next scheduled boundary). A down endpoint node takes the edge down.
  bool edge_up(std::size_t edge, double t) const;
  bool node_up(int node, double t) const;

  /// Earliest instant strictly after `t` at which any edge/node up state
  /// flips; nullopt when none remains before the horizon. Lazily extends
  /// the stochastic failure processes through the returned time.
  std::optional<double> next_boundary(double t);

 private:
  /// Scale contributed by drift track `i` at time `time`.
  double track_scale(std::size_t i, double time);
  /// Product of all scales matching (edge, field) at `time`.
  double scale(std::size_t edge, DriftField field, double t);
  /// Extend edge failure sampling so the first failure starting after `t`
  /// is materialized for every edge (see the comment in the definition).
  void extend_failures(double t);
  bool in_intervals(const std::vector<std::pair<double, double>>& iv,
                    double t) const;
  /// O(log n) membership for sorted, non-overlapping interval lists (the
  /// stochastic failure schedules, which grow with trial length).
  static bool in_disjoint_intervals(
      const std::vector<std::pair<double, double>>& iv, double t);

  struct WalkState {
    Rng rng{0};
    std::vector<double> levels;  ///< levels[k] = scale during grid step k
  };
  struct EdgeFailures {
    Rng rng{0};
    std::vector<std::pair<double, double>> intervals;  ///< sampled, sorted
    double sampled_until = 0.0;  ///< no unsampled failure starts before this
    bool exhausted = false;      ///< process ran past the horizon
  };
  struct Snap {
    double time;
    double p_scale;
    double f_scale;
  };

  const Scenario* scn_ = nullptr;
  const net::Topology* topo_ = nullptr;

  std::vector<std::size_t> track_edge_;  ///< per track; npos = every edge
  std::vector<WalkState> walks_;         ///< parallel to scn_->drift
  std::vector<EdgeFailures> failures_;   ///< per edge (empty when disabled)
  /// Deterministic down intervals (outages + bursts), per edge / per node.
  std::vector<std::vector<std::pair<double, double>>> edge_downs_;
  std::vector<std::vector<std::pair<double, double>>> node_downs_;
  std::vector<std::vector<Snap>> node_snaps_;  ///< per node, time-sorted
  std::vector<double> det_boundaries_;  ///< sorted unique det. flip times
  std::vector<std::size_t> scratch_indices_;  ///< burst target sampling
};

}  // namespace dqcsim::scenario
