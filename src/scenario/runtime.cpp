#include "scenario/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::scenario {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Stream tags keep the per-component seed derivations disjoint.
constexpr std::uint64_t kTagWalk = 0x57414C4BULL;   // "WALK"
constexpr std::uint64_t kTagBurst = 0x42555253ULL;  // "BURS"
constexpr std::uint64_t kTagFail = 0x4641494CULL;   // "FAIL"

/// splitmix64 finalizer — bijective 64-bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Independent stream seed for component `index` of kind `tag`.
std::uint64_t derive_seed(std::uint64_t trial_seed, std::uint64_t salt,
                          std::uint64_t tag, std::uint64_t index) noexcept {
  return mix64(mix64(trial_seed ^ salt ^ tag) + index);
}

/// Exp(mean) variate through the blessed Rng wrapper — the raw
/// -mean * log(1 - u) inversion lives in common/rng so the engine
/// subsystems stay free of raw libm calls (no-raw-libm).
double exponential(Rng& rng, double mean) noexcept {
  return rng.exponential(mean);
}

}  // namespace

void ScenarioRuntime::begin_trial(const Scenario& scenario,
                                  const net::Topology& topo,
                                  std::uint64_t trial_seed) {
  scn_ = &scenario;
  topo_ = &topo;
  const std::size_t num_edges = topo.num_edges();
  const std::size_t num_nodes = static_cast<std::size_t>(topo.num_nodes());
  const std::uint64_t salt = scenario.salt;

  track_edge_.resize(scenario.drift.size());
  walks_.resize(scenario.drift.size());
  for (std::size_t i = 0; i < scenario.drift.size(); ++i) {
    const DriftTrack& track = scenario.drift[i];
    track_edge_[i] = (track.node_a < 0 && track.node_b < 0)
                         ? net::Topology::npos
                         : topo.edge_index(track.node_a, track.node_b);
    walks_[i].levels.clear();
    if (track.kind == DriftKind::RandomWalk) {
      walks_[i].rng = Rng(derive_seed(trial_seed, salt, kTagWalk, i));
      walks_[i].levels.push_back(1.0);
    }
  }

  edge_downs_.resize(num_edges);
  for (auto& intervals : edge_downs_) intervals.clear();
  node_downs_.resize(num_nodes);
  for (auto& intervals : node_downs_) intervals.clear();

  for (const LinkOutage& outage : scenario.link_outages) {
    const std::size_t e = topo.edge_index(outage.node_a, outage.node_b);
    edge_downs_[e].emplace_back(outage.start, outage.start + outage.duration);
  }
  for (const NodeOutage& outage : scenario.node_outages) {
    node_downs_[static_cast<std::size_t>(outage.node)].emplace_back(
        outage.start, outage.start + outage.duration);
  }
  for (std::size_t b = 0; b < scenario.bursts.size(); ++b) {
    const FailureBurst& burst = scenario.bursts[b];
    const auto window = std::make_pair(burst.start, burst.start + burst.duration);
    if (!burst.edges.empty()) {
      for (const auto& [x, y] : burst.edges) {
        edge_downs_[topo.edge_index(x, y)].push_back(window);
      }
    } else {
      // Per-trial seeded random subset: partial Fisher–Yates over the edge
      // index list, one independent stream per burst.
      Rng rng(derive_seed(trial_seed, salt, kTagBurst, b));
      scratch_indices_.resize(num_edges);
      for (std::size_t e = 0; e < num_edges; ++e) scratch_indices_[e] = e;
      const std::size_t k = static_cast<std::size_t>(burst.random_edges);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(rng.uniform_int(num_edges - i));
        std::swap(scratch_indices_[i], scratch_indices_[j]);
        edge_downs_[scratch_indices_[i]].push_back(window);
      }
    }
  }

  node_snaps_.resize(num_nodes);
  for (auto& snaps : node_snaps_) snaps.clear();
  for (const CalibrationSnapshot& snap : scenario.snapshots) {
    node_snaps_[static_cast<std::size_t>(snap.node)].push_back(
        {snap.time, snap.p_succ_scale, snap.f0_scale});
  }
  for (auto& snaps : node_snaps_) {
    std::stable_sort(snaps.begin(), snaps.end(),
                     [](const Snap& a, const Snap& b) { return a.time < b.time; });
  }

  // Potential-flip times of the deterministic outage set. Overlapping
  // intervals can make some of these spurious (no actual state change);
  // the engine re-derives the full mask at each boundary, so spurious
  // entries cost one no-op check.
  det_boundaries_.clear();
  for (auto& intervals : edge_downs_) {
    std::sort(intervals.begin(), intervals.end());
    for (const auto& [start, end] : intervals) {
      det_boundaries_.push_back(start);
      det_boundaries_.push_back(end);
    }
  }
  for (auto& intervals : node_downs_) {
    std::sort(intervals.begin(), intervals.end());
    for (const auto& [start, end] : intervals) {
      det_boundaries_.push_back(start);
      det_boundaries_.push_back(end);
    }
  }
  std::sort(det_boundaries_.begin(), det_boundaries_.end());
  det_boundaries_.erase(
      std::unique(det_boundaries_.begin(), det_boundaries_.end()),
      det_boundaries_.end());

  if (scenario.random_failures.mtbf > 0.0) {
    failures_.resize(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
      failures_[e].rng = Rng(derive_seed(trial_seed, salt, kTagFail, e));
      failures_[e].intervals.clear();
      failures_[e].sampled_until = 0.0;
      failures_[e].exhausted = false;
    }
  } else {
    failures_.clear();
  }
}

double ScenarioRuntime::track_scale(std::size_t i, double time) {
  const DriftTrack& track = scn_->drift[i];
  switch (track.kind) {
    case DriftKind::Step: {
      // Last step time <= `time`; scale 1 before the first step.
      const auto it =
          std::upper_bound(track.times.begin(), track.times.end(), time);
      if (it == track.times.begin()) return 1.0;
      return track.levels[static_cast<std::size_t>(it - track.times.begin()) -
                          1];
    }
    case DriftKind::Ramp: {
      if (time <= track.t0) return track.s0;
      if (time >= track.t1) return track.s1;
      return track.s0 + (track.s1 - track.s0) * (time - track.t0) /
                            (track.t1 - track.t0);
    }
    case DriftKind::RandomWalk: {
      // Memoized grid levels allow random access in time (consumption-time
      // fidelity queries look back to a pair's deposit instant). The walk
      // freezes past the scenario horizon, bounding memoization.
      WalkState& walk = walks_[i];
      const double capped = std::min(time, scn_->horizon);
      const std::size_t step = static_cast<std::size_t>(
          std::max(0.0, std::floor(capped / track.walk_interval)));
      while (walk.levels.size() <= step) {
        const double factor =
            1.0 + walk.rng.uniform(-track.walk_step, track.walk_step);
        walk.levels.push_back(std::clamp(walk.levels.back() * factor,
                                         track.walk_min, track.walk_max));
      }
      return walk.levels[step];
    }
  }
  return 1.0;  // unreachable
}

double ScenarioRuntime::scale(std::size_t edge, DriftField field, double t) {
  double s = 1.0;
  for (std::size_t i = 0; i < scn_->drift.size(); ++i) {
    if (scn_->drift[i].field != field) continue;
    if (track_edge_[i] != net::Topology::npos && track_edge_[i] != edge) {
      continue;
    }
    s *= track_scale(i, t);
  }
  if (!scn_->snapshots.empty()) {
    const net::TopologyEdge& e = topo_->edge(edge);
    for (const int node : {e.a, e.b}) {
      const auto& snaps = node_snaps_[static_cast<std::size_t>(node)];
      // Last snapshot with time <= t is in force (later entries win ties).
      auto it = std::upper_bound(
          snaps.begin(), snaps.end(), t,
          [](double time, const Snap& snap) { return time < snap.time; });
      if (it == snaps.begin()) continue;
      const Snap& snap = *(it - 1);
      s *= (field == DriftField::PSucc) ? snap.p_scale : snap.f_scale;
    }
  }
  return s;
}

double ScenarioRuntime::effective_p_succ(std::size_t edge, double base,
                                         double t) {
  return std::clamp(base * scale(edge, DriftField::PSucc, t), 1e-12, 1.0);
}

double ScenarioRuntime::effective_f0(std::size_t edge, double base, double t) {
  return std::clamp(base * scale(edge, DriftField::F0, t), 0.25, 1.0);
}

bool ScenarioRuntime::in_intervals(
    const std::vector<std::pair<double, double>>& intervals, double t) const {
  // Sorted by start; deterministic intervals may overlap, so scan until the
  // starts pass t (lists are short: one entry per configured event).
  for (const auto& [start, end] : intervals) {
    if (start > t) break;
    if (t < end) return true;
  }
  return false;
}

bool ScenarioRuntime::in_disjoint_intervals(
    const std::vector<std::pair<double, double>>& intervals, double t) {
  // Sorted AND non-overlapping (the stochastic failure process samples the
  // next start past the previous repair), so only the last interval starting
  // at or before t can cover it. These lists grow with trial length — a
  // long trial under frequent failures accumulates thousands of intervals
  // per edge, and edge_up runs on every generation attempt window — so the
  // lookup must stay O(log n), not a front-to-back scan.
  const auto it = std::upper_bound(intervals.begin(), intervals.end(),
                                   std::make_pair(t, kInf));
  return it != intervals.begin() && t < (it - 1)->second;
}

bool ScenarioRuntime::node_up(int node, double t) const {
  return !in_intervals(node_downs_[static_cast<std::size_t>(node)], t);
}

bool ScenarioRuntime::edge_up(std::size_t edge, double t) const {
  if (in_intervals(edge_downs_[edge], t)) return false;
  if (!failures_.empty() &&
      in_disjoint_intervals(failures_[edge].intervals, t)) {
    return false;
  }
  const net::TopologyEdge& e = topo_->edge(edge);
  return node_up(e.a, t) && node_up(e.b, t);
}

void ScenarioRuntime::extend_failures(double t) {
  const double mtbf = scn_->random_failures.mtbf;
  const double repair = scn_->random_failures.duration;
  for (EdgeFailures& fail : failures_) {
    // Sample until the *first failure starting after t* is materialized (or
    // the process is exhausted): with it sampled, every boundary of this
    // edge in (t, that start] is known, so next_boundary can never return a
    // time that an unsampled failure would preempt, and edge_up is exact
    // for any query at or before the returned boundary.
    while (!fail.exhausted &&
           (fail.intervals.empty() || fail.intervals.back().first <= t)) {
      const double start = fail.sampled_until + exponential(fail.rng, mtbf);
      if (start > scn_->horizon) {
        fail.exhausted = true;
        break;
      }
      fail.intervals.emplace_back(start, start + repair);
      fail.sampled_until = start + repair;
    }
  }
}

std::optional<double> ScenarioRuntime::next_boundary(double t) {
  double best = kInf;
  const auto det =
      std::upper_bound(det_boundaries_.begin(), det_boundaries_.end(), t);
  if (det != det_boundaries_.end()) best = *det;

  if (!failures_.empty()) {
    extend_failures(t);
    for (const EdgeFailures& fail : failures_) {
      // Candidate boundaries: the end of the interval covering t (if any),
      // and the start of the first interval after t.
      const auto it =
          std::upper_bound(fail.intervals.begin(), fail.intervals.end(),
                           std::make_pair(t, kInf));
      if (it != fail.intervals.begin()) {
        const double end = (it - 1)->second;
        if (end > t) best = std::min(best, end);
      }
      if (it != fail.intervals.end()) best = std::min(best, it->first);
    }
  }

  if (best == kInf) return std::nullopt;
  return best;
}

}  // namespace dqcsim::scenario
