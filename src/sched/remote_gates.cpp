#include "sched/remote_gates.hpp"

#include "common/error.hpp"

namespace dqcsim::sched {

void classify_gates(const Circuit& circuit, const std::vector<int>& assignment,
                    GatePlacement& out) {
  DQCSIM_EXPECTS(assignment.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()));
  out.is_remote.assign(circuit.num_gates(), 0);
  out.num_remote_2q = 0;
  out.num_local_2q = 0;
  out.num_1q = 0;
  out.num_measure = 0;
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    const Gate& g = circuit.gate(i);
    if (g.kind == GateKind::Measure) {
      ++out.num_measure;
    } else if (g.arity() == 1) {
      ++out.num_1q;
    } else {
      const int node0 = assignment[static_cast<std::size_t>(g.q0())];
      const int node1 = assignment[static_cast<std::size_t>(g.q1())];
      if (node0 != node1) {
        out.is_remote[i] = 1;
        ++out.num_remote_2q;
      } else {
        ++out.num_local_2q;
      }
    }
  }
}

GatePlacement classify_gates(const Circuit& circuit,
                             const std::vector<int>& assignment) {
  GatePlacement placement;
  classify_gates(circuit, assignment, placement);
  return placement;
}

RemoteDistanceStats remote_distance_stats(const Circuit& circuit,
                                          const std::vector<int>& assignment,
                                          const GatePlacement& placement,
                                          const net::Router& router) {
  DQCSIM_EXPECTS(assignment.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()));
  DQCSIM_EXPECTS(placement.is_remote.size() == circuit.num_gates());
  RemoteDistanceStats stats;
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    if (!placement.is_remote[i]) continue;
    const Gate& g = circuit.gate(i);
    const int hops = router.hop_distance(
        assignment[static_cast<std::size_t>(g.q0())],
        assignment[static_cast<std::size_t>(g.q1())]);
    stats.total_hops += static_cast<std::size_t>(hops);
    stats.total_swaps += static_cast<std::size_t>(hops - 1);
    if (hops > 1) ++stats.multihop_gates;
    if (hops > stats.max_hops) stats.max_hops = hops;
  }
  return stats;
}

}  // namespace dqcsim::sched
