#include "sched/remote_gates.hpp"

#include "common/error.hpp"

namespace dqcsim::sched {

GatePlacement classify_gates(const Circuit& circuit,
                             const std::vector<int>& assignment) {
  DQCSIM_EXPECTS(assignment.size() ==
                 static_cast<std::size_t>(circuit.num_qubits()));
  GatePlacement placement;
  placement.is_remote.assign(circuit.num_gates(), 0);
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    const Gate& g = circuit.gate(i);
    if (g.kind == GateKind::Measure) {
      ++placement.num_measure;
    } else if (g.arity() == 1) {
      ++placement.num_1q;
    } else {
      const int node0 = assignment[static_cast<std::size_t>(g.q0())];
      const int node1 = assignment[static_cast<std::size_t>(g.q1())];
      if (node0 != node1) {
        placement.is_remote[i] = 1;
        ++placement.num_remote_2q;
      } else {
        ++placement.num_local_2q;
      }
    }
  }
  return placement;
}

}  // namespace dqcsim::sched
