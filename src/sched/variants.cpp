#include "sched/variants.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "circuit/dag.hpp"
#include "common/error.hpp"

namespace dqcsim::sched {
namespace {

/// Kahn's algorithm over the segment's commutation-aware DAG with a policy-
/// specific ready-set priority. `prefer_remote_late == false` hoists remote
/// gates (ASAP); `true` runs over the reversed DAG so the returned order,
/// once reversed, sinks remote gates (ALAP).
std::vector<std::size_t> prioritized_topological_order(
    const DependencyDag& dag, const Segment& segment,
    const GatePlacement& placement, bool reverse_direction) {
  const std::size_t n = segment.size();

  // Local node id l corresponds to absolute gate index segment.begin + l.
  const auto absolute = [&](std::size_t l) { return segment.begin + l; };
  const auto edges_out = [&](std::size_t l) -> const std::vector<std::size_t>& {
    return reverse_direction ? dag.preds(l) : dag.succs(l);
  };
  const auto edges_in = [&](std::size_t l) -> const std::vector<std::size_t>& {
    return reverse_direction ? dag.succs(l) : dag.preds(l);
  };

  // Priority: remote gates first; among equals, follow program order in the
  // traversal direction (ascending for forward, descending for reverse).
  struct Entry {
    bool remote;
    std::size_t local_id;
  };
  const auto better = [reverse_direction](const Entry& a, const Entry& b) {
    if (a.remote != b.remote) return a.remote;
    return reverse_direction ? a.local_id > b.local_id
                             : a.local_id < b.local_id;
  };
  const auto cmp = [better](const Entry& a, const Entry& b) {
    return better(b, a);  // priority_queue keeps the "largest" on top
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> ready(cmp);

  std::vector<std::size_t> remaining(n);
  for (std::size_t l = 0; l < n; ++l) {
    remaining[l] = edges_in(l).size();
    if (remaining[l] == 0) {
      ready.push(Entry{placement.remote(absolute(l)), l});
    }
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const Entry e = ready.top();
    ready.pop();
    order.push_back(absolute(e.local_id));
    for (std::size_t next : edges_out(e.local_id)) {
      if (--remaining[next] == 0) {
        ready.push(Entry{placement.remote(absolute(next)), next});
      }
    }
  }
  DQCSIM_ENSURES_MSG(order.size() == n, "segment DAG has a cycle");
  if (reverse_direction) std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

const char* policy_name(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::Original: return "original";
    case SchedulingPolicy::Asap: return "asap";
    case SchedulingPolicy::Alap: return "alap";
  }
  return "?";
}

std::vector<std::size_t> segment_variant_order(const Circuit& circuit,
                                               const GatePlacement& placement,
                                               const Segment& segment,
                                               SchedulingPolicy policy) {
  DQCSIM_EXPECTS(segment.begin <= segment.end);
  DQCSIM_EXPECTS(segment.end <= circuit.num_gates());
  DQCSIM_EXPECTS(placement.is_remote.size() == circuit.num_gates());

  std::vector<std::size_t> order(segment.size());
  if (policy == SchedulingPolicy::Original) {
    for (std::size_t l = 0; l < order.size(); ++l) {
      order[l] = segment.begin + l;
    }
    return order;
  }

  // Restrict the circuit to the segment and analyse commutation there.
  Circuit sub(circuit.num_qubits());
  for (std::size_t i = segment.begin; i < segment.end; ++i) {
    sub.append(circuit.gate(i));
  }
  const DependencyDag dag(sub, DependencyDag::Mode::CommutationAware);

  return prioritized_topological_order(
      dag, segment, placement,
      /*reverse_direction=*/policy == SchedulingPolicy::Alap);
}

SegmentVariantTable::SegmentVariantTable(const Circuit& circuit,
                                         const GatePlacement& placement,
                                         const std::vector<Segment>& segments)
    : segments_(segments) {
  orders_.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    std::array<std::vector<std::size_t>, 3> entry;
    entry[static_cast<std::size_t>(SchedulingPolicy::Original)] =
        segment_variant_order(circuit, placement, seg,
                              SchedulingPolicy::Original);
    entry[static_cast<std::size_t>(SchedulingPolicy::Asap)] =
        segment_variant_order(circuit, placement, seg, SchedulingPolicy::Asap);
    entry[static_cast<std::size_t>(SchedulingPolicy::Alap)] =
        segment_variant_order(circuit, placement, seg, SchedulingPolicy::Alap);
    orders_.push_back(std::move(entry));
  }
}

const std::vector<std::size_t>& SegmentVariantTable::order(
    std::size_t s, SchedulingPolicy policy) const {
  DQCSIM_EXPECTS(s < orders_.size());
  return orders_[s][static_cast<std::size_t>(policy)];
}

}  // namespace dqcsim::sched
