#include "sched/segmentation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dqcsim::sched {

std::vector<Segment> segment_by_remote_gates(const GatePlacement& placement,
                                             std::size_t remote_per_segment) {
  DQCSIM_EXPECTS(remote_per_segment >= 1);
  const std::size_t n = placement.is_remote.size();
  std::vector<Segment> segments;
  if (n == 0) return segments;

  Segment current;
  current.begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool remote = placement.is_remote[i] != 0;
    if (remote && current.num_remote == remote_per_segment) {
      current.end = i;
      segments.push_back(current);
      current = Segment{};
      current.begin = i;
    }
    if (remote) ++current.num_remote;
  }
  current.end = n;
  segments.push_back(current);

  DQCSIM_ENSURES(segments.front().begin == 0);
  DQCSIM_ENSURES(segments.back().end == n);
  return segments;
}

std::size_t default_segment_size(int num_comm_pairs, double p_succ) {
  DQCSIM_EXPECTS(num_comm_pairs >= 1);
  DQCSIM_EXPECTS(p_succ > 0.0 && p_succ <= 1.0);
  const double product = static_cast<double>(num_comm_pairs) * p_succ;
  return static_cast<std::size_t>(
      std::max(1.0, std::round(product)));
}

}  // namespace dqcsim::sched
