#include "sched/adaptive_policy.hpp"

#include "common/error.hpp"

namespace dqcsim::sched {

AdaptivePolicy::AdaptivePolicy(std::size_t segment_size) : m_(segment_size) {
  DQCSIM_EXPECTS(segment_size >= 1);
}

SchedulingPolicy AdaptivePolicy::choose(
    std::size_t available_pairs) const noexcept {
  if (available_pairs == 0) return SchedulingPolicy::Alap;
  if (available_pairs > m_) return SchedulingPolicy::Asap;
  return SchedulingPolicy::Original;
}

}  // namespace dqcsim::sched
