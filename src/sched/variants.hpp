/// \file variants.hpp
/// \brief Pre-compiled ASAP/ALAP segment variants via gate commutation.
///
/// For each segment the adaptive controller can pick between three
/// equivalent gate orders (paper §III-D, Fig. 4):
///  - Original: program order;
///  - Asap: remote gates hoisted as early as commutation rules allow, so
///    buffered EPR pairs are consumed immediately;
///  - Alap: remote gates sunk as late as possible, buying time for
///    entanglement generation.
/// Every variant is a linearization of the segment's commutation-aware
/// dependency DAG, hence implements the same unitary.

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "sched/segmentation.hpp"

namespace dqcsim::sched {

/// Segment scheduling policy chosen by the adaptive controller.
enum class SchedulingPolicy {
  Original,
  Asap,
  Alap,
};

const char* policy_name(SchedulingPolicy policy) noexcept;

/// Compute the gate order (absolute gate indices into `circuit`) realizing
/// `policy` for `segment`. The order is always a topological order of the
/// commutation-aware DAG restricted to the segment.
/// Preconditions: segment within circuit bounds; placement matches circuit.
std::vector<std::size_t> segment_variant_order(const Circuit& circuit,
                                               const GatePlacement& placement,
                                               const Segment& segment,
                                               SchedulingPolicy policy);

/// All three variants of every segment, indexed [segment][policy].
/// Convenience for the runtime's lookup-table strategy.
class SegmentVariantTable {
 public:
  SegmentVariantTable(const Circuit& circuit, const GatePlacement& placement,
                      const std::vector<Segment>& segments);

  std::size_t num_segments() const noexcept { return segments_.size(); }
  const Segment& segment(std::size_t s) const { return segments_.at(s); }

  /// Gate order of segment s under `policy`.
  const std::vector<std::size_t>& order(std::size_t s,
                                        SchedulingPolicy policy) const;

 private:
  std::vector<Segment> segments_;
  // [segment][policy index] -> gate order
  std::vector<std::array<std::vector<std::size_t>, 3>> orders_;
};

}  // namespace dqcsim::sched
