/// \file adaptive_policy.hpp
/// \brief Run-time segment-variant selection from buffer occupancy (§III-D).
///
/// "During execution, if e > m, the controller looks up the next segment
/// with ASAP policy. If e = 0, the controller opts for the ALAP policy.
/// Otherwise, the controller uses the original scheduling."

#pragma once

#include <cstddef>

#include "sched/variants.hpp"

namespace dqcsim::sched {

/// The paper's threshold rule mapping available EPR pairs to a policy.
class AdaptivePolicy {
 public:
  /// \param segment_size the per-segment remote-gate quota m.
  explicit AdaptivePolicy(std::size_t segment_size);

  /// Select the variant for the next segment given `available_pairs` (e).
  SchedulingPolicy choose(std::size_t available_pairs) const noexcept;

  std::size_t segment_size() const noexcept { return m_; }

 private:
  std::size_t m_;
};

}  // namespace dqcsim::sched
