/// \file remote_gates.hpp
/// \brief Classification of gates as local or remote under a partition.
///
/// A two-qubit gate whose operands live on different QPU nodes is *remote*
/// and must be implemented by gate teleportation, consuming one EPR pair
/// (paper §II-C). Everything else is local to one node.

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "net/router.hpp"

namespace dqcsim::sched {

/// Per-gate placement information for a partitioned circuit.
struct GatePlacement {
  std::vector<char> is_remote;  ///< 1 if gate i is remote (char: vector<bool> avoided)
  std::size_t num_remote_2q = 0;
  std::size_t num_local_2q = 0;
  std::size_t num_1q = 0;
  std::size_t num_measure = 0;

  bool remote(std::size_t gate_index) const {
    return is_remote.at(gate_index) != 0;
  }
};

/// Classify every gate of `circuit` under the qubit->node `assignment`.
/// Precondition: assignment.size() == circuit.num_qubits().
GatePlacement classify_gates(const Circuit& circuit,
                             const std::vector<int>& assignment);

/// In-place variant: overwrite `out` with the classification, reusing its
/// storage (no allocation once `out.is_remote` has sufficient capacity).
void classify_gates(const Circuit& circuit, const std::vector<int>& assignment,
                    GatePlacement& out);

/// Topology-aware remote-gate cost summary: on a routed interconnect a
/// remote gate's EPR pair crosses hops physical links and pays hops - 1
/// entanglement swaps, so scheduling cost scales with route length, not
/// just the remote-gate count.
struct RemoteDistanceStats {
  std::size_t multihop_gates = 0;  ///< remote gates with hops > 1
  std::size_t total_hops = 0;      ///< sum of hops over remote gates
  std::size_t total_swaps = 0;     ///< sum of (hops - 1) over remote gates
  int max_hops = 0;                ///< longest route any gate pays
};

/// Accumulate the route-length statistics of every remote gate in
/// `placement` under `router` (one pair quota per gate; multiply by
/// pairs_per_remote_gate for state teleportation / purification).
/// Preconditions: placement matches circuit; assignment entries are valid
/// node ids of router's topology.
RemoteDistanceStats remote_distance_stats(const Circuit& circuit,
                                          const std::vector<int>& assignment,
                                          const GatePlacement& placement,
                                          const net::Router& router);

}  // namespace dqcsim::sched
