/// \file segmentation.hpp
/// \brief Partitioning of a circuit into segments of m remote gates.
///
/// The adaptive scheduler (paper §III-D) pre-compiles ASAP/ALAP variants per
/// *segment* instead of re-synthesizing the whole circuit at run time. A
/// segment is a contiguous gate range containing (up to) m remote gates; the
/// boundary falls immediately before the first remote gate that would exceed
/// the quota, so trailing local gates stay attached to their segment.

#pragma once

#include <cstddef>
#include <vector>

#include "sched/remote_gates.hpp"

namespace dqcsim::sched {

/// A contiguous gate index range [begin, end).
struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t num_remote = 0;

  std::size_t size() const noexcept { return end - begin; }
};

/// Split a circuit (described by its placement) into segments of at most
/// `remote_per_segment` remote gates. Segments cover [0, num_gates) exactly
/// once, in order; only the last segment may hold fewer remote gates, and a
/// circuit with no remote gates yields a single segment.
/// Precondition: remote_per_segment >= 1.
std::vector<Segment> segment_by_remote_gates(const GatePlacement& placement,
                                             std::size_t remote_per_segment);

/// The paper's default segment size: the product of the number of
/// communication-qubit pairs and the per-attempt success probability,
/// clamped to at least 1 (§III-D).
std::size_t default_segment_size(int num_comm_pairs, double p_succ);

}  // namespace dqcsim::sched
