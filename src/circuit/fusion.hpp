/// \file fusion.hpp
/// \brief Gate-fusion pass: compile a Circuit into a shorter sequence of
/// dense/structured matrix operations for the simulation kernels.
///
/// Every statevector (and density-matrix) pass over a 2^n state is
/// memory-bound, so the dominant cost of `apply_circuit` is the *number of
/// sweeps*, not the per-gate arithmetic. The pass merges adjacent gates on
/// the same wires into single 2x2/4x4 matrices:
///
///  - consecutive one-qubit gates on a wire multiply into one Mat2;
///  - a one-qubit gate merges into the neighbouring two-qubit op on its
///    wire (embedded via a Kronecker product);
///  - consecutive two-qubit gates on the same wire pair multiply into one
///    Mat4 (operand order aligned automatically);
///  - a diagonal two-qubit gate may additionally commute backwards past
///    other diagonal gates (the commutation rule of commutation.hpp:
///    Z-diagonal gates mutually commute) to reach a mergeable partner.
///
/// Each fused op is classified by exact-zero structure (diagonal /
/// permutation / dense) so the kernels can pick specialized fast paths.
/// The fused program computes the same unitary as the source circuit up to
/// floating-point reassociation (~1e-13 on hundreds of gates).

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "qsim/gates_matrices.hpp"

namespace dqcsim {

/// Tuning knobs for fuse_circuit.
struct FusionOptions {
  /// Allow a diagonal two-qubit gate to hop backwards over diagonal gates
  /// sharing its wires (and any gates on disjoint wires) to merge with an
  /// earlier diagonal op on the same pair.
  bool allow_diagonal_commute = true;
  /// Backward-scan window for the commute hop (ops, not gates).
  std::size_t max_hop_window = 32;
};

/// One fused operation: a 2x2 or 4x4 unitary plus its structural class.
struct FusedOp {
  enum class Kind : std::uint8_t {
    Dense1Q,  ///< general 2x2
    Diag1Q,   ///< diagonal 2x2 (phase per basis value)
    Dense2Q,  ///< general 4x4
    Diag2Q,   ///< diagonal 4x4
    Perm2Q,   ///< one nonzero per row (branch permutation with phases)
  };

  Kind kind = Kind::Dense1Q;
  QubitId q0 = 0;  ///< sole operand (1q) or high-bit operand (2q)
  QubitId q1 = 0;  ///< low-bit operand (2q only)
  qsim::Mat2 m2{};  ///< valid when arity() == 1
  qsim::Mat4 m4{};  ///< valid when arity() == 2
  std::size_t source_gates = 0;  ///< how many IR gates were folded in

  int arity() const noexcept {
    return (kind == Kind::Dense1Q || kind == Kind::Diag1Q) ? 1 : 2;
  }
  bool diagonal() const noexcept {
    return kind == Kind::Diag1Q || kind == Kind::Diag2Q;
  }
  bool acts_on(QubitId q) const noexcept {
    return q == q0 || (arity() == 2 && q == q1);
  }
};

/// The output of the fusion pass: an ordered fused-op program.
class FusedCircuit {
 public:
  FusedCircuit(int num_qubits, std::vector<FusedOp> ops,
               std::size_t source_gate_count);

  int num_qubits() const noexcept { return num_qubits_; }
  const std::vector<FusedOp>& ops() const noexcept { return ops_; }
  std::size_t num_ops() const noexcept { return ops_.size(); }

  /// Number of gates in the source circuit (for compression metrics).
  std::size_t source_gate_count() const noexcept { return source_gates_; }

  /// source_gate_count() / num_ops(); 1.0 when nothing fused.
  double compression_ratio() const noexcept;

 private:
  int num_qubits_;
  std::vector<FusedOp> ops_;
  std::size_t source_gates_;
};

/// Run the fusion pass. Precondition: the circuit contains only unitary
/// gates (Measure is rejected — fusion feeds the pure-state kernels).
FusedCircuit fuse_circuit(const Circuit& qc, const FusionOptions& opts = {});

/// Sentinel for fusible_1q_chain_next: no fusible successor.
inline constexpr std::size_t kNoFusedNext = ~std::size_t{0};

/// Chain analysis for the execution engine's event fusion: next[g] is the
/// index of the gate immediately following gate g on its wire when *both*
/// are one-qubit operations (Measure included), i.e. when g's completion
/// enables exactly that gate and nothing else. Entries are kNoFusedNext
/// otherwise. Such chains can be executed as a single scheduling event with
/// summed latency without changing any observable timing.
std::vector<std::size_t> fusible_1q_chain_next(const Circuit& qc);

}  // namespace dqcsim
