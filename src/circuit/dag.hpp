/// \file dag.hpp
/// \brief Gate dependency DAG with ASAP/ALAP levels and critical path.
///
/// Two dependency notions are supported:
///  - *program-order* edges: consecutive gates sharing a qubit depend on each
///    other (what a conventional scheduler enforces);
///  - *commutation-aware* edges: a dependency exists only if the gates share
///    a qubit AND do not provably commute (what the ASAP/ALAP segment
///    variants in the paper's §III-D are allowed to exploit).

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace dqcsim {

/// Dependency DAG over a circuit's gates. Node i corresponds to gate i.
class DependencyDag {
 public:
  enum class Mode {
    ProgramOrder,      ///< edge between consecutive same-qubit gates
    CommutationAware,  ///< edge only when the pair does not commute
  };

  /// Build the DAG for `circuit` under the given dependency mode.
  explicit DependencyDag(const Circuit& circuit,
                         Mode mode = Mode::ProgramOrder);

  std::size_t num_nodes() const noexcept { return preds_.size(); }

  /// Direct predecessors (gates that must finish before gate i starts).
  const std::vector<std::size_t>& preds(std::size_t i) const;

  /// Direct successors of gate i.
  const std::vector<std::size_t>& succs(std::size_t i) const;

  /// ASAP level of each gate: length (in gates) of the longest dependency
  /// chain ending at, and including, the gate. Sources have level 1.
  const std::vector<std::size_t>& asap_levels() const noexcept {
    return asap_;
  }

  /// ALAP level of each gate for the DAG's overall depth: gates on the
  /// critical path have asap == alap.
  const std::vector<std::size_t>& alap_levels() const noexcept {
    return alap_;
  }

  /// Longest chain length in gates (== max ASAP level; 0 for empty circuit).
  std::size_t critical_path_length() const noexcept { return depth_; }

  /// Slack of gate i: alap - asap (0 on the critical path).
  std::size_t slack(std::size_t i) const;

  /// Gates in a valid topological order (by construction, 0..n-1 is one,
  /// since edges always point from earlier to later program positions).
  std::vector<std::size_t> topological_order() const;

  /// True if there is a directed path from gate `a` to gate `b`.
  /// O(V+E) per query; intended for tests and assertions.
  bool reaches(std::size_t a, std::size_t b) const;

 private:
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<std::size_t> asap_;
  std::vector<std::size_t> alap_;
  std::size_t depth_ = 0;
};

}  // namespace dqcsim
