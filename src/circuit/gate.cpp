#include "circuit/gate.hpp"

#include <sstream>

#include "common/error.hpp"

namespace dqcsim {

int gate_arity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::RZZ:
    case GateKind::SWAP:
      return 2;
    default:
      return 1;
  }
}

bool is_two_qubit(GateKind kind) noexcept { return gate_arity(kind) == 2; }

bool is_diagonal(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::CZ:
    case GateKind::CP:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

bool has_param(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::RZZ:
    case GateKind::CP:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::H: return "h";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::CX: return "cx";
    case GateKind::CZ: return "cz";
    case GateKind::CP: return "cp";
    case GateKind::RZZ: return "rzz";
    case GateKind::SWAP: return "swap";
    case GateKind::Measure: return "measure";
  }
  return "?";
}

bool Gate::acts_on(QubitId q) const noexcept {
  if (qubits[0] == q) return true;
  return arity() == 2 && qubits[1] == q;
}

bool Gate::overlaps(const Gate& other) const noexcept {
  for (int i = 0; i < arity(); ++i) {
    if (other.acts_on(qubits[static_cast<std::size_t>(i)])) return true;
  }
  return false;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind);
  if (has_param(kind)) {
    os.precision(4);
    os << '(' << std::fixed << param << ')';
  }
  os << " q" << qubits[0];
  if (arity() == 2) os << ", q" << qubits[1];
  return os.str();
}

Gate make_gate(GateKind kind, QubitId q, double param) {
  DQCSIM_EXPECTS_MSG(gate_arity(kind) == 1, "kind requires two operands");
  DQCSIM_EXPECTS(q >= 0);
  return Gate{kind, {q, -1}, param};
}

Gate make_gate(GateKind kind, QubitId q0, QubitId q1, double param) {
  DQCSIM_EXPECTS_MSG(gate_arity(kind) == 2, "kind takes one operand");
  DQCSIM_EXPECTS(q0 >= 0 && q1 >= 0);
  DQCSIM_EXPECTS_MSG(q0 != q1, "two-qubit gate operands must differ");
  return Gate{kind, {q0, q1}, param};
}

}  // namespace dqcsim
