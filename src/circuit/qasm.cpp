#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <numbers>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace dqcsim {
namespace {

std::string format_angle(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

[[noreturn]] void parse_error(int line, const std::string& message) {
  throw ConfigError("QASM parse error at line " + std::to_string(line) +
                    ": " + message);
}

/// Strip comments and surrounding whitespace.
std::string clean_line(std::string line) {
  const auto comment = line.find("//");
  if (comment != std::string::npos) line.erase(comment);
  const auto begin = line.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = line.find_last_not_of(" \t\r\n");
  return line.substr(begin, end - begin + 1);
}

/// Parse "q[3]" -> 3 for register name "q".
QubitId parse_operand(const std::string& token, const std::string& qreg,
                      int line) {
  const std::string prefix = qreg + "[";
  if (token.rfind(prefix, 0) != 0 || token.back() != ']') {
    parse_error(line, "bad operand '" + token + "'");
  }
  try {
    return static_cast<QubitId>(
        std::stol(token.substr(prefix.size(),
                               token.size() - prefix.size() - 1)));
  } catch (const std::exception&) {
    parse_error(line, "bad qubit index in '" + token + "'");
  }
}

/// Evaluate the angle expressions emitted by to_qasm and common Qiskit
/// output: a decimal literal, optionally "pi", "-pi", "pi/N", "N*pi/M".
double parse_angle(const std::string& expr, int line) {
  std::string s;
  for (char c : expr) {
    if (!std::isspace(static_cast<unsigned char>(c))) s += c;
  }
  if (s.empty()) parse_error(line, "empty angle");
  double sign = 1.0;
  if (s[0] == '-') {
    sign = -1.0;
    s.erase(0, 1);
  }
  const auto pi_pos = s.find("pi");
  if (pi_pos == std::string::npos) {
    try {
      return sign * std::stod(s);
    } catch (const std::exception&) {
      parse_error(line, "bad angle '" + expr + "'");
    }
  }
  // forms: pi, pi/D, N*pi, N*pi/D
  double numerator = 1.0;
  double denominator = 1.0;
  const std::string before = s.substr(0, pi_pos);
  const std::string after = s.substr(pi_pos + 2);
  try {
    if (!before.empty()) {
      if (before.back() != '*') parse_error(line, "bad angle '" + expr + "'");
      numerator = std::stod(before.substr(0, before.size() - 1));
    }
    if (!after.empty()) {
      if (after.front() != '/') parse_error(line, "bad angle '" + expr + "'");
      denominator = std::stod(after.substr(1));
    }
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    parse_error(line, "bad angle '" + expr + "'");
  }
  return sign * numerator * std::numbers::pi / denominator;
}

std::optional<GateKind> kind_from_name(const std::string& name) {
  if (name == "h") return GateKind::H;
  if (name == "x") return GateKind::X;
  if (name == "y") return GateKind::Y;
  if (name == "z") return GateKind::Z;
  if (name == "s") return GateKind::S;
  if (name == "sdg") return GateKind::Sdg;
  if (name == "t") return GateKind::T;
  if (name == "tdg") return GateKind::Tdg;
  if (name == "rx") return GateKind::RX;
  if (name == "ry") return GateKind::RY;
  if (name == "rz") return GateKind::RZ;
  if (name == "cx") return GateKind::CX;
  if (name == "cz") return GateKind::CZ;
  if (name == "cp") return GateKind::CP;
  if (name == "rzz") return GateKind::RZZ;
  if (name == "swap") return GateKind::SWAP;
  return std::nullopt;
}

}  // namespace

std::string to_qasm(const Circuit& qc) {
  std::ostringstream os;
  write_qasm(qc, os);
  return os.str();
}

void write_qasm(const Circuit& qc, std::ostream& os) {
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (!qc.name().empty()) os << "// circuit: " << qc.name() << "\n";
  os << "qreg q[" << qc.num_qubits() << "];\n";
  const std::size_t measures = qc.count_measure();
  if (measures > 0) os << "creg c[" << qc.num_qubits() << "];\n";
  for (const Gate& g : qc.gates()) {
    if (g.kind == GateKind::Measure) {
      os << "measure q[" << g.q0() << "] -> c[" << g.q0() << "];\n";
      continue;
    }
    os << gate_name(g.kind);
    if (has_param(g.kind)) os << '(' << format_angle(g.param) << ')';
    os << " q[" << g.q0() << ']';
    if (g.arity() == 2) os << ", q[" << g.q1() << ']';
    os << ";\n";
  }
}

Circuit from_qasm(const std::string& text) {
  std::istringstream is(text);
  return read_qasm(is);
}

Circuit read_qasm(std::istream& is) {
  Circuit qc(0);
  std::string qreg_name;
  int num_qubits = 0;
  bool have_qreg = false;
  std::string name;

  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    // Preserve the circuit-name comment before stripping comments.
    const auto name_tag = raw.find("// circuit: ");
    if (name_tag != std::string::npos) {
      name = clean_line(raw.substr(name_tag + 12));
    }
    std::string line = clean_line(raw);
    if (line.empty()) continue;
    // Statements may share a line; split on ';'.
    std::istringstream stmts(line);
    std::string stmt;
    while (std::getline(stmts, stmt, ';')) {
      stmt = clean_line(stmt);
      if (stmt.empty()) continue;
      if (stmt.rfind("OPENQASM", 0) == 0) continue;
      if (stmt.rfind("include", 0) == 0) continue;
      if (stmt.rfind("creg", 0) == 0) continue;
      if (stmt.rfind("barrier", 0) == 0) continue;
      if (stmt.rfind("qreg", 0) == 0) {
        if (have_qreg) parse_error(line_no, "multiple qreg declarations");
        const auto bracket = stmt.find('[');
        const auto close = stmt.find(']');
        if (bracket == std::string::npos || close == std::string::npos) {
          parse_error(line_no, "malformed qreg");
        }
        qreg_name = clean_line(stmt.substr(4, bracket - 4));
        try {
          num_qubits =
              std::stoi(stmt.substr(bracket + 1, close - bracket - 1));
        } catch (const std::exception&) {
          parse_error(line_no, "bad qreg size");
        }
        qc = Circuit(num_qubits, name);
        have_qreg = true;
        continue;
      }
      if (!have_qreg) parse_error(line_no, "gate before qreg");

      if (stmt.rfind("measure", 0) == 0) {
        const auto arrow = stmt.find("->");
        if (arrow == std::string::npos) parse_error(line_no, "bad measure");
        const QubitId q = parse_operand(
            clean_line(stmt.substr(7, arrow - 7)), qreg_name, line_no);
        qc.measure(q);
        continue;
      }

      // gate-name [ '(' angle ')' ] operand [, operand]
      std::size_t pos = 0;
      while (pos < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[pos])) != 0)) {
        ++pos;
      }
      const std::string gate = stmt.substr(0, pos);
      const auto kind = kind_from_name(gate);
      if (!kind) parse_error(line_no, "unsupported gate '" + gate + "'");

      double angle = 0.0;
      if (pos < stmt.size() && stmt[pos] == '(') {
        const auto close = stmt.find(')', pos);
        if (close == std::string::npos) parse_error(line_no, "missing ')'");
        angle = parse_angle(stmt.substr(pos + 1, close - pos - 1), line_no);
        pos = close + 1;
      } else if (has_param(*kind)) {
        parse_error(line_no, "gate '" + gate + "' needs an angle");
      }

      // Split remaining operands on ','.
      std::vector<QubitId> operands;
      std::istringstream rest(stmt.substr(pos));
      std::string token;
      while (std::getline(rest, token, ',')) {
        token = clean_line(token);
        if (token.empty()) continue;
        operands.push_back(parse_operand(token, qreg_name, line_no));
      }
      if (static_cast<int>(operands.size()) != gate_arity(*kind)) {
        parse_error(line_no, "wrong operand count for '" + gate + "'");
      }
      if (operands.size() == 1) {
        qc.append(make_gate(*kind, operands[0], angle));
      } else {
        qc.append(make_gate(*kind, operands[0], operands[1], angle));
      }
    }
  }
  if (!have_qreg) throw ConfigError("QASM parse error: no qreg declared");
  return qc;
}

}  // namespace dqcsim
