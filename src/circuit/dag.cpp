#include "circuit/dag.hpp"

#include <algorithm>
#include <queue>

#include "circuit/commutation.hpp"
#include "common/error.hpp"

namespace dqcsim {

DependencyDag::DependencyDag(const Circuit& circuit, Mode mode) {
  const std::size_t n = circuit.num_gates();
  preds_.assign(n, {});
  succs_.assign(n, {});

  // Gates already seen on each wire, in program order.
  std::vector<std::vector<std::size_t>> on_wire(
      static_cast<std::size_t>(circuit.num_qubits()));

  std::vector<char> linked(n, 0);  // scratch de-dup marker per gate
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& gi = circuit.gate(i);
    std::vector<std::size_t> new_preds;
    for (int k = 0; k < gi.arity(); ++k) {
      auto& wire =
          on_wire[static_cast<std::size_t>(gi.qubits[static_cast<std::size_t>(k)])];
      if (mode == Mode::ProgramOrder) {
        if (!wire.empty()) {
          const std::size_t j = wire.back();
          if (!linked[j]) {
            linked[j] = 1;
            new_preds.push_back(j);
          }
        }
      } else {
        // Commutation-aware: gate i depends on every earlier wire-sharing
        // gate it does not provably commute with. Stopping at the first
        // non-commuting gate would be unsound (a commuting intermediary can
        // hide an older conflicting gate), so the whole wire history is
        // scanned; transitive edges are harmless for level computation.
        for (auto it = wire.rbegin(); it != wire.rend(); ++it) {
          const std::size_t j = *it;
          if (linked[j]) continue;
          if (!gates_commute(gi, circuit.gate(j))) {
            linked[j] = 1;
            new_preds.push_back(j);
          }
        }
      }
      wire.push_back(i);
    }
    for (std::size_t j : new_preds) {
      linked[j] = 0;
      preds_[i].push_back(j);
      succs_[j].push_back(i);
    }
    std::sort(preds_[i].begin(), preds_[i].end());
  }

  // ASAP levels in one forward pass (indices are already topological).
  asap_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j : preds_[i]) {
      asap_[i] = std::max(asap_[i], asap_[j] + 1);
    }
    depth_ = std::max(depth_, asap_[i]);
  }

  // ALAP levels in one backward pass.
  alap_.assign(n, depth_);
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j : succs_[i]) {
      alap_[i] = std::min(alap_[i], alap_[j] - 1);
    }
  }
}

const std::vector<std::size_t>& DependencyDag::preds(std::size_t i) const {
  DQCSIM_EXPECTS(i < preds_.size());
  return preds_[i];
}

const std::vector<std::size_t>& DependencyDag::succs(std::size_t i) const {
  DQCSIM_EXPECTS(i < succs_.size());
  return succs_[i];
}

std::size_t DependencyDag::slack(std::size_t i) const {
  DQCSIM_EXPECTS(i < asap_.size());
  return alap_[i] - asap_[i];
}

std::vector<std::size_t> DependencyDag::topological_order() const {
  std::vector<std::size_t> order(num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  return order;
}

bool DependencyDag::reaches(std::size_t a, std::size_t b) const {
  DQCSIM_EXPECTS(a < num_nodes() && b < num_nodes());
  if (a == b) return true;
  std::vector<char> seen(num_nodes(), 0);
  std::queue<std::size_t> frontier;
  frontier.push(a);
  seen[a] = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v : succs_[u]) {
      if (v == b) return true;
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push(v);
      }
    }
  }
  return false;
}

}  // namespace dqcsim
