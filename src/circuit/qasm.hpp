/// \file qasm.hpp
/// \brief OpenQASM 2.0 export/import for the circuit IR.
///
/// Lets users exchange workloads with the wider toolchain (Qiskit et al.):
/// every IR gate maps to a standard-library QASM gate, and the importer
/// accepts the same subset back (one quantum register, no classical control
/// flow). Round-tripping a circuit is exact up to floating-point printing
/// of angles (17 significant digits are emitted, so double round-trips are
/// bit-faithful in practice).

#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace dqcsim {

/// Serialize `qc` as OpenQASM 2.0 (header, one qreg named "q", one creg
/// when the circuit contains measurements).
std::string to_qasm(const Circuit& qc);

/// Write to_qasm(qc) into a stream.
void write_qasm(const Circuit& qc, std::ostream& os);

/// Parse an OpenQASM 2.0 program using the subset emitted by to_qasm:
/// OPENQASM/include headers, a single qreg, optional cregs, the gates
/// h x y z s sdg t tdg rx ry rz cx cz cp rzz swap, and measure.
/// Throws ConfigError with a line number on anything else.
Circuit from_qasm(const std::string& text);

/// Parse a stream (see from_qasm).
Circuit read_qasm(std::istream& is);

}  // namespace dqcsim
