#include "circuit/interaction_graph.hpp"

namespace dqcsim {

partition::Graph interaction_graph(const Circuit& circuit) {
  partition::Graph g(circuit.num_qubits());
  for (const Gate& gate : circuit.gates()) {
    if (gate.arity() == 2) {
      g.add_edge(gate.q0(), gate.q1(), 1);
    }
  }
  return g;
}

}  // namespace dqcsim
