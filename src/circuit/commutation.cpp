#include "circuit/commutation.hpp"

namespace dqcsim {
namespace {

bool is_x_axis(GateKind kind) noexcept {
  return kind == GateKind::X || kind == GateKind::RX;
}

/// True if every operand of `g` that overlaps gate `cx` touches only
/// `cx`'s control qubit.
bool touches_only_control(const Gate& g, const Gate& cx) noexcept {
  for (int i = 0; i < g.arity(); ++i) {
    const QubitId q = g.qubits[static_cast<std::size_t>(i)];
    if (q == cx.q1()) return false;  // touches target
  }
  return true;
}

/// True if every operand of `g` that overlaps gate `cx` touches only
/// `cx`'s target qubit.
bool touches_only_target(const Gate& g, const Gate& cx) noexcept {
  for (int i = 0; i < g.arity(); ++i) {
    const QubitId q = g.qubits[static_cast<std::size_t>(i)];
    if (q == cx.q0()) return false;  // touches control
  }
  return true;
}

bool commutes_with_cx(const Gate& g, const Gate& cx) noexcept {
  // Z-diagonal gate acting only on the control wire of the CX.
  if (is_diagonal(g.kind) && touches_only_control(g, cx)) return true;
  // X-axis one-qubit gate acting only on the target wire.
  if (g.arity() == 1 && is_x_axis(g.kind) && touches_only_target(g, cx)) {
    return true;
  }
  return false;
}

}  // namespace

bool gates_commute(const Gate& a, const Gate& b) noexcept {
  if (!a.overlaps(b)) return true;
  if (a == b) return true;

  // Measurements pin the ordering of anything they overlap.
  if (a.kind == GateKind::Measure || b.kind == GateKind::Measure) return false;

  // Mutually diagonal gates commute on any overlap.
  if (is_diagonal(a.kind) && is_diagonal(b.kind)) return true;

  const bool a_is_cx = (a.kind == GateKind::CX);
  const bool b_is_cx = (b.kind == GateKind::CX);

  if (a_is_cx && b_is_cx) {
    // Overlapping CX pairs commute iff they share only controls or only
    // targets (no control-of-one = target-of-other wire).
    const bool cross = (a.q0() == b.q1()) || (a.q1() == b.q0());
    return !cross;
  }
  if (a_is_cx) return commutes_with_cx(b, a);
  if (b_is_cx) return commutes_with_cx(a, b);

  // Same-axis one-qubit rotations commute (e.g. RX with RX or X).
  if (a.arity() == 1 && b.arity() == 1) {
    if (is_x_axis(a.kind) && is_x_axis(b.kind)) return true;
  }

  return false;
}

}  // namespace dqcsim
