/// \file circuit.hpp
/// \brief The Circuit container: an ordered gate list over n qubits.
///
/// Circuits are the interchange format between the workload generators, the
/// partitioner (via the interaction graph), the scheduler (segmentation and
/// ASAP/ALAP variants) and the runtime engine. Gate order is program order;
/// dependency structure is derived on demand (see dag.hpp).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace dqcsim {

/// An ordered list of gates acting on a fixed-width qubit register.
class Circuit {
 public:
  /// Create an empty circuit over `num_qubits` qubits (may be 0 for tests).
  explicit Circuit(int num_qubits = 0, std::string name = "");

  int num_qubits() const noexcept { return num_qubits_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t num_gates() const noexcept { return gates_.size(); }
  const Gate& gate(std::size_t i) const;
  const std::vector<Gate>& gates() const noexcept { return gates_; }

  /// Append a gate; operands must lie in [0, num_qubits).
  void append(const Gate& g);

  // Convenience builders (operands validated as in append).
  void h(QubitId q) { append(make_gate(GateKind::H, q)); }
  void x(QubitId q) { append(make_gate(GateKind::X, q)); }
  void y(QubitId q) { append(make_gate(GateKind::Y, q)); }
  void z(QubitId q) { append(make_gate(GateKind::Z, q)); }
  void s(QubitId q) { append(make_gate(GateKind::S, q)); }
  void sdg(QubitId q) { append(make_gate(GateKind::Sdg, q)); }
  void t(QubitId q) { append(make_gate(GateKind::T, q)); }
  void tdg(QubitId q) { append(make_gate(GateKind::Tdg, q)); }
  void rx(QubitId q, double theta) { append(make_gate(GateKind::RX, q, theta)); }
  void ry(QubitId q, double theta) { append(make_gate(GateKind::RY, q, theta)); }
  void rz(QubitId q, double theta) { append(make_gate(GateKind::RZ, q, theta)); }
  void cx(QubitId c, QubitId t) { append(make_gate(GateKind::CX, c, t)); }
  void cz(QubitId a, QubitId b) { append(make_gate(GateKind::CZ, a, b)); }
  void cp(QubitId c, QubitId t, double theta) {
    append(make_gate(GateKind::CP, c, t, theta));
  }
  void rzz(QubitId a, QubitId b, double theta) {
    append(make_gate(GateKind::RZZ, a, b, theta));
  }
  void swap(QubitId a, QubitId b) { append(make_gate(GateKind::SWAP, a, b)); }
  void measure(QubitId q) { append(make_gate(GateKind::Measure, q)); }

  /// Number of one-qubit gates (measurements excluded).
  std::size_t count_1q() const noexcept;

  /// Number of two-qubit gates.
  std::size_t count_2q() const noexcept;

  /// Number of measurement operations.
  std::size_t count_measure() const noexcept;

  /// Unit-layer depth: greedy ASAP layering where every gate occupies one
  /// layer on each operand. This is the depth metric of the paper's Table I.
  std::size_t unit_depth() const;

  /// Latency-weighted depth: ASAP schedule makespan where each gate occupies
  /// its operands for `latency_of(gate)` time units.
  /// `latency_of` must return a nonnegative latency.
  double weighted_depth(double (*latency_of)(const Gate&)) const;

  /// Concatenate another circuit of the same width onto this one.
  void extend(const Circuit& other);

  /// Multi-line textual dump (one gate per line), for debugging and tests.
  std::string to_string() const;

 private:
  int num_qubits_;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace dqcsim
