/// \file commutation.hpp
/// \brief Conservative pairwise gate commutation analysis.
///
/// The adaptive scheduler (paper §III-D) derives ASAP/ALAP variants of a
/// circuit segment by commuting remote gates past neighbouring gates. Moving
/// a gate is legal only when it commutes with every gate it passes, so the
/// scheduler relies on this predicate. The rules are *sound but incomplete*:
/// `gates_commute` may return false for gates that in fact commute, but never
/// returns true for gates that do not.

#pragma once

#include "circuit/gate.hpp"

namespace dqcsim {

/// True when exchanging the two gates provably leaves the unitary unchanged.
///
/// Rules implemented:
///  - gates on disjoint qubits always commute;
///  - Z-diagonal gates (Z, S, Sdg, T, Tdg, RZ, CZ, CP, RZZ) mutually commute;
///  - a Z-diagonal gate commutes with CX when it only touches the CX control;
///  - X-axis gates (X, RX) commute with CX when they only touch the CX target;
///  - CX pairs sharing only controls, or only targets, commute;
///  - identical gates commute;
///  - everything else is conservatively reported as non-commuting.
/// Measurements never commute with overlapping gates.
bool gates_commute(const Gate& a, const Gate& b) noexcept;

}  // namespace dqcsim
