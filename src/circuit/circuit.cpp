#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace dqcsim {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  DQCSIM_EXPECTS(num_qubits >= 0);
}

const Gate& Circuit::gate(std::size_t i) const {
  DQCSIM_EXPECTS(i < gates_.size());
  return gates_[i];
}

void Circuit::append(const Gate& g) {
  for (int i = 0; i < g.arity(); ++i) {
    const QubitId q = g.qubits[static_cast<std::size_t>(i)];
    DQCSIM_EXPECTS_MSG(q >= 0 && q < num_qubits_,
                       "gate operand out of register range");
  }
  gates_.push_back(g);
}

std::size_t Circuit::count_1q() const noexcept {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.arity() == 1 && g.kind != GateKind::Measure) ++n;
  }
  return n;
}

std::size_t Circuit::count_2q() const noexcept {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.arity() == 2) ++n;
  }
  return n;
}

std::size_t Circuit::count_measure() const noexcept {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::Measure) ++n;
  }
  return n;
}

std::size_t Circuit::unit_depth() const {
  std::vector<std::size_t> level(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t depth = 0;
  for (const auto& g : gates_) {
    std::size_t at = 0;
    for (int i = 0; i < g.arity(); ++i) {
      at = std::max(at, level[static_cast<std::size_t>(
                        g.qubits[static_cast<std::size_t>(i)])]);
    }
    ++at;
    for (int i = 0; i < g.arity(); ++i) {
      level[static_cast<std::size_t>(g.qubits[static_cast<std::size_t>(i)])] =
          at;
    }
    depth = std::max(depth, at);
  }
  return depth;
}

double Circuit::weighted_depth(double (*latency_of)(const Gate&)) const {
  DQCSIM_EXPECTS(latency_of != nullptr);
  std::vector<double> free_at(static_cast<std::size_t>(num_qubits_), 0.0);
  double makespan = 0.0;
  for (const auto& g : gates_) {
    double start = 0.0;
    for (int i = 0; i < g.arity(); ++i) {
      start = std::max(start, free_at[static_cast<std::size_t>(
                                  g.qubits[static_cast<std::size_t>(i)])]);
    }
    const double lat = latency_of(g);
    DQCSIM_EXPECTS_MSG(lat >= 0.0, "gate latency must be nonnegative");
    const double end = start + lat;
    for (int i = 0; i < g.arity(); ++i) {
      free_at[static_cast<std::size_t>(g.qubits[static_cast<std::size_t>(i)])] =
          end;
    }
    makespan = std::max(makespan, end);
  }
  return makespan;
}

void Circuit::extend(const Circuit& other) {
  DQCSIM_EXPECTS_MSG(other.num_qubits_ <= num_qubits_,
                     "extending circuit must not widen the register");
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit \"" << name_ << "\" (" << num_qubits_ << " qubits, "
     << gates_.size() << " gates)\n";
  for (const auto& g : gates_) os << "  " << g.to_string() << '\n';
  return os.str();
}

}  // namespace dqcsim
