/// \file gate.hpp
/// \brief Gate-level IR: the vocabulary of operations dqcsim circuits use.
///
/// The paper's workloads (TLIM quench, QAOA MaxCut, QFT) only require a
/// small universal set: Pauli/Clifford 1Q gates, axis rotations, CX/CZ/CP,
/// the diagonal two-qubit RZZ, and SWAP. Every gate is value-semantic and
/// trivially copyable.

#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace dqcsim {

/// Qubit index within a circuit (0-based).
using QubitId = std::int32_t;

/// Kinds of gates supported by the IR.
enum class GateKind : std::uint8_t {
  // one-qubit
  H,
  X,
  Y,
  Z,
  S,
  Sdg,
  T,
  Tdg,
  RX,
  RY,
  RZ,
  // two-qubit
  CX,
  CZ,
  CP,    ///< controlled-phase with angle parameter
  RZZ,   ///< exp(-i theta/2 Z⊗Z)
  SWAP,
  // non-unitary
  Measure,  ///< single-qubit computational-basis measurement
};

/// Number of qubit operands for a gate kind (1 or 2).
int gate_arity(GateKind kind) noexcept;

/// True for two-qubit unitaries (CX, CZ, CP, RZZ, SWAP).
bool is_two_qubit(GateKind kind) noexcept;

/// True for gates diagonal in the computational (Z) basis.
/// Diagonal gates mutually commute regardless of operand overlap.
bool is_diagonal(GateKind kind) noexcept;

/// True when the kind carries a rotation/phase angle parameter.
bool has_param(GateKind kind) noexcept;

/// Short mnemonic, e.g. "cx", "rzz".
std::string gate_name(GateKind kind);

/// One gate instance: a kind, 1-2 qubit operands, and an optional angle.
struct Gate {
  GateKind kind;
  std::array<QubitId, 2> qubits;  ///< operand order matters for CX/CP
  double param = 0.0;             ///< angle for RX/RY/RZ/RZZ/CP, else unused

  /// Number of operands (1 or 2).
  int arity() const noexcept { return gate_arity(kind); }

  /// First operand (control for CX/CP).
  QubitId q0() const noexcept { return qubits[0]; }

  /// Second operand (target for CX/CP); only valid when arity() == 2.
  QubitId q1() const noexcept { return qubits[1]; }

  /// True if `q` is one of this gate's operands.
  bool acts_on(QubitId q) const noexcept;

  /// True if the two gates share at least one operand qubit.
  bool overlaps(const Gate& other) const noexcept;

  /// Human-readable form, e.g. "cx q3, q17" or "rzz(0.5000) q0, q1".
  std::string to_string() const;

  friend bool operator==(const Gate& a, const Gate& b) noexcept = default;
};

/// Construct a one-qubit gate. Precondition: kind has arity 1.
Gate make_gate(GateKind kind, QubitId q, double param = 0.0);

/// Construct a two-qubit gate. Preconditions: kind has arity 2, q0 != q1.
Gate make_gate(GateKind kind, QubitId q0, QubitId q1, double param = 0.0);

}  // namespace dqcsim
