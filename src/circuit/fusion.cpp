#include "circuit/fusion.hpp"

#include "common/error.hpp"

namespace dqcsim {
namespace {

using qsim::Mat2;
using qsim::Mat4;

FusedOp::Kind classify_1q(const Mat2& m) {
  return qsim::is_diagonal_matrix(m) ? FusedOp::Kind::Diag1Q
                                     : FusedOp::Kind::Dense1Q;
}

FusedOp::Kind classify_2q(const Mat4& m) {
  if (qsim::is_diagonal_matrix(m)) return FusedOp::Kind::Diag2Q;
  if (qsim::is_permutation_matrix(m)) return FusedOp::Kind::Perm2Q;
  return FusedOp::Kind::Dense2Q;
}

/// Embed a one-qubit unitary into the 4x4 space of a fused 2q op.
Mat4 embed_1q(const Mat2& u, bool on_high) {
  return on_high ? qsim::kron(u, qsim::identity2())
                 : qsim::kron(qsim::identity2(), u);
}

constexpr std::ptrdiff_t kNone = -1;

struct Builder {
  std::vector<FusedOp> ops;
  std::vector<char> dead;                    // absorbed into a later op
  std::vector<std::ptrdiff_t> last_on_wire;  // index into ops, or kNone

  explicit Builder(int num_qubits)
      : last_on_wire(static_cast<std::size_t>(num_qubits), kNone) {}

  FusedOp* last_op_on(QubitId q) {
    const std::ptrdiff_t p = last_on_wire[static_cast<std::size_t>(q)];
    if (p == kNone || dead[static_cast<std::size_t>(p)]) return nullptr;
    return &ops[static_cast<std::size_t>(p)];
  }

  void push(FusedOp op) {
    const auto idx = static_cast<std::ptrdiff_t>(ops.size());
    last_on_wire[static_cast<std::size_t>(op.q0)] = idx;
    if (op.arity() == 2) {
      last_on_wire[static_cast<std::size_t>(op.q1)] = idx;
    }
    ops.push_back(op);
    dead.push_back(0);
  }

  /// Multiply `u` (acting after) into an existing 2q op, aligning `u`'s
  /// operand order (a = high, b = low) with the op's stored order.
  static void merge_2q_into(FusedOp& op, const Mat4& u, QubitId a) {
    op.m4 = qsim::matmul(op.q0 == a ? u : qsim::swap_operands(u), op.m4);
    op.kind = classify_2q(op.m4);
    ++op.source_gates;
  }

  void add_1q(QubitId q, const Mat2& u) {
    if (FusedOp* prev = last_op_on(q)) {
      if (prev->arity() == 1) {
        prev->m2 = qsim::matmul(u, prev->m2);
        prev->kind = classify_1q(prev->m2);
        ++prev->source_gates;
        return;
      }
      // Merging a dense 1q gate into a diagonal 2q op would densify it and
      // lose the fast path, which costs more than the extra sweep saves.
      if (!prev->diagonal() || qsim::is_diagonal_matrix(u)) {
        prev->m4 = qsim::matmul(embed_1q(u, prev->q0 == q), prev->m4);
        prev->kind = classify_2q(prev->m4);
        ++prev->source_gates;
        return;
      }
    }
    push(FusedOp{classify_1q(u), q, 0, u, {}, 1});
  }

  void add_2q(QubitId a, QubitId b, const Mat4& u,
              const FusionOptions& opts) {
    // Direct merge: the most recent op on both wires is one and the same
    // two-qubit op, hence it acts exactly on {a, b}.
    const std::ptrdiff_t pa = last_on_wire[static_cast<std::size_t>(a)];
    const std::ptrdiff_t pb = last_on_wire[static_cast<std::size_t>(b)];
    if (pa != kNone && pa == pb && !dead[static_cast<std::size_t>(pa)] &&
        ops[static_cast<std::size_t>(pa)].arity() == 2) {
      merge_2q_into(ops[static_cast<std::size_t>(pa)], u, a);
      return;
    }
    // Commute hop: a diagonal gate commutes with every diagonal gate (and
    // trivially with disjoint-wire gates), so it may slide backwards past
    // them to reach an earlier diagonal op on the same pair.
    if (opts.allow_diagonal_commute && qsim::is_diagonal_matrix(u)) {
      std::size_t scanned = 0;
      for (std::size_t j = ops.size(); j-- > 0 && scanned < opts.max_hop_window;
           ++scanned) {
        if (dead[j]) continue;
        FusedOp& op = ops[j];
        const bool shares = op.acts_on(a) || op.acts_on(b);
        if (op.arity() == 2 && op.diagonal() &&
            ((op.q0 == a && op.q1 == b) || (op.q0 == b && op.q1 == a))) {
          merge_2q_into(op, u, a);
          return;
        }
        if (shares && !op.diagonal()) break;
      }
    }
    // New fused op; absorb trailing *standalone* one-qubit ops on its wires
    // (they act immediately before, so they right-multiply in). A diagonal
    // 2q op only absorbs diagonal 1q ops: densifying it would trade the
    // batchable single-sweep fast path for a full 4x4 kernel, a net loss.
    FusedOp op{FusedOp::Kind::Dense2Q, a, b, {}, u, 1};
    const bool op_diagonal = qsim::is_diagonal_matrix(u);
    for (const QubitId w : {a, b}) {
      const std::ptrdiff_t pw = last_on_wire[static_cast<std::size_t>(w)];
      if (pw == kNone || dead[static_cast<std::size_t>(pw)]) continue;
      FusedOp& prev = ops[static_cast<std::size_t>(pw)];
      if (prev.arity() != 1) continue;
      if (op_diagonal && !qsim::is_diagonal_matrix(prev.m2)) continue;
      op.m4 = qsim::matmul(op.m4, embed_1q(prev.m2, w == a));
      op.source_gates += prev.source_gates;
      dead[static_cast<std::size_t>(pw)] = 1;
    }
    op.kind = classify_2q(op.m4);
    push(op);
  }
};

}  // namespace

FusedCircuit::FusedCircuit(int num_qubits, std::vector<FusedOp> ops,
                           std::size_t source_gate_count)
    : num_qubits_(num_qubits),
      ops_(std::move(ops)),
      source_gates_(source_gate_count) {}

double FusedCircuit::compression_ratio() const noexcept {
  if (ops_.empty()) return 1.0;
  return static_cast<double>(source_gates_) / static_cast<double>(ops_.size());
}

FusedCircuit fuse_circuit(const Circuit& qc, const FusionOptions& opts) {
  Builder b(qc.num_qubits());
  for (const Gate& g : qc.gates()) {
    DQCSIM_EXPECTS_MSG(g.kind != GateKind::Measure,
                       "fuse_circuit requires a unitary circuit");
    if (g.arity() == 1) {
      b.add_1q(g.q0(), qsim::gate_unitary_1q(g.kind, g.param));
    } else {
      b.add_2q(g.q0(), g.q1(), qsim::gate_unitary_2q(g.kind, g.param), opts);
    }
  }
  std::vector<FusedOp> out;
  out.reserve(b.ops.size());
  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    if (!b.dead[i]) out.push_back(std::move(b.ops[i]));
  }
  return FusedCircuit(qc.num_qubits(), std::move(out), qc.num_gates());
}

std::vector<std::size_t> fusible_1q_chain_next(const Circuit& qc) {
  std::vector<std::size_t> next(qc.num_gates(), kNoFusedNext);
  std::vector<std::size_t> last_1q_on_wire(
      static_cast<std::size_t>(qc.num_qubits()), kNoFusedNext);
  for (std::size_t g = 0; g < qc.num_gates(); ++g) {
    const Gate& gate = qc.gate(g);
    if (gate.arity() == 1) {
      const auto w = static_cast<std::size_t>(gate.q0());
      if (last_1q_on_wire[w] != kNoFusedNext) {
        next[last_1q_on_wire[w]] = g;
      }
      last_1q_on_wire[w] = g;
    } else {
      // A two-qubit gate breaks any chain on both wires.
      last_1q_on_wire[static_cast<std::size_t>(gate.q0())] = kNoFusedNext;
      last_1q_on_wire[static_cast<std::size_t>(gate.q1())] = kNoFusedNext;
    }
  }
  return next;
}

}  // namespace dqcsim
