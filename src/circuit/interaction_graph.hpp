/// \file interaction_graph.hpp
/// \brief Extraction of the qubit interaction graph from a circuit.
///
/// The interaction graph has one vertex per qubit and an edge {a, b} whose
/// weight counts the two-qubit gates between a and b. It is the input to the
/// partitioner: a balanced min-cut assignment of qubits to QPU nodes
/// minimises the number of remote gates (paper §IV-A, baseline via METIS).

#pragma once

#include "circuit/circuit.hpp"
#include "partition/graph.hpp"

namespace dqcsim {

/// Build the weighted interaction graph of `circuit`.
/// Vertex i is qubit i; edge weight = multiplicity of 2Q gates on the pair.
partition::Graph interaction_graph(const Circuit& circuit);

}  // namespace dqcsim
