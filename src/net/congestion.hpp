/// \file congestion.hpp
/// \brief Congestion-aware route assignment and per-edge capacity sharing.
///
/// Two complementary mechanisms turn a physical edge from an infinitely
/// replicable resource into a contended one (ArchConfig knobs; all opt-in):
///
///  - capacity_share(): when several logical routes cross one edge, each
///    receives a deterministic near-even slice of the edge's communication
///    and buffer budgets instead of drawing the full budget concurrently.
///    Shares are assigned by route creation rank, so they are independent
///    of thread count and identical on every replay.
///
///  - CongestionPlanner: routes logical links *sequentially* (in their
///    first-traffic creation order) over load-scaled edge costs
///        cost(e) = static_cost(e) * (1 + alpha * load(e)),
///    where load(e) counts previously placed routes crossing e. Early
///    traffic takes the statically cheapest path; later traffic sees the
///    congestion it caused and detours around hot edges. The same pass
///    runs again at outage/recovery boundaries over the surviving-edge
///    mask, so detours that pile onto one edge raise its cost for the
///    links re-routed after them. When the cheapest path and an
///    edge-disjoint alternate tie in scaled cost, the planner can register
///    both (RoutePlan::split) so the engine's swap-as-you-go mode serves a
///    request from whichever path first holds a full pair quota.
///
/// Determinism: the planner is a plain sequential algorithm over an
/// explicitly ordered work list — Dijkstra scan order, strict-improvement
/// tie-breaks and rank assignment mirror net::Router, so the same inputs
/// always yield the same plan regardless of thread count.

#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/router.hpp"
#include "net/topology.hpp"

namespace dqcsim::net {

/// Deterministic near-even slice of an edge's capacity granted to the route
/// with the given rank among the `load` routes crossing it: every route
/// gets floor(capacity / load), the first capacity % load ranks (by route
/// creation order) one extra, and any positive capacity grants at least one
/// unit — a saturated edge oversubscribes rather than starving a route.
/// A nonpositive capacity (the bufferless designs' zero buffer) passes
/// through unchanged.
/// Preconditions: load >= 1, 0 <= rank < load.
int capacity_share(int capacity, int load, int rank);

/// Up to two cost-tied, edge-disjoint physical paths for one logical link.
struct RoutePlan {
  Route primary;
  Route alternate;         ///< meaningful only when `split`
  bool has_route = false;  ///< false when the (masked) fabric disconnects
  bool split = false;      ///< alternate carries a share of the traffic
};

/// Sequential congestion-aware route assignment (see file header).
///
/// One planner instance is reusable across passes: begin() re-arms it
/// without reallocating, so the Monte-Carlo trial loop plans with amortized
/// zero allocation.
class CongestionPlanner {
 public:
  CongestionPlanner() = default;

  /// Arm one planning pass: zero the load map, adopt per-edge static costs,
  /// the load-scaling strength `alpha` (>= 0) and an optional surviving-
  /// edge mask (edges with edge_enabled[e] == 0 are unusable). The
  /// referenced topology/costs/mask must outlive the pass.
  void begin(const Topology& topo, const std::vector<double>& static_costs,
             double alpha, const std::vector<char>* edge_enabled);

  /// Route the pair {a, b} under the current loads, writing the result into
  /// `plan` (storage is reused), then charge the chosen path(s) onto the
  /// load map. With `split_tied`, an edge-disjoint alternate whose scaled
  /// cost ties the primary's (within 1e-9 relative) is registered too.
  /// plan.has_route is false when the masked fabric disconnects the pair.
  /// Preconditions: begin() called, a != b, both in range.
  void plan(int a, int b, bool split_tied, RoutePlan& plan);

  /// Charge an externally selected path onto the load map (static-route
  /// mode still derives capacity shares from edge loads).
  void charge(const Route& route);

  /// Routes currently crossing each edge (a split link's primary and
  /// alternate paths each count one).
  const std::vector<int>& edge_load() const noexcept { return load_; }

 private:
  /// Deterministic single-pair Dijkstra over load-scaled costs. Edges may
  /// additionally be excluded (the disjoint-alternate search). Returns
  /// false (and clears `out`) when dst is unreachable.
  bool find_route(int src, int dst, const std::vector<char>* exclude,
                  Route& out);

  const Topology* topo_ = nullptr;
  const std::vector<double>* costs_ = nullptr;
  const std::vector<char>* enabled_ = nullptr;
  double alpha_ = 0.0;
  std::vector<int> load_;

  // Reusable scratch (incidence lists + Dijkstra state).
  std::vector<std::vector<std::pair<std::size_t, int>>> incident_;
  std::vector<double> dist_;
  std::vector<int> pred_node_;
  std::vector<std::size_t> pred_edge_;
  std::vector<char> done_;
  std::vector<char> exclude_scratch_;
};

}  // namespace dqcsim::net
