#include "net/mapping.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace dqcsim::net {

namespace {

std::int64_t traffic_at(const TrafficMatrix& traffic, int k, int p, int q) {
  return traffic[static_cast<std::size_t>(p) * static_cast<std::size_t>(k) +
                 static_cast<std::size_t>(q)];
}

}  // namespace

std::int64_t mapped_cut_weight(const TrafficMatrix& traffic, int k,
                               const std::vector<int>& mapping,
                               const Router& router) {
  DQCSIM_EXPECTS(traffic.size() ==
                 static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  DQCSIM_EXPECTS(mapping.size() == static_cast<std::size_t>(k));
  std::int64_t total = 0;
  for (int p = 0; p < k; ++p) {
    for (int q = p + 1; q < k; ++q) {
      const std::int64_t w = traffic_at(traffic, k, p, q);
      if (w == 0) continue;
      total += w * router.hop_distance(mapping[static_cast<std::size_t>(p)],
                                       mapping[static_cast<std::size_t>(q)]);
    }
  }
  return total;
}

std::vector<int> optimize_node_mapping(const TrafficMatrix& traffic, int k,
                                       const Router& router) {
  DQCSIM_EXPECTS(k == router.topology().num_nodes());
  DQCSIM_EXPECTS(traffic.size() ==
                 static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  const auto uk = static_cast<std::size_t>(k);

  // Parts by total traffic, heaviest first (stable: ties keep id order).
  std::vector<int> part_order(uk);
  std::iota(part_order.begin(), part_order.end(), 0);
  std::vector<std::int64_t> part_traffic(uk, 0);
  for (int p = 0; p < k; ++p) {
    for (int q = 0; q < k; ++q) {
      if (q != p) {
        part_traffic[static_cast<std::size_t>(p)] +=
            traffic_at(traffic, k, p, q);
      }
    }
  }
  std::stable_sort(part_order.begin(), part_order.end(),
                   [&](int a, int b) {
                     return part_traffic[static_cast<std::size_t>(a)] >
                            part_traffic[static_cast<std::size_t>(b)];
                   });

  std::vector<int> mapping(uk, -1);
  std::vector<char> node_used(uk, 0);

  // Greedy: heaviest part onto the most central node; each further part
  // onto the free node with the smallest marginal distance-scaled cost
  // against the parts already placed.
  for (const int p : part_order) {
    int best_node = -1;
    std::int64_t best_cost = 0;
    for (int v = 0; v < k; ++v) {
      if (node_used[static_cast<std::size_t>(v)]) continue;
      std::int64_t cost = 0;
      bool first_placement = true;
      for (int q = 0; q < k; ++q) {
        if (mapping[static_cast<std::size_t>(q)] == -1 || q == p) continue;
        first_placement = false;
        cost += traffic_at(traffic, k, p, q) *
                router.hop_distance(v, mapping[static_cast<std::size_t>(q)]);
      }
      if (first_placement) {
        // Seed on the most central node: minimal total hop distance.
        for (int u = 0; u < k; ++u) {
          if (u != v) cost += router.hop_distance(v, u);
        }
      }
      if (best_node == -1 || cost < best_cost) {
        best_node = v;
        best_cost = cost;
      }
    }
    mapping[static_cast<std::size_t>(p)] = best_node;
    node_used[static_cast<std::size_t>(best_node)] = 1;
  }

  // Prefer the identity on ties so topologies where placement is moot
  // (all-to-all: every pair adjacent) keep the partitioner's raw part ids.
  std::vector<int> identity(uk);
  std::iota(identity.begin(), identity.end(), 0);
  if (mapped_cut_weight(traffic, k, identity, router) <=
      mapped_cut_weight(traffic, k, mapping, router)) {
    mapping = identity;
  }

  // Pairwise-swap hill climbing: strictly improving swaps only, so the
  // integer objective decreases monotonically and the loop terminates.
  std::int64_t current = mapped_cut_weight(traffic, k, mapping, router);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int p = 0; p < k; ++p) {
      for (int q = p + 1; q < k; ++q) {
        std::swap(mapping[static_cast<std::size_t>(p)],
                  mapping[static_cast<std::size_t>(q)]);
        const std::int64_t cand = mapped_cut_weight(traffic, k, mapping,
                                                    router);
        if (cand < current) {
          current = cand;
          improved = true;
        } else {
          std::swap(mapping[static_cast<std::size_t>(p)],
                    mapping[static_cast<std::size_t>(q)]);
        }
      }
    }
  }
  return mapping;
}

}  // namespace dqcsim::net
