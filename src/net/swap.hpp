/// \file swap.hpp
/// \brief Entanglement-swapping model: compose per-hop link qualities into
/// one effective end-to-end link for a routed node pair.
///
/// A multi-hop route delivers end-to-end pairs by generating one pair per
/// hop in parallel and fusing them with Bell-state measurements at the
/// intermediate nodes. For Werner states the composition is closed-form:
/// weights multiply per swap, and each noisy BSM contributes one further
/// multiplicative weight factor. The effective link the engine simulates:
///
///  - p_succ     = product of hop success probabilities (every hop must
///                 herald within the same attempt window),
///  - cycle_time = slowest hop's attempt window (hops attempt in parallel),
///  - f0         = Werner-composed fresh fidelity across hops and swaps,
///  - comm/buffer capacity = bottleneck hop's capacity,
///  - extra latency = (hops - 1) swaps' local operations, serial along the
///                 chain, charged when a remote gate consumes the pair.
///
/// Capacity sharing between routes: by default (the legacy escape hatch)
/// every routed logical node pair is backed by an *independent* effective
/// link, so two routes crossing the same physical edge each draw the
/// edge's full per-edge budget concurrently — optimistic on congestion-
/// prone shapes (star hubs, chain bottlenecks). Opting into
/// ArchConfig::share_edge_capacity splits each contended edge's budget
/// into deterministic per-route shares (compose_route_shared below, shares
/// from net::capacity_share), and ArchConfig::swap_as_you_go replaces the
/// composed model entirely with one buffered generation service per
/// physical edge — routes then contend dynamically for a common buffer and
/// pairs are fused on demand at the intermediate nodes, escaping this
/// file's all-hops-in-one-window p_succ^hops success model. Remaining
/// follow-up: purification at intermediate swap nodes (today purification
/// runs only on the assembled end-to-end pairs; see ROADMAP).

#pragma once

#include <cstddef>
#include <vector>

#include "ent/link_params.hpp"
#include "net/router.hpp"

namespace dqcsim::net {

/// Local-operation model of one entanglement swap.
struct SwapParams {
  /// Effective fidelity of the Bell-state measurement fusing two hops
  /// (a local CNOT and two measurements on the intermediate node); enters
  /// the composed pair's Werner weight once per swap. Values below 0.25
  /// are clamped to a fully depolarizing swap.
  double bsm_fidelity = 1.0;
  /// Duration of one swap's local operations; swaps run serially along the
  /// path, delaying the consuming remote gate by (hops - 1) * latency.
  double latency = 0.0;

  friend bool operator==(const SwapParams&, const SwapParams&) = default;
};

/// Werner weight one noisy BSM multiplies into the composed pair:
/// (4 * bsm_fidelity - 1) / 3, clamped to a fully depolarizing swap (0)
/// below fidelity 0.25 and to 1 above fidelity 1. The single source of
/// truth for the swap noise model — swap_composed_fidelity and
/// compose_route both fold weights with it, in the same order.
double swap_bsm_weight(double bsm_fidelity);

/// Werner fidelity of the end-to-end pair composed from `count` per-hop
/// fidelities in `hop_f0` through (count - 1) swaps of quality
/// `bsm_fidelity`. Preconditions: count >= 1, each fidelity in [0.25, 1].
double swap_composed_fidelity(const double* hop_f0, std::size_t count,
                              double bsm_fidelity);

/// Effective single link backing one routed node pair.
struct RoutedLink {
  ent::LinkParams params;     ///< end-to-end parameters (see file header)
  int hops = 1;               ///< physical edges on the route
  double extra_latency = 0.0; ///< (hops - 1) * SwapParams::latency
};

/// Compose the route's per-edge links (edge_params indexed like the
/// router's topology edges) into one effective end-to-end link.
/// Schedule/consume-order/subgroup fields are taken from the first hop
/// (they are architecture-wide, not per-edge).
/// Preconditions: route has >= 1 hop; edge_params covers every edge index.
RoutedLink compose_route(const Route& route,
                         const std::vector<ent::LinkParams>& edge_params,
                         const SwapParams& swap);

/// compose_route with explicit per-hop capacity grants: hop k contributes
/// hop_comm[k] communication pairs and hop_buffer[k] buffer slots instead
/// of its full per-edge budget — the share a route receives when an edge's
/// capacity is split between the concurrent routes crossing it (see
/// net::capacity_share in congestion.hpp). A null grant array falls back
/// to the full budgets; compose_route delegates here with both null, so
/// the two entry points fold every resource in the same order and the
/// composed f0 stays bit-identical.
/// Preconditions: as compose_route; non-null arrays cover route.hops().
RoutedLink compose_route_shared(const Route& route,
                                const std::vector<ent::LinkParams>& edge_params,
                                const SwapParams& swap, const int* hop_comm,
                                const int* hop_buffer);

}  // namespace dqcsim::net
