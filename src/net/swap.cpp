#include "net/swap.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "noise/werner.hpp"

namespace dqcsim::net {

double swap_bsm_weight(double bsm_fidelity) {
  if (bsm_fidelity <= 0.25) return 0.0;
  return noise::werner_weight_from_fidelity(std::min(bsm_fidelity, 1.0));
}

double swap_composed_fidelity(const double* hop_f0, std::size_t count,
                              double bsm_fidelity) {
  DQCSIM_EXPECTS(count >= 1);
  const double w_bsm = swap_bsm_weight(bsm_fidelity);
  double w = noise::werner_weight_from_fidelity(hop_f0[0]);
  for (std::size_t i = 1; i < count; ++i) {
    w *= noise::werner_weight_from_fidelity(hop_f0[i]) * w_bsm;
  }
  return noise::werner_fidelity_from_weight(w);
}

RoutedLink compose_route(const Route& route,
                         const std::vector<ent::LinkParams>& edge_params,
                         const SwapParams& swap) {
  return compose_route_shared(route, edge_params, swap, nullptr, nullptr);
}

RoutedLink compose_route_shared(const Route& route,
                                const std::vector<ent::LinkParams>& edge_params,
                                const SwapParams& swap, const int* hop_comm,
                                const int* hop_buffer) {
  DQCSIM_EXPECTS_MSG(route.hops() >= 1, "a route needs at least one hop");
  RoutedLink out;
  out.hops = route.hops();
  out.params = edge_params.at(route.edges[0]);
  if (hop_comm != nullptr) out.params.num_comm_pairs = hop_comm[0];
  if (hop_buffer != nullptr) out.params.buffer_capacity = hop_buffer[0];

  // Weight fold mirrors swap_composed_fidelity term-for-term, so the
  // engine's composed f0 is bit-equal to the documented helper (enforced
  // by test_net's ComposeRouteBottlenecksEveryResource).
  double w = noise::werner_weight_from_fidelity(out.params.f0);
  const double w_bsm = swap_bsm_weight(swap.bsm_fidelity);
  for (std::size_t i = 1; i < route.edges.size(); ++i) {
    const ent::LinkParams& hop = edge_params.at(route.edges[i]);
    out.params.num_comm_pairs =
        std::min(out.params.num_comm_pairs,
                 hop_comm != nullptr ? hop_comm[i] : hop.num_comm_pairs);
    out.params.buffer_capacity =
        std::min(out.params.buffer_capacity,
                 hop_buffer != nullptr ? hop_buffer[i] : hop.buffer_capacity);
    out.params.p_succ *= hop.p_succ;
    out.params.cycle_time = std::max(out.params.cycle_time, hop.cycle_time);
    out.params.swap_latency =
        std::max(out.params.swap_latency, hop.swap_latency);
    out.params.kappa = std::max(out.params.kappa, hop.kappa);
    out.params.cutoff = std::min(out.params.cutoff, hop.cutoff);
    w *= noise::werner_weight_from_fidelity(hop.f0) * w_bsm;
  }
  out.params.f0 = noise::werner_fidelity_from_weight(w);
  out.extra_latency = static_cast<double>(out.hops - 1) * swap.latency;
  return out;
}

}  // namespace dqcsim::net
