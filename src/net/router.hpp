/// \file router.hpp
/// \brief Multi-hop entanglement routing over a physical topology.
///
/// A Router precomputes one route per ordered node pair by Dijkstra on
/// configurable per-edge costs (hop count by default; the engine uses the
/// expected time per delivered pair, cycle_time / (p_succ * pairs), so fat
/// fast links are preferred over thin slow ones). Routes are deterministic:
/// cost ties are broken toward the lexicographically smaller predecessor,
/// so the same topology and costs always produce the same paths.

#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace dqcsim::net {

/// One selected path between a node pair.
struct Route {
  std::vector<int> nodes;          ///< endpoint-to-endpoint node sequence
  std::vector<std::size_t> edges;  ///< topology edge index per hop
  double cost = 0.0;               ///< total edge cost along the path
  int hops() const noexcept { return static_cast<int>(edges.size()); }
};

/// All-pairs router over one Topology (copied in, so the router stays valid
/// independently of the source object's lifetime).
class Router {
 public:
  Router() = default;

  /// Route on hop count (every edge costs 1).
  explicit Router(const Topology& topo);

  /// Route on explicit per-edge costs, indexed like topo.edges().
  /// Preconditions: costs.size() == topo.num_edges(), every cost > 0.
  Router(const Topology& topo, const std::vector<double>& edge_costs);

  /// Route over the subgraph of edges with edge_enabled[e] != 0 (indexed
  /// like topo.edges()) — the surviving fabric during an outage. Unlike the
  /// full-topology constructors this tolerates disconnection: pairs with no
  /// surviving path get an empty route (see has_route).
  /// Preconditions: both vectors sized topo.num_edges(), enabled costs > 0.
  Router(const Topology& topo, const std::vector<double>& edge_costs,
         const std::vector<char>& edge_enabled);

  const Topology& topology() const noexcept { return topo_; }

  /// The selected route from `a` to `b` (directed view of an undirected
  /// path: route(b, a) traverses the same edges reversed). For a == b the
  /// empty self-route (hops() == 0, cost 0) is returned, consistent with
  /// hop_distance(a, a) == 0. For a masked router, a disconnected pair also
  /// yields an empty route — distinguish via has_route.
  /// Preconditions: both in range.
  const Route& route(int a, int b) const;

  /// True when a path exists: always for a == b, and for a != b whenever
  /// route(a, b) is non-empty (full-topology routers are connected by
  /// construction; masked routers may not be).
  bool has_route(int a, int b) const;

  /// Hop count of the selected route; 0 for a == b.
  int hop_distance(int a, int b) const;

 private:
  void build(const std::vector<double>& edge_costs,
             const std::vector<char>* edge_enabled);

  Topology topo_;
  std::vector<Route> routes_;  ///< [a * n + b], empty for a == b
};

}  // namespace dqcsim::net
