#include "net/router.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::net {

Router::Router(const Topology& topo) : topo_(topo) {
  build(std::vector<double>(topo_.num_edges(), 1.0), nullptr);
}

Router::Router(const Topology& topo, const std::vector<double>& edge_costs)
    : topo_(topo) {
  DQCSIM_EXPECTS_MSG(edge_costs.size() == topo_.num_edges(),
                     "one cost per topology edge");
  for (const double c : edge_costs) {
    DQCSIM_EXPECTS_MSG(c > 0.0, "edge costs must be positive");
  }
  build(edge_costs, nullptr);
}

Router::Router(const Topology& topo, const std::vector<double>& edge_costs,
               const std::vector<char>& edge_enabled)
    : topo_(topo) {
  DQCSIM_EXPECTS_MSG(edge_costs.size() == topo_.num_edges(),
                     "one cost per topology edge");
  DQCSIM_EXPECTS_MSG(edge_enabled.size() == topo_.num_edges(),
                     "one enabled flag per topology edge");
  for (std::size_t e = 0; e < edge_costs.size(); ++e) {
    DQCSIM_EXPECTS_MSG(!edge_enabled[e] || edge_costs[e] > 0.0,
                       "enabled edge costs must be positive");
  }
  build(edge_costs, &edge_enabled);
}

void Router::build(const std::vector<double>& edge_costs,
                   const std::vector<char>* edge_enabled) {
  topo_.validate();
  const int n = topo_.num_nodes();
  const auto un = static_cast<std::size_t>(n);
  routes_.assign(un * un, Route{});

  // Incidence lists: per node, (edge index, other endpoint). A mask (the
  // surviving subgraph during an outage) simply drops disabled edges.
  std::vector<std::vector<std::pair<std::size_t, int>>> incident(un);
  for (std::size_t e = 0; e < topo_.num_edges(); ++e) {
    if (edge_enabled != nullptr && !(*edge_enabled)[e]) continue;
    const TopologyEdge& edge = topo_.edge(e);
    incident[static_cast<std::size_t>(edge.a)].push_back({e, edge.b});
    incident[static_cast<std::size_t>(edge.b)].push_back({e, edge.a});
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(un);
  std::vector<int> pred_node(un);
  std::vector<std::size_t> pred_edge(un);
  std::vector<char> done(un);

  for (int src = 0; src + 1 < n; ++src) {
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(pred_node.begin(), pred_node.end(), -1);
    std::fill(done.begin(), done.end(), 0);
    dist[static_cast<std::size_t>(src)] = 0.0;

    // O(n^2) Dijkstra: topologies are small (tens of QPUs), and scanning
    // keeps the node-selection order — hence the routes — deterministic.
    for (int round = 0; round < n; ++round) {
      int u = -1;
      for (int v = 0; v < n; ++v) {
        const auto uv = static_cast<std::size_t>(v);
        if (done[uv] || dist[uv] == kInf) continue;
        if (u == -1 || dist[uv] < dist[static_cast<std::size_t>(u)]) u = v;
      }
      if (u == -1) break;
      const auto uu = static_cast<std::size_t>(u);
      done[uu] = 1;
      for (const auto& [e, other] : incident[uu]) {
        const auto uo = static_cast<std::size_t>(other);
        const double cand = dist[uu] + edge_costs[e];
        // Strict improvement only: on ties the first-found (smallest
        // predecessor id, since u grows with cost) path wins.
        if (cand < dist[uo]) {
          dist[uo] = cand;
          pred_node[uo] = u;
          pred_edge[uo] = e;
        }
      }
    }

    // Materialize only dst > src and mirror the reverse direction, so
    // route(b, a) is route(a, b) reversed by construction even when cost
    // ties would let the two Dijkstra sweeps pick different paths.
    for (int dst = src + 1; dst < n; ++dst) {
      const auto ud = static_cast<std::size_t>(dst);
      if (dist[ud] == kInf) {
        // Reachable only through masked-out edges: leave both directions
        // empty (has_route reports false). Without a mask the topology is
        // validated connected, so this is a masked-router-only outcome.
        DQCSIM_ENSURES_MSG(edge_enabled != nullptr,
                           "router requires a connected topology");
        continue;
      }
      Route& r = routes_[static_cast<std::size_t>(src) * un + ud];
      r.cost = dist[ud];
      for (int v = dst; v != src;
           v = pred_node[static_cast<std::size_t>(v)]) {
        r.nodes.push_back(v);
        r.edges.push_back(pred_edge[static_cast<std::size_t>(v)]);
      }
      r.nodes.push_back(src);
      std::reverse(r.nodes.begin(), r.nodes.end());
      std::reverse(r.edges.begin(), r.edges.end());

      Route& back = routes_[ud * un + static_cast<std::size_t>(src)];
      back.cost = r.cost;
      back.nodes.assign(r.nodes.rbegin(), r.nodes.rend());
      back.edges.assign(r.edges.rbegin(), r.edges.rend());
    }
  }
}

const Route& Router::route(int a, int b) const {
  const int n = topo_.num_nodes();
  DQCSIM_EXPECTS(a >= 0 && a < n && b >= 0 && b < n);
  // The diagonal entries are default-constructed, so route(a, a) is the
  // empty self-route: hops() == 0 and cost 0, matching hop_distance(a, a).
  return routes_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(b)];
}

bool Router::has_route(int a, int b) const {
  return a == b || !route(a, b).nodes.empty();
}

int Router::hop_distance(int a, int b) const {
  if (a == b) return 0;
  return route(a, b).hops();
}

}  // namespace dqcsim::net
