#include "net/topology.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace dqcsim::net {

std::string topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::AllToAll: return "all_to_all";
    case TopologyKind::Chain: return "chain";
    case TopologyKind::Ring: return "ring";
    case TopologyKind::Grid: return "grid";
    case TopologyKind::Star: return "star";
    case TopologyKind::Custom: return "custom";
  }
  return "unknown";
}

Topology Topology::all_to_all(int num_nodes) {
  DQCSIM_EXPECTS_MSG(num_nodes >= 2, "all_to_all needs at least 2 nodes");
  Topology t(num_nodes, TopologyKind::AllToAll);
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) t.add_edge(a, b);
  }
  return t;
}

Topology Topology::chain(int num_nodes) {
  DQCSIM_EXPECTS_MSG(num_nodes >= 2, "chain needs at least 2 nodes");
  Topology t(num_nodes, TopologyKind::Chain);
  for (int a = 0; a + 1 < num_nodes; ++a) t.add_edge(a, a + 1);
  return t;
}

Topology Topology::ring(int num_nodes) {
  DQCSIM_EXPECTS_MSG(num_nodes >= 3, "ring needs at least 3 nodes");
  Topology t(num_nodes, TopologyKind::Ring);
  for (int a = 0; a + 1 < num_nodes; ++a) t.add_edge(a, a + 1);
  t.add_edge(0, num_nodes - 1);
  return t;
}

Topology Topology::grid(int rows, int cols) {
  DQCSIM_EXPECTS_MSG(rows >= 1 && cols >= 1 && rows * cols >= 2,
                     "grid needs at least 2 nodes");
  Topology t(rows * cols, TopologyKind::Grid);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      if (c + 1 < cols) t.add_edge(id, id + 1);
      if (r + 1 < rows) t.add_edge(id, id + cols);
    }
  }
  return t;
}

Topology Topology::star(int num_nodes) {
  DQCSIM_EXPECTS_MSG(num_nodes >= 2, "star needs at least 2 nodes");
  Topology t(num_nodes, TopologyKind::Star);
  for (int b = 1; b < num_nodes; ++b) t.add_edge(0, b);
  return t;
}

Topology Topology::custom(int num_nodes,
                          const std::vector<std::pair<int, int>>& edges) {
  Topology t(num_nodes, TopologyKind::Custom);
  for (const auto& [a, b] : edges) t.add_edge(a, b);
  t.validate();
  return t;
}

void Topology::add_edge(int a, int b) {
  if (a > b) std::swap(a, b);
  edges_.push_back(TopologyEdge{a, b, {}});
}

std::size_t Topology::edge_index(int a, int b) const {
  if (a > b) std::swap(a, b);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].a == a && edges_[i].b == b) return i;
  }
  return npos;
}

int Topology::degree(int node) const {
  int d = 0;
  for (const TopologyEdge& e : edges_) d += (e.a == node || e.b == node);
  return d;
}

std::vector<int> Topology::neighbors(int node) const {
  std::vector<int> out;
  for (const TopologyEdge& e : edges_) {
    if (e.a == node) out.push_back(e.b);
    if (e.b == node) out.push_back(e.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int Topology::max_degree() const {
  int best = 0;
  for (int v = 0; v < num_nodes_; ++v) best = std::max(best, degree(v));
  return best;
}

bool Topology::is_connected() const {
  if (num_nodes_ <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes_), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int reached = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const TopologyEdge& e : edges_) {
      const int other = e.a == v ? e.b : (e.b == v ? e.a : -1);
      if (other >= 0 && !seen[static_cast<std::size_t>(other)]) {
        seen[static_cast<std::size_t>(other)] = 1;
        ++reached;
        stack.push_back(other);
      }
    }
  }
  return reached == num_nodes_;
}

namespace {

void validate_overrides(const EdgeOverrides& o) {
  if (o.p_succ && !(*o.p_succ > 0.0 && *o.p_succ <= 1.0)) {
    throw ConfigError("Topology: edge p_succ override must be in (0, 1]");
  }
  if (o.cycle_time && !(*o.cycle_time > 0.0)) {
    throw ConfigError("Topology: edge cycle_time override must be positive");
  }
  if (o.f0 && !(*o.f0 >= 0.25 && *o.f0 <= 1.0)) {
    throw ConfigError("Topology: edge f0 override must be in [0.25, 1]");
  }
}

}  // namespace

void Topology::set_edge_overrides(int a, int b,
                                  const EdgeOverrides& overrides) {
  const std::size_t idx = edge_index(a, b);
  if (idx == npos) {
    throw ConfigError("Topology: cannot override a non-existent edge");
  }
  validate_overrides(overrides);
  edges_[idx].overrides = overrides;
}

void Topology::validate() const {
  if (num_nodes_ < 2) {
    throw ConfigError("Topology: an interconnect needs at least two nodes");
  }
  if (edges_.empty()) {
    throw ConfigError("Topology: an interconnect needs at least one edge");
  }
  for (const TopologyEdge& e : edges_) {
    if (e.a < 0 || e.b < 0 || e.a >= num_nodes_ || e.b >= num_nodes_) {
      throw ConfigError("Topology: edge endpoint outside [0, num_nodes)");
    }
    if (e.a == e.b) {
      throw ConfigError("Topology: self-loop edges are not allowed");
    }
    validate_overrides(e.overrides);
  }
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    for (std::size_t j = i + 1; j < edges_.size(); ++j) {
      if (edges_[i].a == edges_[j].a && edges_[i].b == edges_[j].b) {
        throw ConfigError("Topology: duplicate edge");
      }
    }
  }
  if (!is_connected()) {
    throw ConfigError("Topology: interconnect must be connected");
  }
}

}  // namespace dqcsim::net
