/// \file mapping.hpp
/// \brief Placement of circuit partitions onto physical topology nodes.
///
/// A balanced min-cut partition decides *which* qubits share a QPU; on a
/// sparse interconnect it also matters *where* each part lands: parts that
/// exchange many remote gates should sit on adjacent nodes, or every one of
/// their gates pays a multi-hop swap chain. This module minimises the
/// distance-scaled cut  sum_{p<q} traffic(p,q) * hops(map(p), map(q))
/// with a deterministic greedy construction plus pairwise-swap refinement
/// (the classic QAP heuristic; exact for the all-to-all topology where
/// every mapping is equivalent).

#pragma once

#include <cstdint>
#include <vector>

#include "net/router.hpp"

namespace dqcsim::net {

/// Inter-part traffic: row-major k x k symmetric matrix of remote-gate
/// multiplicities (diagonal ignored).
using TrafficMatrix = std::vector<std::int64_t>;

/// Distance-scaled cut of `mapping` (part -> node) under `router` hop
/// distances. Preconditions: mapping is a permutation of [0, k),
/// traffic.size() == k * k, router spans >= k nodes.
std::int64_t mapped_cut_weight(const TrafficMatrix& traffic, int k,
                               const std::vector<int>& mapping,
                               const Router& router);

/// Find a part -> node mapping with small distance-scaled cut. Greedy seed
/// (heaviest-traffic part onto the best-connected node, then best marginal
/// placement per part) followed by pairwise-swap hill climbing to a local
/// optimum. Deterministic for fixed inputs.
/// Precondition: k == router.topology().num_nodes().
std::vector<int> optimize_node_mapping(const TrafficMatrix& traffic, int k,
                                       const Router& router);

}  // namespace dqcsim::net
