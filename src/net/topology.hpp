/// \file topology.hpp
/// \brief Physical interconnect topologies between QPU nodes.
///
/// The paper evaluates a 2-node all-to-all system; this layer generalizes
/// the interconnect to sparse, heterogeneous graphs: each edge is one
/// physical entanglement-generation link (a pair of fiber-coupled
/// communication-qubit banks), and node pairs without an edge communicate
/// through multi-hop routes of entanglement swaps (see net/router.hpp).
/// Edges may override the architecture-wide link parameters (success
/// probability, attempt cycle, base fidelity) to model heterogeneous
/// hardware — e.g. one long noisy fiber in an otherwise uniform ring.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace dqcsim::net {

/// Shape family a Topology was built from (Custom for adjacency lists).
enum class TopologyKind {
  AllToAll,
  Chain,
  Ring,
  Grid,
  Star,
  Custom,
};

/// Display name, e.g. "ring".
std::string topology_kind_name(TopologyKind kind);

/// Optional per-edge deviations from the architecture-wide link parameters
/// (ent::LinkParams fields derived from runtime::ArchConfig). Unset fields
/// inherit the base value.
struct EdgeOverrides {
  std::optional<double> p_succ;      ///< per-attempt success probability
  std::optional<double> cycle_time;  ///< T_EG of this edge's hardware
  std::optional<double> f0;          ///< fresh-pair fidelity on this edge

  bool any() const noexcept {
    return p_succ.has_value() || cycle_time.has_value() || f0.has_value();
  }
};

/// One undirected physical link between two QPU nodes.
struct TopologyEdge {
  int a = 0;  ///< endpoint node id (a < b after normalization)
  int b = 0;
  EdgeOverrides overrides;
};

/// Undirected interconnect graph over `num_nodes` QPUs.
///
/// Edges are stored in insertion order; builders insert in a fixed
/// canonical order so a topology's edge indexing (and everything derived
/// from it) is deterministic.
class Topology {
 public:
  /// Every node pair directly linked (the legacy interconnect model).
  static Topology all_to_all(int num_nodes);
  /// Nodes 0-1-2-...-(n-1) in a line.
  static Topology chain(int num_nodes);
  /// Chain plus the closing (n-1)-0 edge. Requires num_nodes >= 3.
  static Topology ring(int num_nodes);
  /// rows x cols mesh with 4-neighbour connectivity; node id = r*cols + c.
  static Topology grid(int rows, int cols);
  /// Node 0 is the hub; every other node links only to it.
  static Topology star(int num_nodes);
  /// Arbitrary adjacency list; edges are normalized (a < b) and validated.
  static Topology custom(int num_nodes,
                         const std::vector<std::pair<int, int>>& edges);

  Topology() = default;

  int num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  TopologyKind kind() const noexcept { return kind_; }
  /// "ring", "grid", ... (builder family, for reports and benches).
  std::string name() const { return topology_kind_name(kind_); }

  const std::vector<TopologyEdge>& edges() const noexcept { return edges_; }
  const TopologyEdge& edge(std::size_t index) const {
    return edges_.at(index);
  }

  /// Index of edge {a, b} in edges(), or npos when absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t edge_index(int a, int b) const;
  bool has_edge(int a, int b) const { return edge_index(a, b) != npos; }

  /// Number of edges incident to `node`.
  int degree(int node) const;
  /// Neighbouring node ids of `node`, ascending.
  std::vector<int> neighbors(int node) const;
  /// Largest degree over all nodes (each node's comm budget must cover it).
  int max_degree() const;

  /// True when every node can reach every other node.
  bool is_connected() const;

  /// Attach per-edge parameter overrides to edge {a, b}.
  /// Throws ConfigError when the edge is absent or a value is out of
  /// domain (p_succ in (0,1], cycle_time > 0, f0 in [0.25, 1]).
  void set_edge_overrides(int a, int b, const EdgeOverrides& overrides);

  /// Throws ConfigError unless the topology has >= 2 nodes, >= 1 edge, no
  /// self-loops/duplicates/out-of-range endpoints, is connected, and all
  /// overrides are in domain.
  void validate() const;

 private:
  Topology(int num_nodes, TopologyKind kind)
      : num_nodes_(num_nodes), kind_(kind) {}

  void add_edge(int a, int b);

  int num_nodes_ = 0;
  TopologyKind kind_ = TopologyKind::Custom;
  std::vector<TopologyEdge> edges_;
};

}  // namespace dqcsim::net
