#include "net/congestion.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::net {

int capacity_share(int capacity, int load, int rank) {
  DQCSIM_EXPECTS(load >= 1 && rank >= 0 && rank < load);
  if (capacity <= 0) return capacity;
  const int share = capacity / load + (rank < capacity % load ? 1 : 0);
  return std::max(1, share);
}

void CongestionPlanner::begin(const Topology& topo,
                              const std::vector<double>& static_costs,
                              double alpha,
                              const std::vector<char>* edge_enabled) {
  DQCSIM_EXPECTS_MSG(static_costs.size() == topo.num_edges(),
                     "one static cost per topology edge");
  DQCSIM_EXPECTS_MSG(alpha >= 0.0, "congestion alpha must be nonnegative");
  topo_ = &topo;
  costs_ = &static_costs;
  enabled_ = edge_enabled;
  alpha_ = alpha;
  load_.assign(topo.num_edges(), 0);

  const auto n = static_cast<std::size_t>(topo.num_nodes());
  incident_.resize(n);
  for (auto& inc : incident_) inc.clear();
  for (std::size_t e = 0; e < topo.num_edges(); ++e) {
    if (enabled_ != nullptr && !(*enabled_)[e]) continue;
    const TopologyEdge& edge = topo.edge(e);
    incident_[static_cast<std::size_t>(edge.a)].push_back({e, edge.b});
    incident_[static_cast<std::size_t>(edge.b)].push_back({e, edge.a});
  }
  dist_.resize(n);
  pred_node_.resize(n);
  pred_edge_.resize(n);
  done_.resize(n);
}

bool CongestionPlanner::find_route(int src, int dst,
                                   const std::vector<char>* exclude,
                                   Route& out) {
  const int n = topo_->num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::fill(dist_.begin(), dist_.end(), kInf);
  std::fill(pred_node_.begin(), pred_node_.end(), -1);
  std::fill(done_.begin(), done_.end(), 0);
  dist_[static_cast<std::size_t>(src)] = 0.0;

  // O(n^2) scan like net::Router: node-selection order — and therefore the
  // chosen path — is deterministic, with strict-improvement tie-breaks.
  for (int round = 0; round < n; ++round) {
    int u = -1;
    for (int v = 0; v < n; ++v) {
      const auto uv = static_cast<std::size_t>(v);
      if (done_[uv] || dist_[uv] == kInf) continue;
      if (u == -1 || dist_[uv] < dist_[static_cast<std::size_t>(u)]) u = v;
    }
    if (u == -1) break;
    const auto uu = static_cast<std::size_t>(u);
    done_[uu] = 1;
    if (u == dst) break;
    for (const auto& [e, other] : incident_[uu]) {
      if (exclude != nullptr && (*exclude)[e]) continue;
      const auto uo = static_cast<std::size_t>(other);
      // Load-scaled cost: previously placed traffic makes the edge pricier.
      const double scaled =
          (*costs_)[e] * (1.0 + alpha_ * static_cast<double>(load_[e]));
      const double cand = dist_[uu] + scaled;
      if (cand < dist_[uo]) {
        dist_[uo] = cand;
        pred_node_[uo] = u;
        pred_edge_[uo] = e;
      }
    }
  }

  out.nodes.clear();
  out.edges.clear();
  out.cost = 0.0;
  const auto ud = static_cast<std::size_t>(dst);
  if (dist_[ud] == kInf) return false;
  out.cost = dist_[ud];
  for (int v = dst; v != src; v = pred_node_[static_cast<std::size_t>(v)]) {
    out.nodes.push_back(v);
    out.edges.push_back(pred_edge_[static_cast<std::size_t>(v)]);
  }
  out.nodes.push_back(src);
  std::reverse(out.nodes.begin(), out.nodes.end());
  std::reverse(out.edges.begin(), out.edges.end());
  return true;
}

void CongestionPlanner::plan(int a, int b, bool split_tied, RoutePlan& plan) {
  DQCSIM_EXPECTS(topo_ != nullptr);
  DQCSIM_EXPECTS(a != b && a >= 0 && b >= 0 && a < topo_->num_nodes() &&
                 b < topo_->num_nodes());
  plan.split = false;
  plan.has_route = find_route(a, b, nullptr, plan.primary);
  if (!plan.has_route) return;
  if (split_tied) {
    exclude_scratch_.assign(topo_->num_edges(), 0);
    for (const std::size_t e : plan.primary.edges) exclude_scratch_[e] = 1;
    if (find_route(a, b, &exclude_scratch_, plan.alternate) &&
        plan.alternate.cost <= plan.primary.cost * (1.0 + 1e-9)) {
      plan.split = true;
    }
  }
  charge(plan.primary);
  if (plan.split) charge(plan.alternate);
}

void CongestionPlanner::charge(const Route& route) {
  for (const std::size_t e : route.edges) ++load_[e];
}

}  // namespace dqcsim::net
