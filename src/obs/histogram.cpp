#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dqcsim::obs {

namespace {

// 2^{k/4} for k = 0..3, as exact double literals: the quarter-octave
// sub-bucket multipliers. Combined with ldexp (exact), the log-mode edges
// are bit-identical on every platform — no libm pow/exp2 involved.
constexpr double kQuarterOctave[4] = {1.0, 1.189207115002721,
                                      1.4142135623730951, 1.681792830507429};
constexpr int kLogMinExp = -20;  // first edge 2^-20 (~1e-6)
constexpr int kLogMaxExp = 30;   // last edge 2^30 (~1e9)

}  // namespace

Hist Hist::fixed(double lo, double hi, std::size_t bins) {
  DQCSIM_EXPECTS(bins > 0);
  DQCSIM_EXPECTS(lo < hi);
  Hist h;
  h.mode_ = Mode::Fixed;
  h.edges_.resize(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i <= bins; ++i) {
    h.edges_[i] = lo + width * static_cast<double>(i);
  }
  h.edges_[bins] = hi;
  h.counts_.assign(bins, 0);
  return h;
}

Hist Hist::logarithmic() {
  Hist h;
  h.mode_ = Mode::Log;
  const std::size_t octaves = static_cast<std::size_t>(kLogMaxExp - kLogMinExp);
  h.edges_.resize(octaves * 4 + 1);
  for (std::size_t i = 0; i < h.edges_.size(); ++i) {
    h.edges_[i] = std::ldexp(kQuarterOctave[i % 4],
                             kLogMinExp + static_cast<int>(i / 4));
  }
  h.counts_.assign(h.edges_.size() - 1, 0);
  return h;
}

void Hist::add(double v) noexcept {
  if (mode_ == Mode::None) return;
  ++n_;
  min_ = n_ == 1 ? v : std::min(min_, v);
  max_ = n_ == 1 ? v : std::max(max_, v);
  if (v < edges_.front()) {
    ++under_;
  } else if (v >= edges_.back()) {
    ++over_;
  } else {
    // upper_bound keeps bucketing consistent with the stored edges even
    // where a division would round differently at a bin boundary.
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
    ++counts_[static_cast<std::size_t>(it - edges_.begin()) - 1];
  }
}

void Hist::merge(const Hist& other) {
  if (other.n_ == 0) return;
  DQCSIM_EXPECTS(same_config(other));
  min_ = n_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = n_ == 0 ? other.max_ : std::max(max_, other.max_);
  n_ += other.n_;
  under_ += other.under_;
  over_ += other.over_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

double Hist::quantile(double q) const noexcept {
  if (n_ == 0) return 0.0;
  return quantile_from_bins(counts_.data(), counts_.size(), edges_.data(),
                            under_, over_, min_, max_, q);
}

bool Hist::same_config(const Hist& other) const noexcept {
  return mode_ == other.mode_ && edges_ == other.edges_;
}

void Hist::reset_values() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  under_ = 0;
  over_ = 0;
  n_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace dqcsim::obs
