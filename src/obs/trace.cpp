#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

namespace dqcsim::obs {

const char* ev_name(Ev ev) noexcept {
  switch (ev) {
    case Ev::Trial:
      return "trial";
    case Ev::GenOk:
      return "gen_ok";
    case Ev::GenFail:
      return "gen_fail";
    case Ev::Deposit:
      return "deposit";
    case Ev::RemoteWait:
      return "remote_wait";
    case Ev::RemoteExec:
      return "remote_exec";
    case Ev::Purify:
      return "purify";
    case Ev::SwapAssemble:
      return "swap_assemble";
    case Ev::Salvage:
      return "salvage";
    case Ev::Outage:
      return "outage";
    case Ev::Reroute:
      return "reroute";
    case Ev::Reshare:
      return "reshare";
  }
  return "unknown";
}

const char* ev_category(Ev ev) noexcept {
  switch (ev) {
    case Ev::Trial:
      return "run";
    case Ev::GenOk:
    case Ev::GenFail:
    case Ev::Deposit:
      return "gen";
    case Ev::RemoteWait:
    case Ev::RemoteExec:
    case Ev::Purify:
    case Ev::SwapAssemble:
      return "link";
    case Ev::Salvage:
    case Ev::Outage:
    case Ev::Reroute:
    case Ev::Reshare:
      return "fault";
  }
  return "unknown";
}

void TraceBuffer::reset(std::size_t capacity) {
  capacity_ = capacity;
  events_.clear();
  events_.reserve(capacity);
  head_ = 0;
  dropped_ = 0;
}

void TraceBuffer::record(const TraceEvent& e) noexcept {
  if (capacity_ == 0) return;
  if (events_.size() < capacity_) {
    events_.push_back(e);  // within reserve(): never reallocates
    return;
  }
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void TraceSink::set_track_name(std::uint32_t track, std::string name) {
  if (names_.size() <= track) names_.resize(track + 1);
  names_[track] = std::move(name);
}

JsonValue TraceSink::to_json(const TraceBuffer& buf, double us_per_unit) const {
  struct Rec {
    double ts;
    JsonValue j;
  };
  std::vector<Rec> recs;
  const std::vector<TraceEvent> events = buf.events();
  recs.reserve(events.size() * 2);
  std::int64_t next_id = 0;
  auto base = [](Ev ev, std::uint32_t track, const char* ph, double ts) {
    JsonValue j = JsonValue::object();
    j.set("name", JsonValue(ev_name(ev)));
    j.set("cat", JsonValue(ev_category(ev)));
    j.set("ph", JsonValue(ph));
    j.set("pid", JsonValue(std::int64_t{0}));
    j.set("tid", JsonValue(static_cast<std::int64_t>(track)));
    j.set("ts", JsonValue(ts));
    return j;
  };
  for (const TraceEvent& e : events) {
    const double t0 = e.t0 * us_per_unit;
    const double t1 = std::max(e.t0, e.t1) * us_per_unit;
    if (e.span) {
      // Async span pair: a fresh id per span lets overlapping spans share a
      // track without breaking begin/end matching.
      const std::int64_t id = next_id++;
      JsonValue b = base(e.ev, e.track, "b", t0);
      b.set("id", JsonValue(id));
      recs.push_back(Rec{t0, std::move(b)});
      JsonValue end = base(e.ev, e.track, "e", t1);
      end.set("id", JsonValue(id));
      recs.push_back(Rec{t1, std::move(end)});
    } else {
      JsonValue i = base(e.ev, e.track, "i", t0);
      i.set("s", JsonValue("t"));
      recs.push_back(Rec{t0, std::move(i)});
    }
  }
  // Stable sort by timestamp: ties keep record order, so a span's "b"
  // (inserted first) precedes its "e" and per-track timestamps are monotone.
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Rec& a, const Rec& b) { return a.ts < b.ts; });

  JsonValue events_json = JsonValue::array();
  {
    JsonValue meta = JsonValue::object();
    meta.set("name", JsonValue("process_name"));
    meta.set("ph", JsonValue("M"));
    meta.set("pid", JsonValue(std::int64_t{0}));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue("dqcsim traced trial"));
    meta.set("args", std::move(args));
    events_json.push(std::move(meta));
  }
  for (std::uint32_t track = 0; track < names_.size(); ++track) {
    if (names_[track].empty()) continue;
    JsonValue meta = JsonValue::object();
    meta.set("name", JsonValue("thread_name"));
    meta.set("ph", JsonValue("M"));
    meta.set("pid", JsonValue(std::int64_t{0}));
    meta.set("tid", JsonValue(static_cast<std::int64_t>(track)));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue(names_[track]));
    meta.set("args", std::move(args));
    events_json.push(std::move(meta));
  }
  for (Rec& rec : recs) events_json.push(std::move(rec.j));

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events_json));
  doc.set("displayTimeUnit", JsonValue("ms"));
  doc.set("dropped_events",
          JsonValue(static_cast<std::int64_t>(buf.dropped())));
  return doc;
}

void TraceSink::write_file(const TraceBuffer& buf, const std::string& path,
                           double us_per_unit) const {
  to_json(buf, us_per_unit).write_file(path);
}

}  // namespace dqcsim::obs
