/// \file histogram.hpp
/// \brief Deterministic histograms for the observability registry.
///
/// All state is integer bucket counts plus exact extrema, so merging
/// per-worker histograms is exact and order-independent — the property the
/// registry needs to produce bit-identical snapshots at any thread count
/// (see docs/ARCHITECTURE.md "Observability"). Quantiles interpolate over
/// the buckets via the shared helper in common/stats.hpp.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dqcsim::obs {

/// Integer-count histogram with exact, order-independent merge and
/// interpolated quantiles. Two binning modes:
///
/// - **fixed** — `bins` equal-width bins over [lo, hi) with tail buckets,
///   for metrics whose range is known up front (pair age, wait times);
/// - **logarithmic** — quarter-octave power-of-two buckets spanning
///   [2^-20, 2^30), for streaming quantiles over unknown ranges. Bucket
///   edges are exact binary constants (ldexp of 2^{k/4} literals), so the
///   bucketing is bit-identical across platforms.
class Hist {
 public:
  /// Unconfigured histogram; add() is a no-op until configured.
  Hist() = default;

  /// Fixed-bin mode. Preconditions: bins > 0, lo < hi.
  static Hist fixed(double lo, double hi, std::size_t bins);

  /// Logarithmic (quarter-octave) mode.
  static Hist logarithmic();

  /// Record one sample. No-op when unconfigured.
  void add(double v) noexcept;

  /// Merge another histogram of the same configuration (exact integer
  /// addition; commutative and associative).
  void merge(const Hist& other);

  /// Interpolated q-quantile; 0 when empty, q clamped to [0, 1].
  double quantile(double q) const noexcept;

  std::uint64_t count() const noexcept { return n_; }
  /// Smallest / largest recorded sample; 0 when empty.
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  bool configured() const noexcept { return mode_ != Mode::None; }
  bool same_config(const Hist& other) const noexcept;

  /// Zero all counts and extrema, keeping the bucket configuration.
  void reset_values() noexcept;

 private:
  enum class Mode : std::uint8_t { None, Fixed, Log };

  Mode mode_ = Mode::None;
  std::vector<double> edges_;  ///< ascending, buckets + 1 entries
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dqcsim::obs
