/// \file registry.hpp
/// \brief Named metrics registry: counters, max-gauges, and histograms.
///
/// Each worker's RunContext accumulates into its own Registry and merges it
/// into the shared obs::Collector at trial end. Every stored quantity is
/// either an exact integer (counters, histogram buckets) or a running
/// max/min (gauges, histogram extrema), so merge() is commutative and
/// associative — snapshots are bit-identical at any thread count even
/// though workers finish trials in nondeterministic order.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/histogram.hpp"

namespace dqcsim::obs {

/// Registry of named counters, max-gauges, and histograms. Registration
/// (name → handle) is cold-path; recording through a handle is a bounds-free
/// vector index on the hot path. Registering an existing name returns the
/// existing handle (histograms additionally require an identical bucket
/// configuration).
class Registry {
 public:
  /// Opaque per-kind index; valid for the lifetime of the registry.
  using Handle = std::size_t;

  /// Monotone integer counter (starts at 0).
  Handle counter(const std::string& name);
  /// Max-watermark gauge (starts empty; reports 0 until recorded).
  Handle gauge(const std::string& name);
  /// Fixed-bin histogram (see Hist::fixed).
  Handle fixed_histogram(const std::string& name, double lo, double hi,
                         std::size_t bins);
  /// Log-bucketed streaming-quantile histogram (see Hist::logarithmic).
  Handle log_histogram(const std::string& name);

  void add(Handle h, std::uint64_t delta = 1) noexcept {
    counters_[h].value += delta;
  }
  void gauge_max(Handle h, double v) noexcept {
    auto& g = gauges_[h];
    g.value = g.seen ? (v > g.value ? v : g.value) : v;
    g.seen = true;
  }
  void observe(Handle h, double v) noexcept { hists_[h].hist.add(v); }

  /// Lookups by name (tests and report writers); zero/null when absent.
  std::uint64_t counter_value(const std::string& name) const noexcept;
  double gauge_value(const std::string& name) const noexcept;
  const Hist* histogram(const std::string& name) const noexcept;

  /// Fold another registry in by name, creating entries this one lacks.
  /// Exact integer / max arithmetic: order-independent.
  void merge(const Registry& other);

  /// Zero all values, keeping registrations and handles (the per-trial
  /// reset; no allocation).
  void reset_values() noexcept;

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  /// Snapshot as {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, min, max, p50, p90, p99}}}, each section sorted by
  /// name so the serialization is canonical.
  JsonValue to_json() const;

 private:
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
    bool seen = false;
  };
  struct NamedHist {
    std::string name;
    Hist hist;
  };

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<NamedHist> hists_;
};

}  // namespace dqcsim::obs
