#include "obs/registry.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace dqcsim::obs {

namespace {

template <typename T>
std::size_t find_named(const std::vector<T>& items, const std::string& name) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].name == name) return i;
  }
  return items.size();
}

}  // namespace

Registry::Handle Registry::counter(const std::string& name) {
  const std::size_t i = find_named(counters_, name);
  if (i < counters_.size()) return i;
  counters_.push_back(Counter{name, 0});
  return counters_.size() - 1;
}

Registry::Handle Registry::gauge(const std::string& name) {
  const std::size_t i = find_named(gauges_, name);
  if (i < gauges_.size()) return i;
  gauges_.push_back(Gauge{name, 0.0, false});
  return gauges_.size() - 1;
}

Registry::Handle Registry::fixed_histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins) {
  const std::size_t i = find_named(hists_, name);
  if (i < hists_.size()) {
    DQCSIM_EXPECTS(hists_[i].hist.same_config(Hist::fixed(lo, hi, bins)));
    return i;
  }
  hists_.push_back(NamedHist{name, Hist::fixed(lo, hi, bins)});
  return hists_.size() - 1;
}

Registry::Handle Registry::log_histogram(const std::string& name) {
  const std::size_t i = find_named(hists_, name);
  if (i < hists_.size()) {
    DQCSIM_EXPECTS(hists_[i].hist.same_config(Hist::logarithmic()));
    return i;
  }
  hists_.push_back(NamedHist{name, Hist::logarithmic()});
  return hists_.size() - 1;
}

std::uint64_t Registry::counter_value(const std::string& name) const noexcept {
  const std::size_t i = find_named(counters_, name);
  return i < counters_.size() ? counters_[i].value : 0;
}

double Registry::gauge_value(const std::string& name) const noexcept {
  const std::size_t i = find_named(gauges_, name);
  return i < gauges_.size() ? gauges_[i].value : 0.0;
}

const Hist* Registry::histogram(const std::string& name) const noexcept {
  const std::size_t i = find_named(hists_, name);
  return i < hists_.size() ? &hists_[i].hist : nullptr;
}

void Registry::merge(const Registry& other) {
  for (const auto& c : other.counters_) {
    counters_[counter(c.name)].value += c.value;
  }
  for (const auto& g : other.gauges_) {
    if (g.seen) gauge_max(gauge(g.name), g.value);
  }
  for (const auto& h : other.hists_) {
    const std::size_t i = find_named(hists_, h.name);
    if (i < hists_.size()) {
      hists_[i].hist.merge(h.hist);
    } else {
      hists_.push_back(h);
    }
  }
}

void Registry::reset_values() noexcept {
  for (auto& c : counters_) c.value = 0;
  for (auto& g : gauges_) {
    g.value = 0.0;
    g.seen = false;
  }
  for (auto& h : hists_) h.hist.reset_values();
}

JsonValue Registry::to_json() const {
  auto sorted_names = [](const auto& items) {
    std::vector<std::string> names;
    names.reserve(items.size());
    for (const auto& item : items) names.push_back(item.name);
    std::sort(names.begin(), names.end());
    return names;
  };

  JsonValue counters = JsonValue::object();
  for (const auto& name : sorted_names(counters_)) {
    counters.set(name, JsonValue(static_cast<std::int64_t>(
                           counters_[find_named(counters_, name)].value)));
  }
  JsonValue gauges = JsonValue::object();
  for (const auto& name : sorted_names(gauges_)) {
    gauges.set(name, JsonValue(gauges_[find_named(gauges_, name)].value));
  }
  JsonValue hists = JsonValue::object();
  for (const auto& name : sorted_names(hists_)) {
    const Hist& h = hists_[find_named(hists_, name)].hist;
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(static_cast<std::int64_t>(h.count())));
    entry.set("min", JsonValue(h.min()));
    entry.set("max", JsonValue(h.max()));
    entry.set("p50", JsonValue(h.quantile(0.50)));
    entry.set("p90", JsonValue(h.quantile(0.90)));
    entry.set("p99", JsonValue(h.quantile(0.99)));
    hists.set(name, std::move(entry));
  }

  JsonValue doc = JsonValue::object();
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(hists));
  return doc;
}

}  // namespace dqcsim::obs
