/// \file trace.hpp
/// \brief Per-trial event tracing with Chrome trace-event JSON export.
///
/// TraceBuffer is a pre-sized ring of typed spans/instants that the engine
/// and the generation services append to while the *traced* trial runs (the
/// one whose seed matches obs::Observe::trace_seed — that trial's event
/// stream is deterministic, so the exported JSON is bit-identical at any
/// thread count). TraceSink turns a buffer into Chrome trace-event /
/// Perfetto-compatible JSON: one track (tid) per link/edge plus track 0 for
/// the engine, async "b"/"e" span pairs, and "i" instants. Open the file at
/// https://ui.perfetto.dev or chrome://tracing.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace dqcsim::obs {

/// Typed trace events. The name doubles as the Chrome trace "name" field.
enum class Ev : std::uint8_t {
  Trial,         ///< whole-trial span on the engine track
  GenOk,         ///< successful generation attempt window (span)
  GenFail,       ///< failed generation attempt window (span)
  Deposit,       ///< pair deposited into a buffer (instant)
  RemoteWait,    ///< remote gate ready → pair available (span)
  RemoteExec,    ///< remote gate execution incl. swap/purify latency (span)
  Purify,        ///< purification round on consume (instant)
  SwapAssemble,  ///< swap-as-you-go end-to-end assembly (instant)
  Salvage,       ///< degraded-mode pair salvage (instant)
  Outage,        ///< link/edge without a live route (span)
  Reroute,       ///< logical link re-established its route (instant)
  Reshare,       ///< capacity re-share at a scenario boundary (instant)
};

/// Chrome trace "name" string for an event type.
const char* ev_name(Ev ev) noexcept;
/// Chrome trace "cat" (category) string for an event type.
const char* ev_category(Ev ev) noexcept;

/// One recorded event. Spans carry [t0, t1]; instants use t0 only.
struct TraceEvent {
  double t0 = 0.0;
  double t1 = 0.0;
  Ev ev = Ev::Trial;
  bool span = false;
  std::uint32_t track = 0;
};

/// Fixed-capacity ring of trace events. reset() pre-sizes the backing
/// storage; recording never allocates, and events beyond the capacity
/// overwrite the oldest (dropped() reports how many were evicted).
class TraceBuffer {
 public:
  /// Clear and (re)reserve storage for `capacity` events.
  void reset(std::size_t capacity);

  void span(Ev ev, std::uint32_t track, double t0, double t1) noexcept {
    record(TraceEvent{t0, t1, ev, true, track});
  }
  void instant(Ev ev, std::uint32_t track, double t) noexcept {
    record(TraceEvent{t, t, ev, false, track});
  }

  /// Recorded events, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t size() const noexcept { return events_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  void record(const TraceEvent& e) noexcept;

  std::vector<TraceEvent> events_;  ///< ring storage, reserved by reset()
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t dropped_ = 0;
};

/// Exports a TraceBuffer as Chrome trace-event JSON. Track names set via
/// set_track_name() become thread_name metadata, so Perfetto labels each
/// link/edge row.
class TraceSink {
 public:
  /// Name a track (tid). Unnamed tracks appear as bare tids.
  void set_track_name(std::uint32_t track, std::string name);
  /// Forget all track names.
  void clear() noexcept { names_.clear(); }

  /// Build the {"traceEvents": [...]} document. Timestamps are scaled by
  /// `us_per_unit` (Chrome traces use microseconds; the default maps one
  /// simulation time unit to 1 µs). Events are emitted sorted by
  /// (timestamp, record order), with a span's "b" before its "e" at equal
  /// timestamps, so per-track timestamps are monotone.
  JsonValue to_json(const TraceBuffer& buf, double us_per_unit = 1.0) const;

  /// to_json() written to `path`.
  void write_file(const TraceBuffer& buf, const std::string& path,
                  double us_per_unit = 1.0) const;

 private:
  std::vector<std::string> names_;  ///< indexed by track id; "" = unnamed
};

}  // namespace dqcsim::obs
