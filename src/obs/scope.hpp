/// \file scope.hpp
/// \brief RAII timing scopes around engine phases (the run self-profile).
///
/// OBS_SCOPE(profile, phase) times the enclosing block into a fixed-size
/// per-phase table when `profile` is non-null and compiles to a null check
/// otherwise — the observer-off hot path pays one predictable branch and no
/// clock read. Wall-clock numbers are machine-dependent by nature, so the
/// profile is explicitly outside the bit-identical determinism guarantees
/// that cover the registry and the tracer (docs/ARCHITECTURE.md
/// "Observability").

#pragma once

// DQCSIM_LINT_ALLOW_FILE(no-wall-clock): the self-profile measures real
// elapsed time by design; steady_clock reads happen only when a Profile is
// attached and never feed simulation results (see the bit-identity caveat
// in the file doc above).

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/json.hpp"

namespace dqcsim::obs {

/// Engine phases surfaced in the self-profile.
enum class Phase : std::uint8_t {
  Setup,     ///< workspace (re)build on a setup-cache miss
  Routing,   ///< route planning on a routing-cache miss
  Plan,      ///< per-trial link/service preparation
  Drive,     ///< the DES drive loop (event dispatch + kernels)
  Finalize,  ///< figures of merit + observation export
};

inline constexpr std::size_t kPhaseCount = 5;

/// Phase name as it appears in profile reports.
const char* phase_name(Phase phase) noexcept;

/// Accumulated wall time and call count per phase.
class Profile {
 public:
  void record(Phase phase, std::uint64_t ns) noexcept {
    auto& e = entries_[static_cast<std::size_t>(phase)];
    ++e.calls;
    e.ns += ns;
  }

  std::uint64_t calls(Phase phase) const noexcept {
    return entries_[static_cast<std::size_t>(phase)].calls;
  }
  std::uint64_t total_ns(Phase phase) const noexcept {
    return entries_[static_cast<std::size_t>(phase)].ns;
  }

  void merge(const Profile& other) noexcept;
  void reset() noexcept;

  /// BENCH-style report: {"report": "obs_profile", "schema_version": 1,
  /// "kernels": [{"name": "phase/<Phase>", "ns_per_op", "iterations",
  /// "counters": {"total_ns"}}, ...]} — the same shape the bench regression
  /// tooling already parses (docs/BENCHMARKS.md).
  JsonValue to_json() const;

 private:
  struct Entry {
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
  };
  Entry entries_[kPhaseCount];
};

/// RAII timer feeding one Profile phase; a null profile skips the clock.
class ScopeTimer {
 public:
  ScopeTimer(Profile* profile, Phase phase) noexcept
      : profile_(profile), phase_(phase) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopeTimer() {
    if (profile_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    profile_->record(phase_, static_cast<std::uint64_t>(ns.count()));
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Profile* profile_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dqcsim::obs

#define DQCSIM_OBS_CONCAT_INNER(a, b) a##b
#define DQCSIM_OBS_CONCAT(a, b) DQCSIM_OBS_CONCAT_INNER(a, b)

/// Time the enclosing scope into `profile` (an obs::Profile* or null) under
/// `phase` (an obs::Phase).
#define OBS_SCOPE(profile, phase) \
  ::dqcsim::obs::ScopeTimer DQCSIM_OBS_CONCAT(obs_scope_, __LINE__)( \
      (profile), (phase))
