/// \file observe.hpp
/// \brief Opt-in observability configuration and cross-worker collection.
///
/// Attach an Observe to ArchConfig::observe to turn the engine's dormant
/// hooks on. A null pointer (the default) is the contract for "today's
/// behavior": bit-identical results and 0 steady-state allocations per
/// trial — every hook is a branch on that pointer, observation never draws
/// from the RNG, schedules an event, or touches a figure of merit.
///
/// Workers accumulate into per-RunContext registries/profiles and fold them
/// into the shared Collector at trial end; all merged state is exact
/// integer or max arithmetic, so collector snapshots are bit-identical at
/// any thread count (wall-clock profile numbers excepted — see scope.hpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/scope.hpp"

namespace dqcsim::obs {

/// Thread-safe sink the per-worker accumulations merge into.
class Collector {
 public:
  void merge_registry(const Registry& r) {
    const std::lock_guard<std::mutex> lock(mu_);
    registry_.merge(r);
  }
  void merge_profile(const Profile& p) {
    const std::lock_guard<std::mutex> lock(mu_);
    profile_.merge(p);
  }
  /// Store the traced trial's exported JSON (one trial traces per config,
  /// so the first writer wins; repeats of the same seed overwrite with
  /// identical content).
  void set_trace_json(std::string json) {
    const std::lock_guard<std::mutex> lock(mu_);
    trace_json_ = std::move(json);
  }

  Registry registry() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return registry_;
  }
  std::string registry_json(int indent = 2) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return registry_.to_json().dump(indent);
  }
  Profile profile() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return profile_;
  }
  std::string trace_json() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return trace_json_;
  }
  bool has_trace() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return !trace_json_.empty();
  }

 private:
  mutable std::mutex mu_;
  Registry registry_;
  Profile profile_;
  std::string trace_json_;
};

/// Observability switchboard. Non-copyable (the Collector owns a mutex);
/// share one instance across an experiment via ArchConfig's shared_ptr —
/// copying an ArchConfig stays allocation-free, like the scenario field.
struct Observe {
  /// trace_seed value meaning "trace no trial".
  static constexpr std::uint64_t kTraceOff = ~std::uint64_t{0};

  /// Accumulate registry counters/gauges/histograms.
  bool metrics = true;
  /// Time engine phases into the self-profile (wall clock).
  bool profile = true;
  /// Per-run seed (base_seed + run index) of the single trial to trace;
  /// kTraceOff disables tracing.
  std::uint64_t trace_seed = kTraceOff;
  /// Ring capacity (events) for the traced trial.
  std::size_t trace_capacity = std::size_t{1} << 15;
  /// Microseconds per simulation time unit in the exported trace.
  double trace_us_per_unit = 1.0;
  /// When non-empty, the traced trial also writes its JSON here.
  std::string trace_path;

  Collector collector;
};

/// Convenience: a fresh default Observe ready to hang on an ArchConfig.
inline std::shared_ptr<Observe> make_observe() {
  return std::make_shared<Observe>();
}

}  // namespace dqcsim::obs
