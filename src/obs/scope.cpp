#include "obs/scope.hpp"

#include <string>
#include <utility>

namespace dqcsim::obs {

const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::Setup:
      return "Setup";
    case Phase::Routing:
      return "Routing";
    case Phase::Plan:
      return "Plan";
    case Phase::Drive:
      return "Drive";
    case Phase::Finalize:
      return "Finalize";
  }
  return "unknown";
}

void Profile::merge(const Profile& other) noexcept {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    entries_[i].calls += other.entries_[i].calls;
    entries_[i].ns += other.entries_[i].ns;
  }
}

void Profile::reset() noexcept {
  for (auto& e : entries_) e = Entry{};
}

JsonValue Profile::to_json() const {
  JsonValue kernels = JsonValue::array();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Entry& e = entries_[i];
    if (e.calls == 0) continue;
    JsonValue k = JsonValue::object();
    k.set("name", JsonValue(std::string("phase/") +
                            phase_name(static_cast<Phase>(i))));
    k.set("ns_per_op", JsonValue(static_cast<double>(e.ns) /
                                 static_cast<double>(e.calls)));
    k.set("items_per_s", JsonValue(0.0));
    k.set("iterations", JsonValue(static_cast<std::int64_t>(e.calls)));
    k.set("label", JsonValue(""));
    JsonValue counters = JsonValue::object();
    counters.set("total_ns", JsonValue(static_cast<double>(e.ns)));
    k.set("counters", std::move(counters));
    kernels.push(std::move(k));
  }
  JsonValue doc = JsonValue::object();
  doc.set("report", JsonValue("obs_profile"));
  doc.set("schema_version", JsonValue(std::int64_t{1}));
  doc.set("kernels", std::move(kernels));
  return doc;
}

}  // namespace dqcsim::obs
