/// \file experiment.hpp
/// \brief High-level experiment driver: partition a workload, run a design
/// repeatedly, and aggregate — the workflow behind every figure (§V).

#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "net/topology.hpp"
#include "partition/partitioner.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/design.hpp"
#include "runtime/metrics.hpp"

namespace dqcsim::runtime {

/// Partition a circuit's qubits across `num_nodes` QPUs by balanced min-cut
/// of the interaction graph (the paper's METIS baseline, §IV-A).
partition::PartitionResult partition_circuit(const Circuit& circuit,
                                             int num_nodes,
                                             std::uint64_t seed = 1);

/// Topology-aware partition: balanced min-cut across the topology's nodes,
/// then a part -> physical-node placement that minimises the
/// distance-scaled cut sum(traffic(p, q) * hops(p, q)) (heavily
/// communicating parts land on adjacent QPUs, so fewer remote gates pay
/// multi-hop swap chains; see net::optimize_node_mapping). The returned
/// `cut` is that distance-scaled weight — on an all-to-all topology it
/// equals the plain cut and the assignment matches the overload above.
partition::PartitionResult partition_circuit(const Circuit& circuit,
                                             const net::Topology& topology,
                                             std::uint64_t seed = 1);

/// Run `design` on the partitioned circuit `runs` times with seeds
/// base_seed, base_seed+1, ... and aggregate depth/fidelity statistics.
/// The teleported-gate fidelity model is built once and shared.
///
/// Runs fan out across a thread pool of `threads` workers (0 = all hardware
/// threads, 1 = serial in the calling thread). Seed derivation is per-run
/// (base_seed + r) and results are folded into the aggregate in run order,
/// so the statistics are bit-identical for every thread count.
AggregateResult run_design(const Circuit& circuit,
                           const std::vector<int>& assignment,
                           const ArchConfig& config, DesignKind design,
                           int runs, std::uint64_t base_seed = 1000,
                           int threads = 0);

/// One cell of a design x configuration sweep.
struct DesignPoint {
  DesignKind design = DesignKind::AsyncBuf;
  ArchConfig config;
};

/// Batched sweep: evaluate every point with `runs` seeds each, scheduling
/// all point x run cells onto one shared pool so small per-point run counts
/// still saturate the machine. Element i of the result equals
/// run_design(circuit, assignment, points[i].config, points[i].design,
/// runs, base_seed) bit-for-bit, for every thread count.
std::vector<AggregateResult> run_design_matrix(
    const Circuit& circuit, const std::vector<int>& assignment,
    const std::vector<DesignPoint>& points, int runs,
    std::uint64_t base_seed = 1000, int threads = 0);

/// Depth of the circuit on an ideal monolithic device (lower bound used as
/// the normalization of Figures 5, 7 and 8).
double ideal_depth(const Circuit& circuit, const ArchConfig& config);

/// Fidelity on an ideal monolithic device (normalization of Figure 6).
double ideal_fidelity(const Circuit& circuit, const ArchConfig& config);

}  // namespace dqcsim::runtime
