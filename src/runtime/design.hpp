/// \file design.hpp
/// \brief The six architecture designs compared in the paper's evaluation.
///
///  - original:  no buffer qubits; a heralded pair exists only at its
///                generation instant and is wasted if no remote gate is
///                waiting (bufferless baseline).
///  - sync_buf:  buffer qubits, synchronous (aligned) generation attempts.
///  - async_buf: buffer qubits, staggered attempts (smooth arrivals).
///  - adapt_buf: async_buf plus adaptive ASAP/ALAP segment scheduling.
///  - init_buf:  adapt_buf plus a buffer pre-filled with EPR pairs at t=0.
///  - ideal:     monolithic device, all gates local (lower bound).

#pragma once

#include <string>
#include <vector>

namespace dqcsim::runtime {

/// Architecture design under evaluation (paper §V).
enum class DesignKind {
  Original,
  SyncBuf,
  AsyncBuf,
  AdaptBuf,
  InitBuf,
  IdealMono,
};

/// Paper's display name, e.g. "async_buf".
std::string design_name(DesignKind design);

/// All designs in the paper's presentation order.
std::vector<DesignKind> all_designs();

/// The five distributed designs (everything except ideal).
std::vector<DesignKind> distributed_designs();

/// True when the design stores generated pairs in buffer qubits.
bool design_uses_buffer(DesignKind design);

/// True when generation attempts are staggered (asynchronous).
bool design_uses_async(DesignKind design);

/// True when the adaptive segment-variant controller is active.
bool design_uses_adaptive(DesignKind design);

/// True when the buffer starts pre-filled with fresh EPR pairs.
bool design_uses_prefill(DesignKind design);

}  // namespace dqcsim::runtime
