#include "runtime/arch_config.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sched/segmentation.hpp"

namespace dqcsim::runtime {

void ArchConfig::validate() const {
  if (num_nodes < 2) {
    throw ConfigError("ArchConfig: a DQC system needs at least two nodes");
  }
  if (comm_per_node < 1) {
    throw ConfigError("ArchConfig: need at least one communication qubit");
  }
  if (buffer_per_node < 0) {
    throw ConfigError("ArchConfig: buffer count must be nonnegative");
  }
  if (!(p_succ > 0.0 && p_succ <= 1.0)) {
    throw ConfigError("ArchConfig: p_succ must be in (0, 1]");
  }
  if (kappa < 0.0) {
    throw ConfigError("ArchConfig: kappa must be nonnegative");
  }
  if (!(buffer_cutoff > 0.0)) {
    throw ConfigError("ArchConfig: buffer cutoff must be positive");
  }
  if (async_subgroups < 1) {
    throw ConfigError("ArchConfig: async_subgroups must be at least 1");
  }
  if (lat.one_qubit < 0.0 || lat.local_cnot <= 0.0 || lat.measurement < 0.0 ||
      lat.epr_cycle <= 0.0 || lat.swap_buffer < 0.0 ||
      lat.remote_gate <= 0.0 || lat.remote_gate_state <= 0.0) {
    throw ConfigError("ArchConfig: latencies out of domain");
  }
  if (purification_latency < 0.0) {
    throw ConfigError("ArchConfig: purification latency must be nonnegative");
  }
  const auto fid_ok = [](double f) { return f > 0.0 && f <= 1.0; };
  if (!fid_ok(fid.one_qubit) || !fid_ok(fid.local_cnot) ||
      !fid_ok(fid.measurement)) {
    throw ConfigError("ArchConfig: gate fidelities must be in (0, 1]");
  }
  if (!(fid.epr_f0 >= 0.25 && fid.epr_f0 <= 1.0)) {
    throw ConfigError("ArchConfig: EPR fidelity must be in [0.25, 1]");
  }
  if (congestion_alpha < 0.0) {
    throw ConfigError("ArchConfig: congestion_alpha must be nonnegative");
  }
  retry_policy.validate();
  if (stall_windows < 0) {
    throw ConfigError("ArchConfig: stall_windows must be nonnegative");
  }
  if (!(max_trial_sim_time > 0.0)) {
    throw ConfigError("ArchConfig: max_trial_sim_time must be positive");
  }
  if (reshare_at_boundaries && !share_edge_capacity) {
    throw ConfigError(
        "ArchConfig: reshare_at_boundaries re-computes capacity shares and "
        "needs share_edge_capacity on");
  }
  if (topology) {
    topology->validate();
    if (topology->num_nodes() != num_nodes) {
      throw ConfigError(
          "ArchConfig: topology node count must match num_nodes");
    }
  }
  if (scenario) {
    if (!topology) {
      throw ConfigError(
          "ArchConfig: a fault scenario requires a topology (scenarios "
          "target physical edges; use net::Topology::all_to_all for the "
          "legacy interconnect)");
    }
    scenario->validate(*topology);
  }
}

namespace {

/// The architecture-wide link fields shared by every interconnect edge
/// (capacities are filled in by the caller from the local link degree).
ent::LinkParams common_link_params(const ArchConfig& cfg,
                                   DesignKind design) {
  ent::LinkParams link;
  link.p_succ = cfg.p_succ;
  link.cycle_time = cfg.lat.epr_cycle;
  link.swap_latency = cfg.lat.swap_buffer;
  link.f0 = cfg.fid.epr_f0;
  link.kappa = cfg.kappa;
  link.cutoff = cfg.buffer_cutoff;
  link.schedule = design_uses_async(design)
                      ? ent::AttemptSchedule::Asynchronous
                      : ent::AttemptSchedule::Synchronous;
  link.async_subgroups = cfg.async_subgroups;
  link.consume_freshest = cfg.consume_freshest;
  link.record_trace = cfg.record_arrival_trace;
  link.retry = cfg.retry_policy;
  return link;
}

/// Split a node's comm/buffer budget across `links_per_node` incident
/// links. Throws when the budget cannot cover the links.
void split_budget(const ArchConfig& cfg, DesignKind design,
                  int links_per_node, ent::LinkParams& link) {
  if (cfg.comm_per_node < links_per_node) {
    throw ConfigError(
        "ArchConfig: fewer communication qubits than links per node");
  }
  // Each node splits its communication qubits evenly across its links; a
  // link's pair count is the per-node share (both endpoints contribute one
  // qubit per pair).
  link.num_comm_pairs = cfg.comm_per_node / links_per_node;
  // A buffered pair occupies one buffer qubit per node; without buffer
  // qubits the design has no storage at all.
  link.buffer_capacity =
      design_uses_buffer(design)
          ? std::max(1, cfg.buffer_per_node / links_per_node)
          : 0;
}

}  // namespace

ent::LinkParams ArchConfig::link_params(DesignKind design) const {
  ent::LinkParams link = common_link_params(*this, design);
  split_budget(*this, design, num_nodes - 1, link);
  return link;
}

ent::LinkParams ArchConfig::link_params(DesignKind design, int node_a,
                                        int node_b) const {
  if (!topology) return link_params(design);
  const net::Topology& topo = *topology;
  if (node_a < 0 || node_b < 0 || node_a >= topo.num_nodes() ||
      node_b >= topo.num_nodes()) {
    throw ConfigError("ArchConfig: link endpoint outside [0, num_nodes)");
  }
  const std::size_t edge = topo.edge_index(node_a, node_b);
  if (edge == net::Topology::npos) {
    throw ConfigError(
        "ArchConfig: node pair has no physical edge; multi-hop links are "
        "derived by routing (net::Router + net::compose_route)");
  }
  ent::LinkParams link = common_link_params(*this, design);
  // The scarcer endpoint bounds the link: each endpoint splits its budget
  // across its own degree.
  split_budget(*this, design,
               std::max(topo.degree(node_a), topo.degree(node_b)), link);
  const net::EdgeOverrides& o = topo.edge(edge).overrides;
  if (o.p_succ) link.p_succ = *o.p_succ;
  if (o.cycle_time) link.cycle_time = *o.cycle_time;
  if (o.f0) link.f0 = *o.f0;
  return link;
}

net::SwapParams ArchConfig::swap_params() const {
  net::SwapParams swap;
  swap.bsm_fidelity = fid.local_cnot * fid.measurement * fid.measurement;
  swap.latency = lat.local_cnot + lat.measurement;
  return swap;
}

std::size_t ArchConfig::effective_segment_size() const {
  if (segment_size > 0) return segment_size;
  return sched::default_segment_size(comm_per_node, p_succ);
}

}  // namespace dqcsim::runtime
