#include "runtime/arch_config.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sched/segmentation.hpp"

namespace dqcsim::runtime {

void ArchConfig::validate() const {
  if (num_nodes < 2) {
    throw ConfigError("ArchConfig: a DQC system needs at least two nodes");
  }
  if (comm_per_node < 1) {
    throw ConfigError("ArchConfig: need at least one communication qubit");
  }
  if (buffer_per_node < 0) {
    throw ConfigError("ArchConfig: buffer count must be nonnegative");
  }
  if (!(p_succ > 0.0 && p_succ <= 1.0)) {
    throw ConfigError("ArchConfig: p_succ must be in (0, 1]");
  }
  if (kappa < 0.0) {
    throw ConfigError("ArchConfig: kappa must be nonnegative");
  }
  if (!(buffer_cutoff > 0.0)) {
    throw ConfigError("ArchConfig: buffer cutoff must be positive");
  }
  if (async_subgroups < 1) {
    throw ConfigError("ArchConfig: async_subgroups must be at least 1");
  }
  if (lat.one_qubit < 0.0 || lat.local_cnot <= 0.0 || lat.measurement < 0.0 ||
      lat.epr_cycle <= 0.0 || lat.swap_buffer < 0.0 ||
      lat.remote_gate <= 0.0 || lat.remote_gate_state <= 0.0) {
    throw ConfigError("ArchConfig: latencies out of domain");
  }
  if (purification_latency < 0.0) {
    throw ConfigError("ArchConfig: purification latency must be nonnegative");
  }
  const auto fid_ok = [](double f) { return f > 0.0 && f <= 1.0; };
  if (!fid_ok(fid.one_qubit) || !fid_ok(fid.local_cnot) ||
      !fid_ok(fid.measurement)) {
    throw ConfigError("ArchConfig: gate fidelities must be in (0, 1]");
  }
  if (!(fid.epr_f0 >= 0.25 && fid.epr_f0 <= 1.0)) {
    throw ConfigError("ArchConfig: EPR fidelity must be in [0.25, 1]");
  }
}

ent::LinkParams ArchConfig::link_params(DesignKind design) const {
  const int links_per_node = num_nodes - 1;
  if (comm_per_node < links_per_node) {
    throw ConfigError(
        "ArchConfig: fewer communication qubits than links per node");
  }
  ent::LinkParams link;
  // Each node splits its communication qubits evenly across its links; a
  // link's pair count is the per-node share (both endpoints contribute one
  // qubit per pair).
  link.num_comm_pairs = comm_per_node / links_per_node;
  // A buffered pair occupies one buffer qubit per node; without buffer
  // qubits the design has no storage at all.
  link.buffer_capacity = design_uses_buffer(design)
                             ? std::max(1, buffer_per_node / links_per_node)
                             : 0;
  link.p_succ = p_succ;
  link.cycle_time = lat.epr_cycle;
  link.swap_latency = lat.swap_buffer;
  link.f0 = fid.epr_f0;
  link.kappa = kappa;
  link.cutoff = buffer_cutoff;
  link.schedule = design_uses_async(design)
                      ? ent::AttemptSchedule::Asynchronous
                      : ent::AttemptSchedule::Synchronous;
  link.async_subgroups = async_subgroups;
  link.consume_freshest = consume_freshest;
  return link;
}

std::size_t ArchConfig::effective_segment_size() const {
  if (segment_size > 0) return segment_size;
  return sched::default_segment_size(comm_per_node, p_succ);
}

}  // namespace dqcsim::runtime
