#include "runtime/engine.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "circuit/fusion.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "ent/generation_service.hpp"
#include "noise/fidelity_ledger.hpp"
#include "noise/purification.hpp"
#include "noise/werner.hpp"
#include "sched/adaptive_policy.hpp"
#include "sched/remote_gates.hpp"
#include "sched/segmentation.hpp"
#include "sched/variants.hpp"

namespace dqcsim::runtime {

struct ExecutionEngine::Impl {
  // --- construction-time state ------------------------------------------
  const Circuit& circuit;
  std::vector<int> assignment;
  ArchConfig config;
  DesignKind design;
  Rng rng;
  sched::GatePlacement placement;

  des::Simulator sim;

  std::optional<noise::TeleportFidelityModel> owned_model;
  const noise::TeleportFidelityModel* teleport_model = nullptr;
  std::optional<noise::StateTeleportCnotModel> state_model;

  // --- adaptive scheduling state ------------------------------------------
  std::vector<sched::Segment> segments;
  std::unique_ptr<sched::SegmentVariantTable> variant_table;
  std::unique_ptr<sched::AdaptivePolicy> adaptive_policy;
  std::size_t next_segment = 0;  ///< index of the next segment to admit
  bool admitting = false;        ///< re-entrancy guard for pump_segments
  std::vector<std::size_t> segment_of_gate;   // valid once admitted
  std::vector<std::size_t> unstarted_in_segment;

  // --- per-gate scheduling state -------------------------------------------
  static constexpr std::size_t kNone = ~std::size_t{0};
  std::vector<std::size_t> last_on_wire;      // per qubit, kNone if none
  std::vector<std::size_t> remaining_preds;
  std::vector<std::vector<std::size_t>> succs_of;
  std::vector<char> admitted, started, completed_flag;
  std::size_t num_completed = 0;
  double makespan = 0.0;

  // --- local 1q chain fusion (config.fuse_local_gates) ---------------------
  // Runs of consecutive one-qubit gates on a wire execute as one event with
  // summed latency. Chain members have no observers between them (a 1q
  // gate's only successor is the next gate on its wire), so eliding the
  // intermediate events leaves every completion instant, ledger factor and
  // statistic bit-identical. Active only for non-adaptive designs: the
  // adaptive controller samples buffer occupancy as segments start, and
  // coarsening events would move those sampling instants.
  bool fuse_chains = false;
  std::vector<std::size_t> chain_next;  ///< kNoFusedNext-terminated chains

  // Remote gates waiting for pairs, FIFO by readiness. A gate needs
  // pairs_per_remote_gate() pairs; in the bufferless design they may be
  // collected across heralding instants (held on communication qubits,
  // decaying under the same Werner law).
  struct PendingRemote {
    std::size_t gate;
    des::SimTime ready_at;
    std::vector<des::SimTime> pair_births;
  };

  // One entanglement link per node pair that carries remote gates
  // (all-to-all interconnect; links without traffic are not instantiated).
  struct LinkState {
    std::unique_ptr<ent::GenerationService> service;
    std::deque<PendingRemote> pending;
  };
  std::vector<LinkState> links;
  std::vector<int> link_of_pair;  // [a * num_nodes + b] -> index or -1

  LinkState& link_of_gate(std::size_t g) {
    const Gate& gate = circuit.gate(g);
    const int a = assignment[static_cast<std::size_t>(gate.q0())];
    const int b = assignment[static_cast<std::size_t>(gate.q1())];
    const int idx =
        link_of_pair[static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(config.num_nodes) +
                     static_cast<std::size_t>(b)];
    DQCSIM_ENSURES(idx >= 0);
    return links[static_cast<std::size_t>(idx)];
  }

  /// Buffered pairs currently available across every link (the adaptive
  /// controller's occupancy signal e).
  std::size_t total_buffered_pairs() {
    std::size_t total = 0;
    for (auto& link : links) {
      total += link.service->buffer().size(sim.now());
    }
    return total;
  }

  // --- metrics -------------------------------------------------------------
  noise::FidelityLedger ledger;
  RunResult result;
  Accumulator pair_age_acc;
  Accumulator remote_wait_acc;
  bool ran = false;

  Impl(const Circuit& c, std::vector<int> a, const ArchConfig& cfg,
       DesignKind d, std::uint64_t seed,
       const noise::TeleportFidelityModel* model)
      : circuit(c),
        assignment(std::move(a)),
        config(cfg),
        design(d),
        rng(seed) {
    config.validate();
    if (design != DesignKind::IdealMono) {
      DQCSIM_EXPECTS_MSG(
          assignment.size() == static_cast<std::size_t>(circuit.num_qubits()),
          "partition assignment must cover every qubit");
      for (int node : assignment) {
        DQCSIM_EXPECTS_MSG(node >= 0 && node < config.num_nodes,
                           "node id outside [0, num_nodes)");
      }
      placement = sched::classify_gates(circuit, assignment);
    } else {
      placement.is_remote.assign(circuit.num_gates(), 0);
    }

    noise::TeleportNoiseParams tele;
    tele.local_2q_fidelity = config.fid.local_cnot;
    tele.local_1q_fidelity = config.fid.one_qubit;
    tele.readout_fidelity = config.fid.measurement;
    if (config.remote_impl == RemoteImpl::GateTeleport) {
      if (model != nullptr) {
        teleport_model = model;
      } else if (placement.num_remote_2q > 0) {
        owned_model.emplace(tele);
        teleport_model = &*owned_model;
      }
    } else if (placement.num_remote_2q > 0) {
      state_model.emplace(tele);
    }

    const std::size_t n = circuit.num_gates();
    last_on_wire.assign(static_cast<std::size_t>(circuit.num_qubits()), kNone);
    remaining_preds.assign(n, 0);
    succs_of.assign(n, {});
    admitted.assign(n, 0);
    started.assign(n, 0);
    completed_flag.assign(n, 0);
    segment_of_gate.assign(n, 0);
  }

  // --- helpers --------------------------------------------------------------

  double latency_of(const Gate& g, bool remote) const {
    if (remote) {
      return config.remote_impl == RemoteImpl::GateTeleport
                 ? config.lat.remote_gate
                 : config.lat.remote_gate_state;
    }
    if (g.kind == GateKind::Measure) return config.lat.measurement;
    if (g.arity() == 2) return config.lat.local_cnot;
    return config.lat.one_qubit;
  }

  double gate_fidelity_local(const Gate& g) const {
    if (g.kind == GateKind::Measure) return config.fid.measurement;
    if (g.arity() == 2) return config.fid.local_cnot;
    return config.fid.one_qubit;
  }

  bool is_remote(std::size_t gate_index) const {
    return design != DesignKind::IdealMono &&
           placement.is_remote[gate_index] != 0;
  }

  // --- admission (stream construction) --------------------------------------

  /// Admit gate `g` into the execution stream: wire up dependencies on the
  /// previously admitted gates sharing its qubits.
  void admit_gate(std::size_t g, std::size_t segment_index) {
    DQCSIM_ENSURES(!admitted[g]);
    admitted[g] = 1;
    segment_of_gate[g] = segment_index;
    const Gate& gate = circuit.gate(g);
    std::size_t preds = 0;
    for (int k = 0; k < gate.arity(); ++k) {
      auto& last = last_on_wire[static_cast<std::size_t>(
          gate.qubits[static_cast<std::size_t>(k)])];
      if (last != kNone && !completed_flag[last]) {
        // Duplicate edges (same pred via both wires) are fine: count both
        // and notify twice on completion — avoided by checking succs back:
        auto& sv = succs_of[last];
        if (sv.empty() || sv.back() != g) {
          sv.push_back(g);
          ++preds;
        }
      }
      last = g;
    }
    remaining_preds[g] = preds;
    if (preds == 0) on_gate_ready(g);
  }

  /// Admit every gate of segment s in the order of the selected variant.
  /// Callers must hold the `admitting` guard so nested gate starts cannot
  /// interleave another segment's admission mid-way.
  void admit_segment(std::size_t s) {
    DQCSIM_ENSURES(s < segments.size());
    sched::SchedulingPolicy policy = sched::SchedulingPolicy::Original;
    if (adaptive_policy) {
      const std::size_t available = total_buffered_pairs();
      policy = adaptive_policy->choose(available);
      switch (policy) {
        case sched::SchedulingPolicy::Asap: ++result.segments_asap; break;
        case sched::SchedulingPolicy::Alap: ++result.segments_alap; break;
        case sched::SchedulingPolicy::Original:
          ++result.segments_original;
          break;
      }
    }
    const auto& order = variant_table->order(s, policy);
    unstarted_in_segment[s] = order.size();
    for (std::size_t g : order) admit_gate(g, s);
  }

  /// Admit further segments while the most recently admitted one has fully
  /// started (paper §III-D: the controller picks the next segment's variant
  /// as execution reaches it). Re-entrant calls (a gate starting during
  /// admission) defer to the outer loop.
  void pump_segments() {
    if (admitting || !adaptive_policy) return;
    admitting = true;
    while (next_segment < segments.size() &&
           unstarted_in_segment[next_segment - 1] == 0) {
      const std::size_t s = next_segment++;
      admit_segment(s);
    }
    admitting = false;
  }

  // --- execution -------------------------------------------------------------

  void on_gate_ready(std::size_t g) {
    if (is_remote(g)) {
      LinkState& link = link_of_gate(g);
      link.pending.push_back(PendingRemote{g, sim.now(), {}});
      try_serve_pending(link);
    } else {
      start_local_gate(g);
    }
  }

  static noise::FidelityTerm local_term_of(const Gate& gate) {
    return (gate.arity() == 2) ? noise::FidelityTerm::Local2Q
           : (gate.kind == GateKind::Measure)
               ? noise::FidelityTerm::Measurement
               : noise::FidelityTerm::Local1Q;
  }

  void start_local_gate(std::size_t g) {
    if (fuse_chains && circuit.gate(g).arity() == 1) {
      start_local_chain(g);
      return;
    }
    const Gate& gate = circuit.gate(g);
    ledger.add_factor(local_term_of(gate), gate_fidelity_local(gate));
    begin_execution(g, latency_of(gate, /*remote=*/false));
  }

  /// Start the maximal admitted 1q chain beginning at `g` as one event.
  void start_local_chain(std::size_t head) {
    // Left-fold the member latencies onto the clock exactly as sequential
    // scheduling would (t -> t + l0 -> (t + l0) + l1 ...), so the chain's
    // completion instant is bit-identical to the unfused execution.
    des::SimTime end = sim.now();
    std::size_t tail = head;
    for (std::size_t g = head;; g = chain_next[g]) {
      DQCSIM_ENSURES(!started[g]);
      started[g] = 1;
      const Gate& gate = circuit.gate(g);
      ledger.add_factor(local_term_of(gate), gate_fidelity_local(gate));
      end += latency_of(gate, /*remote=*/false);
      tail = g;
      if (chain_next[g] == kNoFusedNext || !admitted[chain_next[g]]) break;
    }
    sim.schedule_at(end, [this, head, tail] {
      for (std::size_t g = head;; g = chain_next[g]) {
        complete_gate(g);
        if (g == tail) break;
      }
    });
  }

  /// Werner-decayed fidelities of collected pairs at the current instant,
  /// recording their ages.
  std::vector<double> decay_births(const std::vector<des::SimTime>& births) {
    std::vector<double> fidelities;
    fidelities.reserve(births.size());
    for (const des::SimTime birth : births) {
      const double age = sim.now() - birth;
      pair_age_acc.add(age);
      fidelities.push_back(noise::werner_decayed_fidelity(
          config.fid.epr_f0, config.kappa, age));
    }
    return fidelities;
  }

  /// With purify_on_consume, distill every two raw pairs into one logical
  /// pair (BBPSSW). Returns nullopt when any round fails — all raw pairs
  /// are lost and the caller must re-collect (a failure of one round
  /// discards the whole batch; see DESIGN.md). Without purification the
  /// raw fidelities pass through.
  std::optional<std::vector<double>> maybe_purify(
      const std::vector<double>& raw) {
    if (!config.purify_on_consume) return raw;
    std::vector<double> logical;
    bool all_succeeded = true;
    for (std::size_t i = 0; i + 1 < raw.size(); i += 2) {
      const auto outcome = noise::purify_werner(raw[i], raw[i + 1]);
      ++result.purification_rounds;
      if (rng.bernoulli(outcome.success_probability)) {
        logical.push_back(outcome.fidelity);
      } else {
        ++result.purification_failures;
        all_succeeded = false;
      }
    }
    if (!all_succeeded) return std::nullopt;
    return logical;
  }

  /// Start a remote gate from its (logical) pair fidelities; `extra_delay`
  /// models local purification time before the teleportation begins.
  void start_remote_gate(std::size_t g,
                         const std::vector<double>& pair_fidelity,
                         double extra_delay = 0.0) {
    const std::size_t expected =
        config.remote_impl == RemoteImpl::GateTeleport ? 1u : 2u;
    DQCSIM_ENSURES(pair_fidelity.size() == expected);
    const double gate_fidelity =
        config.remote_impl == RemoteImpl::GateTeleport
            ? teleport_model->eval(pair_fidelity[0])
            : state_model->eval(pair_fidelity[0], pair_fidelity[1]);
    ledger.add_factor(noise::FidelityTerm::Remote, gate_fidelity);
    begin_execution(
        g, extra_delay + latency_of(circuit.gate(g), /*remote=*/true));
  }

  void begin_execution(std::size_t g, double latency) {
    DQCSIM_ENSURES(!started[g]);
    started[g] = 1;

    // Segment bookkeeping for adaptive admission.
    if (adaptive_policy) {
      const std::size_t s = segment_of_gate[g];
      DQCSIM_ENSURES(unstarted_in_segment[s] > 0);
      --unstarted_in_segment[s];
      pump_segments();
    }

    sim.schedule_in(latency, [this, g] { complete_gate(g); });
  }

  void complete_gate(std::size_t g) {
    DQCSIM_ENSURES(!completed_flag[g]);
    completed_flag[g] = 1;
    ++num_completed;
    makespan = std::max(makespan, sim.now());
    for (std::size_t next : succs_of[g]) {
      DQCSIM_ENSURES(remaining_preds[next] > 0);
      // A chain-fused successor is already running; just settle the edge.
      if (--remaining_preds[next] == 0 && !started[next]) {
        on_gate_ready(next);
      }
    }
  }

  /// Serve queued remote gates from a link's buffer (buffered designs). A
  /// gate is served only when the buffer holds its full pair quota, so a
  /// two-pair gate cannot strand a half-claimed pair decaying outside the
  /// cutoff policy's reach.
  void try_serve_pending(LinkState& link) {
    if (link.service->mode() != ent::ServiceMode::Buffered) return;
    const auto order = link.service->params().consume_freshest
                           ? ent::ConsumeOrder::FreshestFirst
                           : ent::ConsumeOrder::OldestFirst;
    const auto needed =
        static_cast<std::size_t>(config.pairs_per_remote_gate());
    while (!link.pending.empty() &&
           link.service->buffer().size(sim.now()) >= needed) {
      PendingRemote req = std::move(link.pending.front());
      link.pending.pop_front();
      for (std::size_t i = 0; i < needed; ++i) {
        auto pair = link.service->buffer().pop(sim.now(), order);
        DQCSIM_ENSURES(pair.has_value());
        req.pair_births.push_back(pair->deposited);
      }
      const auto logical = maybe_purify(decay_births(req.pair_births));
      if (!logical) {
        // Purification failed: pairs are lost, the gate retries from the
        // head of the queue (the buffer shrank, so this loop terminates).
        req.pair_births.clear();
        link.pending.push_front(std::move(req));
        continue;
      }
      remote_wait_acc.add(sim.now() - req.ready_at);
      start_remote_gate(req.gate, *logical,
                        config.purify_on_consume
                            ? config.purification_latency
                            : 0.0);
    }
  }

  /// OnDemand arrival (bufferless original design): a waiting remote gate
  /// on this link claims the pair at its heralding instant. Multi-pair
  /// gates hold already-claimed pairs on the communication qubits (same
  /// decay law) until their quota fills.
  bool on_demand_arrival(LinkState& link, des::SimTime now) {
    if (link.pending.empty()) return false;
    PendingRemote& req = link.pending.front();
    req.pair_births.push_back(now);
    if (static_cast<int>(req.pair_births.size()) <
        config.pairs_per_remote_gate()) {
      return true;  // claimed and held; wait for the next herald
    }
    const auto logical = maybe_purify(decay_births(req.pair_births));
    if (!logical) {
      req.pair_births.clear();  // pairs lost; keep collecting
      return true;
    }
    PendingRemote filled = std::move(req);
    link.pending.pop_front();
    remote_wait_acc.add(now - filled.ready_at);
    start_remote_gate(filled.gate, *logical,
                      config.purify_on_consume ? config.purification_latency
                                               : 0.0);
    return true;
  }

  RunResult do_run() {
    DQCSIM_EXPECTS_MSG(!ran, "ExecutionEngine::run may be called once");
    ran = true;

    const bool needs_link =
        design != DesignKind::IdealMono && placement.num_remote_2q > 0;
    if (needs_link) {
      if (design_uses_buffer(design) && config.buffer_per_node < 1) {
        throw ConfigError(
            "buffered designs need at least one buffer qubit per node");
      }
      // Instantiate one generation service per node pair with traffic.
      const auto n = static_cast<std::size_t>(config.num_nodes);
      link_of_pair.assign(n * n, -1);
      const auto link_params = config.link_params(design);
      const auto mode = design_uses_buffer(design)
                            ? ent::ServiceMode::Buffered
                            : ent::ServiceMode::OnDemand;
      for (std::size_t g = 0; g < circuit.num_gates(); ++g) {
        if (!placement.is_remote[g]) continue;
        const Gate& gate = circuit.gate(g);
        const auto a = static_cast<std::size_t>(
            assignment[static_cast<std::size_t>(gate.q0())]);
        const auto b = static_cast<std::size_t>(
            assignment[static_cast<std::size_t>(gate.q1())]);
        if (link_of_pair[a * n + b] >= 0) continue;
        const int idx = static_cast<int>(links.size());
        link_of_pair[a * n + b] = idx;
        link_of_pair[b * n + a] = idx;
        links.push_back(LinkState{
            std::make_unique<ent::GenerationService>(sim, link_params, rng,
                                                     mode),
            {}});
      }
      for (auto& link : links) {
        LinkState* link_ptr = &link;
        if (mode == ent::ServiceMode::Buffered) {
          link.service->set_arrival_handler([this, link_ptr](des::SimTime) {
            try_serve_pending(*link_ptr);
            return true;
          });
        } else {
          link.service->set_arrival_handler(
              [this, link_ptr](des::SimTime now) {
                return on_demand_arrival(*link_ptr, now);
              });
        }
        if (design_uses_prefill(design)) link.service->pre_fill_buffer();
        link.service->start();
      }
    }

    if (design_uses_adaptive(design) && needs_link) {
      segments = sched::segment_by_remote_gates(
          placement, config.effective_segment_size());
      variant_table = std::make_unique<sched::SegmentVariantTable>(
          circuit, placement, segments);
      adaptive_policy = std::make_unique<sched::AdaptivePolicy>(
          config.effective_segment_size());
      unstarted_in_segment.assign(segments.size(), 0);
      admitting = true;
      next_segment = 1;
      admit_segment(0);
      admitting = false;
      pump_segments();
    } else {
      if (config.fuse_local_gates) {
        fuse_chains = true;
        chain_next = fusible_1q_chain_next(circuit);
      }
      // Single implicit segment: the whole circuit in program order.
      for (std::size_t g = 0; g < circuit.num_gates(); ++g) {
        admit_gate(g, 0);
      }
    }

    // Drive the simulation until every gate has completed. The generation
    // service perpetually schedules events, so the loop can always advance;
    // an event-starved state with unfinished gates indicates a logic error.
    while (num_completed < circuit.num_gates()) {
      const bool progressed = sim.step();
      DQCSIM_ENSURES_MSG(progressed,
                         "simulation stalled with unfinished gates");
    }
    for (auto& link : links) link.service->stop();

    // Figures of merit.
    ledger.add_idling(config.kappa, makespan);
    result.depth = makespan / config.lat.local_cnot;
    result.fidelity = ledger.fidelity();
    result.fidelity_local =
        ledger.category_fidelity(noise::FidelityTerm::Local1Q) *
        ledger.category_fidelity(noise::FidelityTerm::Local2Q) *
        ledger.category_fidelity(noise::FidelityTerm::Measurement);
    result.fidelity_remote =
        ledger.category_fidelity(noise::FidelityTerm::Remote);
    result.fidelity_idling =
        ledger.category_fidelity(noise::FidelityTerm::Idling);
    result.remote_gates = placement.num_remote_2q;
    for (const auto& link : links) {
      const auto& service = *link.service;
      result.epr_attempts += service.attempts();
      result.epr_successes += service.successes();
      result.epr_consumed +=
          service.buffer().total_consumed() +
          (service.mode() == ent::ServiceMode::OnDemand
               ? service.successes() - service.wasted_unconsumed()
               : 0);
      result.epr_wasted +=
          service.wasted_buffer_full() + service.wasted_unconsumed();
      result.epr_expired += service.buffer().total_expired();
    }
    result.avg_pair_age = pair_age_acc.mean();
    result.avg_remote_wait = remote_wait_acc.mean();
    return result;
  }
};

ExecutionEngine::ExecutionEngine(
    const Circuit& circuit, std::vector<int> assignment,
    const ArchConfig& config, DesignKind design, std::uint64_t seed,
    const noise::TeleportFidelityModel* teleport_model)
    : impl_(std::make_unique<Impl>(circuit, std::move(assignment), config,
                                   design, seed, teleport_model)) {}

ExecutionEngine::~ExecutionEngine() = default;

RunResult ExecutionEngine::run() { return impl_->do_run(); }

}  // namespace dqcsim::runtime
