#include "runtime/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "circuit/fusion.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "ent/generation_service.hpp"
#include "net/congestion.hpp"
#include "net/router.hpp"
#include "net/swap.hpp"
#include "noise/fidelity_ledger.hpp"
#include "noise/purification.hpp"
#include "noise/werner.hpp"
#include "obs/observe.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "scenario/runtime.hpp"
#include "sched/adaptive_policy.hpp"
#include "sched/remote_gates.hpp"
#include "sched/segmentation.hpp"
#include "sched/variants.hpp"

namespace dqcsim::runtime {

namespace {

/// Cheap content hash guarding the setup cache against a different circuit
/// materializing at a recycled address.
std::uint64_t circuit_fingerprint(const Circuit& c) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(c.num_qubits()));
  mix(c.num_gates());
  for (std::size_t i = 0; i < c.num_gates(); ++i) {
    const Gate& g = c.gate(i);
    mix(static_cast<std::uint64_t>(g.kind));
    mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(g.qubits[0]))
         << 32) |
        static_cast<std::uint32_t>(g.qubits[1]));
    std::uint64_t param_bits;
    std::memcpy(&param_bits, &g.param, sizeof param_bits);
    mix(param_bits);
  }
  return h;
}

bool same_fidelities(const Fidelities& a, const Fidelities& b) {
  return a.one_qubit == b.one_qubit && a.local_cnot == b.local_cnot &&
         a.measurement == b.measurement && a.epr_f0 == b.epr_f0;
}

void validate_inputs(const Circuit& circuit, const std::vector<int>& assignment,
                     const ArchConfig& config, DesignKind design) {
  config.validate();
  if (design != DesignKind::IdealMono) {
    DQCSIM_EXPECTS_MSG(
        assignment.size() == static_cast<std::size_t>(circuit.num_qubits()),
        "partition assignment must cover every qubit");
    for (int node : assignment) {
      DQCSIM_EXPECTS_MSG(node >= 0 && node < config.num_nodes,
                         "node id outside [0, num_nodes)");
    }
  }
}

}  // namespace

struct RunContext::State {
  static constexpr std::size_t kNone = ~std::size_t{0};
  /// Capacity of the inline pair-birth store: 2 pairs (state teleport)
  /// doubled by purify-on-consume is the structural maximum.
  static constexpr std::size_t kMaxPairsPerGate = 4;

  // --- persistent workspace (reused across trials) --------------------------
  des::Simulator sim;
  Rng rng{0};

  // --- current-trial inputs -------------------------------------------------
  const Circuit* circuit = nullptr;
  ArchConfig config;
  DesignKind design = DesignKind::AsyncBuf;
  const noise::TeleportFidelityModel* teleport_model = nullptr;

  // --- cached setup (rebuilt only when the key changes) ---------------------
  struct SetupKey {
    bool valid = false;
    const Circuit* circuit = nullptr;
    std::uint64_t fingerprint = 0;
    std::vector<int> assignment;
    DesignKind design = DesignKind::AsyncBuf;
    int num_nodes = 0;
    std::size_t effective_segment_size = 0;
    bool fuse_local_gates = false;
    RemoteImpl remote_impl = RemoteImpl::GateTeleport;
    Fidelities fid;
  } key;

  sched::GatePlacement placement;
  std::vector<sched::Segment> segments;
  std::unique_ptr<sched::SegmentVariantTable> variant_table;
  std::optional<sched::AdaptivePolicy> adaptive_policy;
  std::vector<std::size_t> chain_next;  ///< kNoFusedNext-terminated chains
  std::optional<noise::TeleportFidelityModel> owned_model;
  std::optional<noise::StateTeleportCnotModel> state_model;
  bool use_adaptive = false;

  // --- local 1q chain fusion (config.fuse_local_gates) ----------------------
  // Runs of consecutive one-qubit gates on a wire execute as one event with
  // summed latency. Chain members have no observers between them (a 1q
  // gate's only successor is the next gate on its wire), so eliding the
  // intermediate events leaves every completion instant, ledger factor and
  // statistic bit-identical. Active only for non-adaptive designs: the
  // adaptive controller samples buffer occupancy as segments start, and
  // coarsening events would move those sampling instants.
  bool fuse_chains = false;

  // Remote gates waiting for pairs, FIFO by readiness. A gate needs
  // pairs_per_remote_gate() pairs; in the bufferless design they may be
  // collected across heralding instants (held on communication qubits,
  // decaying under the same Werner law).
  struct PendingRemote {
    std::size_t gate = 0;
    des::SimTime ready_at = 0.0;
    std::array<des::SimTime, kMaxPairsPerGate> births{};
    /// Fidelity each pair had at its birth instant. Equals the link's f0 on
    /// a stationary fabric; under a scenario it captures the drifted value,
    /// so consumption-time decay is exact even after drift or a reroute.
    std::array<double, kMaxPairsPerGate> birth_f0{};
    std::uint32_t num_births = 0;
  };

  /// Head-indexed FIFO that recycles its storage once drained, so the
  /// steady-state trial loop never reallocates.
  struct PendingFifo {
    std::vector<PendingRemote> items;
    std::size_t head = 0;

    bool empty() const noexcept { return head == items.size(); }
    PendingRemote& front() noexcept { return items[head]; }
    void push_back(const PendingRemote& req) { items.push_back(req); }
    void pop_front() noexcept {
      ++head;
      if (head == items.size()) {
        clear();
      } else if (head >= 64 && 2 * head >= items.size()) {
        // Reclaim the consumed prefix (trivially-copyable shift, no
        // allocation) so a never-draining queue stays O(live depth),
        // amortized O(1) per pop.
        items.erase(items.begin(),
                    items.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
    void clear() noexcept {
      items.clear();
      head = 0;
    }
  };

  // One entanglement link per node pair that carries remote gates (links
  // without traffic are not instantiated). Services persist across trials
  // and are reset() per trial with that trial's parameters: homogeneous
  // all-to-all without a topology, or the routed end-to-end composition of
  // the pair's physical path with one (see refresh_routing / do_run).
  struct LinkState {
    std::unique_ptr<ent::GenerationService> service;
    PendingFifo pending;
    int node_a = 0;             ///< logical endpoint pair served
    int node_b = 0;
    int hops = 1;               ///< physical edges backing the pair
    double extra_latency = 0.0; ///< swap-chain delay per consuming gate

    // Fault-scenario route state (maintained only while a scenario is
    // active; see apply_scen_boundary). Structural parameters (capacities,
    // cycle time) stay frozen at the t=0 composition for the whole trial —
    // endpoint hardware is the binding resource — while the path, p_succ,
    // and f0 follow the live route.
    std::vector<std::size_t> route_edges;  ///< physical edges, route order
    bool route_up = true;                  ///< false while no live route
    des::SimTime down_since = 0.0;         ///< when the route was lost
  };
  std::vector<LinkState> links;
  std::vector<int> link_of_pair;  // [a * num_nodes + b] -> index or -1

  // --- routing cache (topology-backed interconnects) ------------------------
  // Rebuilt only when its inputs change, so consecutive same-configuration
  // trials route with zero allocation. Not part of the setup key: routing
  // depends on link parameters (p_succ sweeps), which the setup cache
  // deliberately ignores.

  /// The scalar configuration slice that, together with the (immutable,
  /// pinned) topology, fully determines per-edge parameters, edge costs,
  /// and routes — so a trial's cache-hit test is one memberwise compare.
  struct RouteInputs {
    DesignKind design = DesignKind::AsyncBuf;
    bool route_by_hops = false;
    int comm_per_node = 0;
    int buffer_per_node = 0;
    double p_succ = 0.0;
    double epr_cycle = 0.0;
    double swap_buffer = 0.0;
    double f0 = 0.0;
    double kappa = 0.0;
    double cutoff = 0.0;
    int async_subgroups = 0;
    bool consume_freshest = false;
    bool record_trace = true;
    net::SwapParams swap;
    ent::RetryPolicy retry;

    friend bool operator==(const RouteInputs&,
                           const RouteInputs&) = default;
  };

  struct RouteCache {
    bool valid = false;
    /// Shared ownership pins the cached topology's address, so the pointer
    /// comparison in refresh_routing can never alias a recycled object.
    std::shared_ptr<const net::Topology> topology;
    RouteInputs inputs;
    std::vector<ent::LinkParams> edge_params;  ///< per topology edge
    std::vector<double> edge_costs;
    net::Router router;
  };
  RouteCache route_cache;

  // --- congestion / shared-capacity machinery (opt-in ArchConfig knobs;
  // see net/congestion.hpp). Trial-scoped: plans are recomputed at t=0 and
  // at outage boundaries; every container is reused across trials so the
  // steady-state loop stays allocation-free.
  net::CongestionPlanner planner;
  std::vector<net::RoutePlan> link_plans;  ///< parallel to links
  std::vector<int> edge_rank;              ///< next share rank per edge
  std::vector<int> hop_comm_scratch;       ///< per-hop comm share
  std::vector<int> hop_buf_scratch;        ///< per-hop buffer share
  std::vector<double> hop_fid_scratch;     ///< swap-as-you-go hop fidelities
  /// Swap-as-you-go: one buffered generation service per *physical edge*
  /// (every topology edge generates continuously — unrouted edges waste
  /// their successes into a full buffer, which is what idle hardware does).
  std::vector<std::unique_ptr<ent::GenerationService>> edge_services;
  /// Links whose current plan crosses each edge, in link creation order:
  /// the deterministic arbitration order for pairs deposited on that edge.
  std::vector<std::vector<int>> links_on_edge;
  bool use_swap_go = false;      ///< this trial runs per-edge services
  bool use_shared_caps = false;  ///< composed links get capacity shares
  bool use_congestion = false;   ///< routes picked by load-scaled costs

  bool contended() const noexcept {
    return use_swap_go || use_shared_caps || use_congestion;
  }

  // --- fault-scenario state (config.scenario; see src/scenario/) -----------
  // Outage boundaries are engine-pushed events (scheduled lazily, one at a
  // time, from the ScenarioRuntime's boundary stream); drift needs no
  // events at all — the generation services pull effective parameters at
  // their own window boundaries through link_effective.
  scenario::ScenarioRuntime scen;
  bool scen_active = false;
  std::uint64_t scen_epoch = 0;    ///< invalidates stale boundary events
  std::vector<char> scen_edge_up;  ///< current up mask, per topology edge
  bool scen_any_down = false;      ///< any entry of scen_edge_up is 0
  net::Router scen_router;         ///< masked router while any edge is down
  std::vector<double> scen_hop_f0; ///< scratch for route f0 composition

  // --- adaptive scheduling state (per trial) --------------------------------
  std::size_t next_segment = 0;  ///< index of the next segment to admit
  bool admitting = false;        ///< re-entrancy guard for pump_segments
  std::vector<std::size_t> segment_of_gate;   // valid once admitted
  std::vector<std::size_t> unstarted_in_segment;

  // --- per-gate scheduling state (per trial) --------------------------------
  /// Flat successor store: a gate has at most one successor per wire, so
  /// two slots cover every case without per-gate vectors.
  struct GateSuccs {
    std::size_t s[2];
    std::uint8_t n = 0;
  };
  std::vector<std::size_t> last_on_wire;      // per qubit, kNone if none
  std::vector<std::size_t> remaining_preds;
  std::vector<GateSuccs> succs_of;
  std::vector<char> admitted, started, completed_flag;
  std::size_t num_completed = 0;
  double makespan = 0.0;

  // --- reusable scratch (hoisted per-event temporaries) ---------------------
  std::vector<double> scratch_raw;      ///< decayed pair fidelities
  std::vector<double> scratch_logical;  ///< post-purification fidelities
  std::vector<noise::PurificationOutcome> scratch_outcomes;
  std::vector<double> scratch_uniforms;

  // --- metrics (per trial) --------------------------------------------------
  noise::FidelityLedger ledger;
  RunResult result;
  Accumulator pair_age_acc;
  Accumulator remote_wait_acc;
  Accumulator route_hops_acc;

  // --- observability (config.observe; see src/obs/) -------------------------
  // Every hook below branches on the `observe` pointer and is dormant when
  // it is null: one predictable branch, no clock read, no allocation — the
  // contract behind the observer-off bit-identical + 0-alloc guarantee.
  // Observation never draws from the RNG or schedules an event, so the
  // observer-on results are bit-identical to observer-off too.
  obs::Observe* observe = nullptr;  ///< borrowed from config.observe
  bool obs_trace = false;           ///< this trial is the traced one
  obs::TraceBuffer trace_buf;
  obs::TraceSink trace_sink;
  obs::Registry reg;     ///< this worker's accumulation, merged per trial
  obs::Profile profile;  ///< this worker's phase timings
  /// Traced trial only: open outage start per physical edge.
  std::vector<double> edge_down_since;

  /// Registry handles, resolved once per RunContext (registration is the
  /// cold path; recording through a handle is a vector index).
  struct RegHandles {
    bool valid = false;
    obs::Registry::Handle trials = 0;
    obs::Registry::Handle setup_hits = 0;
    obs::Registry::Handle setup_misses = 0;
    obs::Registry::Handle route_hits = 0;
    obs::Registry::Handle route_misses = 0;
    obs::Registry::Handle reroutes = 0;
    obs::Registry::Handle outage_events = 0;
    obs::Registry::Handle purification_rounds = 0;
    obs::Registry::Handle purification_failures = 0;
    obs::Registry::Handle pairs_salvaged = 0;
    obs::Registry::Handle pairs_discarded = 0;
    obs::Registry::Handle trace_dropped = 0;
    obs::Registry::Handle max_delivery_gap = 0;
    obs::Registry::Handle makespan_max = 0;
    obs::Registry::Handle pair_age = 0;
    obs::Registry::Handle remote_wait = 0;
    obs::Registry::Handle outage_downtime = 0;
    obs::Registry::Handle route_hops = 0;
  } regh;

  bool obs_metrics() const noexcept {
    return observe != nullptr && observe->metrics;
  }
  obs::Profile* prof() noexcept {
    return observe != nullptr && observe->profile ? &profile : nullptr;
  }
  /// Trace track ids: 0 = engine, then logical links, then physical edges.
  std::uint32_t link_track(const LinkState& link) const noexcept {
    return 1 + static_cast<std::uint32_t>(&link - links.data());
  }
  std::uint32_t edge_track(std::size_t e) const noexcept {
    return static_cast<std::uint32_t>(1 + links.size() + e);
  }

  void resolve_reg_handles() {
    regh.trials = reg.counter("trials");
    // The four *_cache_* counters measure per-worker work done: every
    // RunContext misses its workspace/route caches once, so their totals
    // scale with the worker count. They sit outside the bit-identical
    // thread-count guarantee, which covers all trial-scoped metrics
    // (docs/ARCHITECTURE.md "Observability").
    regh.setup_hits = reg.counter("setup_cache_hits");
    regh.setup_misses = reg.counter("setup_cache_misses");
    regh.route_hits = reg.counter("route_cache_hits");
    regh.route_misses = reg.counter("route_cache_misses");
    regh.reroutes = reg.counter("reroutes");
    regh.outage_events = reg.counter("outage_events");
    regh.purification_rounds = reg.counter("purification_rounds");
    regh.purification_failures = reg.counter("purification_failures");
    regh.pairs_salvaged = reg.counter("pairs_salvaged");
    regh.pairs_discarded = reg.counter("pairs_discarded");
    regh.trace_dropped = reg.counter("trace_dropped_events");
    regh.max_delivery_gap = reg.gauge("max_delivery_gap");
    regh.makespan_max = reg.gauge("makespan_max");
    regh.pair_age = reg.log_histogram("pair_age");
    regh.remote_wait = reg.log_histogram("remote_wait");
    regh.outage_downtime = reg.log_histogram("outage_downtime");
    regh.route_hops = reg.fixed_histogram("route_hops", 0.0, 64.0, 64);
    regh.valid = true;
  }

  /// One consumed-pair buffer-dwell sample.
  void obs_pair_age(double age) noexcept {
    if (obs_metrics()) reg.observe(regh.pair_age, age);
  }

  /// One served remote gate: wait/hops samples plus, on the traced trial,
  /// the wait span and the execution span on the link's track.
  void obs_remote_served(const LinkState& link, double ready_at, double hops,
                         double exec_latency) noexcept {
    if (observe == nullptr) return;
    if (observe->metrics) {
      reg.observe(regh.remote_wait, sim.now() - ready_at);
      reg.observe(regh.route_hops, hops);
    }
    if (obs_trace) {
      const std::uint32_t track = link_track(link);
      trace_buf.span(obs::Ev::RemoteWait, track, ready_at, sim.now());
      trace_buf.span(obs::Ev::RemoteExec, track, sim.now(),
                     sim.now() + exec_latency);
    }
  }

  /// A logical link's outage interval [since, t] just closed.
  void obs_outage_over(std::uint32_t track, double since, double t) noexcept {
    if (obs_metrics()) reg.observe(regh.outage_downtime, t - since);
    if (obs_trace) trace_buf.span(obs::Ev::Outage, track, since, t);
  }

  /// End-of-trial observation: close outage intervals still open at the
  /// makespan, fold the trial's result counters into the registry, export
  /// the traced trial, and merge this worker's accumulation into the
  /// shared collector (then reset it — registrations and capacity stay).
  void finish_observation() {
    if (scen_active) {
      for (const auto& link : links) {
        if (!link.route_up) {
          obs_outage_over(link_track(link), link.down_since,
                          std::max(link.down_since, makespan));
        }
      }
      if (obs_trace) {
        for (std::size_t e = 0; e < scen_edge_up.size(); ++e) {
          if (!scen_edge_up[e]) {
            trace_buf.span(obs::Ev::Outage, edge_track(e),
                           edge_down_since[e],
                           std::max(edge_down_since[e], makespan));
          }
        }
      }
    }
    if (obs_trace) {
      trace_buf.span(obs::Ev::Trial, 0, 0.0, makespan);
    }
    if (observe->metrics) {
      reg.add(regh.reroutes, result.reroutes);
      reg.add(regh.outage_events, result.outage_events);
      reg.add(regh.purification_rounds, result.purification_rounds);
      reg.add(regh.purification_failures, result.purification_failures);
      reg.add(regh.pairs_salvaged, result.pairs_salvaged);
      reg.add(regh.pairs_discarded, result.pairs_discarded);
      if (obs_trace) reg.add(regh.trace_dropped, trace_buf.dropped());
      reg.gauge_max(regh.makespan_max, makespan);
      const auto note_gap = [&](const ent::GenerationService& svc) {
        reg.gauge_max(regh.max_delivery_gap, svc.max_delivery_gap(sim.now()));
      };
      if (use_swap_go) {
        for (const auto& svc : edge_services) note_gap(*svc);
      } else {
        for (const auto& link : links) note_gap(*link.service);
      }
      observe->collector.merge_registry(reg);
      reg.reset_values();
    }
    if (observe->profile) {
      observe->collector.merge_profile(profile);
      profile.reset();
    }
    if (obs_trace) {
      trace_sink.clear();
      trace_sink.set_track_name(0, "engine");
      for (const auto& link : links) {
        trace_sink.set_track_name(link_track(link),
                                  "link " + std::to_string(link.node_a) +
                                      "-" + std::to_string(link.node_b));
      }
      if (config.topology != nullptr && (scen_active || use_swap_go)) {
        for (std::size_t e = 0; e < config.topology->num_edges(); ++e) {
          const net::TopologyEdge& edge = config.topology->edge(e);
          trace_sink.set_track_name(edge_track(e),
                                    "edge " + std::to_string(edge.a) + "-" +
                                        std::to_string(edge.b));
        }
      }
      if (!observe->trace_path.empty()) {
        trace_sink.write_file(trace_buf, observe->trace_path,
                              observe->trace_us_per_unit);
      }
      observe->collector.set_trace_json(
          trace_sink.to_json(trace_buf, observe->trace_us_per_unit).dump(0));
    }
  }

  // --- setup / reuse --------------------------------------------------------

  /// Setup-key equality for everything except circuit identity (which the
  /// caller resolves via pointer or fingerprint).
  bool setup_fields_match(const std::vector<int>& assignment,
                          const ArchConfig& cfg, DesignKind d) const {
    return key.valid && key.design == d && key.num_nodes == cfg.num_nodes &&
           key.effective_segment_size == cfg.effective_segment_size() &&
           key.fuse_local_gates == cfg.fuse_local_gates &&
           key.remote_impl == cfg.remote_impl &&
           same_fidelities(key.fid, cfg.fid) && key.assignment == assignment;
  }

  /// Recompute every circuit/assignment/design-derived artifact. Called
  /// only when the setup key changes; consecutive trials of one sweep cell
  /// reuse everything built here.
  void rebuild_setup(const Circuit& c, const std::vector<int>& assignment,
                     const ArchConfig& cfg, DesignKind d,
                     std::uint64_t fingerprint) {
    key.valid = false;
    owned_model.reset();
    state_model.reset();

    if (d != DesignKind::IdealMono) {
      sched::classify_gates(c, assignment, placement);
    } else {
      placement.is_remote.assign(c.num_gates(), 0);
      placement.num_remote_2q = 0;
      placement.num_local_2q = 0;
      placement.num_1q = 0;
      placement.num_measure = 0;
    }

    const bool needs_link =
        d != DesignKind::IdealMono && placement.num_remote_2q > 0;
    use_adaptive = design_uses_adaptive(d) && needs_link;
    fuse_chains = !use_adaptive && cfg.fuse_local_gates;
    if (fuse_chains) {
      chain_next = fusible_1q_chain_next(c);
    } else {
      chain_next.clear();
    }

    if (use_adaptive) {
      segments = sched::segment_by_remote_gates(
          placement, cfg.effective_segment_size());
      variant_table = std::make_unique<sched::SegmentVariantTable>(
          c, placement, segments);
      adaptive_policy.emplace(cfg.effective_segment_size());
    } else {
      segments.clear();
      variant_table.reset();
      adaptive_policy.reset();
    }

    // Link topology: one generation service per node pair with remote
    // traffic, instantiated in first-traffic order (the order events are
    // later scheduled in, which the FIFO tie-break observes).
    links.clear();
    link_of_pair.clear();
    if (needs_link) {
      const auto n = static_cast<std::size_t>(cfg.num_nodes);
      link_of_pair.assign(n * n, -1);
      const auto mode = design_uses_buffer(d) ? ent::ServiceMode::Buffered
                                              : ent::ServiceMode::OnDemand;
      for (std::size_t g = 0; g < c.num_gates(); ++g) {
        if (!placement.is_remote[g]) continue;
        const Gate& gate = c.gate(g);
        const auto a = static_cast<std::size_t>(
            assignment[static_cast<std::size_t>(gate.q0())]);
        const auto b = static_cast<std::size_t>(
            assignment[static_cast<std::size_t>(gate.q1())]);
        if (link_of_pair[a * n + b] >= 0) continue;
        const int idx = static_cast<int>(links.size());
        link_of_pair[a * n + b] = idx;
        link_of_pair[b * n + a] = idx;
        // Construct with placeholder defaults: do_run resets every service
        // with the trial's actual (possibly routed) parameters before it
        // starts, so nothing behavioral is derived from these.
        links.push_back(LinkState{
            std::make_unique<ent::GenerationService>(sim, ent::LinkParams{},
                                                     rng, mode),
            {},
            static_cast<int>(a),
            static_cast<int>(b),
            1,
            0.0,
            {}});
      }
    }

    key.circuit = &c;
    key.fingerprint = fingerprint;
    key.assignment = assignment;
    key.design = d;
    key.num_nodes = cfg.num_nodes;
    key.effective_segment_size = cfg.effective_segment_size();
    key.fuse_local_gates = cfg.fuse_local_gates;
    key.remote_impl = cfg.remote_impl;
    key.fid = cfg.fid;
    key.valid = true;
  }

  /// Point the workspace at one trial's inputs: reseed, rewind the
  /// simulator, and re-zero all per-trial state. Reuses every buffer.
  void prepare(const Circuit& c, const std::vector<int>& assignment,
               const ArchConfig& cfg, DesignKind d, std::uint64_t seed,
               const noise::TeleportFidelityModel* model) {
    validate_inputs(c, assignment, cfg, d);
    DQCSIM_ENSURES(static_cast<std::size_t>(cfg.pairs_per_remote_gate()) <=
                   kMaxPairsPerGate);

    circuit = &c;
    config = cfg;
    design = d;
    rng = Rng(seed);
    sim.reset();

    // Arm observability for this trial (config.observe; see src/obs/). The
    // traced trial is selected by its per-run seed, so the choice — and the
    // exported trace — is thread-count independent. Its ring is (re)sized
    // here, outside the steady-state path: non-traced trials never touch
    // the buffer.
    observe = config.observe.get();
    obs_trace = observe != nullptr && observe->trace_seed == seed;
    if (obs_trace) trace_buf.reset(observe->trace_capacity);
    if (obs_metrics()) {
      if (!regh.valid) resolve_reg_handles();
      reg.add(regh.trials);
    }

    // Arm the fault scenario for this trial. A genuinely empty scenario is
    // treated as absent, keeping the stationary fast path; the schedule is
    // derived from the trial seed (never from `rng`), so enabling a
    // scenario cannot perturb the generation stream's draws.
    ++scen_epoch;
    scen_active = config.scenario != nullptr && !config.scenario->empty();
    if (scen_active) {
      scen.begin_trial(*config.scenario, *config.topology, seed);
      scen_edge_up.assign(config.topology->num_edges(), 1);
      scen_any_down = false;
      if (obs_trace) {
        edge_down_since.assign(config.topology->num_edges(), 0.0);
      }
    }

    // Cache-hit resolution: the same Circuit object hits on pointer
    // identity alone, keeping the per-trial cost O(1) (a circuit must not
    // be mutated in place between execute() calls). A *different* address
    // — including a new circuit recycled at the old address — hits only if
    // its content fingerprint matches the cached one; the fingerprint
    // covers gate count and width, so a shape change always rebuilds.
    bool setup_hit = false;
    if (setup_fields_match(assignment, cfg, d)) {
      if (key.circuit == &c) {
        setup_hit = true;
      } else if (circuit_fingerprint(c) == key.fingerprint) {
        setup_hit = true;
        key.circuit = &c;
      }
    }
    if (obs_metrics()) {
      reg.add(setup_hit ? regh.setup_hits : regh.setup_misses);
    }
    if (!setup_hit) {
      OBS_SCOPE(prof(), obs::Phase::Setup);
      rebuild_setup(c, assignment, cfg, d, circuit_fingerprint(c));
    }

    noise::TeleportNoiseParams tele;
    tele.local_2q_fidelity = config.fid.local_cnot;
    tele.local_1q_fidelity = config.fid.one_qubit;
    tele.readout_fidelity = config.fid.measurement;
    teleport_model = nullptr;
    if (config.remote_impl == RemoteImpl::GateTeleport) {
      if (model != nullptr) {
        teleport_model = model;
      } else if (placement.num_remote_2q > 0) {
        if (!owned_model) owned_model.emplace(tele);
        teleport_model = &*owned_model;
      }
    } else if (placement.num_remote_2q > 0) {
      if (!state_model) state_model.emplace(tele);
    }

    const std::size_t n = c.num_gates();
    last_on_wire.assign(static_cast<std::size_t>(c.num_qubits()), kNone);
    remaining_preds.assign(n, 0);
    succs_of.assign(n, GateSuccs{});
    admitted.assign(n, 0);
    started.assign(n, 0);
    completed_flag.assign(n, 0);
    segment_of_gate.assign(n, 0);
    unstarted_in_segment.assign(segments.size(), 0);
    next_segment = 0;
    admitting = false;
    num_completed = 0;
    makespan = 0.0;
    for (auto& link : links) link.pending.clear();
    use_swap_go = false;
    use_shared_caps = false;
    use_congestion = false;

    ledger = noise::FidelityLedger{};
    result = RunResult{};
    pair_age_acc = Accumulator{};
    remote_wait_acc = Accumulator{};
    route_hops_acc = Accumulator{};
  }

  /// Bring the routing cache up to date with the current trial's topology
  /// and link parameters. A cache hit (consecutive trials of one sweep
  /// cell) is one scalar compare and performs no allocation; a miss
  /// re-derives per-edge parameters, edge costs and all-pairs routes.
  void refresh_routing() {
    RouteInputs inputs;
    inputs.design = design;
    inputs.route_by_hops = config.route_by_hops;
    inputs.comm_per_node = config.comm_per_node;
    inputs.buffer_per_node = config.buffer_per_node;
    inputs.p_succ = config.p_succ;
    inputs.epr_cycle = config.lat.epr_cycle;
    inputs.swap_buffer = config.lat.swap_buffer;
    inputs.f0 = config.fid.epr_f0;
    inputs.kappa = config.kappa;
    inputs.cutoff = config.buffer_cutoff;
    inputs.async_subgroups = config.async_subgroups;
    inputs.consume_freshest = config.consume_freshest;
    inputs.record_trace = config.record_arrival_trace;
    inputs.swap = config.swap_params();
    inputs.retry = config.retry_policy;
    if (route_cache.valid && route_cache.topology == config.topology &&
        route_cache.inputs == inputs) {
      if (obs_metrics()) reg.add(regh.route_hits);
      return;
    }
    if (obs_metrics()) reg.add(regh.route_misses);
    OBS_SCOPE(prof(), obs::Phase::Routing);
    const net::Topology& topo = *config.topology;
    const std::size_t num_edges = topo.num_edges();
    route_cache.valid = false;
    route_cache.topology = config.topology;
    route_cache.inputs = inputs;
    route_cache.edge_params.resize(num_edges);
    route_cache.edge_costs.resize(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
      const net::TopologyEdge& edge = topo.edge(e);
      const ent::LinkParams p =
          config.link_params(design, edge.a, edge.b);
      route_cache.edge_params[e] = p;
      // Expected time per delivered pair: attempt window over the link's
      // aggregate success rate. Hop-count routing ignores link quality.
      route_cache.edge_costs[e] =
          config.route_by_hops
              ? 1.0
              : p.cycle_time /
                    (p.p_succ * static_cast<double>(p.num_comm_pairs));
    }
    route_cache.router = net::Router(topo, route_cache.edge_costs);
    route_cache.valid = true;
  }

  // --- fault scenario (drift, outages, re-routing) --------------------------

  /// Effective end-to-end parameters of a logical link at time `t`: per-hop
  /// base values from the route cache, scaled by the scenario and composed
  /// exactly like net::compose_route (same product order for p_succ, same
  /// weight fold via swap_composed_fidelity for f0), so unit scales
  /// reproduce the stationary composition bit-for-bit.
  ent::EffectiveLink link_effective(const LinkState& link, des::SimTime t) {
    ent::EffectiveLink eff;
    eff.up = link.route_up;
    double p = 1.0;
    scen_hop_f0.clear();
    for (const std::size_t e : link.route_edges) {
      // Window completions can share an instant with a boundary event in
      // either order; asking the schedule directly keeps `up` exact.
      if (!scen.edge_up(e, t)) eff.up = false;
      const ent::LinkParams& ep = route_cache.edge_params[e];
      p *= scen.effective_p_succ(e, ep.p_succ, t);
      scen_hop_f0.push_back(scen.effective_f0(e, ep.f0, t));
    }
    eff.p_succ = p;
    eff.f0 = net::swap_composed_fidelity(
        scen_hop_f0.data(), scen_hop_f0.size(),
        route_cache.inputs.swap.bsm_fidelity);
    return eff;
  }

  /// Re-evaluate one logical link's route at an outage boundary: adopt the
  /// surviving path (counting a reroute on any route re-establishment —
  /// a path change while live, or a recovery after downtime) or mark the
  /// link down when no path survives.
  void update_link_route(LinkState& link, double t) {
    const net::Router& router =
        scen_any_down ? scen_router : route_cache.router;
    if (!router.has_route(link.node_a, link.node_b)) {
      if (link.route_up) {
        link.route_up = false;
        link.down_since = t;
      }
      return;
    }
    const net::Route& route = router.route(link.node_a, link.node_b);
    const bool path_changed =
        link.route_edges.size() != route.edges.size() ||
        !std::equal(route.edges.begin(), route.edges.end(),
                    link.route_edges.begin());
    if (link.route_up && !path_changed) return;
    if (!link.route_up) {
      result.outage_downtime += t - link.down_since;
      obs_outage_over(link_track(link), link.down_since, t);
      link.route_up = true;
    }
    ++result.reroutes;
    if (obs_trace) trace_buf.instant(obs::Ev::Reroute, link_track(link), t);
    if (path_changed) {
      if (config.salvage_pairs) {
        // The stock kept across the re-plan is re-credited to the new
        // route's budget instead of rotting against the dead path.
        result.pairs_salvaged += link.service->buffer().size(t);
      }
      link.route_edges.assign(route.edges.begin(), route.edges.end());
      link.hops = route.hops();
      link.extra_latency = static_cast<double>(link.hops - 1) *
                           route_cache.inputs.swap.latency;
    }
  }

  /// Recompute the edge up/down mask at boundary time `t` and re-route
  /// every logical link whose state it affects. Spurious boundaries
  /// (overlapping outage windows) change nothing and return early. Rebuilds
  /// the masked router when edges are down — an allocation, but outage
  /// boundaries are rare relative to simulation events, so the steady-state
  /// trial loop stays allocation-free.
  void apply_scen_boundary(double t) {
    bool changed = false;
    bool any_down = false;
    for (std::size_t e = 0; e < scen_edge_up.size(); ++e) {
      const char up = scen.edge_up(e, t) ? 1 : 0;
      if (up != scen_edge_up[e]) {
        changed = true;
        // Traced trial: physical-edge outage intervals as spans on the
        // edge's own track (logical-link outages live on the link tracks).
        if (obs_trace) {
          if (up) {
            trace_buf.span(obs::Ev::Outage, edge_track(e), edge_down_since[e],
                           t);
          } else {
            edge_down_since[e] = t;
          }
        }
      }
      scen_edge_up[e] = up;
      if (!up) any_down = true;
    }
    if (!changed) return;
    scen_any_down = any_down;
    if (any_down && !use_congestion) {
      scen_router =
          net::Router(*config.topology, route_cache.edge_costs, scen_edge_up);
    }
    bool any_lost = false;
    if (contended()) {
      // Re-plan every route over the surviving subgraph — with congestion
      // routing the detours contend again (load-scaled costs), otherwise
      // the masked static routes are adopted.
      plan_all_routes(&scen_edge_up);
      if (use_swap_go) rebuild_links_on_edge();
      for (std::size_t i = 0; i < links.size(); ++i) {
        const bool was_up = links[i].route_up;
        update_link_from_plan(i, t);
        if (was_up && !links[i].route_up) any_lost = true;
      }
      if (use_swap_go && config.salvage_pairs) {
        // A down node loses its stored halves: flush the buffers of its
        // incident edges before anyone salvages through them.
        for (std::size_t e = 0; e < edge_services.size(); ++e) {
          const net::TopologyEdge& edge = config.topology->edge(e);
          if (!scen.node_up(edge.a, t) || !scen.node_up(edge.b, t)) {
            result.pairs_discarded += edge_services[e]->buffer().flush(t);
          }
        }
      }
      if (use_shared_caps && !use_swap_go &&
          config.reshare_at_boundaries) {
        if (obs_trace) trace_buf.instant(obs::Ev::Reshare, 0, t);
        reshare_capacity();
      }
      if (use_swap_go) {
        // Deposits wasted against full buffers do not re-fire the arrival
        // handler, so a link re-planned onto already-full edges would
        // otherwise stall until some other deposit lands: serve everyone
        // once against the new plans. With salvage_pairs this same pass
        // is the salvage drain — links whose routes were just severed
        // consume their pre-outage stock here, in creation order.
        for (std::size_t i = 0; i < links.size(); ++i) {
          try_serve_pending_swap(i);
        }
      }
    } else {
      for (auto& link : links) {
        const bool was_up = link.route_up;
        update_link_route(link, t);
        if (was_up && !link.route_up) any_lost = true;
      }
    }
    if (any_lost) ++result.outage_events;
  }

  /// Schedule the next outage boundary as a simulation event (lazily, one
  /// at a time: the stochastic schedule is unbounded, and sim.reset()
  /// between trials discards whatever was left pending).
  void schedule_next_scen_boundary(double t) {
    const std::optional<double> next = scen.next_boundary(t);
    if (!next) return;
    const double when = *next;
    sim.schedule_at(when, [this, when, epoch = scen_epoch] {
      if (epoch != scen_epoch) return;
      apply_scen_boundary(when);
      schedule_next_scen_boundary(when);
    });
  }

  // --- congestion-aware planning & swap-as-you-go (opt-in modes) ------------

  /// (Re)assign every logical link's physical path, in link creation order.
  /// With congestion-aware routing each link is routed over load-scaled
  /// costs (earlier traffic raises the cost later traffic sees); otherwise
  /// the static all-pairs route is adopted and only the load accounting
  /// runs (capacity shares are load-derived even under static routes).
  /// `mask` selects the surviving subgraph during an outage; null is the
  /// full fabric at t=0.
  void plan_all_routes(const std::vector<char>* mask) {
    planner.begin(*config.topology, route_cache.edge_costs,
                  config.congestion_alpha, mask);
    link_plans.resize(links.size());
    const bool split = use_swap_go && config.split_tied_routes;
    for (std::size_t i = 0; i < links.size(); ++i) {
      net::RoutePlan& plan = link_plans[i];
      if (use_congestion) {
        planner.plan(links[i].node_a, links[i].node_b, split, plan);
        continue;
      }
      const net::Router& router =
          (mask != nullptr && scen_any_down) ? scen_router
                                             : route_cache.router;
      plan.split = false;
      plan.has_route = router.has_route(links[i].node_a, links[i].node_b);
      if (!plan.has_route) continue;
      const net::Route& r = router.route(links[i].node_a, links[i].node_b);
      plan.primary.cost = r.cost;
      plan.primary.nodes.assign(r.nodes.begin(), r.nodes.end());
      plan.primary.edges.assign(r.edges.begin(), r.edges.end());
      planner.charge(plan.primary);
    }
  }

  /// Contention figures of the t=0 placement (RunResult accounting).
  void record_plan_metrics() {
    for (const int load : planner.edge_load()) {
      if (load > 1) ++result.edges_shared;
      result.max_edge_load =
          std::max(result.max_edge_load, static_cast<std::size_t>(load));
    }
    for (const net::RoutePlan& plan : link_plans) {
      if (plan.split) ++result.route_splits;
    }
  }

  /// Composed-link setup for the contended modes: routes come from the
  /// plan (congestion-selected or static) and, with share_edge_capacity,
  /// each hop contributes only this link's capacity share. Shares are
  /// assigned by creation rank on each edge — deterministic and frozen at
  /// t=0 like the rest of the structural composition.
  void setup_composed_links(ent::ServiceMode mode) {
    edge_rank.assign(config.topology->num_edges(), 0);
    for (std::size_t i = 0; i < links.size(); ++i) {
      LinkState& link = links[i];
      LinkState* link_ptr = &link;
      const net::Route& route = link_plans[i].primary;
      const std::size_t hops = route.edges.size();
      hop_comm_scratch.resize(hops);
      hop_buf_scratch.resize(hops);
      for (std::size_t k = 0; k < hops; ++k) {
        const std::size_t e = route.edges[k];
        const ent::LinkParams& ep = route_cache.edge_params[e];
        if (use_shared_caps) {
          const int load = planner.edge_load()[e];
          const int rank = edge_rank[e]++;
          hop_comm_scratch[k] =
              net::capacity_share(ep.num_comm_pairs, load, rank);
          hop_buf_scratch[k] =
              net::capacity_share(ep.buffer_capacity, load, rank);
        } else {
          hop_comm_scratch[k] = ep.num_comm_pairs;
          hop_buf_scratch[k] = ep.buffer_capacity;
        }
      }
      const net::RoutedLink rl = net::compose_route_shared(
          route, route_cache.edge_params, route_cache.inputs.swap,
          hop_comm_scratch.data(), hop_buf_scratch.data());
      link.service->reset(rl.params, mode);
      if (obs_trace) {
        link.service->set_trial_trace(&trace_buf, link_track(link));
      }
      link.hops = rl.hops;
      link.extra_latency = rl.extra_latency;
      if (scen_active) {
        link.route_edges.assign(route.edges.begin(), route.edges.end());
        link.route_up = true;
        link.down_since = 0.0;
        link.service->set_effective_provider(
            [this, link_ptr](des::SimTime t) {
              return link_effective(*link_ptr, t);
            });
      }
      if (mode == ent::ServiceMode::Buffered) {
        link.service->set_arrival_handler([this, link_ptr](des::SimTime) {
          try_serve_pending(*link_ptr);
          return true;
        });
      } else {
        link.service->set_arrival_handler(
            [this, link_ptr](des::SimTime now) {
              return on_demand_arrival(*link_ptr, now);
            });
      }
      if (design_uses_prefill(design)) link.service->pre_fill_buffer();
      link.service->start();
    }
  }

  /// Deterministic arbitration index: which links a deposit on each edge
  /// may serve, in link creation order. Rebuilt whenever plans change.
  void rebuild_links_on_edge() {
    links_on_edge.resize(config.topology->num_edges());
    for (auto& v : links_on_edge) v.clear();
    for (std::size_t i = 0; i < links.size(); ++i) {
      const net::RoutePlan& plan = link_plans[i];
      if (!plan.has_route) continue;
      for (const std::size_t e : plan.primary.edges) {
        links_on_edge[e].push_back(static_cast<int>(i));
      }
      if (plan.split) {
        for (const std::size_t e : plan.alternate.edges) {
          links_on_edge[e].push_back(static_cast<int>(i));
        }
      }
    }
  }

  /// Swap-as-you-go setup: per-link route state from the plan, then one
  /// buffered generation service per physical edge with the edge's full
  /// budget (sharing is dynamic — routes drain a common buffer).
  void setup_edge_services() {
    const std::size_t num_edges = config.topology->num_edges();
    if (edge_services.size() != num_edges) {
      edge_services.clear();
      edge_services.reserve(num_edges);
      for (std::size_t e = 0; e < num_edges; ++e) {
        edge_services.push_back(std::make_unique<ent::GenerationService>(
            sim, ent::LinkParams{}, rng, ent::ServiceMode::Buffered));
      }
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      LinkState& link = links[i];
      const net::RoutePlan& plan = link_plans[i];
      link.hops = plan.has_route ? plan.primary.hops() : 1;
      link.extra_latency = static_cast<double>(link.hops - 1) *
                           route_cache.inputs.swap.latency;
      link.route_edges.assign(plan.primary.edges.begin(),
                              plan.primary.edges.end());
      link.route_up = plan.has_route;
      link.down_since = 0.0;
    }
    rebuild_links_on_edge();
    for (std::size_t e = 0; e < num_edges; ++e) {
      ent::GenerationService& svc = *edge_services[e];
      // Bufferless designs hold each hop pair on the edge's communication
      // qubits until the end-to-end fusion drains it: a degraded one-slot
      // buffer per edge, so swap-as-you-go applies to every design.
      ent::LinkParams ep = route_cache.edge_params[e];
      if (!design_uses_buffer(design)) ep.buffer_capacity = 1;
      svc.reset(ep, ent::ServiceMode::Buffered);
      if (obs_trace) svc.set_trial_trace(&trace_buf, edge_track(e));
      svc.set_arrival_handler([this, e](des::SimTime) {
        on_edge_deposit(e);
        return true;
      });
      if (scen_active) {
        svc.set_effective_provider([this, e](des::SimTime t) {
          const ent::LinkParams& edge_p = route_cache.edge_params[e];
          ent::EffectiveLink eff;
          eff.p_succ = scen.effective_p_succ(e, edge_p.p_succ, t);
          eff.f0 = scen.effective_f0(e, edge_p.f0, t);
          eff.up = scen.edge_up(e, t);
          return eff;
        });
      }
      if (design_uses_prefill(design)) svc.pre_fill_buffer();
      svc.start();
    }
  }

  /// Contended-mode counterpart of update_link_route: adopt link i's
  /// freshly planned path at boundary time `t` with the same reroute /
  /// downtime accounting semantics.
  void update_link_from_plan(std::size_t i, double t) {
    LinkState& link = links[i];
    const net::RoutePlan& plan = link_plans[i];
    if (!plan.has_route) {
      if (link.route_up) {
        link.route_up = false;
        link.down_since = t;
      }
      return;
    }
    const net::Route& route = plan.primary;
    const bool path_changed =
        link.route_edges.size() != route.edges.size() ||
        !std::equal(route.edges.begin(), route.edges.end(),
                    link.route_edges.begin());
    if (link.route_up && !path_changed) return;
    if (!link.route_up) {
      result.outage_downtime += t - link.down_since;
      obs_outage_over(link_track(link), link.down_since, t);
      link.route_up = true;
    }
    ++result.reroutes;
    if (obs_trace) trace_buf.instant(obs::Ev::Reroute, link_track(link), t);
    if (path_changed) {
      if (config.salvage_pairs && !use_swap_go) {
        // The stock kept across the re-plan is re-credited to the new
        // route's budget instead of rotting against the dead path.
        result.pairs_salvaged += link.service->buffer().size(t);
      }
      link.route_edges.assign(route.edges.begin(), route.edges.end());
      link.hops = route.hops();
      link.extra_latency = static_cast<double>(link.hops - 1) *
                           route_cache.inputs.swap.latency;
    }
  }

  /// Recompute every surviving composed link's capacity share from the
  /// freshly planned loads (reshare_at_boundaries): the bottleneck fold of
  /// compose_route_shared, re-run over the post-boundary edge loads. Ranks
  /// are assigned in link creation order, the same deterministic rule as
  /// the t=0 assignment; links without a route keep their old share (their
  /// effective provider already blocks attempts). In-flight windows finish
  /// under the old share inside set_capacity_share's epoch guard; buffer
  /// overflow from a shrunken share is discarded oldest-first.
  void reshare_capacity() {
    edge_rank.assign(config.topology->num_edges(), 0);
    for (std::size_t i = 0; i < links.size(); ++i) {
      LinkState& link = links[i];
      const net::RoutePlan& plan = link_plans[i];
      if (!plan.has_route) continue;
      int comm = std::numeric_limits<int>::max();
      int buf = std::numeric_limits<int>::max();
      for (const std::size_t e : plan.primary.edges) {
        const ent::LinkParams& ep = route_cache.edge_params[e];
        const int load = planner.edge_load()[e];
        const int rank = edge_rank[e]++;
        comm = std::min(comm, net::capacity_share(ep.num_comm_pairs, load,
                                                  rank));
        buf = std::min(buf,
                       net::capacity_share(ep.buffer_capacity, load, rank));
      }
      result.pairs_discarded += link.service->set_capacity_share(comm, buf);
    }
  }

  /// True when every edge buffer along `edges` holds the full pair quota.
  bool edges_ready(const std::vector<std::size_t>& edges,
                   std::size_t needed) {
    for (const std::size_t e : edges) {
      if (edge_services[e]->buffer().size(sim.now()) < needed) return false;
    }
    return true;
  }

  /// Salvage eligibility of a severed route: every endpoint node along it
  /// must be up at time `t`. Stored pair halves survive a *channel*
  /// outage — only new generation pauses — but die with a down node.
  bool salvage_nodes_up(const std::vector<std::size_t>& edges, double t) {
    for (const std::size_t e : edges) {
      const net::TopologyEdge& edge = config.topology->edge(e);
      if (!scen.node_up(edge.a, t) || !scen.node_up(edge.b, t)) {
        return false;
      }
    }
    return true;
  }

  /// Swap-as-you-go service of one link's queued remote gates: assemble an
  /// end-to-end pair by popping one buffered pair per hop and fusing them
  /// at the intermediate nodes *now*. Each hop pair decays from its own
  /// deposit instant; the fused pair is born at the assembly instant, so
  /// it reaches the consuming gate fresh. With a split plan a request is
  /// served by the primary path when ready, else by the cost-tied
  /// alternate; with neither ready it waits for the next deposit.
  ///
  /// Mid-flight pair salvage (config.salvage_pairs): a link whose whole
  /// route was severed may still drain hop pairs buffered *before* the
  /// outage along its last route, provided every node on it survives —
  /// the gate completes on pre-outage stock instead of stalling for the
  /// repair window. Links salvage in creation order (the boundary loop in
  /// apply_scen_boundary), the same arbitration rule deposits follow.
  void try_serve_pending_swap(std::size_t link_index) {
    LinkState& link = links[link_index];
    const net::RoutePlan& plan = link_plans[link_index];
    const bool salvaging = !plan.has_route;
    if (salvaging && !(config.salvage_pairs && scen_active &&
                       !link.route_edges.empty() &&
                       salvage_nodes_up(link.route_edges, sim.now()))) {
      return;
    }
    const auto order = config.consume_freshest
                           ? ent::ConsumeOrder::FreshestFirst
                           : ent::ConsumeOrder::OldestFirst;
    const auto needed =
        static_cast<std::size_t>(config.pairs_per_remote_gate());
    while (!link.pending.empty()) {
      const std::vector<std::size_t>* path_edges = nullptr;
      if (salvaging) {
        if (!edges_ready(link.route_edges, needed)) break;
        path_edges = &link.route_edges;
      } else if (edges_ready(plan.primary.edges, needed)) {
        path_edges = &plan.primary.edges;
      } else if (plan.split && edges_ready(plan.alternate.edges, needed)) {
        path_edges = &plan.alternate.edges;
      } else {
        break;
      }
      const std::size_t path_hops = path_edges->size();
      PendingRemote& req = link.pending.front();
      req.num_births = 0;
      for (std::size_t i = 0; i < needed; ++i) {
        hop_fid_scratch.clear();
        for (const std::size_t e : *path_edges) {
          auto pair = edge_services[e]->buffer().pop(sim.now(), order);
          DQCSIM_ENSURES(pair.has_value());
          const double age = sim.now() - pair->deposited;
          pair_age_acc.add(age);
          obs_pair_age(age);
          hop_fid_scratch.push_back(noise::werner_decayed_fidelity(
              pair->f0, route_cache.edge_params[e].kappa, age));
        }
        req.births[req.num_births] = sim.now();
        req.birth_f0[req.num_births] = net::swap_composed_fidelity(
            hop_fid_scratch.data(), hop_fid_scratch.size(),
            route_cache.inputs.swap.bsm_fidelity);
        ++req.num_births;
      }
      if (salvaging) result.pairs_salvaged += needed;
      result.entanglement_swaps += (path_hops - 1) * needed;
      if (obs_trace) {
        trace_buf.instant(obs::Ev::SwapAssemble, link_track(link), sim.now());
        if (salvaging) {
          trace_buf.instant(obs::Ev::Salvage, link_track(link), sim.now());
        }
      }
      // The assembled pairs are born at this instant, so decay over
      // [birth, now] is the identity: the fused fidelities feed
      // purification directly.
      scratch_raw.clear();
      for (std::size_t i = 0; i < req.num_births; ++i) {
        scratch_raw.push_back(req.birth_f0[i]);
      }
      const auto* logical = maybe_purify(scratch_raw);
      if (logical == nullptr) {
        req.num_births = 0;  // hop pairs lost; the gate retries
        continue;
      }
      const std::size_t gate = req.gate;
      remote_wait_acc.add(sim.now() - req.ready_at);
      route_hops_acc.add(static_cast<double>(path_hops));
      const double extra_delay =
          static_cast<double>(path_hops - 1) *
              route_cache.inputs.swap.latency +
          (config.purify_on_consume ? config.purification_latency : 0.0);
      obs_remote_served(
          link, req.ready_at, static_cast<double>(path_hops),
          extra_delay + latency_of(circuit->gate(gate), /*remote=*/true));
      link.pending.pop_front();
      // start_remote_gate reads *logical before any re-entrant serve (via
      // segment pumping) can clobber the scratch buffers it points into.
      start_remote_gate(gate, *logical, extra_delay);
    }
  }

  /// Deposit on edge `e`: offer the pair to the links crossing it, in link
  /// creation order (the deterministic arbitration rule).
  void on_edge_deposit(std::size_t e) {
    for (const int link_index : links_on_edge[e]) {
      try_serve_pending_swap(static_cast<std::size_t>(link_index));
    }
  }

  // --- helpers --------------------------------------------------------------

  std::size_t link_index_of_gate(std::size_t g) {
    const Gate& gate = circuit->gate(g);
    const int a = key.assignment[static_cast<std::size_t>(gate.q0())];
    const int b = key.assignment[static_cast<std::size_t>(gate.q1())];
    const int idx =
        link_of_pair[static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(config.num_nodes) +
                     static_cast<std::size_t>(b)];
    DQCSIM_ENSURES(idx >= 0);
    return static_cast<std::size_t>(idx);
  }

  LinkState& link_of_gate(std::size_t g) {
    return links[link_index_of_gate(g)];
  }

  /// Buffered pairs currently available across every link (the adaptive
  /// controller's occupancy signal e). In swap-as-you-go mode a link's
  /// availability is the bottleneck hop's buffered count along its primary
  /// path — optimistic when routes overlap (each counts the shared buffer
  /// in full), but a deterministic, cheap occupancy signal.
  std::size_t total_buffered_pairs() {
    std::size_t total = 0;
    if (use_swap_go) {
      for (std::size_t i = 0; i < links.size(); ++i) {
        const net::RoutePlan& plan = link_plans[i];
        if (!plan.has_route) continue;
        std::size_t avail = ~std::size_t{0};
        for (const std::size_t e : plan.primary.edges) {
          avail = std::min(avail, edge_services[e]->buffer().size(sim.now()));
        }
        total += avail;
      }
      return total;
    }
    for (auto& link : links) {
      total += link.service->buffer().size(sim.now());
    }
    return total;
  }

  double latency_of(const Gate& g, bool remote) const {
    if (remote) {
      return config.remote_impl == RemoteImpl::GateTeleport
                 ? config.lat.remote_gate
                 : config.lat.remote_gate_state;
    }
    if (g.kind == GateKind::Measure) return config.lat.measurement;
    if (g.arity() == 2) return config.lat.local_cnot;
    return config.lat.one_qubit;
  }

  double gate_fidelity_local(const Gate& g) const {
    if (g.kind == GateKind::Measure) return config.fid.measurement;
    if (g.arity() == 2) return config.fid.local_cnot;
    return config.fid.one_qubit;
  }

  bool is_remote(std::size_t gate_index) const {
    return design != DesignKind::IdealMono &&
           placement.is_remote[gate_index] != 0;
  }

  // --- admission (stream construction) --------------------------------------

  /// Admit gate `g` into the execution stream: wire up dependencies on the
  /// previously admitted gates sharing its qubits.
  void admit_gate(std::size_t g, std::size_t segment_index) {
    DQCSIM_ENSURES(!admitted[g]);
    admitted[g] = 1;
    segment_of_gate[g] = segment_index;
    const Gate& gate = circuit->gate(g);
    std::size_t preds = 0;
    for (int k = 0; k < gate.arity(); ++k) {
      auto& last = last_on_wire[static_cast<std::size_t>(
          gate.qubits[static_cast<std::size_t>(k)])];
      if (last != kNone && !completed_flag[last]) {
        // Duplicate edges (same pred via both wires) are fine: count both
        // and notify twice on completion — avoided by checking succs back:
        auto& sv = succs_of[last];
        if (sv.n == 0 || sv.s[sv.n - 1] != g) {
          DQCSIM_ENSURES(sv.n < 2);  // one successor per wire
          sv.s[sv.n++] = g;
          ++preds;
        }
      }
      last = g;
    }
    remaining_preds[g] = preds;
    if (preds == 0) on_gate_ready(g);
  }

  /// Admit every gate of segment s in the order of the selected variant.
  /// Callers must hold the `admitting` guard so nested gate starts cannot
  /// interleave another segment's admission mid-way.
  void admit_segment(std::size_t s) {
    DQCSIM_ENSURES(s < segments.size());
    sched::SchedulingPolicy policy = sched::SchedulingPolicy::Original;
    if (use_adaptive) {
      const std::size_t available = total_buffered_pairs();
      policy = adaptive_policy->choose(available);
      switch (policy) {
        case sched::SchedulingPolicy::Asap: ++result.segments_asap; break;
        case sched::SchedulingPolicy::Alap: ++result.segments_alap; break;
        case sched::SchedulingPolicy::Original:
          ++result.segments_original;
          break;
      }
    }
    const auto& order = variant_table->order(s, policy);
    unstarted_in_segment[s] = order.size();
    for (std::size_t g : order) admit_gate(g, s);
  }

  /// Admit further segments while the most recently admitted one has fully
  /// started (paper §III-D: the controller picks the next segment's variant
  /// as execution reaches it). Re-entrant calls (a gate starting during
  /// admission) defer to the outer loop.
  void pump_segments() {
    if (admitting || !use_adaptive) return;
    admitting = true;
    while (next_segment < segments.size() &&
           unstarted_in_segment[next_segment - 1] == 0) {
      const std::size_t s = next_segment++;
      admit_segment(s);
    }
    admitting = false;
  }

  // --- execution -------------------------------------------------------------

  void on_gate_ready(std::size_t g) {
    if (is_remote(g)) {
      const std::size_t i = link_index_of_gate(g);
      links[i].pending.push_back(PendingRemote{g, sim.now(), {}, 0});
      if (use_swap_go) {
        try_serve_pending_swap(i);
      } else {
        try_serve_pending(links[i]);
      }
    } else {
      start_local_gate(g);
    }
  }

  static noise::FidelityTerm local_term_of(const Gate& gate) {
    return (gate.arity() == 2) ? noise::FidelityTerm::Local2Q
           : (gate.kind == GateKind::Measure)
               ? noise::FidelityTerm::Measurement
               : noise::FidelityTerm::Local1Q;
  }

  void start_local_gate(std::size_t g) {
    if (fuse_chains && circuit->gate(g).arity() == 1) {
      start_local_chain(g);
      return;
    }
    const Gate& gate = circuit->gate(g);
    ledger.add_factor(local_term_of(gate), gate_fidelity_local(gate));
    begin_execution(g, latency_of(gate, /*remote=*/false));
  }

  /// Start the maximal admitted 1q chain beginning at `g` as one event.
  void start_local_chain(std::size_t head) {
    // Left-fold the member latencies onto the clock exactly as sequential
    // scheduling would (t -> t + l0 -> (t + l0) + l1 ...), so the chain's
    // completion instant is bit-identical to the unfused execution.
    des::SimTime end = sim.now();
    std::size_t tail = head;
    for (std::size_t g = head;; g = chain_next[g]) {
      DQCSIM_ENSURES(!started[g]);
      started[g] = 1;
      const Gate& gate = circuit->gate(g);
      ledger.add_factor(local_term_of(gate), gate_fidelity_local(gate));
      end += latency_of(gate, /*remote=*/false);
      tail = g;
      if (chain_next[g] == kNoFusedNext || !admitted[chain_next[g]]) break;
    }
    sim.schedule_at(end, [this, head, tail] {
      for (std::size_t g = head;; g = chain_next[g]) {
        complete_gate(g);
        if (g == tail) break;
      }
    });
  }

  /// Werner-decayed fidelities of collected pairs at the current instant,
  /// recording their ages. Each pair decays from its own birth fidelity
  /// (the serving link's effective fresh fidelity at the birth instant:
  /// swap-composed on routed links, drift-scaled under a scenario, the
  /// architecture-wide f0 on homogeneous stationary ones). Returns the
  /// reusable scratch buffer.
  const std::vector<double>& decay_births(const LinkState& link,
                                          const PendingRemote& req) {
    const ent::LinkParams& lp = link.service->params();
    scratch_raw.clear();
    for (std::size_t i = 0; i < req.num_births; ++i) {
      const double age = sim.now() - req.births[i];
      pair_age_acc.add(age);
      obs_pair_age(age);
      scratch_raw.push_back(
          noise::werner_decayed_fidelity(req.birth_f0[i], lp.kappa, age));
    }
    return scratch_raw;
  }

  /// With purify_on_consume, distill every two raw pairs into one logical
  /// pair (BBPSSW). Returns nullptr when any round fails — all raw pairs
  /// are lost and the caller must re-collect (a failure of one round
  /// discards the whole batch; see DESIGN.md). Without purification the
  /// raw fidelities pass through. The returned pointer aims at caller-
  /// provided or scratch storage valid until the next serve.
  const std::vector<double>* maybe_purify(const std::vector<double>& raw) {
    if (!config.purify_on_consume) return &raw;
    // The serving link is unknown here, so purification rounds mark the
    // engine track; per-round counters fold at trial end.
    if (obs_trace) trace_buf.instant(obs::Ev::Purify, 0, sim.now());
    scratch_outcomes.clear();
    std::size_t draws_needed = 0;
    for (std::size_t i = 0; i + 1 < raw.size(); i += 2) {
      scratch_outcomes.push_back(noise::purify_werner(raw[i], raw[i + 1]));
      const double p = scratch_outcomes.back().success_probability;
      if (p > 0.0 && p < 1.0) ++draws_needed;
    }
    // One batched draw covers every probabilistic round. Stream order is
    // identical to per-round bernoulli() calls, which consume no draw at
    // p <= 0 or p >= 1 — hence the outcome-first pass above.
    scratch_uniforms.resize(draws_needed);
    rng.fill_uniform(scratch_uniforms.data(), draws_needed);
    scratch_logical.clear();
    std::size_t next_draw = 0;
    bool all_succeeded = true;
    for (const noise::PurificationOutcome& outcome : scratch_outcomes) {
      ++result.purification_rounds;
      const double p = outcome.success_probability;
      const bool success =
          p >= 1.0 || (p > 0.0 && scratch_uniforms[next_draw++] < p);
      if (success) {
        scratch_logical.push_back(outcome.fidelity);
      } else {
        ++result.purification_failures;
        all_succeeded = false;
      }
    }
    if (!all_succeeded) return nullptr;
    return &scratch_logical;
  }

  /// Start a remote gate from its (logical) pair fidelities; `extra_delay`
  /// models local purification time before the teleportation begins.
  void start_remote_gate(std::size_t g,
                         const std::vector<double>& pair_fidelity,
                         double extra_delay = 0.0) {
    const std::size_t expected =
        config.remote_impl == RemoteImpl::GateTeleport ? 1u : 2u;
    DQCSIM_ENSURES(pair_fidelity.size() == expected);
    const double gate_fidelity =
        config.remote_impl == RemoteImpl::GateTeleport
            ? teleport_model->eval(pair_fidelity[0])
            : state_model->eval(pair_fidelity[0], pair_fidelity[1]);
    ledger.add_factor(noise::FidelityTerm::Remote, gate_fidelity);
    begin_execution(
        g, extra_delay + latency_of(circuit->gate(g), /*remote=*/true));
  }

  void begin_execution(std::size_t g, double latency) {
    DQCSIM_ENSURES(!started[g]);
    started[g] = 1;

    // Segment bookkeeping for adaptive admission.
    if (use_adaptive) {
      const std::size_t s = segment_of_gate[g];
      DQCSIM_ENSURES(unstarted_in_segment[s] > 0);
      --unstarted_in_segment[s];
      pump_segments();
    }

    sim.schedule_in(latency, [this, g] { complete_gate(g); });
  }

  void complete_gate(std::size_t g) {
    DQCSIM_ENSURES(!completed_flag[g]);
    completed_flag[g] = 1;
    ++num_completed;
    makespan = std::max(makespan, sim.now());
    const GateSuccs& sv = succs_of[g];
    for (std::uint8_t k = 0; k < sv.n; ++k) {
      const std::size_t next = sv.s[k];
      DQCSIM_ENSURES(remaining_preds[next] > 0);
      // A chain-fused successor is already running; just settle the edge.
      if (--remaining_preds[next] == 0 && !started[next]) {
        on_gate_ready(next);
      }
    }
  }

  /// Serve queued remote gates from a link's buffer (buffered designs). A
  /// gate is served only when the buffer holds its full pair quota, so a
  /// two-pair gate cannot strand a half-claimed pair decaying outside the
  /// cutoff policy's reach.
  void try_serve_pending(LinkState& link) {
    if (link.service->mode() != ent::ServiceMode::Buffered) return;
    const auto order = link.service->params().consume_freshest
                           ? ent::ConsumeOrder::FreshestFirst
                           : ent::ConsumeOrder::OldestFirst;
    const auto needed =
        static_cast<std::size_t>(config.pairs_per_remote_gate());
    while (!link.pending.empty() &&
           link.service->buffer().size(sim.now()) >= needed) {
      PendingRemote& req = link.pending.front();
      req.num_births = 0;
      for (std::size_t i = 0; i < needed; ++i) {
        auto pair = link.service->buffer().pop(sim.now(), order);
        DQCSIM_ENSURES(pair.has_value());
        req.births[req.num_births] = pair->deposited;
        req.birth_f0[req.num_births] = pair->f0;
        ++req.num_births;
      }
      // Each consumed end-to-end pair carried hops - 1 entanglement swaps.
      result.entanglement_swaps +=
          static_cast<std::size_t>(link.hops - 1) * needed;
      if (config.salvage_pairs && scen_active && !link.route_up) {
        // The composed model never discards stock at boundaries, so
        // salvage here is accounting: pairs buffered before the outage
        // serving a gate while the route is severed.
        result.pairs_salvaged += needed;
        if (obs_trace) {
          trace_buf.instant(obs::Ev::Salvage, link_track(link), sim.now());
        }
      }
      const auto* logical = maybe_purify(decay_births(link, req));
      if (logical == nullptr) {
        // Purification failed: pairs are lost, the gate retries from the
        // head of the queue (the buffer shrank, so this loop terminates).
        req.num_births = 0;
        continue;
      }
      const std::size_t gate = req.gate;
      remote_wait_acc.add(sim.now() - req.ready_at);
      route_hops_acc.add(static_cast<double>(link.hops));
      const double extra_delay =
          link.extra_latency +
          (config.purify_on_consume ? config.purification_latency : 0.0);
      obs_remote_served(
          link, req.ready_at, static_cast<double>(link.hops),
          extra_delay + latency_of(circuit->gate(gate), /*remote=*/true));
      link.pending.pop_front();
      // start_remote_gate reads *logical before any re-entrant serve (via
      // segment pumping) can clobber the scratch buffers it points into.
      start_remote_gate(gate, *logical, extra_delay);
    }
  }

  /// OnDemand arrival (bufferless original design): a waiting remote gate
  /// on this link claims the pair at its heralding instant. Multi-pair
  /// gates hold already-claimed pairs on the communication qubits (same
  /// decay law) until their quota fills.
  bool on_demand_arrival(LinkState& link, des::SimTime now) {
    if (link.pending.empty()) return false;
    PendingRemote& req = link.pending.front();
    // A heralded pair is born right now; under a scenario its birth
    // fidelity is the link's effective value at this instant.
    req.birth_f0[req.num_births] =
        scen_active ? link_effective(link, now).f0 : link.service->params().f0;
    req.births[req.num_births++] = now;
    result.entanglement_swaps += static_cast<std::size_t>(link.hops - 1);
    if (static_cast<int>(req.num_births) < config.pairs_per_remote_gate()) {
      return true;  // claimed and held; wait for the next herald
    }
    const auto* logical = maybe_purify(decay_births(link, req));
    if (logical == nullptr) {
      req.num_births = 0;  // pairs lost; keep collecting
      return true;
    }
    const std::size_t gate = req.gate;
    remote_wait_acc.add(now - req.ready_at);
    route_hops_acc.add(static_cast<double>(link.hops));
    const double extra_delay =
        link.extra_latency +
        (config.purify_on_consume ? config.purification_latency : 0.0);
    obs_remote_served(
        link, req.ready_at, static_cast<double>(link.hops),
        extra_delay + latency_of(circuit->gate(gate), /*remote=*/true));
    link.pending.pop_front();
    start_remote_gate(gate, *logical, extra_delay);
    return true;
  }

  RunResult do_run() {
    const bool needs_link =
        design != DesignKind::IdealMono && placement.num_remote_2q > 0;
    if (needs_link) {
      // The Plan phase covers per-trial link/service preparation; it nests
      // the Routing phase on a routing-cache miss.
      OBS_SCOPE(prof(), obs::Phase::Plan);
      if (design_uses_buffer(design) && config.buffer_per_node < 1) {
        throw ConfigError(
            "buffered designs need at least one buffer qubit per node");
      }
      const auto mode = design_uses_buffer(design)
                            ? ent::ServiceMode::Buffered
                            : ent::ServiceMode::OnDemand;
      const bool routed = config.topology != nullptr;
      // The opt-in contention modes require a topology. Swap-as-you-go
      // covers every design: bufferless (OnDemand) designs run degraded
      // one-slot-per-edge services (see setup_edge_services) instead of
      // silently falling back to the composed model.
      use_swap_go = routed && config.swap_as_you_go;
      use_shared_caps = routed && config.share_edge_capacity;
      use_congestion = routed && config.congestion_aware_routing;
      ent::LinkParams flat_params;
      if (routed) {
        refresh_routing();
      } else {
        flat_params = config.link_params(design);
      }
      if (contended()) {
        plan_all_routes(nullptr);
        record_plan_metrics();
        if (use_swap_go) {
          setup_edge_services();
        } else {
          setup_composed_links(mode);
        }
      } else {
        for (auto& link : links) {
          LinkState* link_ptr = &link;
          if (routed) {
            const net::Route& route =
                route_cache.router.route(link.node_a, link.node_b);
            const net::RoutedLink rl = net::compose_route(
                route, route_cache.edge_params, route_cache.inputs.swap);
            link.service->reset(rl.params, mode);
            link.hops = rl.hops;
            if (obs_trace) {
              link.service->set_trial_trace(&trace_buf, link_track(link));
            }
            link.extra_latency = rl.extra_latency;
            if (scen_active) {
              link.route_edges.assign(route.edges.begin(),
                                      route.edges.end());
              link.route_up = true;
              link.down_since = 0.0;
              link.service->set_effective_provider(
                  [this, link_ptr](des::SimTime t) {
                    return link_effective(*link_ptr, t);
                  });
            }
          } else {
            link.service->reset(flat_params, mode);
            link.hops = 1;
            link.extra_latency = 0.0;
            if (obs_trace) {
              link.service->set_trial_trace(&trace_buf, link_track(link));
            }
          }
          if (mode == ent::ServiceMode::Buffered) {
            link.service->set_arrival_handler(
                [this, link_ptr](des::SimTime) {
                  try_serve_pending(*link_ptr);
                  return true;
                });
          } else {
            link.service->set_arrival_handler(
                [this, link_ptr](des::SimTime now) {
                  return on_demand_arrival(*link_ptr, now);
                });
          }
          if (design_uses_prefill(design)) link.service->pre_fill_buffer();
          link.service->start();
        }
      }
      // Apply any outage already in force at t = 0, then start the lazy
      // boundary event chain.
      if (scen_active) {
        apply_scen_boundary(0.0);
        schedule_next_scen_boundary(0.0);
      }
    }

    if (use_adaptive) {
      admitting = true;
      next_segment = 1;
      admit_segment(0);
      admitting = false;
      pump_segments();
    } else {
      // Single implicit segment: the whole circuit in program order.
      for (std::size_t g = 0; g < circuit->num_gates(); ++g) {
        admit_gate(g, 0);
      }
    }

    // Drive the simulation until every gate has completed. The generation
    // service perpetually schedules events, so the loop can always advance;
    // an event-starved state with unfinished gates indicates a logic error.
    // A finite max_trial_sim_time bounds the drive: an event strictly
    // beyond the budget never executes, so a trial that cannot finish
    // (e.g. total disconnection) stops deterministically with partial
    // metrics instead of spinning on generation windows forever.
    const double budget = config.max_trial_sim_time;
    const bool bounded = std::isfinite(budget);
    {
      OBS_SCOPE(prof(), obs::Phase::Drive);
      while (num_completed < circuit->num_gates()) {
        if (bounded && !sim.idle() && sim.next_event_time() > budget) {
          result.truncated = true;
          break;
        }
        const bool progressed = sim.step();
        DQCSIM_ENSURES_MSG(progressed,
                           "simulation stalled with unfinished gates");
      }
    }
    {
      // Finalize must close before finish_observation merges the profile,
      // or its own timing would lag one trial behind the collector.
      OBS_SCOPE(prof(), obs::Phase::Finalize);
      if (result.truncated) {
        // Depth and idling report the budget horizon the trial ran out at.
        makespan = std::max(makespan, budget);
      }
      if (use_swap_go) {
        // Per-link services were never started in swap-as-you-go mode; the
        // running machinery is the per-edge pool.
        for (auto& svc : edge_services) svc->stop();
      } else {
        for (auto& link : links) link.service->stop();
      }

      // link_stalled watchdog: services that at some point went longer than
      // stall_windows attempt windows without one successful generation.
      // Pure observation over the always-tracked success-gap maximum — no
      // RNG draw, no event, so the knob cannot perturb the trial itself.
      if (config.stall_windows > 0) {
        const auto stalled = [&](const ent::GenerationService& svc) {
          return svc.max_delivery_gap(sim.now()) >
                 static_cast<double>(config.stall_windows) *
                     svc.params().cycle_time;
        };
        if (use_swap_go) {
          for (const auto& svc : edge_services) {
            if (stalled(*svc)) ++result.links_stalled;
          }
        } else {
          for (const auto& link : links) {
            if (stalled(*link.service)) ++result.links_stalled;
          }
        }
      }

      // Links still routeless when the last gate completes accrue their
      // downtime up to the makespan (the reported trial duration).
      if (scen_active) {
        for (const auto& link : links) {
          if (!link.route_up) {
            result.outage_downtime += std::max(0.0, makespan - link.down_since);
          }
        }
      }

      // Figures of merit.
      ledger.add_idling(config.kappa, makespan);
      result.depth = makespan / config.lat.local_cnot;
      result.fidelity = ledger.fidelity();
      result.fidelity_local =
          ledger.category_fidelity(noise::FidelityTerm::Local1Q) *
          ledger.category_fidelity(noise::FidelityTerm::Local2Q) *
          ledger.category_fidelity(noise::FidelityTerm::Measurement);
      result.fidelity_remote =
          ledger.category_fidelity(noise::FidelityTerm::Remote);
      result.fidelity_idling =
          ledger.category_fidelity(noise::FidelityTerm::Idling);
      result.remote_gates = placement.num_remote_2q;
      if (use_swap_go) {
        // Entanglement accounting lives on the per-edge pool: a "consumed"
        // pair here is a single-hop pair drained into an end-to-end fusion.
        for (const auto& svc : edge_services) {
          result.epr_attempts += svc->attempts();
          result.epr_successes += svc->successes();
          result.epr_consumed += svc->buffer().total_consumed();
          result.epr_wasted += svc->wasted_buffer_full();
          result.epr_expired += svc->buffer().total_expired();
        }
      } else {
        for (const auto& link : links) {
          const auto& service = *link.service;
          result.epr_attempts += service.attempts();
          result.epr_successes += service.successes();
          result.epr_consumed +=
              service.buffer().total_consumed() +
              (service.mode() == ent::ServiceMode::OnDemand
                   ? service.successes() - service.wasted_unconsumed()
                   : 0);
          result.epr_wasted +=
              service.wasted_buffer_full() + service.wasted_unconsumed();
          result.epr_expired += service.buffer().total_expired();
        }
      }
      result.avg_pair_age = pair_age_acc.mean();
      result.avg_remote_wait = remote_wait_acc.mean();
      result.avg_route_hops = route_hops_acc.mean();
    }
    if (observe != nullptr) finish_observation();
    return result;
  }
};

RunContext::RunContext() : state_(std::make_unique<State>()) {}
RunContext::~RunContext() = default;
RunContext::RunContext(RunContext&&) noexcept = default;
RunContext& RunContext::operator=(RunContext&&) noexcept = default;

RunResult RunContext::execute(const Circuit& circuit,
                              const std::vector<int>& assignment,
                              const ArchConfig& config, DesignKind design,
                              std::uint64_t seed,
                              const noise::TeleportFidelityModel* model) {
  state_->prepare(circuit, assignment, config, design, seed, model);
  return state_->do_run();
}

struct ExecutionEngine::Impl {
  RunContext ctx;
  const Circuit& circuit;
  std::vector<int> assignment;
  ArchConfig config;
  DesignKind design;
  std::uint64_t seed;
  const noise::TeleportFidelityModel* model;
  bool ran = false;

  Impl(const Circuit& c, std::vector<int> a, const ArchConfig& cfg,
       DesignKind d, std::uint64_t s,
       const noise::TeleportFidelityModel* m)
      : circuit(c),
        assignment(std::move(a)),
        config(cfg),
        design(d),
        seed(s),
        model(m) {
    validate_inputs(circuit, assignment, config, design);
  }
};

ExecutionEngine::ExecutionEngine(
    const Circuit& circuit, std::vector<int> assignment,
    const ArchConfig& config, DesignKind design, std::uint64_t seed,
    const noise::TeleportFidelityModel* teleport_model)
    : impl_(std::make_unique<Impl>(circuit, std::move(assignment), config,
                                   design, seed, teleport_model)) {}

ExecutionEngine::~ExecutionEngine() = default;

RunResult ExecutionEngine::run() {
  DQCSIM_EXPECTS_MSG(!impl_->ran, "ExecutionEngine::run may be called once");
  impl_->ran = true;
  return impl_->ctx.execute(impl_->circuit, impl_->assignment, impl_->config,
                            impl_->design, impl_->seed, impl_->model);
}

}  // namespace dqcsim::runtime
