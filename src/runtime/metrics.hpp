/// \file metrics.hpp
/// \brief Per-run results and multi-seed aggregation (figures of merit,
/// paper §IV-B: circuit depth and circuit fidelity).

#pragma once

#include <cstddef>

#include "common/stats.hpp"

namespace dqcsim::runtime {

/// Outcome of one simulated execution.
struct RunResult {
  double depth = 0.0;     ///< makespan in local-CNOT units
  double fidelity = 0.0;  ///< estimated output fidelity

  // Fidelity breakdown (products of the respective factors).
  double fidelity_local = 1.0;   ///< 1Q + local 2Q + measurement gates
  double fidelity_remote = 1.0;  ///< teleported gates
  double fidelity_idling = 1.0;  ///< exp(-kappa * makespan)

  // Entanglement accounting.
  std::size_t remote_gates = 0;
  std::size_t epr_attempts = 0;
  std::size_t epr_successes = 0;
  std::size_t epr_consumed = 0;
  std::size_t epr_wasted = 0;   ///< unconsumed (original) or buffer-full
  std::size_t epr_expired = 0;  ///< discarded by the buffer cutoff policy
  /// Mean buffer dwell time of consumed pairs. Aggregated as
  /// `avg_pair_age_mean` / `_p50` / `_p99` in bench reports.
  double avg_pair_age = 0.0;
  /// Mean remote-gate wait for a pair. Aggregated as
  /// `avg_remote_wait_mean` / `_p50` / `_p99` in bench reports.
  double avg_remote_wait = 0.0;

  // Routing accounting (topology-backed interconnects; see src/net/).
  /// Entanglement swaps performed for consumed end-to-end pairs: each pair
  /// delivered over an h-hop route costs h - 1 swaps. 0 on single-hop
  /// (all-to-all) interconnects. Aggregated as `entanglement_swaps_mean`
  /// in bench reports (the field name, like every counter key, matches
  /// this struct's member name).
  std::size_t entanglement_swaps = 0;
  /// Mean route length (hops) over executed remote gates; 1.0 when every
  /// consumed pair crossed a direct physical link, 0 with no remote gates.
  double avg_route_hops = 0.0;

  // Contention accounting (opt-in congestion / shared-capacity / swap-as-
  // you-go modes; see net/congestion.hpp). All zero in the legacy
  // independent-budget engine.
  /// Physical edges crossed by more than one logical route at t=0.
  std::size_t edges_shared = 0;
  /// Largest number of logical routes crossing any one physical edge at
  /// t=0 (1 on contention-free placements, 0 with no routed links).
  std::size_t max_edge_load = 0;
  /// Logical links splitting traffic across two cost-tied disjoint paths.
  std::size_t route_splits = 0;

  // Fault-scenario accounting (ArchConfig::scenario; see src/scenario/).
  /// Route re-establishments over the trial: a logical link switching to a
  /// surviving path while live, or coming back up after downtime (on a new
  /// path or the recovered original). Counting recoveries keeps the metric
  /// meaningful on topologies with a unique path — a chain can only ever
  /// restore, never detour.
  std::size_t reroutes = 0;
  /// Outage boundaries at which at least one logical link lost its route.
  std::size_t outage_events = 0;
  /// Summed time logical links spent without a live route (time units;
  /// a boundary taking two links down for 5 units accrues 10). Aggregated
  /// as `outage_downtime_mean` / `_p50` / `_p99` in bench reports.
  double outage_downtime = 0.0;

  // Degraded-mode accounting (opt-in salvage / re-sharing / retry knobs;
  // see docs/ARCHITECTURE.md "Fault handling & degraded modes"). All zero
  // with the knobs off.
  /// Pairs rescued across an outage (salvage_pairs): end-to-end pairs
  /// assembled from pre-outage hop stock over a severed route (swap-as-
  /// you-go), pairs consumed or kept through a route loss / re-plan in
  /// the composed model.
  std::size_t pairs_salvaged = 0;
  /// Buffered pairs dropped at fault boundaries: stock at a down node
  /// (salvage_pairs) or overflow from a shrunken capacity share
  /// (reshare_at_boundaries), oldest first.
  std::size_t pairs_discarded = 0;
  /// Generation services that at some point went more than
  /// ArchConfig::stall_windows attempt windows without one successful
  /// generation (0 when the watchdog is off).
  std::size_t links_stalled = 0;
  /// True when the trial hit ArchConfig::max_trial_sim_time and stopped
  /// with unfinished gates; every metric is then a partial figure over
  /// the truncated horizon.
  bool truncated = false;

  // Adaptive-controller decisions (adapt_buf / init_buf only).
  std::size_t segments_asap = 0;
  std::size_t segments_alap = 0;
  std::size_t segments_original = 0;

  // Purification accounting (purify_on_consume only).
  std::size_t purification_rounds = 0;
  std::size_t purification_failures = 0;
};

/// Streaming aggregate over repeated runs (the paper averages 50).
///
/// Bench reports name aggregated counters `<field>_mean` (e.g.
/// `reroutes_mean`, `outage_downtime_mean`); the three distribution
/// metrics below additionally surface `<field>_p50` / `<field>_p99`.
/// run_design folds runs in run-index order regardless of which worker
/// produced them, so every statistic — quantiles included — is
/// bit-identical at any thread count.
struct AggregateResult {
  /// Enables the quantile histograms on avg_pair_age, avg_remote_wait, and
  /// outage_downtime (a few KiB per aggregate; see Accumulator::quantile).
  AggregateResult();

  Accumulator depth;
  Accumulator fidelity;
  Accumulator epr_wasted;
  Accumulator epr_expired;
  Accumulator avg_pair_age;
  Accumulator avg_remote_wait;
  Accumulator entanglement_swaps;
  Accumulator avg_route_hops;
  Accumulator edges_shared;
  Accumulator max_edge_load;
  Accumulator route_splits;
  Accumulator reroutes;
  Accumulator outage_downtime;
  Accumulator pairs_salvaged;
  Accumulator pairs_discarded;
  Accumulator links_stalled;
  /// Fraction of runs that hit the trial sim-time budget (mean of 0/1).
  Accumulator truncated;

  /// Fold one run into the aggregate.
  void add(const RunResult& run);
};

}  // namespace dqcsim::runtime
