#include "runtime/experiment.hpp"

#include <cstddef>

#include "circuit/interaction_graph.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "net/mapping.hpp"
#include "net/router.hpp"
#include "runtime/engine.hpp"

namespace dqcsim::runtime {

namespace {

/// Shared fidelity model for one architecture configuration.
noise::TeleportFidelityModel make_teleport_model(const ArchConfig& config) {
  noise::TeleportNoiseParams tele;
  tele.local_2q_fidelity = config.fid.local_cnot;
  tele.local_1q_fidelity = config.fid.one_qubit;
  tele.readout_fidelity = config.fid.measurement;
  return noise::TeleportFidelityModel(tele);
}

}  // namespace

partition::PartitionResult partition_circuit(const Circuit& circuit,
                                             int num_nodes,
                                             std::uint64_t seed) {
  const partition::Graph graph = interaction_graph(circuit);
  partition::PartitionOptions opts;
  opts.seed = seed;
  return partition::multilevel_partition(graph, num_nodes, opts);
}

partition::PartitionResult partition_circuit(const Circuit& circuit,
                                             const net::Topology& topology,
                                             std::uint64_t seed) {
  topology.validate();
  const int k = topology.num_nodes();
  partition::PartitionResult result = partition_circuit(circuit, k, seed);

  // Inter-part remote-gate traffic (the plain cut, resolved per pair).
  const auto uk = static_cast<std::size_t>(k);
  net::TrafficMatrix traffic(uk * uk, 0);
  for (std::size_t i = 0; i < circuit.num_gates(); ++i) {
    const Gate& g = circuit.gate(i);
    if (g.arity() != 2) continue;
    const auto p = static_cast<std::size_t>(
        result.assignment[static_cast<std::size_t>(g.q0())]);
    const auto q = static_cast<std::size_t>(
        result.assignment[static_cast<std::size_t>(g.q1())]);
    if (p == q) continue;
    ++traffic[p * uk + q];
    ++traffic[q * uk + p];
  }

  // Place parts on physical nodes to minimise the distance-scaled cut.
  const net::Router router(topology);  // hop-count metric
  const std::vector<int> mapping =
      net::optimize_node_mapping(traffic, k, router);
  for (int& node : result.assignment) {
    node = mapping[static_cast<std::size_t>(node)];
  }
  result.cut = net::mapped_cut_weight(traffic, k, mapping, router);
  return result;
}

AggregateResult run_design(const Circuit& circuit,
                           const std::vector<int>& assignment,
                           const ArchConfig& config, DesignKind design,
                           int runs, std::uint64_t base_seed, int threads) {
  DQCSIM_EXPECTS(runs >= 1);
  const noise::TeleportFidelityModel model = make_teleport_model(config);

  // Per-run results land in disjoint slots; the streaming aggregate is then
  // folded in run order, so thread count and completion order never change
  // a single bit of the statistics. Each worker reuses one RunContext
  // across its trials, so the steady-state trial loop allocates nothing.
  const std::size_t workers = parallel_worker_count(
      static_cast<std::size_t>(runs),
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<RunContext> contexts(workers);
  std::vector<RunResult> results(static_cast<std::size_t>(runs));
  parallel_for_workers(
      results.size(),
      [&](std::size_t worker, std::size_t r) {
        results[r] = contexts[worker].execute(
            circuit, assignment, config, design,
            base_seed + static_cast<std::uint64_t>(r), &model);
      },
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));

  AggregateResult aggregate;
  for (const RunResult& run : results) aggregate.add(run);
  return aggregate;
}

std::vector<AggregateResult> run_design_matrix(
    const Circuit& circuit, const std::vector<int>& assignment,
    const std::vector<DesignPoint>& points, int runs, std::uint64_t base_seed,
    int threads) {
  DQCSIM_EXPECTS(runs >= 1);
  if (points.empty()) return {};

  std::vector<noise::TeleportFidelityModel> models;
  models.reserve(points.size());
  for (const DesignPoint& point : points) {
    models.push_back(make_teleport_model(point.config));
  }

  // One flat cell grid: all point x run pairs share the pool, so a sweep of
  // many small-run points parallelizes as well as one large run_design.
  // Cells are claimed in p-major order, so a worker's consecutive trials
  // usually share a design point and hit its RunContext's setup cache.
  const std::size_t num_runs = static_cast<std::size_t>(runs);
  std::vector<RunResult> cells(points.size() * num_runs);
  const std::size_t workers = parallel_worker_count(
      cells.size(), threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  std::vector<RunContext> contexts(workers);
  parallel_for_workers(
      cells.size(),
      [&](std::size_t worker, std::size_t cell) {
        const std::size_t p = cell / num_runs;
        const std::size_t r = cell % num_runs;
        cells[cell] = contexts[worker].execute(
            circuit, assignment, points[p].config, points[p].design,
            base_seed + static_cast<std::uint64_t>(r), &models[p]);
      },
      threads <= 0 ? 0 : static_cast<std::size_t>(threads));

  std::vector<AggregateResult> aggregates(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t r = 0; r < num_runs; ++r) {
      aggregates[p].add(cells[p * num_runs + r]);
    }
  }
  return aggregates;
}

double ideal_depth(const Circuit& circuit, const ArchConfig& config) {
  ExecutionEngine engine(circuit, {}, config, DesignKind::IdealMono,
                         /*seed=*/0);
  return engine.run().depth;
}

double ideal_fidelity(const Circuit& circuit, const ArchConfig& config) {
  ExecutionEngine engine(circuit, {}, config, DesignKind::IdealMono,
                         /*seed=*/0);
  return engine.run().fidelity;
}

}  // namespace dqcsim::runtime
