#include "runtime/experiment.hpp"

#include "circuit/interaction_graph.hpp"
#include "common/error.hpp"
#include "runtime/engine.hpp"

namespace dqcsim::runtime {

partition::PartitionResult partition_circuit(const Circuit& circuit,
                                             int num_nodes,
                                             std::uint64_t seed) {
  const partition::Graph graph = interaction_graph(circuit);
  partition::PartitionOptions opts;
  opts.seed = seed;
  return partition::multilevel_partition(graph, num_nodes, opts);
}

AggregateResult run_design(const Circuit& circuit,
                           const std::vector<int>& assignment,
                           const ArchConfig& config, DesignKind design,
                           int runs, std::uint64_t base_seed) {
  DQCSIM_EXPECTS(runs >= 1);
  noise::TeleportNoiseParams tele;
  tele.local_2q_fidelity = config.fid.local_cnot;
  tele.local_1q_fidelity = config.fid.one_qubit;
  tele.readout_fidelity = config.fid.measurement;
  const noise::TeleportFidelityModel model(tele);

  AggregateResult aggregate;
  for (int r = 0; r < runs; ++r) {
    ExecutionEngine engine(circuit, assignment, config, design,
                           base_seed + static_cast<std::uint64_t>(r), &model);
    aggregate.add(engine.run());
  }
  return aggregate;
}

double ideal_depth(const Circuit& circuit, const ArchConfig& config) {
  ExecutionEngine engine(circuit, {}, config, DesignKind::IdealMono,
                         /*seed=*/0);
  return engine.run().depth;
}

double ideal_fidelity(const Circuit& circuit, const ArchConfig& config) {
  ExecutionEngine engine(circuit, {}, config, DesignKind::IdealMono,
                         /*seed=*/0);
  return engine.run().fidelity;
}

}  // namespace dqcsim::runtime
