/// \file arch_config.hpp
/// \brief DQC architecture configuration (paper §IV-A, Table II).
///
/// All times are in units of one local CNOT latency (300 ns physical); the
/// decoherence rate kappa = T_cnot / T2 = 300 ns / 150 us = 0.002 per unit.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "ent/link_params.hpp"
#include "net/swap.hpp"
#include "net/topology.hpp"
#include "obs/observe.hpp"
#include "runtime/design.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::runtime {

/// Operation latencies (Table II), in local-CNOT units.
struct Latencies {
  double one_qubit = 0.1;
  double local_cnot = 1.0;
  double measurement = 5.0;
  double epr_cycle = 10.0;     ///< T_EG: one generation attempt
  double swap_buffer = 1.0;    ///< comm -> buffer SWAP
  /// Data-qubit occupation of a teleported remote gate. The feed-forward
  /// measurement and Pauli correction run on the Bell halves / in the Pauli
  /// frame, off the data-qubit critical path, so the default equals one
  /// local CNOT (see DESIGN.md "Remote-gate latency").
  double remote_gate = 1.0;
  /// Data-qubit occupation of a remote gate implemented by *state*
  /// teleportation (move control over, local CNOT, move back): the control
  /// wire threads three CNOT-class operations.
  double remote_gate_state = 3.0;
};

/// How remote two-qubit gates are realized (paper §II-C; the combination of
/// both was left as future work in §III-D — StateTeleport implements it).
enum class RemoteImpl {
  GateTeleport,   ///< Fig. 1(c): one EPR pair per remote gate (paper default)
  StateTeleport,  ///< Fig. 1(b) twice: two EPR pairs per remote gate
};

/// Operation fidelities (Table II).
struct Fidelities {
  double one_qubit = 0.9999;
  double local_cnot = 0.999;
  double measurement = 0.998;
  double epr_f0 = 0.99;  ///< freshly generated Bell-pair fidelity
};

/// Full architecture configuration for a DQC system of `num_nodes` QPUs.
///
/// The paper evaluates 2 nodes; the engine generalizes to all-to-all
/// interconnects of k nodes by splitting each node's communication and
/// buffer qubits evenly across its k-1 links (see link_params).
struct ArchConfig {
  int num_nodes = 2;          ///< QPU count (>= 2), all-to-all interconnect
  int comm_per_node = 10;     ///< communication qubits per node
  int buffer_per_node = 10;   ///< buffer qubits per node
  Latencies lat;
  Fidelities fid;
  double p_succ = 0.4;        ///< EPR generation success probability
  double kappa = 0.002;       ///< decoherence rate per time unit
  /// Buffer storage cutoff (time units); infinity disables the policy.
  double buffer_cutoff = std::numeric_limits<double>::infinity();
  /// Stagger subgroups for asynchronous generation (clamped to comm pairs).
  int async_subgroups = 10;
  /// Consume the freshest buffered pair first (see ent::ConsumeOrder).
  bool consume_freshest = true;
  /// Remote gates per adaptive segment; 0 selects the paper's default
  /// round(comm_per_node * p_succ).
  std::size_t segment_size = 0;
  /// Remote-gate implementation (gate teleportation by default).
  RemoteImpl remote_impl = RemoteImpl::GateTeleport;
  /// Purify-on-consume: each remote gate distills its EPR pair from two
  /// buffered pairs (BBPSSW); a failed round discards both pairs and the
  /// gate waits for new ones. Only meaningful for buffered designs with
  /// GateTeleport. Raises per-gate fidelity, halves (at best) the
  /// effective pair rate.
  bool purify_on_consume = false;
  /// Local-operation time of one purification round (CNOT + measurement on
  /// each side, in t_CNOT units); delays the purified gate's start.
  double purification_latency = 6.0;
  /// Execute runs of consecutive one-qubit gates on a wire as a single
  /// scheduling event with summed latency (see fusible_1q_chain_next).
  /// The chain's completion instant, fidelity factors, and every observable
  /// statistic are unchanged — only the discrete-event count shrinks — so
  /// results are bit-identical with the toggle on or off. Applied to the
  /// non-adaptive designs (the adaptive controller observes execution at
  /// gate granularity and is left untouched).
  bool fuse_local_gates = true;
  /// Record per-pair arrival times in each link's ArrivalTrace (Fig. 3).
  /// Monte-Carlo sweeps that never read the trace can switch this off; no
  /// simulated statistic depends on it.
  bool record_arrival_trace = true;
  /// Physical interconnect topology. Null (the default) means the legacy
  /// homogeneous all-to-all interconnect; setting a topology routes every
  /// node pair's entanglement over physical links (multi-hop pairs are
  /// composed through entanglement swaps, see net::Router / net::compose
  /// _route). Shared ownership keeps ArchConfig copies allocation-free in
  /// the Monte-Carlo trial loop.
  std::shared_ptr<const net::Topology> topology;
  /// Edge-cost model for route selection when a topology is set: expected
  /// time per delivered pair by default (cycle / (p_succ * pairs)).
  bool route_by_hops = false;
  /// Fault & drift scenario applied per trial (see scenario/scenario.hpp).
  /// Null (the default) is the stationary fabric, bit-identical to builds
  /// without the scenario layer. Requires a topology: scenarios target
  /// physical edges (use net::Topology::all_to_all for the legacy shape).
  std::shared_ptr<const scenario::Scenario> scenario;

  // --- Congestion & shared-capacity modes (see net/congestion.hpp and
  // docs/ARCHITECTURE.md). All default off: the legacy independent-budget
  // engine is the escape hatch and stays bit-identical until opted in.
  // Each knob needs a topology; without one they are silent no-ops (the
  // homogeneous all-to-all interconnect has no shared edges to contend).

  /// Share each physical edge's generation budget between the routes
  /// crossing it: every route receives a deterministic near-even slice of
  /// the edge's comm/buffer capacity (floor + remainder by route creation
  /// rank, clamped to >= 1; see net::capacity_share) instead of drawing
  /// the full per-edge budget. Shares are assigned at t=0 and stay frozen
  /// for the trial, matching the frozen structural composition.
  bool share_edge_capacity = false;
  /// Select routes sequentially (in first-traffic creation order) over
  /// load-scaled edge costs, cost(e) = static_cost(e) *
  /// (1 + congestion_alpha * load(e)), so later traffic detours around
  /// edges earlier traffic saturated. Applied at t=0 placement and again
  /// at every outage/recovery boundary — detours then contend too.
  bool congestion_aware_routing = false;
  /// Load-scaling strength of congestion_aware_routing (>= 0; 0 degrades
  /// to static costs with deterministic sequential tie-breaks).
  double congestion_alpha = 1.0;
  /// With congestion_aware_routing + swap_as_you_go, split a link's
  /// traffic across two edge-disjoint paths whose scaled costs tie: a
  /// remote gate is served by whichever path first buffers its full pair
  /// quota.
  bool split_tied_routes = true;
  /// Swap-as-you-go delivery on a topology: one generation service per
  /// *physical edge* buffers pairs at intermediate swap nodes, and an
  /// end-to-end pair is fused on demand from one buffered pair per hop —
  /// escaping the composed model's punishing all-hops-in-one-window
  /// p_succ^hops success law. Edge budgets are inherently shared between
  /// the routes draining a common buffer. Bufferless (OnDemand) designs
  /// run a degraded one-slot-per-edge service: each hop pair parks on the
  /// edge's communication qubits until the fusion drains it, so the knob
  /// selects the same delivery model for every design instead of silently
  /// falling back to the composed model for the original design.
  bool swap_as_you_go = false;

  // --- Degraded-mode delivery under faults (all default off; see
  // docs/ARCHITECTURE.md "Fault handling & degraded modes"). Knobs-off
  // runs are bit-identical to the engine without this layer.

  /// Mid-flight pair salvage at outage boundaries. Entangled pairs held
  /// in buffers survive a *channel* outage — only new generation pauses —
  /// so with swap_as_you_go a logical link whose entire route is severed
  /// may still assemble end-to-end pairs from hop pairs buffered before
  /// the outage, along its last route, provided every node on that route
  /// is up (salvage is from *surviving nodes*). In the composed model the
  /// kept stock is re-credited to the re-planned route's budget and
  /// consumption while routeless is counted as salvage. Pairs buffered at
  /// a *down node* are lost and flushed at the boundary. Reported as
  /// pairs_salvaged / pairs_discarded; arbitration between links follows
  /// the usual creation order.
  bool salvage_pairs = false;
  /// Recompute per-route capacity shares at every outage/recovery
  /// boundary over the surviving routes (requires share_edge_capacity;
  /// without this knob shares stay frozen at t=0 while routes re-plan).
  /// In-flight attempt windows complete under the old shares — a
  /// deactivated comm pair finishes its started window before its chain
  /// stops (see ent::GenerationService::set_capacity_share). Buffer
  /// overflow from a shrunken share is discarded oldest-first and
  /// reported as pairs_discarded.
  bool reshare_at_boundaries = false;
  /// Retry/timeout/backoff policy applied to every generation service
  /// (per-link and per-edge); the default retries every window, which is
  /// the legacy tight loop. See ent::RetryPolicy.
  ent::RetryPolicy retry_policy;
  /// link_stalled watchdog: report (in RunResult::links_stalled) how many
  /// generation services went longer than stall_windows attempt windows
  /// without a single successful generation at any point in the trial.
  /// 0 disables the watchdog.
  int stall_windows = 0;
  /// Trial sim-time budget: a trial whose next event would fire beyond
  /// this instant stops cleanly with RunResult::truncated set and partial
  /// metrics (depth reports the budget horizon). Deterministic — the
  /// budget is simulation time, not wall clock — so truncated runs stay
  /// bit-identical across thread counts. Infinity (default) disables it.
  double max_trial_sim_time = std::numeric_limits<double>::infinity();

  /// Observability switchboard (see obs/observe.hpp and the
  /// docs/ARCHITECTURE.md "Observability" section): metrics registry,
  /// single-trial tracing, and the engine self-profile. Null (the default)
  /// keeps today's behavior exactly — every hook is a branch on this
  /// pointer, so results stay bit-identical and the trial hot path stays
  /// allocation-free. Shared ownership keeps ArchConfig copies
  /// allocation-free, like `topology` and `scenario`; share one instance
  /// across a sweep to aggregate into a single collector.
  std::shared_ptr<obs::Observe> observe;

  /// Convenience: wrap `topo` for the shared `topology` slot.
  void set_topology(net::Topology topo) {
    topology = std::make_shared<const net::Topology>(std::move(topo));
  }

  /// Convenience: wrap `scn` for the shared `scenario` slot.
  void set_scenario(scenario::Scenario scn) {
    scenario = std::make_shared<const scenario::Scenario>(std::move(scn));
  }

  /// EPR pairs consumed per remote gate under the selected implementation
  /// (a *successful* purification round doubles the count again).
  int pairs_per_remote_gate() const {
    const int base = remote_impl == RemoteImpl::GateTeleport ? 1 : 2;
    return purify_on_consume ? 2 * base : base;
  }

  /// Throws ConfigError when any field is out of domain.
  void validate() const;

  /// Derive the entanglement-link parameters for a given design
  /// (schedule/buffering follow the design's feature set) under the legacy
  /// all-to-all interconnect. Each node splits its communication/buffer
  /// qubits evenly across its num_nodes - 1 links, so per-link resources
  /// shrink as the interconnect widens.
  /// Throws ConfigError when a node has fewer communication qubits than
  /// links (comm_per_node < num_nodes - 1).
  ent::LinkParams link_params(DesignKind design) const;

  /// Per-node-pair link parameters. Without a topology every pair gets the
  /// homogeneous all-to-all parameters above. With a topology, {a, b} must
  /// be a physical edge: the edge's overrides apply and each endpoint
  /// splits its comm/buffer budget across its own degree (the scarcer
  /// endpoint bounds the link). Multi-hop pairs have no direct link — the
  /// engine derives their effective link by routing (net::compose_route);
  /// requesting one here throws ConfigError.
  /// Throws ConfigError when an endpoint's degree exceeds comm_per_node.
  ent::LinkParams link_params(DesignKind design, int node_a,
                              int node_b) const;

  /// Local-operation model of one entanglement swap under this config:
  /// BSM fidelity = local CNOT x measurement^2, latency = local CNOT +
  /// measurement (feed-forward runs in the Pauli frame).
  net::SwapParams swap_params() const;

  /// Effective adaptive segment size m.
  std::size_t effective_segment_size() const;
};

}  // namespace dqcsim::runtime
