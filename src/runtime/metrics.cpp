#include "runtime/metrics.hpp"

namespace dqcsim::runtime {

AggregateResult::AggregateResult() {
  // Quantile histogram ranges, in local-CNOT time units. Samples beyond a
  // range still land in the exact-count tail buckets and interpolate
  // against min/max, so a wider-than-expected distribution degrades
  // gracefully instead of clipping.
  avg_pair_age.enable_histogram(0.0, 256.0, 512);
  avg_remote_wait.enable_histogram(0.0, 4096.0, 512);
  outage_downtime.enable_histogram(0.0, 65536.0, 512);
}

void AggregateResult::add(const RunResult& run) {
  depth.add(run.depth);
  fidelity.add(run.fidelity);
  epr_wasted.add(static_cast<double>(run.epr_wasted));
  epr_expired.add(static_cast<double>(run.epr_expired));
  avg_pair_age.add(run.avg_pair_age);
  avg_remote_wait.add(run.avg_remote_wait);
  entanglement_swaps.add(static_cast<double>(run.entanglement_swaps));
  avg_route_hops.add(run.avg_route_hops);
  edges_shared.add(static_cast<double>(run.edges_shared));
  max_edge_load.add(static_cast<double>(run.max_edge_load));
  route_splits.add(static_cast<double>(run.route_splits));
  reroutes.add(static_cast<double>(run.reroutes));
  outage_downtime.add(run.outage_downtime);
  pairs_salvaged.add(static_cast<double>(run.pairs_salvaged));
  pairs_discarded.add(static_cast<double>(run.pairs_discarded));
  links_stalled.add(static_cast<double>(run.links_stalled));
  truncated.add(run.truncated ? 1.0 : 0.0);
}

}  // namespace dqcsim::runtime
