/// \file engine.hpp
/// \brief Event-driven execution of a partitioned circuit on the DQC
/// architecture (the paper's evaluation core, §IV).
///
/// The engine couples two processes on one discrete-event simulator:
///  1. the entanglement-generation service (ent::GenerationService), and
///  2. list-scheduled circuit execution: a gate starts as soon as its
///     per-qubit predecessors complete; remote gates additionally wait for
///     an EPR pair (from the buffer, or — in the bufferless original design
///     — for a heralding instant).
///
/// Depth is the resulting makespan in local-CNOT units; fidelity is the
/// product of all gate fidelities (remote gates via the teleportation-gadget
/// model at the consumed pair's decayed fidelity) times exp(-kappa * depth).
///
/// For adapt_buf / init_buf the engine admits the circuit segment by
/// segment, choosing the pre-compiled ASAP/ALAP/original variant from the
/// live buffer occupancy when each segment is admitted (paper §III-D).
///
/// Two entry points:
///  - RunContext: a reusable workspace executing one trial per call. All
///    engine state (event pool, dependency arrays, link services, scratch
///    buffers, metrics) is reset() instead of reallocated between calls,
///    and circuit-derived artifacts (gate placement, segment variants,
///    fusion chains, link topology, teleportation models) are cached while
///    consecutive calls share a setup — so a Monte-Carlo trial loop does
///    zero steady-state allocation. Each thread-pool worker owns one.
///  - ExecutionEngine: the one-shot facade over a private RunContext
///    (construct, run() once).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "noise/teleport_fidelity.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/design.hpp"
#include "runtime/metrics.hpp"

namespace dqcsim::runtime {

/// Reusable single-trial execution workspace. Not thread-safe: one
/// RunContext per concurrent caller (see ThreadPool::parallel_for_workers).
class RunContext {
 public:
  RunContext();
  ~RunContext();
  RunContext(RunContext&&) noexcept;
  RunContext& operator=(RunContext&&) noexcept;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Execute one trial and return its metrics. Inputs are validated on
  /// every call; `circuit` and `assignment` must stay alive for the call.
  ///
  /// \param teleport_model optional pre-built teleported-gate fidelity
  ///        model (must match config fidelities); pass nullptr to build
  ///        (and cache) one internally.
  RunResult execute(const Circuit& circuit, const std::vector<int>& assignment,
                    const ArchConfig& config, DesignKind design,
                    std::uint64_t seed,
                    const noise::TeleportFidelityModel* teleport_model =
                        nullptr);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// Single-run execution engine. Construct once per run; `run()` may be
/// called exactly once.
class ExecutionEngine {
 public:
  /// \param circuit     the workload
  /// \param assignment  qubit -> node id (entries in {0,1}); ignored for
  ///                    IdealMono
  /// \param config      architecture parameters (validated here)
  /// \param design      which of the six designs to simulate
  /// \param seed        randomness for entanglement generation
  /// \param teleport_model optional pre-built teleported-gate fidelity
  ///                    model (must match config fidelities); pass nullptr
  ///                    to build one internally.
  ExecutionEngine(const Circuit& circuit, std::vector<int> assignment,
                  const ArchConfig& config, DesignKind design,
                  std::uint64_t seed,
                  const noise::TeleportFidelityModel* teleport_model = nullptr);

  ~ExecutionEngine();
  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  /// Execute the circuit to completion and return the run metrics.
  RunResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dqcsim::runtime
