#include "runtime/design.hpp"

#include "common/error.hpp"

namespace dqcsim::runtime {

std::string design_name(DesignKind design) {
  switch (design) {
    case DesignKind::Original: return "original";
    case DesignKind::SyncBuf: return "sync_buf";
    case DesignKind::AsyncBuf: return "async_buf";
    case DesignKind::AdaptBuf: return "adapt_buf";
    case DesignKind::InitBuf: return "init_buf";
    case DesignKind::IdealMono: return "ideal";
  }
  throw PreconditionError("unknown design kind");
}

std::vector<DesignKind> all_designs() {
  return {DesignKind::Original, DesignKind::SyncBuf, DesignKind::AsyncBuf,
          DesignKind::AdaptBuf, DesignKind::InitBuf, DesignKind::IdealMono};
}

std::vector<DesignKind> distributed_designs() {
  return {DesignKind::Original, DesignKind::SyncBuf, DesignKind::AsyncBuf,
          DesignKind::AdaptBuf, DesignKind::InitBuf};
}

bool design_uses_buffer(DesignKind design) {
  switch (design) {
    case DesignKind::SyncBuf:
    case DesignKind::AsyncBuf:
    case DesignKind::AdaptBuf:
    case DesignKind::InitBuf:
      return true;
    default:
      return false;
  }
}

bool design_uses_async(DesignKind design) {
  switch (design) {
    case DesignKind::AsyncBuf:
    case DesignKind::AdaptBuf:
    case DesignKind::InitBuf:
      return true;
    default:
      return false;
  }
}

bool design_uses_adaptive(DesignKind design) {
  return design == DesignKind::AdaptBuf || design == DesignKind::InitBuf;
}

bool design_uses_prefill(DesignKind design) {
  return design == DesignKind::InitBuf;
}

}  // namespace dqcsim::runtime
