#include "ent/trace.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dqcsim::ent {

void ArrivalTrace::record(des::SimTime t) {
  DQCSIM_EXPECTS(t >= 0.0);
  arrivals_.push_back(t);
}

std::vector<std::size_t> ArrivalTrace::binned_counts(double bin_width,
                                                     double horizon) const {
  DQCSIM_EXPECTS(bin_width > 0.0);
  DQCSIM_EXPECTS(horizon > 0.0);
  const auto num_bins =
      static_cast<std::size_t>(std::ceil(horizon / bin_width));
  std::vector<std::size_t> counts(num_bins, 0);
  for (des::SimTime t : arrivals_) {
    if (t >= horizon) continue;
    auto bin = static_cast<std::size_t>(t / bin_width);
    if (bin >= num_bins) bin = num_bins - 1;
    ++counts[bin];
  }
  return counts;
}

double ArrivalTrace::burstiness(double bin_width, double horizon) const {
  const auto counts = binned_counts(bin_width, horizon);
  Accumulator acc;
  for (std::size_t c : counts) acc.add(static_cast<double>(c));
  if (acc.mean() <= 0.0) return 0.0;
  return acc.stddev() / acc.mean();
}

}  // namespace dqcsim::ent
