#include "ent/generation_service.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dqcsim::ent {

GenerationService::GenerationService(des::Simulator& sim,
                                     const LinkParams& params, Rng& rng,
                                     ServiceMode mode)
    : sim_(sim),
      params_(params),
      rng_(rng),
      mode_(mode),
      buffer_(params.buffer_capacity, params.f0, params.kappa,
              params.cutoff) {
  params_.validate();
}

void GenerationService::reset(const LinkParams& params, ServiceMode mode) {
  params_ = params;
  params_.validate();
  mode_ = mode;
  // Invalidate any attempt/deposit events still scheduled on the simulator
  // from the previous run (harmless when the caller resets the simulator
  // too, as the trial loop does).
  ++epoch_;
  buffer_.configure(params.buffer_capacity, params.f0, params.kappa,
                    params.cutoff);
  trace_.clear();
  handler_ = nullptr;
  started_ = false;
  running_ = false;
  attempts_ = 0;
  successes_ = 0;
  wasted_buffer_full_ = 0;
  wasted_unconsumed_ = 0;
}

double GenerationService::offset_of(int pair_index) const {
  DQCSIM_EXPECTS(pair_index >= 0 && pair_index < params_.num_comm_pairs);
  if (params_.schedule == AttemptSchedule::Synchronous) return 0.0;
  const int groups =
      std::min(params_.async_subgroups, params_.num_comm_pairs);
  const int group = pair_index % groups;
  return params_.cycle_time * static_cast<double>(group) /
         static_cast<double>(groups);
}

void GenerationService::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  // Entanglement generation is a continuously running background service
  // (paper §III-B), so attempt windows are already in steady state when the
  // circuit starts: pair p's completions fall on offset(p) + k*cycle, and
  // the first one after t=now is scheduled (a zero offset completes after a
  // full cycle). Results are only *stored* from start() on, which keeps the
  // buffered designs distinct from init_buf's pre-filled buffer.
  for (int p = 0; p < params_.num_comm_pairs; ++p) {
    const double offset = offset_of(p);
    const double first = (offset > 0.0) ? offset : params_.cycle_time;
    schedule_completion(p, sim_.now() + first);
  }
}

void GenerationService::pre_fill_buffer() {
  DQCSIM_EXPECTS_MSG(mode_ == ServiceMode::Buffered,
                     "pre-fill requires a buffered service");
  while (!buffer_.full(sim_.now())) {
    buffer_.deposit(sim_.now());
  }
}

void GenerationService::schedule_completion(int pair_index,
                                            des::SimTime completion) {
  sim_.schedule_at(completion, [this, pair_index, epoch = epoch_] {
    if (epoch == epoch_) on_window_complete(pair_index);
  });
}

void GenerationService::on_window_complete(int pair_index) {
  if (!running_) return;
  ++attempts_;
  const des::SimTime now = sim_.now();

  if (rng_.bernoulli(params_.p_succ)) {
    ++successes_;
    if (mode_ == ServiceMode::Buffered) {
      // SWAP into the buffer; availability is delayed by the SWAP latency.
      sim_.schedule_in(params_.swap_latency, [this, epoch = epoch_] {
        if (epoch != epoch_) return;
        const des::SimTime at = sim_.now();
        if (buffer_.deposit(at)) {
          if (params_.record_trace) trace_.record(at);
          if (handler_) handler_(at);
        } else {
          ++wasted_buffer_full_;
        }
      });
    } else {
      if (params_.record_trace) trace_.record(now);
      const bool consumed = handler_ ? handler_(now) : false;
      if (!consumed) ++wasted_unconsumed_;
    }
  }

  schedule_completion(pair_index, now + params_.cycle_time);
}

}  // namespace dqcsim::ent
