#include "ent/buffer_pool.hpp"

#include "common/error.hpp"
#include "noise/werner.hpp"

namespace dqcsim::ent {

BufferPool::BufferPool(int capacity, double f0, double kappa, double cutoff)
    : capacity_(static_cast<std::size_t>(capacity)),
      f0_(f0),
      kappa_(kappa),
      cutoff_(cutoff) {
  DQCSIM_EXPECTS(capacity >= 0);
  DQCSIM_EXPECTS(f0 >= 0.25 && f0 <= 1.0);
  DQCSIM_EXPECTS(kappa >= 0.0);
  DQCSIM_EXPECTS(cutoff > 0.0);
}

void BufferPool::expire_until(des::SimTime now) {
  while (!pairs_.empty() && now - pairs_.front().deposited > cutoff_) {
    pairs_.pop_front();
    ++expired_;
  }
}

std::size_t BufferPool::size(des::SimTime now) {
  expire_until(now);
  return pairs_.size();
}

bool BufferPool::deposit(des::SimTime now) {
  expire_until(now);
  if (pairs_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  pairs_.push_back(BufferedPair{now});
  ++deposited_;
  return true;
}

std::optional<BufferedPair> BufferPool::pop_oldest(des::SimTime now) {
  expire_until(now);
  if (pairs_.empty()) return std::nullopt;
  BufferedPair pair = pairs_.front();
  pairs_.pop_front();
  ++consumed_;
  return pair;
}

std::optional<BufferedPair> BufferPool::pop_freshest(des::SimTime now) {
  expire_until(now);
  if (pairs_.empty()) return std::nullopt;
  BufferedPair pair = pairs_.back();
  pairs_.pop_back();
  ++consumed_;
  return pair;
}

std::optional<BufferedPair> BufferPool::pop(des::SimTime now,
                                            ConsumeOrder order) {
  return order == ConsumeOrder::FreshestFirst ? pop_freshest(now)
                                              : pop_oldest(now);
}

double BufferPool::fidelity_at_age(double age) const {
  DQCSIM_EXPECTS(age >= 0.0);
  return noise::werner_decayed_fidelity(f0_, kappa_, age);
}

}  // namespace dqcsim::ent
