#include "ent/buffer_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "noise/werner.hpp"

namespace dqcsim::ent {

BufferPool::BufferPool(int capacity, double f0, double kappa, double cutoff) {
  configure(capacity, f0, kappa, cutoff);
}

void BufferPool::configure(int capacity, double f0, double kappa,
                           double cutoff) {
  DQCSIM_EXPECTS(capacity >= 0);
  DQCSIM_EXPECTS(f0 >= 0.25 && f0 <= 1.0);
  DQCSIM_EXPECTS(kappa >= 0.0);
  DQCSIM_EXPECTS(cutoff > 0.0);
  capacity_ = static_cast<std::size_t>(capacity);
  f0_ = f0;
  kappa_ = kappa;
  cutoff_ = cutoff;
  if (ring_.size() != capacity_) ring_.resize(capacity_);
  head_ = 0;
  count_ = 0;
  deposited_ = consumed_ = expired_ = rejected_ = 0;
}

std::size_t BufferPool::resize_capacity(int new_capacity, des::SimTime now) {
  DQCSIM_EXPECTS(new_capacity >= 0);
  const auto cap = static_cast<std::size_t>(new_capacity);
  expire_until(now);
  if (cap == capacity_) return 0;
  // Drop the oldest overflow first so the surviving stock is the freshest.
  std::size_t dropped = 0;
  while (count_ > cap) {
    head_ = next(head_);
    --count_;
    ++dropped;
  }
  // Linearize the survivors into the resized ring (an allocation, but
  // resizes only happen at outage/recovery boundaries).
  std::vector<BufferedPair> live;
  live.reserve(count_);
  for (std::size_t i = 0, j = head_; i < count_; ++i, j = next(j)) {
    live.push_back(ring_[j]);
  }
  capacity_ = cap;
  ring_.assign(capacity_, BufferedPair{});
  std::copy(live.begin(), live.end(), ring_.begin());
  head_ = 0;
  return dropped;
}

std::size_t BufferPool::flush(des::SimTime now) {
  expire_until(now);
  const std::size_t dropped = count_;
  head_ = 0;
  count_ = 0;
  return dropped;
}

// DQCSIM_HOT
void BufferPool::expire_until(des::SimTime now) {
  while (count_ > 0 && now - ring_[head_].deposited > cutoff_) {
    head_ = next(head_);
    --count_;
    ++expired_;
  }
}

std::size_t BufferPool::size(des::SimTime now) {
  expire_until(now);
  return count_;
}

// DQCSIM_HOT
bool BufferPool::deposit(des::SimTime now, double f0) {
  expire_until(now);
  if (count_ >= capacity_) {
    ++rejected_;
    return false;
  }
  std::size_t tail = head_ + count_;
  if (tail >= capacity_) tail -= capacity_;
  ring_[tail] = BufferedPair{now, f0};
  ++count_;
  ++deposited_;
  return true;
}

// DQCSIM_HOT
std::optional<BufferedPair> BufferPool::pop_oldest(des::SimTime now) {
  expire_until(now);
  if (count_ == 0) return std::nullopt;
  const BufferedPair pair = ring_[head_];
  head_ = next(head_);
  --count_;
  ++consumed_;
  return pair;
}

// DQCSIM_HOT
std::optional<BufferedPair> BufferPool::pop_freshest(des::SimTime now) {
  expire_until(now);
  if (count_ == 0) return std::nullopt;
  std::size_t tail = head_ + count_ - 1;
  if (tail >= capacity_) tail -= capacity_;
  const BufferedPair pair = ring_[tail];
  --count_;
  ++consumed_;
  return pair;
}

std::optional<BufferedPair> BufferPool::pop(des::SimTime now,
                                            ConsumeOrder order) {
  return order == ConsumeOrder::FreshestFirst ? pop_freshest(now)
                                              : pop_oldest(now);
}

double BufferPool::fidelity_at_age(double age) const {
  DQCSIM_EXPECTS(age >= 0.0);
  return noise::werner_decayed_fidelity(f0_, kappa_, age);
}

}  // namespace dqcsim::ent
