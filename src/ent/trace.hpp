/// \file trace.hpp
/// \brief Recording of EPR-pair arrival times (reproduces paper Fig. 3).
///
/// The arrival trace captures when pairs become available, so experiments
/// can visualize the bursty pattern of synchronous generation versus the
/// smooth pattern of asynchronous generation, and quantify burstiness.

#pragma once

#include <cstddef>
#include <vector>

#include "des/event_pool.hpp"

namespace dqcsim::ent {

/// Time-stamped arrival log with binning utilities.
class ArrivalTrace {
 public:
  /// Record one pair arrival.
  void record(des::SimTime t);

  /// Forget all recorded arrivals, retaining storage capacity.
  void clear() noexcept { arrivals_.clear(); }

  std::size_t count() const noexcept { return arrivals_.size(); }
  const std::vector<des::SimTime>& arrivals() const noexcept {
    return arrivals_;
  }

  /// Number of arrivals in each bin of width `bin_width` covering
  /// [0, horizon). Precondition: bin_width > 0, horizon > 0.
  std::vector<std::size_t> binned_counts(double bin_width,
                                         double horizon) const;

  /// Coefficient of variation of the per-bin counts: stddev / mean.
  /// Synchronous (bursty) generation yields a markedly higher value than
  /// asynchronous generation at identical rate. Returns 0 when mean == 0.
  double burstiness(double bin_width, double horizon) const;

 private:
  std::vector<des::SimTime> arrivals_;
};

}  // namespace dqcsim::ent
