#include "ent/link_params.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dqcsim::ent {

void RetryPolicy::validate() const {
  if (kind == RetryKind::EveryWindow) return;
  if (!(interval > 0.0)) {
    throw ConfigError("RetryPolicy: interval must be positive");
  }
  if (!(growth >= 1.0)) {
    throw ConfigError("RetryPolicy: growth must be at least 1");
  }
  if (!(max_interval >= interval)) {
    throw ConfigError("RetryPolicy: max_interval must be >= interval");
  }
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    throw ConfigError("RetryPolicy: jitter must be in [0, 1)");
  }
  if (attempt_cutoff < 0) {
    throw ConfigError("RetryPolicy: attempt_cutoff must be nonnegative");
  }
  if (attempt_cutoff > 0 && !std::isfinite(max_interval)) {
    throw ConfigError(
        "RetryPolicy: attempt_cutoff needs a finite max_interval to probe "
        "at");
  }
}

void LinkParams::validate() const {
  if (num_comm_pairs < 1) {
    throw ConfigError("LinkParams: need at least one communication pair");
  }
  if (buffer_capacity < 0) {
    throw ConfigError("LinkParams: buffer capacity must be nonnegative");
  }
  if (!(p_succ > 0.0 && p_succ <= 1.0)) {
    throw ConfigError("LinkParams: p_succ must be in (0, 1]");
  }
  if (!(cycle_time > 0.0)) {
    throw ConfigError("LinkParams: cycle_time must be positive");
  }
  if (swap_latency < 0.0) {
    throw ConfigError("LinkParams: swap_latency must be nonnegative");
  }
  if (!(f0 >= 0.25 && f0 <= 1.0)) {
    throw ConfigError("LinkParams: f0 must be in [0.25, 1]");
  }
  if (kappa < 0.0) {
    throw ConfigError("LinkParams: kappa must be nonnegative");
  }
  if (!(cutoff > 0.0)) {
    throw ConfigError("LinkParams: cutoff must be positive");
  }
  if (async_subgroups < 1) {
    throw ConfigError("LinkParams: async_subgroups must be at least 1");
  }
  retry.validate();
}

}  // namespace dqcsim::ent
