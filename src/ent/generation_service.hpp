/// \file generation_service.hpp
/// \brief Continuous heralded entanglement-generation service (§III-B/C).
///
/// Each communication-qubit pair runs attempt windows of length
/// `cycle_time`; a window completes with a success with probability
/// `p_succ`. Window phases are aligned (Synchronous) or staggered across
/// subgroups (Asynchronous). Two consumption modes:
///
///  - Buffered: successes are SWAPped into the BufferPool (availability is
///    delayed by `swap_latency`); the arrival handler is notified at
///    deposit time. If the pool is full the pair is wasted. Attempt windows
///    stay on the per-pair phase grid — the SWAP is handled by the buffer
///    layer and does not re-phase the communication qubits, which preserves
///    the paper's synchronous burst pattern (Fig. 3).
///
///  - OnDemand (the paper's bufferless `original` design): a success exists
///    only at its heralding instant. The arrival handler may consume it by
///    returning true; otherwise the pair is wasted, reproducing the
///    "significant EPR pair waste" of the no-buffer design (§V-A).

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "ent/buffer_pool.hpp"
#include "ent/link_params.hpp"
#include "ent/trace.hpp"
#include "obs/trace.hpp"

namespace dqcsim::ent {

/// How successful pairs are delivered.
enum class ServiceMode {
  Buffered,
  OnDemand,
};

/// Effective link parameters at one instant, as seen through an active
/// fault & drift scenario (the engine composes scenario::ScenarioRuntime
/// scales over the logical link's current route).
struct EffectiveLink {
  double p_succ = 1.0;  ///< per-attempt success probability right now
  double f0 = 0.99;     ///< fidelity a pair born right now would have
  bool up = true;       ///< false while any hop of the route is down
};

/// Queried by the service at every attempt-window boundary (and at
/// pre-fill). Absent provider == stationary fabric.
using EffectiveProvider = std::function<EffectiveLink(des::SimTime)>;

/// Event-driven generation service over one inter-node link.
class GenerationService {
 public:
  /// Called on pair availability. In OnDemand mode the return value
  /// indicates whether the pair was consumed on the spot (false = wasted);
  /// in Buffered mode it is ignored (the pair is already in the buffer).
  using ArrivalHandler = std::function<bool(des::SimTime)>;

  /// The service schedules its events on `sim` and draws from `rng`; both
  /// must outlive the service. `params` is validated on construction.
  GenerationService(des::Simulator& sim, const LinkParams& params, Rng& rng,
                    ServiceMode mode);

  /// Return the service to its just-constructed state with (possibly new)
  /// parameters: not started, empty buffer, cleared trace and counters, no
  /// arrival handler. Storage capacity is retained, so a same-configuration
  /// reset (the Monte-Carlo trial loop) performs no allocation.
  void reset(const LinkParams& params, ServiceMode mode);

  /// Begin attempting: the first window of pair p completes at
  /// offset(p) + cycle_time. Idempotent once started.
  void start();

  /// Stop scheduling further attempt windows (already-scheduled completions
  /// still fire but do nothing).
  void stop() noexcept { running_ = false; }

  /// Fill the buffer to capacity with fresh pairs at the current simulation
  /// time (the paper's init_buf pre-initialization).
  /// Precondition: Buffered mode.
  void pre_fill_buffer();

  /// Boundary capacity re-sharing (ArchConfig::reshare_at_boundaries):
  /// adopt a new comm-pair count and buffer capacity mid-trial without
  /// clearing the buffer, counters, or handlers. Returns the number of
  /// buffered pairs discarded when the buffer share shrank below the
  /// current stock (oldest first; see BufferPool::resize_capacity).
  ///
  /// The attempt chains carry the epoch guard: a window already in flight
  /// completes its attempt under the old share, and only then does its
  /// chain stop (shrink) — deactivated pairs never lose a started window.
  /// Growing restarts dead chains on a fresh phase grid from `now`;
  /// chains still in flight simply keep running.
  std::size_t set_capacity_share(int num_comm_pairs, int buffer_capacity);

  void set_arrival_handler(ArrivalHandler handler) {
    handler_ = std::move(handler);
  }

  /// Install a time-varying effective-parameter source (see
  /// EffectiveProvider). The provider is re-read at every attempt-window
  /// completion: drift takes effect at the next window boundary, and a
  /// down link pauses attempting (no attempt counted, no RNG draw) while
  /// the completion chain stays on the phase grid, so generation resumes
  /// in phase on recovery. Cleared by reset().
  void set_effective_provider(EffectiveProvider provider) {
    provider_ = std::move(provider);
  }

  /// Trial-trace hook (see src/obs/): when set, attempt-window outcomes
  /// are recorded as gen_ok/gen_fail spans and buffer deposits as instants
  /// on track `track` of `sink`. Pure observation — no RNG draw, no
  /// scheduled event, no parameter change — and cleared by reset(), so the
  /// engine re-arms it for each traced trial only.
  void set_trial_trace(obs::TraceBuffer* sink, std::uint32_t track) noexcept {
    obs_trace_ = sink;
    obs_track_ = track;
  }

  BufferPool& buffer() noexcept { return buffer_; }
  const BufferPool& buffer() const noexcept { return buffer_; }
  const ArrivalTrace& trace() const noexcept { return trace_; }
  const LinkParams& params() const noexcept { return params_; }
  ServiceMode mode() const noexcept { return mode_; }

  /// Phase offset of pair p's attempt windows.
  double offset_of(int pair_index) const;

  // Lifetime counters.
  std::size_t attempts() const noexcept { return attempts_; }
  std::size_t successes() const noexcept { return successes_; }
  /// Buffered-mode successes dropped because the pool was full.
  std::size_t wasted_buffer_full() const noexcept {
    return wasted_buffer_full_;
  }
  /// OnDemand-mode successes with no consumer at the heralding instant.
  std::size_t wasted_unconsumed() const noexcept { return wasted_unconsumed_; }

  /// Longest gap between consecutive successful generations so far,
  /// extended to `now` for the open interval since the last success (the
  /// pre-success interval starts at start()). Feeds the link_stalled
  /// watchdog: a service whose max gap exceeds N attempt windows made no
  /// delivery for that long. Always tracked — it costs two compares per
  /// success and never touches the RNG stream.
  double max_delivery_gap(des::SimTime now) const noexcept {
    if (!started_) return 0.0;
    return std::max(max_delivery_gap_, now - last_success_);
  }

 private:
  void schedule_completion(int pair_index, des::SimTime completion);
  void on_window_complete(int pair_index);
  /// Delay until pair `pair_index`'s next attempt after a failure (>=
  /// cycle_time; draws jitter from the service RNG when configured).
  double retry_delay(int consecutive_failures);
  void record_success(des::SimTime at) noexcept {
    max_delivery_gap_ = std::max(max_delivery_gap_, at - last_success_);
    last_success_ = at;
  }

  des::Simulator& sim_;
  LinkParams params_;
  Rng& rng_;
  ServiceMode mode_;
  BufferPool buffer_;
  ArrivalTrace trace_;
  ArrivalHandler handler_;
  EffectiveProvider provider_;
  obs::TraceBuffer* obs_trace_ = nullptr;
  std::uint32_t obs_track_ = 0;
  bool started_ = false;
  bool running_ = false;
  /// Bumped by reset(): events scheduled before a reset carry the old
  /// epoch and are ignored if the caller did not also reset the simulator.
  std::uint64_t epoch_ = 0;
  std::size_t attempts_ = 0;
  std::size_t successes_ = 0;
  std::size_t wasted_buffer_full_ = 0;
  std::size_t wasted_unconsumed_ = 0;

  // Boundary re-sharing state. active_pairs_ tracks the live comm-pair
  // count (== params_.num_comm_pairs unless set_capacity_share moved it);
  // pair_alive_[p] marks whether pair p's completion chain is still
  // scheduled, so a grow never double-chains a pair whose final event is
  // in flight.
  int active_pairs_ = 0;
  std::vector<char> pair_alive_;

  // Retry/backoff state: consecutive failed attempts per pair (only
  // maintained when params_.retry.kind != RetryKind::EveryWindow).
  std::vector<int> consecutive_failures_;

  // link_stalled watchdog state (see max_delivery_gap).
  des::SimTime last_success_ = 0.0;
  double max_delivery_gap_ = 0.0;
};

}  // namespace dqcsim::ent
