/// \file generation_service.hpp
/// \brief Continuous heralded entanglement-generation service (§III-B/C).
///
/// Each communication-qubit pair runs attempt windows of length
/// `cycle_time`; a window completes with a success with probability
/// `p_succ`. Window phases are aligned (Synchronous) or staggered across
/// subgroups (Asynchronous). Two consumption modes:
///
///  - Buffered: successes are SWAPped into the BufferPool (availability is
///    delayed by `swap_latency`); the arrival handler is notified at
///    deposit time. If the pool is full the pair is wasted. Attempt windows
///    stay on the per-pair phase grid — the SWAP is handled by the buffer
///    layer and does not re-phase the communication qubits, which preserves
///    the paper's synchronous burst pattern (Fig. 3).
///
///  - OnDemand (the paper's bufferless `original` design): a success exists
///    only at its heralding instant. The arrival handler may consume it by
///    returning true; otherwise the pair is wasted, reproducing the
///    "significant EPR pair waste" of the no-buffer design (§V-A).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "ent/buffer_pool.hpp"
#include "ent/link_params.hpp"
#include "ent/trace.hpp"

namespace dqcsim::ent {

/// How successful pairs are delivered.
enum class ServiceMode {
  Buffered,
  OnDemand,
};

/// Effective link parameters at one instant, as seen through an active
/// fault & drift scenario (the engine composes scenario::ScenarioRuntime
/// scales over the logical link's current route).
struct EffectiveLink {
  double p_succ = 1.0;  ///< per-attempt success probability right now
  double f0 = 0.99;     ///< fidelity a pair born right now would have
  bool up = true;       ///< false while any hop of the route is down
};

/// Queried by the service at every attempt-window boundary (and at
/// pre-fill). Absent provider == stationary fabric.
using EffectiveProvider = std::function<EffectiveLink(des::SimTime)>;

/// Event-driven generation service over one inter-node link.
class GenerationService {
 public:
  /// Called on pair availability. In OnDemand mode the return value
  /// indicates whether the pair was consumed on the spot (false = wasted);
  /// in Buffered mode it is ignored (the pair is already in the buffer).
  using ArrivalHandler = std::function<bool(des::SimTime)>;

  /// The service schedules its events on `sim` and draws from `rng`; both
  /// must outlive the service. `params` is validated on construction.
  GenerationService(des::Simulator& sim, const LinkParams& params, Rng& rng,
                    ServiceMode mode);

  /// Return the service to its just-constructed state with (possibly new)
  /// parameters: not started, empty buffer, cleared trace and counters, no
  /// arrival handler. Storage capacity is retained, so a same-configuration
  /// reset (the Monte-Carlo trial loop) performs no allocation.
  void reset(const LinkParams& params, ServiceMode mode);

  /// Begin attempting: the first window of pair p completes at
  /// offset(p) + cycle_time. Idempotent once started.
  void start();

  /// Stop scheduling further attempt windows (already-scheduled completions
  /// still fire but do nothing).
  void stop() noexcept { running_ = false; }

  /// Fill the buffer to capacity with fresh pairs at the current simulation
  /// time (the paper's init_buf pre-initialization).
  /// Precondition: Buffered mode.
  void pre_fill_buffer();

  void set_arrival_handler(ArrivalHandler handler) {
    handler_ = std::move(handler);
  }

  /// Install a time-varying effective-parameter source (see
  /// EffectiveProvider). The provider is re-read at every attempt-window
  /// completion: drift takes effect at the next window boundary, and a
  /// down link pauses attempting (no attempt counted, no RNG draw) while
  /// the completion chain stays on the phase grid, so generation resumes
  /// in phase on recovery. Cleared by reset().
  void set_effective_provider(EffectiveProvider provider) {
    provider_ = std::move(provider);
  }

  BufferPool& buffer() noexcept { return buffer_; }
  const BufferPool& buffer() const noexcept { return buffer_; }
  const ArrivalTrace& trace() const noexcept { return trace_; }
  const LinkParams& params() const noexcept { return params_; }
  ServiceMode mode() const noexcept { return mode_; }

  /// Phase offset of pair p's attempt windows.
  double offset_of(int pair_index) const;

  // Lifetime counters.
  std::size_t attempts() const noexcept { return attempts_; }
  std::size_t successes() const noexcept { return successes_; }
  /// Buffered-mode successes dropped because the pool was full.
  std::size_t wasted_buffer_full() const noexcept {
    return wasted_buffer_full_;
  }
  /// OnDemand-mode successes with no consumer at the heralding instant.
  std::size_t wasted_unconsumed() const noexcept { return wasted_unconsumed_; }

 private:
  void schedule_completion(int pair_index, des::SimTime completion);
  void on_window_complete(int pair_index);

  des::Simulator& sim_;
  LinkParams params_;
  Rng& rng_;
  ServiceMode mode_;
  BufferPool buffer_;
  ArrivalTrace trace_;
  ArrivalHandler handler_;
  EffectiveProvider provider_;
  bool started_ = false;
  bool running_ = false;
  /// Bumped by reset(): events scheduled before a reset carry the old
  /// epoch and are ignored if the caller did not also reset the simulator.
  std::uint64_t epoch_ = 0;
  std::size_t attempts_ = 0;
  std::size_t successes_ = 0;
  std::size_t wasted_buffer_full_ = 0;
  std::size_t wasted_unconsumed_ = 0;
};

}  // namespace dqcsim::ent
