/// \file buffer_pool.hpp
/// \brief Storage for successfully generated EPR pairs (the buffer qubits).
///
/// Each buffered pair occupies one buffer qubit on each side of the link,
/// so pool capacity is min(buffer qubits per node) for a 2-node link. Pairs
/// carry their deposit timestamp; their fidelity at consumption follows the
/// Werner decay law. A cut-off policy (paper §III-C) discards pairs stored
/// longer than a threshold to bound decoherence of the entangled states.
///
/// Storage is a fixed-capacity ring buffer sized at configure() time, so
/// deposit/pop/expire perform no heap allocation — the pool is part of the
/// reusable per-trial RunContext workspace.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "des/event_pool.hpp"

namespace dqcsim::ent {

/// A buffered EPR pair (timestamps in simulation time units).
struct BufferedPair {
  des::SimTime deposited;  ///< when the pair became available in the buffer
  double f0 = 0.99;        ///< fidelity at deposit time (the birth fidelity)
};

/// Which buffered pair a remote gate consumes.
///
/// FreshestFirst minimizes the decoherence of *consumed* pairs (older stock
/// only matters through the cutoff policy) and realizes the paper's
/// observation that pairs are "consumed immediately after generation,
/// maintaining high fidelity" (§V-B). OldestFirst is the naive FIFO used as
/// an ablation.
enum class ConsumeOrder {
  FreshestFirst,
  OldestFirst,
};

/// FIFO pool of buffered pairs with capacity, decay, and cutoff expiry.
class BufferPool {
 public:
  /// \param capacity   max pairs stored simultaneously
  /// \param f0         fidelity of a pair at deposit time
  /// \param kappa      Werner decay rate per time unit per pair
  /// \param cutoff     max storage duration before the pair is discarded
  BufferPool(int capacity, double f0, double kappa, double cutoff);

  /// Re-parameterize and empty the pool, zeroing all lifetime counters.
  /// The ring storage is reallocated only when the capacity changes, so a
  /// same-configuration reset (the Monte-Carlo trial loop) is free.
  void configure(int capacity, double f0, double kappa, double cutoff);

  /// Change the capacity in place, keeping stored pairs and lifetime
  /// counters (boundary capacity re-sharing; see ArchConfig::
  /// reshare_at_boundaries). Shrinking below the current occupancy pops
  /// the *oldest* overflow pairs — the freshest stock survives, matching
  /// the consume-freshest rationale — and returns how many were dropped
  /// (the engine accounts them as pairs_discarded; they are not counted
  /// as expired or consumed). May reallocate: resizes happen only at rare
  /// outage/recovery boundaries, never in the steady-state event loop.
  std::size_t resize_capacity(int new_capacity, des::SimTime now);

  /// Drop every stored pair (a down endpoint node loses its half of each
  /// buffered state) and return how many were dropped. Capacity and
  /// lifetime counters are untouched.
  std::size_t flush(des::SimTime now);

  std::size_t capacity() const noexcept { return capacity_; }

  /// Pairs currently stored, after expiring per the cutoff at time `now`.
  std::size_t size(des::SimTime now);

  /// Pairs stored ignoring the cutoff (cheap, const).
  std::size_t raw_size() const noexcept { return count_; }

  bool full(des::SimTime now) { return size(now) >= capacity_; }
  bool empty(des::SimTime now) { return size(now) == 0; }

  /// Store a pair deposited at `now` with birth fidelity `f0` (the value a
  /// time-varying link produced at this instant). Returns false (and counts
  /// a waste) when the pool is full.
  bool deposit(des::SimTime now, double f0);

  /// Store a pair at the pool's configured f0 — the stationary-fabric case.
  bool deposit(des::SimTime now) { return deposit(now, f0_); }

  /// Remove and return the oldest pair still within the cutoff, or nullopt
  /// when the pool is empty at time `now`.
  std::optional<BufferedPair> pop_oldest(des::SimTime now);

  /// Remove and return the most recently deposited pair, or nullopt when
  /// the pool is empty at time `now`.
  std::optional<BufferedPair> pop_freshest(des::SimTime now);

  /// Pop according to `order`.
  std::optional<BufferedPair> pop(des::SimTime now, ConsumeOrder order);

  /// Fidelity of a pair of the given age (Werner decay from f0).
  double fidelity_at_age(double age) const;

  // Lifetime counters.
  std::size_t total_deposited() const noexcept { return deposited_; }
  std::size_t total_consumed() const noexcept { return consumed_; }
  std::size_t total_expired() const noexcept { return expired_; }
  std::size_t total_rejected() const noexcept { return rejected_; }

 private:
  void expire_until(des::SimTime now);

  std::size_t next(std::size_t i) const noexcept {
    return i + 1 == capacity_ ? 0 : i + 1;
  }

  std::size_t capacity_ = 0;
  double f0_ = 0.99;
  double kappa_ = 0.0;
  double cutoff_ = 1.0;
  std::vector<BufferedPair> ring_;  ///< size == capacity_
  std::size_t head_ = 0;            ///< index of the oldest pair
  std::size_t count_ = 0;           ///< pairs currently stored
  std::size_t deposited_ = 0;
  std::size_t consumed_ = 0;
  std::size_t expired_ = 0;
  std::size_t rejected_ = 0;
};

}  // namespace dqcsim::ent
