/// \file link_params.hpp
/// \brief Parameters of one inter-node entanglement-generation link.
///
/// A link connects two QPU nodes through `num_comm_pairs` communication-
/// qubit pairs, each running heralded generation attempts of duration
/// `cycle_time` that succeed with probability `p_succ` (paper §III-A,
/// Table II). Successes are SWAPped into buffer qubits (capacity
/// `buffer_capacity`) where they decay per the Werner law with rate `kappa`
/// and may be discarded after `cutoff` (§III-C cut-off policy).

#pragma once

#include <limits>

namespace dqcsim::ent {

/// Attempt-phase alignment across communication-qubit pairs.
enum class AttemptSchedule {
  Synchronous,   ///< all pairs share aligned attempt windows (sync_buf)
  Asynchronous,  ///< pairs staggered in subgroups (async_buf, §III-C)
};

/// Entanglement link configuration.
struct LinkParams {
  int num_comm_pairs = 10;    ///< communication-qubit pairs on the link
  int buffer_capacity = 10;   ///< max simultaneously buffered EPR pairs
  double p_succ = 0.4;        ///< success probability per attempt
  double cycle_time = 10.0;   ///< T_EG, in units of local CNOT latency
  double swap_latency = 1.0;  ///< comm->buffer SWAP duration
  double f0 = 0.99;           ///< fidelity of a freshly generated pair
  double kappa = 0.002;       ///< buffer decoherence rate per time unit
  /// Discard pairs buffered longer than this (default: never).
  double cutoff = std::numeric_limits<double>::infinity();
  AttemptSchedule schedule = AttemptSchedule::Synchronous;
  /// Number of stagger subgroups for Asynchronous (Fig. 3 uses 4; the
  /// default spreads every pair maximally). Clamped to num_comm_pairs.
  int async_subgroups = 10;
  /// Which buffered pair remote gates consume (see ConsumeOrder).
  bool consume_freshest = true;
  /// Record every pair arrival in the ArrivalTrace. The trace feeds the
  /// Fig. 3 burstiness analysis; Monte-Carlo sweeps that never read it can
  /// switch it off to avoid the per-arrival log growth entirely.
  bool record_trace = true;

  /// Throws ConfigError when any field is out of domain.
  void validate() const;

  friend bool operator==(const LinkParams&, const LinkParams&) = default;
};

}  // namespace dqcsim::ent
