/// \file link_params.hpp
/// \brief Parameters of one inter-node entanglement-generation link.
///
/// A link connects two QPU nodes through `num_comm_pairs` communication-
/// qubit pairs, each running heralded generation attempts of duration
/// `cycle_time` that succeed with probability `p_succ` (paper §III-A,
/// Table II). Successes are SWAPped into buffer qubits (capacity
/// `buffer_capacity`) where they decay per the Werner law with rate `kappa`
/// and may be discarded after `cutoff` (§III-C cut-off policy).

#pragma once

#include <limits>

namespace dqcsim::ent {

/// Attempt-phase alignment across communication-qubit pairs.
enum class AttemptSchedule {
  Synchronous,   ///< all pairs share aligned attempt windows (sync_buf)
  Asynchronous,  ///< pairs staggered in subgroups (async_buf, §III-C)
};

/// When a failed attempt window schedules its pair's next attempt.
enum class RetryKind {
  /// Retry every window (the default tight loop): the next attempt always
  /// completes one cycle_time after the last, success or failure. The
  /// legacy behavior — bit-identical whether a RetryPolicy is set or not.
  EveryWindow,
  /// After a failure, delay the next attempt by a fixed `interval`
  /// (clamped up to cycle_time); a success returns to the per-cycle grid.
  Fixed,
  /// After n consecutive failures, delay by interval * growth^(n-1),
  /// capped at max_interval. A success resets the streak.
  ExponentialBackoff,
};

/// Per-link retry/timeout policy for generation attempts. On links whose
/// effective p_succ collapses under drift, the default every-window loop
/// burns one DES event per pair per cycle for next to no deliveries; a
/// backoff policy thins the attempt stream instead, retreating to probes
/// at max_interval once attempt_cutoff consecutive failures accrue.
///
/// Deterministic seeded jitter: with `jitter` > 0 each backoff delay is
/// stretched by a factor uniform in [1, 1 + jitter), drawn from the
/// owning service's RNG — the draw is part of the replay stream, so the
/// policy is deterministic per trial seed. EveryWindow draws nothing and
/// leaves the stream untouched.
struct RetryPolicy {
  RetryKind kind = RetryKind::EveryWindow;
  /// Base delay after a failed attempt (Fixed / ExponentialBackoff).
  /// Delays below cycle_time are clamped to cycle_time: a pair cannot
  /// re-attempt faster than its attempt window.
  double interval = 0.0;
  /// Backoff multiplier per consecutive failure (ExponentialBackoff).
  double growth = 2.0;
  /// Delay ceiling; also the probe interval past attempt_cutoff.
  double max_interval = std::numeric_limits<double>::infinity();
  /// Deterministic jitter fraction in [0, 1): each delay is stretched by
  /// uniform [1, 1 + jitter). 0 disables the draw entirely.
  double jitter = 0.0;
  /// After this many consecutive failures the pair retreats to probing at
  /// max_interval regardless of kind; 0 disables the cutoff.
  int attempt_cutoff = 0;

  /// Throws ConfigError when any field is out of domain.
  void validate() const;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Entanglement link configuration.
struct LinkParams {
  int num_comm_pairs = 10;    ///< communication-qubit pairs on the link
  int buffer_capacity = 10;   ///< max simultaneously buffered EPR pairs
  double p_succ = 0.4;        ///< success probability per attempt
  double cycle_time = 10.0;   ///< T_EG, in units of local CNOT latency
  double swap_latency = 1.0;  ///< comm->buffer SWAP duration
  double f0 = 0.99;           ///< fidelity of a freshly generated pair
  double kappa = 0.002;       ///< buffer decoherence rate per time unit
  /// Discard pairs buffered longer than this (default: never).
  double cutoff = std::numeric_limits<double>::infinity();
  AttemptSchedule schedule = AttemptSchedule::Synchronous;
  /// Number of stagger subgroups for Asynchronous (Fig. 3 uses 4; the
  /// default spreads every pair maximally). Clamped to num_comm_pairs.
  int async_subgroups = 10;
  /// Which buffered pair remote gates consume (see ConsumeOrder).
  bool consume_freshest = true;
  /// Record every pair arrival in the ArrivalTrace. The trace feeds the
  /// Fig. 3 burstiness analysis; Monte-Carlo sweeps that never read it can
  /// switch it off to avoid the per-arrival log growth entirely.
  bool record_trace = true;
  /// Retry/backoff policy after failed attempts (default: retry every
  /// window, the legacy behavior).
  RetryPolicy retry;

  /// Throws ConfigError when any field is out of domain.
  void validate() const;

  friend bool operator==(const LinkParams&, const LinkParams&) = default;
};

}  // namespace dqcsim::ent
