/// \file werner.hpp
/// \brief Werner-state idling decay model for buffered EPR pairs (§IV-C).
///
/// The paper assumes generated Bell states are Werner states and that buffer
/// qubits decohere through unbiased depolarizing channels with identical
/// rate kappa on both halves, giving the closed form
///   F(t) = F0 * exp(-2*kappa*t) + (1 - exp(-2*kappa*t)) / 4.

#pragma once

namespace dqcsim::noise {

/// Bell-pair fidelity after idling both halves for time `t`.
/// Preconditions: f0 in [0.25, 1], kappa >= 0, t >= 0.
double werner_decayed_fidelity(double f0, double kappa, double t);

/// Time at which the pair fidelity decays to `f_min` (inverse of the decay
/// law); +infinity if f0 <= f_min is never reached going down... i.e.
/// returns 0 when f0 <= f_min already. Preconditions as above plus
/// f_min in (0.25, 1].
double werner_time_to_fidelity(double f0, double kappa, double f_min);

/// Werner weight w such that rho = w |Phi+><Phi+| + (1-w) I/4 has fidelity
/// F: w = (4F - 1) / 3. Precondition: F in [0.25, 1].
double werner_weight_from_fidelity(double fidelity);

/// Fidelity of the Werner state with weight `w`: F = (3w + 1) / 4.
/// Precondition: w in [0, 1].
double werner_fidelity_from_weight(double weight);

/// Fidelity of the pair produced by one ideal entanglement swap (Bell-state
/// measurement at the midpoint) of two Werner pairs of fidelities `fa` and
/// `fb`: the weights multiply, w = wa * wb, so
///   F = (3 * wa * wb + 1) / 4.
/// Preconditions: fa, fb in [0.25, 1].
double werner_swapped_fidelity(double fa, double fb);

}  // namespace dqcsim::noise
