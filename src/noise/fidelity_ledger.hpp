/// \file fidelity_ledger.hpp
/// \brief Multiplicative fidelity accounting for a circuit execution.
///
/// The paper estimates circuit fidelity as the product of the fidelities of
/// all gates (local 1Q/2Q, remote teleported gates, measurements) times an
/// idling-decoherence factor exp(-kappa * t) (§IV-B). The ledger accumulates
/// in log space for numerical robustness and keeps per-category tallies so
/// experiments can report where fidelity is lost.

#pragma once

#include <cstddef>

namespace dqcsim::noise {

/// Categories tracked by the ledger.
enum class FidelityTerm {
  Local1Q,
  Local2Q,
  Remote,
  Measurement,
  Idling,
};

/// Accumulates a product of fidelity factors with per-category breakdown.
class FidelityLedger {
 public:
  /// Multiply the running fidelity by `f` under the given category.
  /// Precondition: 0 < f <= 1.
  void add_factor(FidelityTerm term, double f);

  /// Multiply by the idling factor exp(-kappa * t).
  /// Preconditions: kappa >= 0, t >= 0.
  void add_idling(double kappa, double t);

  /// Current total fidelity estimate (product of all factors).
  double fidelity() const;

  /// Product of factors in one category only.
  double category_fidelity(FidelityTerm term) const;

  /// Number of factors recorded in a category (idling counts calls).
  std::size_t category_count(FidelityTerm term) const;

 private:
  static constexpr std::size_t kNumTerms = 5;
  static std::size_t index_of(FidelityTerm term) noexcept {
    return static_cast<std::size_t>(term);
  }

  double log_sum_[kNumTerms] = {0, 0, 0, 0, 0};
  std::size_t count_[kNumTerms] = {0, 0, 0, 0, 0};
};

}  // namespace dqcsim::noise
