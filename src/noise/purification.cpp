#include "noise/purification.hpp"

#include "common/error.hpp"

namespace dqcsim::noise {

PurificationOutcome purify_werner(double f1, double f2) {
  DQCSIM_EXPECTS(f1 >= 0.25 && f1 <= 1.0);
  DQCSIM_EXPECTS(f2 >= 0.25 && f2 <= 1.0);
  const double g1 = (1.0 - f1) / 3.0;  // weight of each non-target Bell state
  const double g2 = (1.0 - f2) / 3.0;
  const double p_succ = f1 * f2 + f1 * g2 + f2 * g1 + 5.0 * g1 * g2;
  const double f_out = (f1 * f2 + g1 * g2) / p_succ;
  DQCSIM_ENSURES(p_succ > 0.0 && p_succ <= 1.0 + 1e-12);
  DQCSIM_ENSURES(f_out >= 0.25 - 1e-12 && f_out <= 1.0 + 1e-12);
  return PurificationOutcome{f_out, p_succ};
}

PurificationOutcome purify_werner_nested(double f, int rounds) {
  DQCSIM_EXPECTS(f >= 0.25 && f <= 1.0);
  DQCSIM_EXPECTS(rounds >= 0);
  PurificationOutcome out{f, 1.0};
  for (int r = 0; r < rounds; ++r) {
    const PurificationOutcome step = purify_werner(out.fidelity, out.fidelity);
    out.fidelity = step.fidelity;
    out.success_probability *= step.success_probability;
  }
  return out;
}

}  // namespace dqcsim::noise
