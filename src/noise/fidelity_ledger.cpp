#include "noise/fidelity_ledger.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dqcsim::noise {

// DQCSIM_HOT
void FidelityLedger::add_factor(FidelityTerm term, double f) {
  DQCSIM_EXPECTS_MSG(f > 0.0 && f <= 1.0, "fidelity factor must be in (0,1]");
  log_sum_[index_of(term)] += std::log(f);
  ++count_[index_of(term)];
}

// DQCSIM_HOT
void FidelityLedger::add_idling(double kappa, double t) {
  DQCSIM_EXPECTS(kappa >= 0.0);
  DQCSIM_EXPECTS(t >= 0.0);
  log_sum_[index_of(FidelityTerm::Idling)] -= kappa * t;
  ++count_[index_of(FidelityTerm::Idling)];
}

double FidelityLedger::fidelity() const {
  double total = 0.0;
  for (double ls : log_sum_) total += ls;
  return std::exp(total);
}

double FidelityLedger::category_fidelity(FidelityTerm term) const {
  return std::exp(log_sum_[index_of(term)]);
}

std::size_t FidelityLedger::category_count(FidelityTerm term) const {
  return count_[index_of(term)];
}

}  // namespace dqcsim::noise
