/// \file teleport_fidelity.hpp
/// \brief Exact fidelity of a gate-teleported CNOT from a noisy Bell pair.
///
/// Implements the paper's §IV-C methodology: "the fidelity of a remote gate
/// is obtained through the evaluation of the gate teleportation circuit
/// which includes a noisy Bell state, noisy local 2-qubit gates, and a noisy
/// single-qubit measurement." The gadget (paper Fig. 1(c)) is evaluated on
/// a 6-qubit density matrix with two reference qubits so the result is the
/// *process* fidelity of the induced channel, converted to average gate
/// fidelity.
///
/// Because the channel is linear in the resource state, the average fidelity
/// is affine in the pair's Werner weight; TeleportFidelityModel exploits
/// this to reduce per-remote-gate cost to one multiply-add.

#pragma once

namespace dqcsim::noise {

/// Noise parameters entering the teleportation gadget.
struct TeleportNoiseParams {
  double local_2q_fidelity = 0.999;   ///< average fidelity of local CNOTs
  double local_1q_fidelity = 0.9999;  ///< average fidelity of corrections/H
  double readout_fidelity = 0.998;    ///< classical outcome correctness

  friend bool operator==(const TeleportNoiseParams&,
                         const TeleportNoiseParams&) = default;
};

/// Exact average gate fidelity of the teleported CNOT consuming a Bell pair
/// of fidelity `pair_fidelity` (Werner form). Expensive (6-qubit density
/// matrix, 16 measurement branches); use TeleportFidelityModel in loops.
/// Preconditions: pair_fidelity in [0.25, 1].
double teleported_cnot_avg_fidelity(double pair_fidelity,
                                    const TeleportNoiseParams& params = {});

/// Exact average fidelity of teleporting one qubit's *state* across a Bell
/// pair of fidelity `pair_fidelity` (the paper's Fig. 1(b) gadget with
/// noisy local ops and readout). This is the d = 2 building block of the
/// state-teleportation implementation of remote gates.
double teleported_state_avg_fidelity(double pair_fidelity,
                                     const TeleportNoiseParams& params = {});

/// Exact average gate fidelity of a remote CNOT implemented by *state*
/// teleportation: teleport the control to the target's node (pair 1), apply
/// the CNOT locally, teleport the control back (pair 2). Consumes two Bell
/// pairs; evaluated exactly on an 8-qubit density matrix.
/// Preconditions: both fidelities in [0.25, 1].
double state_teleported_cnot_avg_fidelity(
    double pair1_fidelity, double pair2_fidelity,
    const TeleportNoiseParams& params = {});

/// Bilinear model of state_teleported_cnot_avg_fidelity:
///   F(F1, F2) = c00 + c10*F1 + c01*F2 + c11*F1*F2,
/// exact for Werner resources (the channel is linear in each resource
/// state); calibrated from the four corner evaluations.
class StateTeleportCnotModel {
 public:
  explicit StateTeleportCnotModel(const TeleportNoiseParams& params = {});

  /// Average remote-CNOT fidelity for the two consumed pairs' fidelities.
  double eval(double pair1_fidelity, double pair2_fidelity) const;

  const TeleportNoiseParams& params() const noexcept { return params_; }

 private:
  TeleportNoiseParams params_;
  double c00_ = 0.0, c10_ = 0.0, c01_ = 0.0, c11_ = 0.0;
};

/// Affine model F_avg(pair_fidelity) = intercept + slope * pair_fidelity,
/// exact for Werner resources (calibrated from two gadget evaluations).
class TeleportFidelityModel {
 public:
  explicit TeleportFidelityModel(const TeleportNoiseParams& params = {});

  /// Average teleported-gate fidelity for a pair of the given fidelity.
  double eval(double pair_fidelity) const;

  double intercept() const noexcept { return intercept_; }
  double slope() const noexcept { return slope_; }
  const TeleportNoiseParams& params() const noexcept { return params_; }

 private:
  TeleportNoiseParams params_;
  double intercept_ = 0.0;
  double slope_ = 0.0;
};

}  // namespace dqcsim::noise
