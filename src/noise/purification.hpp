/// \file purification.hpp
/// \brief Recurrence-style entanglement purification on Werner pairs.
///
/// The architecture can spend two buffered EPR pairs to distill one pair of
/// higher fidelity before a remote gate consumes it (BBPSSW protocol; the
/// paper's companion work [53] optimizes buffer time with purification).
/// For Werner inputs the output is again Werner-diagonal and the closed
/// form below is exact under ideal local operations (the idealized-LOCC
/// assumption is documented in DESIGN.md).

#pragma once

namespace dqcsim::noise {

/// Outcome of one BBPSSW purification round on two Werner pairs.
struct PurificationOutcome {
  double fidelity = 0.0;          ///< output pair fidelity (on success)
  double success_probability = 0.0;
};

/// BBPSSW round on Werner pairs of fidelities f1 and f2:
///   p_succ = f1*f2 + f1*(1-f2)/3 + f2*(1-f1)/3 + 5*(1-f1)*(1-f2)/9
///   F'     = (f1*f2 + (1-f1)*(1-f2)/9) / p_succ
/// Preconditions: f1, f2 in [0.25, 1].
PurificationOutcome purify_werner(double f1, double f2);

/// Smallest Werner fidelity that purification can improve (the protocol's
/// attractive threshold): pairs at or below 0.5 do not gain.
inline constexpr double kPurificationThreshold = 0.5;

/// Fidelity after `rounds` nested purification rounds starting from
/// identical pairs of fidelity f (each round consumes two pairs of the
/// previous level; success is assumed — use the returned probabilities for
/// rate accounting). rounds == 0 returns f itself.
PurificationOutcome purify_werner_nested(double f, int rounds);

}  // namespace dqcsim::noise
