#include "noise/teleport_fidelity.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "qsim/channels.hpp"
#include "qsim/density_matrix.hpp"

namespace dqcsim::noise {
namespace {

using qsim::Complex;
using qsim::DensityMatrix;

// Qubit layout of the 6-qubit gadget evaluation (LSB first):
//   0 = rc (reference entangled with control)
//   1 = c  (control data qubit, node A)
//   2 = e1 (Bell half on node A)
//   3 = e2 (Bell half on node B)
//   4 = t  (target data qubit, node B)
//   5 = rt (reference entangled with target)
constexpr int kRc = 0, kC = 1, kE1 = 2, kE2 = 3, kT = 4, kRt = 5;

/// Ideal output: CNOT(c -> t) applied to |Phi+>_{rc,c} (x) |Phi+>_{t,rt},
/// expressed on 4 qubits (0=rc, 1=c, 2=t, 3=rt).
std::vector<Complex> ideal_choi_vector() {
  std::vector<Complex> psi(16, Complex{0.0, 0.0});
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      const std::size_t t_bit = b ^ a;  // CNOT flips t when c = 1
      const std::size_t index = a | (a << 1) | (t_bit << 2) | (b << 3);
      psi[index] = Complex{0.5, 0.0};
    }
  }
  return psi;
}

}  // namespace

double teleported_cnot_avg_fidelity(double pair_fidelity,
                                    const TeleportNoiseParams& params) {
  DQCSIM_EXPECTS(pair_fidelity >= 0.25 && pair_fidelity <= 1.0);

  // Initial state: |Phi+>_{rc,c} (x) Werner(F)_{e1,e2} (x) |Phi+>_{t,rt}.
  DensityMatrix rho = DensityMatrix::bell_phi_plus()
                          .tensor(DensityMatrix::werner(pair_fidelity))
                          .tensor(DensityMatrix::bell_phi_plus());

  // Node A: CNOT(c -> e1), then measure e1 in Z.
  qsim::apply_noisy_2q(rho, qsim::cnot(), kC, kE1, params.local_2q_fidelity);
  const auto m1 = qsim::noisy_measure(rho, kE1, params.readout_fidelity);

  DensityMatrix accum = DensityMatrix::mix(m1.state[0], 0.0, m1.state[0], 0.0);
  bool accum_empty = true;
  for (int o1 = 0; o1 < 2; ++o1) {
    if (m1.prob[o1] <= 1e-15) continue;
    DensityMatrix branch = m1.state[static_cast<std::size_t>(o1)];
    if (o1 == 1) {
      // Feed-forward X correction on the remote Bell half.
      qsim::apply_noisy_1q(branch, qsim::pauli_x(), kE2,
                           params.local_1q_fidelity);
    }
    // Node B: CNOT(e2 -> t), then measure e2 in the X basis (H + Z).
    qsim::apply_noisy_2q(branch, qsim::cnot(), kE2, kT,
                         params.local_2q_fidelity);
    qsim::apply_noisy_1q(branch, qsim::hadamard(), kE2,
                         params.local_1q_fidelity);
    const auto m2 = qsim::noisy_measure(branch, kE2, params.readout_fidelity);
    for (int o2 = 0; o2 < 2; ++o2) {
      if (m2.prob[o2] <= 1e-15) continue;
      DensityMatrix leaf = m2.state[static_cast<std::size_t>(o2)];
      if (o2 == 1) {
        // Feed-forward Z correction on the control data qubit.
        qsim::apply_noisy_1q(leaf, qsim::pauli_z(), kC,
                             params.local_1q_fidelity);
      }
      const double weight = m1.prob[o1] * m2.prob[o2];
      if (accum_empty) {
        accum = DensityMatrix::mix(leaf, weight, leaf, 0.0);
        accum_empty = false;
      } else {
        accum = DensityMatrix::mix(accum, 1.0, leaf, weight);
      }
    }
  }
  DQCSIM_ENSURES(!accum_empty);

  // Discard the measured Bell halves; order matters (indices shift down).
  DensityMatrix reduced = accum.partial_trace(kE2).partial_trace(kE1);

  const double f_pro = reduced.fidelity_with_pure(ideal_choi_vector());
  // Average gate fidelity for a d = 4 (two-qubit) channel.
  return (4.0 * f_pro + 1.0) / 5.0;
}

namespace {

/// Teleport the state of `data` through the Bell pair (`bh_local`,
/// `bh_remote`) within `rho`, applying noisy local operations and
/// feed-forward Pauli corrections on the remote half. On return the
/// teleported state lives on `bh_remote`; `data` and `bh_local` are left
/// measured out (trace them when done).
DensityMatrix teleport_through(const DensityMatrix& rho, int data,
                               int bh_local, int bh_remote,
                               const TeleportNoiseParams& params) {
  DensityMatrix sys = rho;
  // Fig. 1(b): CNOT(data -> local Bell half), H on data, measure both.
  qsim::apply_noisy_2q(sys, qsim::cnot(), data, bh_local,
                       params.local_2q_fidelity);
  qsim::apply_noisy_1q(sys, qsim::hadamard(), data, params.local_1q_fidelity);

  const auto mz = qsim::noisy_measure(sys, bh_local, params.readout_fidelity);
  bool accum_empty = true;
  DensityMatrix accum = DensityMatrix::mix(sys, 0.0, sys, 0.0);
  for (int oz = 0; oz < 2; ++oz) {
    if (mz.prob[oz] <= 1e-15) continue;
    DensityMatrix branch = mz.state[static_cast<std::size_t>(oz)];
    if (oz == 1) {
      qsim::apply_noisy_1q(branch, qsim::pauli_x(), bh_remote,
                           params.local_1q_fidelity);
    }
    const auto mx = qsim::noisy_measure(branch, data, params.readout_fidelity);
    for (int ox = 0; ox < 2; ++ox) {
      if (mx.prob[ox] <= 1e-15) continue;
      DensityMatrix leaf = mx.state[static_cast<std::size_t>(ox)];
      if (ox == 1) {
        qsim::apply_noisy_1q(leaf, qsim::pauli_z(), bh_remote,
                             params.local_1q_fidelity);
      }
      const double weight = mz.prob[oz] * mx.prob[ox];
      if (accum_empty) {
        accum = DensityMatrix::mix(leaf, weight, leaf, 0.0);
        accum_empty = false;
      } else {
        accum = DensityMatrix::mix(accum, 1.0, leaf, weight);
      }
    }
  }
  DQCSIM_ENSURES(!accum_empty);
  return accum;
}

}  // namespace

double teleported_state_avg_fidelity(double pair_fidelity,
                                     const TeleportNoiseParams& params) {
  DQCSIM_EXPECTS(pair_fidelity >= 0.25 && pair_fidelity <= 1.0);
  // Qubits: 0 = reference, 1 = data, 2 = local Bell half, 3 = remote half.
  DensityMatrix rho = DensityMatrix::bell_phi_plus().tensor(
      DensityMatrix::werner(pair_fidelity));
  const DensityMatrix out =
      teleport_through(rho, /*data=*/1, /*bh_local=*/2, /*bh_remote=*/3,
                       params)
          .partial_trace(2)
          .partial_trace(1);
  // Output layout: 0 = reference, 1 = teleported state. Ideal channel is
  // the identity, whose Choi state is |Phi+>.
  const double s = 1.0 / std::sqrt(2.0);
  const double f_pro = out.fidelity_with_pure(
      {Complex{s, 0}, Complex{0, 0}, Complex{0, 0}, Complex{s, 0}});
  // Average fidelity for a d = 2 channel.
  return (2.0 * f_pro + 1.0) / 3.0;
}

double state_teleported_cnot_avg_fidelity(double pair1_fidelity,
                                          double pair2_fidelity,
                                          const TeleportNoiseParams& params) {
  DQCSIM_EXPECTS(pair1_fidelity >= 0.25 && pair1_fidelity <= 1.0);
  DQCSIM_EXPECTS(pair2_fidelity >= 0.25 && pair2_fidelity <= 1.0);
  // Qubit layout (LSB first):
  //   0 = rc, 1 = c (control data, node A),
  //   2 = p1a, 3 = p1b (pair 1: A -> B move),
  //   4 = t (target data, node B), 5 = rt,
  //   6 = p2b, 7 = p2a (pair 2: B -> A return).
  DensityMatrix rho = DensityMatrix::bell_phi_plus()
                          .tensor(DensityMatrix::werner(pair1_fidelity))
                          .tensor(DensityMatrix::bell_phi_plus())
                          .tensor(DensityMatrix::werner(pair2_fidelity));
  // 1. Teleport the control from qubit 1 onto qubit 3 (node B).
  DensityMatrix moved = teleport_through(rho, 1, 2, 3, params);
  // 2. Local CNOT on node B: control = teleported control (3), target = 4.
  qsim::apply_noisy_2q(moved, qsim::cnot(), 3, 4, params.local_2q_fidelity);
  // 3. Teleport the control back from qubit 3 onto qubit 7 (node A).
  DensityMatrix back = teleport_through(moved, 3, 6, 7, params);
  // Discard everything but rc, control', t, rt (trace high to low so the
  // remaining indices stay valid).
  DensityMatrix reduced = back.partial_trace(6)
                              .partial_trace(3)
                              .partial_trace(2)
                              .partial_trace(1);
  // Remaining layout: 0 = rc, 1 = t, 2 = rt, 3 = control'.
  // Ideal output: CNOT(c -> t) on |Phi+>_{rc,c} (x) |Phi+>_{t,rt} with the
  // control living on qubit 3: amplitude 1/2 on |rc=a, t=b^a, rt=b, c'=a>.
  std::vector<Complex> psi(16, Complex{0.0, 0.0});
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      const std::size_t index = a | ((b ^ a) << 1) | (b << 2) | (a << 3);
      psi[index] = Complex{0.5, 0.0};
    }
  }
  const double f_pro = reduced.fidelity_with_pure(psi);
  return (4.0 * f_pro + 1.0) / 5.0;
}

StateTeleportCnotModel::StateTeleportCnotModel(
    const TeleportNoiseParams& params)
    : params_(params) {
  // Bilinear in (F1, F2): fit from the four Werner corners.
  const double lo = 0.25, hi = 1.0;
  const double f_ll = state_teleported_cnot_avg_fidelity(lo, lo, params);
  const double f_hl = state_teleported_cnot_avg_fidelity(hi, lo, params);
  const double f_lh = state_teleported_cnot_avg_fidelity(lo, hi, params);
  const double f_hh = state_teleported_cnot_avg_fidelity(hi, hi, params);
  const double span = hi - lo;
  c11_ = (f_hh - f_hl - f_lh + f_ll) / (span * span);
  c10_ = (f_hl - f_ll) / span - c11_ * lo;
  c01_ = (f_lh - f_ll) / span - c11_ * lo;
  c00_ = f_ll - c10_ * lo - c01_ * lo - c11_ * lo * lo;
}

double StateTeleportCnotModel::eval(double pair1_fidelity,
                                    double pair2_fidelity) const {
  DQCSIM_EXPECTS(pair1_fidelity >= 0.25 && pair1_fidelity <= 1.0);
  DQCSIM_EXPECTS(pair2_fidelity >= 0.25 && pair2_fidelity <= 1.0);
  return c00_ + c10_ * pair1_fidelity + c01_ * pair2_fidelity +
         c11_ * pair1_fidelity * pair2_fidelity;
}

TeleportFidelityModel::TeleportFidelityModel(const TeleportNoiseParams& params)
    : params_(params) {
  // The output is affine in the resource state, hence in pair fidelity.
  const double f_lo = teleported_cnot_avg_fidelity(0.25, params);
  const double f_hi = teleported_cnot_avg_fidelity(1.0, params);
  slope_ = (f_hi - f_lo) / (1.0 - 0.25);
  intercept_ = f_lo - slope_ * 0.25;
}

double TeleportFidelityModel::eval(double pair_fidelity) const {
  DQCSIM_EXPECTS(pair_fidelity >= 0.25 && pair_fidelity <= 1.0);
  return intercept_ + slope_ * pair_fidelity;
}

}  // namespace dqcsim::noise
