#include "noise/werner.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dqcsim::noise {

double werner_decayed_fidelity(double f0, double kappa, double t) {
  DQCSIM_EXPECTS(f0 >= 0.25 && f0 <= 1.0);
  DQCSIM_EXPECTS(kappa >= 0.0);
  DQCSIM_EXPECTS(t >= 0.0);
  const double decay = std::exp(-2.0 * kappa * t);
  return f0 * decay + (1.0 - decay) * 0.25;
}

double werner_time_to_fidelity(double f0, double kappa, double f_min) {
  DQCSIM_EXPECTS(f0 >= 0.25 && f0 <= 1.0);
  DQCSIM_EXPECTS(kappa >= 0.0);
  DQCSIM_EXPECTS(f_min > 0.25 && f_min <= 1.0);
  if (f0 <= f_min) return 0.0;
  if (kappa == 0.0) return std::numeric_limits<double>::infinity();
  // f_min = f0 * d + (1 - d)/4  =>  d = (f_min - 1/4) / (f0 - 1/4).
  const double d = (f_min - 0.25) / (f0 - 0.25);
  return -std::log(d) / (2.0 * kappa);
}

double werner_weight_from_fidelity(double fidelity) {
  DQCSIM_EXPECTS(fidelity >= 0.25 && fidelity <= 1.0);
  return (4.0 * fidelity - 1.0) / 3.0;
}

double werner_fidelity_from_weight(double weight) {
  DQCSIM_EXPECTS(weight >= 0.0 && weight <= 1.0);
  return (3.0 * weight + 1.0) / 4.0;
}

double werner_swapped_fidelity(double fa, double fb) {
  return werner_fidelity_from_weight(werner_weight_from_fidelity(fa) *
                                     werner_weight_from_fidelity(fb));
}

}  // namespace dqcsim::noise
