/// \file qaoa.hpp
/// \brief QAOA MaxCut benchmark circuits (paper §IV-A).
///
/// One QAOA layer for MaxCut on graph G applies RZZ(2*gamma) on every edge
/// (the cost Hamiltonian) followed by RX(2*beta) on every qubit (the mixer);
/// the circuit starts from |+>^n via a Hadamard layer. Degree-4 and
/// degree-8 regular graphs give the paper's medium remote-gate densities.

#pragma once

#include "circuit/circuit.hpp"
#include "gen/regular_graph.hpp"

namespace dqcsim::gen {

/// QAOA parameters. Angles only affect gate parameters (not structure), so
/// the defaults are arbitrary-but-fixed nonzero values.
struct QaoaParams {
  int layers = 1;       ///< QAOA depth p
  double gamma = 0.42;  ///< cost angle per layer
  double beta = 0.31;   ///< mixer angle per layer
};

/// Build the QAOA MaxCut circuit for `graph`.
/// Gate counts: n Hadamards, p * |E| RZZ gates, p * n RX gates.
Circuit make_qaoa_maxcut(const EdgeList& graph, const QaoaParams& params = {});

/// Convenience: QAOA on a fresh random d-regular graph (paper's
/// "QAOA-r<d>-<n>" naming).
Circuit make_qaoa_regular(int num_qubits, int degree, Rng& rng,
                          const QaoaParams& params = {});

}  // namespace dqcsim::gen
