/// \file benchmarks.hpp
/// \brief The paper's 6-benchmark suite (Table I) as named constructors.
///
/// Each benchmark fixes the circuit family, size, and (for QAOA) the random
/// graph seed so every experiment in the reproduction sees exactly the same
/// workload. The suite spans low (TLIM), medium (QAOA) and high (QFT)
/// remote-gate density.

#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace dqcsim::gen {

/// Identifiers for the paper's benchmark circuits.
enum class BenchmarkId {
  TLIM_32,
  QAOA_R4_32,
  QAOA_R8_32,
  QFT_32,
  QAOA_R4_64,
  QAOA_R8_64,
};

/// All benchmarks in the order of the paper's Table I.
std::vector<BenchmarkId> all_benchmarks();

/// The 32-qubit subset used in Figures 5 and 6.
std::vector<BenchmarkId> benchmarks_32q();

/// Paper's display name, e.g. "QAOA-r4-32".
std::string benchmark_name(BenchmarkId id);

/// Number of qubits of the benchmark.
int benchmark_qubits(BenchmarkId id);

/// Construct the benchmark circuit (deterministic: QAOA graph seeds are
/// fixed per benchmark).
Circuit make_benchmark(BenchmarkId id);

}  // namespace dqcsim::gen
