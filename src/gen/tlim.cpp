#include "gen/tlim.hpp"

#include <string>

#include "common/error.hpp"

namespace dqcsim::gen {

Circuit make_tlim(int num_qubits, const TlimParams& params) {
  DQCSIM_EXPECTS(num_qubits >= 2);
  DQCSIM_EXPECTS(params.steps >= 1);
  Circuit qc(num_qubits, "TLIM-" + std::to_string(num_qubits));

  const double zz_angle = -2.0 * params.coupling * params.dt;
  const double z_angle = -2.0 * params.hz * params.dt;
  const double x_angle = -2.0 * params.hx * params.dt;

  for (int step = 0; step < params.steps; ++step) {
    // Brick pattern: even bonds (0-1, 2-3, ...) then odd bonds (1-2, 3-4...).
    for (QubitId q = 0; q + 1 < num_qubits; q += 2) {
      qc.rzz(q, q + 1, zz_angle);
    }
    for (QubitId q = 1; q + 1 < num_qubits; q += 2) {
      qc.rzz(q, q + 1, zz_angle);
    }
    for (QubitId q = 0; q < num_qubits; ++q) qc.rz(q, z_angle);
    for (QubitId q = 0; q < num_qubits; ++q) qc.rx(q, x_angle);
  }
  return qc;
}

}  // namespace dqcsim::gen
