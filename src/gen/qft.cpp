#include "gen/qft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dqcsim::gen {

Circuit make_qft(int num_qubits) {
  DQCSIM_EXPECTS(num_qubits >= 1);
  Circuit qc(num_qubits, "QFT-" + std::to_string(num_qubits));
  for (QubitId i = 0; i < num_qubits; ++i) {
    qc.h(i);
    for (QubitId j = i + 1; j < num_qubits; ++j) {
      const double angle =
          std::numbers::pi / std::pow(2.0, static_cast<double>(j - i));
      qc.cp(j, i, angle);
    }
  }
  return qc;
}

}  // namespace dqcsim::gen
