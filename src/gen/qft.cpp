#include "gen/qft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dqcsim::gen {

Circuit make_qft(int num_qubits) {
  DQCSIM_EXPECTS(num_qubits >= 1);
  Circuit qc(num_qubits, "QFT-" + std::to_string(num_qubits));
  for (QubitId i = 0; i < num_qubits; ++i) {
    qc.h(i);
    for (QubitId j = i + 1; j < num_qubits; ++j) {
      // pi / 2^(j-i) via ldexp: exact scaling by a power of two, so the
      // rotation angles are bit-identical on every libm (std::pow is a
      // transcendental whose last ulp varies across implementations).
      const double angle = std::ldexp(std::numbers::pi, -(j - i));
      qc.cp(j, i, angle);
    }
  }
  return qc;
}

}  // namespace dqcsim::gen
