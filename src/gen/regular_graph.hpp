/// \file regular_graph.hpp
/// \brief Random d-regular graph generation for QAOA MaxCut workloads.
///
/// The paper's QAOA benchmarks solve MaxCut on random regular graphs of
/// degree 4 and 8 (§IV-A). Graphs are generated with the configuration
/// (pairing) model followed by edge-swap repair, which produces uniform-ish
/// *simple* d-regular graphs even for dense degrees where plain rejection
/// sampling would practically never terminate.

#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dqcsim::gen {

/// Undirected simple graph as an edge list over vertices [0, n).
struct EdgeList {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;  ///< each pair has first < second
};

/// Generate a uniformly random simple d-regular graph on n vertices.
///
/// Preconditions: n > d >= 1 and n * d even (otherwise no d-regular graph
/// exists). Deterministic for a fixed `rng` state.
EdgeList random_regular_graph(int n, int d, Rng& rng);

/// True if `g` is simple (no duplicate edges, no self-loops) and every
/// vertex has degree exactly d. Exposed for tests.
bool is_simple_regular(const EdgeList& g, int d);

}  // namespace dqcsim::gen
