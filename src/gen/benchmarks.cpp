#include "gen/benchmarks.hpp"

#include "common/error.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/tlim.hpp"

namespace dqcsim::gen {
namespace {

Circuit make_qaoa_benchmark(int qubits, int degree, std::uint64_t seed) {
  Rng rng(seed);
  return make_qaoa_regular(qubits, degree, rng);
}

}  // namespace

std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::TLIM_32,    BenchmarkId::QAOA_R4_32,
          BenchmarkId::QAOA_R8_32, BenchmarkId::QFT_32,
          BenchmarkId::QAOA_R4_64, BenchmarkId::QAOA_R8_64};
}

std::vector<BenchmarkId> benchmarks_32q() {
  return {BenchmarkId::TLIM_32, BenchmarkId::QAOA_R4_32,
          BenchmarkId::QAOA_R8_32, BenchmarkId::QFT_32};
}

std::string benchmark_name(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::TLIM_32: return "TLIM-32";
    case BenchmarkId::QAOA_R4_32: return "QAOA-r4-32";
    case BenchmarkId::QAOA_R8_32: return "QAOA-r8-32";
    case BenchmarkId::QFT_32: return "QFT-32";
    case BenchmarkId::QAOA_R4_64: return "QAOA-r4-64";
    case BenchmarkId::QAOA_R8_64: return "QAOA-r8-64";
  }
  throw PreconditionError("unknown benchmark id");
}

int benchmark_qubits(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::TLIM_32:
    case BenchmarkId::QAOA_R4_32:
    case BenchmarkId::QAOA_R8_32:
    case BenchmarkId::QFT_32:
      return 32;
    case BenchmarkId::QAOA_R4_64:
    case BenchmarkId::QAOA_R8_64:
      return 64;
  }
  throw PreconditionError("unknown benchmark id");
}

Circuit make_benchmark(BenchmarkId id) {
  // QAOA graph seeds are arbitrary but frozen so Table I is reproducible.
  switch (id) {
    case BenchmarkId::TLIM_32:
      return make_tlim(32, TlimParams{});
    case BenchmarkId::QAOA_R4_32:
      return make_qaoa_benchmark(32, 4, /*seed=*/0xA40432);
    case BenchmarkId::QAOA_R8_32:
      return make_qaoa_benchmark(32, 8, /*seed=*/0xA80832);
    case BenchmarkId::QFT_32:
      return make_qft(32);
    case BenchmarkId::QAOA_R4_64:
      return make_qaoa_benchmark(64, 4, /*seed=*/0xA40464);
    case BenchmarkId::QAOA_R8_64:
      return make_qaoa_benchmark(64, 8, /*seed=*/0xA80864);
  }
  throw PreconditionError("unknown benchmark id");
}

}  // namespace dqcsim::gen
