/// \file qft.hpp
/// \brief Quantum Fourier Transform benchmark circuit (paper §IV-A).
///
/// QFT requires all-to-all connectivity and is the remote-gate-heavy extreme
/// of the paper's benchmark suite: on a balanced 2-node split of 32 qubits
/// it yields 256 remote and 240 local two-qubit gates (Table I).

#pragma once

#include "circuit/circuit.hpp"

namespace dqcsim::gen {

/// Build the textbook n-qubit QFT: for each qubit i, an H followed by
/// controlled-phase CP(pi/2^(j-i)) from every later qubit j. The optional
/// final SWAP network (bit reversal) is omitted, matching the gate counts
/// in the paper's Table I (n one-qubit gates, n(n-1)/2 two-qubit gates).
Circuit make_qft(int num_qubits);

}  // namespace dqcsim::gen
