/// \file tlim.hpp
/// \brief 1-D Transverse-Longitudinal Ising Model quench circuit (§IV-A).
///
/// Trotterized evolution of H = -J sum Z_i Z_{i+1} - h_x sum X_i
/// - h_z sum Z_i on an open chain (Sopena et al., the paper's ref. [49]).
/// One Trotter step = a brick pattern of RZZ on even then odd bonds,
/// followed by RZ (longitudinal) and RX (transverse) on every qubit. The
/// linear connectivity makes this the remote-gate-light extreme of the
/// benchmark suite: a balanced 2-node split cuts exactly one bond, so the
/// remote-gate count equals the number of Trotter steps.

#pragma once

#include "circuit/circuit.hpp"

namespace dqcsim::gen {

/// TLIM quench parameters.
struct TlimParams {
  int steps = 10;        ///< Trotter steps (paper's TLIM-32 uses 10)
  double dt = 0.1;       ///< Trotter time step
  double coupling = 1.0; ///< Ising coupling J
  double hx = 1.05;      ///< transverse field
  double hz = 0.5;       ///< longitudinal field
};

/// Build the TLIM circuit on an open chain of `num_qubits` qubits.
/// Gate counts per step: (n-1) RZZ in two brick layers, n RZ, n RX.
Circuit make_tlim(int num_qubits, const TlimParams& params = {});

}  // namespace dqcsim::gen
