#include "gen/qaoa.hpp"

#include <string>

#include "common/error.hpp"

namespace dqcsim::gen {

Circuit make_qaoa_maxcut(const EdgeList& graph, const QaoaParams& params) {
  DQCSIM_EXPECTS(graph.num_vertices >= 2);
  DQCSIM_EXPECTS(params.layers >= 1);
  Circuit qc(graph.num_vertices,
             "QAOA-" + std::to_string(graph.num_vertices));
  for (QubitId q = 0; q < graph.num_vertices; ++q) qc.h(q);
  for (int layer = 0; layer < params.layers; ++layer) {
    for (const auto& [a, b] : graph.edges) {
      qc.rzz(a, b, 2.0 * params.gamma);
    }
    for (QubitId q = 0; q < graph.num_vertices; ++q) {
      qc.rx(q, 2.0 * params.beta);
    }
  }
  return qc;
}

Circuit make_qaoa_regular(int num_qubits, int degree, Rng& rng,
                          const QaoaParams& params) {
  const EdgeList graph = random_regular_graph(num_qubits, degree, rng);
  Circuit qc = make_qaoa_maxcut(graph, params);
  qc.set_name("QAOA-r" + std::to_string(degree) + "-" +
              std::to_string(num_qubits));
  return qc;
}

}  // namespace dqcsim::gen
