#include "gen/regular_graph.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace dqcsim::gen {
namespace {

using Edge = std::pair<int, int>;

Edge ordered(int a, int b) noexcept {
  return a < b ? Edge{a, b} : Edge{b, a};
}

}  // namespace

EdgeList random_regular_graph(int n, int d, Rng& rng) {
  DQCSIM_EXPECTS_MSG(d >= 1 && d < n, "need 1 <= d < n");
  DQCSIM_EXPECTS_MSG((static_cast<long long>(n) * d) % 2 == 0,
                     "n*d must be even for a d-regular graph to exist");

  // Configuration model: d stubs per vertex, random perfect matching.
  std::vector<int> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);

  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.push_back(ordered(stubs[i], stubs[i + 1]));
  }

  // Edge-swap repair: remove self-loops and duplicates by 2-opt swaps.
  // A swap of {a,b},{c,d} -> {a,c},{b,d} preserves all vertex degrees.
  const auto count_bad = [&](const std::vector<Edge>& es) {
    std::set<Edge> seen;
    std::size_t bad = 0;
    for (const Edge& e : es) {
      if (e.first == e.second || !seen.insert(e).second) ++bad;
    }
    return bad;
  };

  std::set<Edge> edge_set;
  const auto rebuild_set = [&]() {
    edge_set.clear();
    for (const Edge& e : edges) {
      if (e.first != e.second) edge_set.insert(e);
    }
  };
  rebuild_set();

  std::size_t guard = 0;
  const std::size_t guard_limit =
      1000 * edges.size() * static_cast<std::size_t>(d);
  while (count_bad(edges) > 0) {
    DQCSIM_ENSURES_MSG(++guard < guard_limit,
                       "regular graph repair failed to converge");
    // Find one offending edge (self-loop or duplicate).
    std::size_t bad_idx = edges.size();
    {
      std::set<Edge> seen;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].first == edges[i].second || !seen.insert(edges[i]).second) {
          bad_idx = i;
          break;
        }
      }
    }
    DQCSIM_ENSURES(bad_idx < edges.size());

    // Swap it with a uniformly random partner edge if the result is simple.
    const auto partner =
        static_cast<std::size_t>(rng.uniform_int(edges.size()));
    if (partner == bad_idx) continue;
    const auto [a, b] = edges[bad_idx];
    const auto [c, dd] = edges[partner];
    // Try {a,c}, {b,dd}; fall back to {a,dd}, {b,c}.
    for (const auto& [e1, e2] :
         {std::pair{ordered(a, c), ordered(b, dd)},
          std::pair{ordered(a, dd), ordered(b, c)}}) {
      if (e1.first == e1.second || e2.first == e2.second) continue;
      if (e1 == e2) continue;
      if (edge_set.count(e1) != 0 || edge_set.count(e2) != 0) continue;
      edges[bad_idx] = e1;
      edges[partner] = e2;
      rebuild_set();
      break;
    }
  }

  std::sort(edges.begin(), edges.end());
  EdgeList result;
  result.num_vertices = n;
  result.edges = std::move(edges);
  DQCSIM_ENSURES(is_simple_regular(result, d));
  return result;
}

bool is_simple_regular(const EdgeList& g, int d) {
  std::vector<int> degree(static_cast<std::size_t>(g.num_vertices), 0);
  std::set<Edge> seen;
  for (const auto& [a, b] : g.edges) {
    if (a == b) return false;
    if (a < 0 || b < 0 || a >= g.num_vertices || b >= g.num_vertices) {
      return false;
    }
    if (!seen.insert(ordered(a, b)).second) return false;
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  return std::all_of(degree.begin(), degree.end(),
                     [d](int deg) { return deg == d; });
}

}  // namespace dqcsim::gen
