/// \file qft_teleportation.cpp
/// \brief Domain example: distributed QFT, the remote-gate-heavy extreme.
///
/// QFT needs all-to-all connectivity: any balanced 2-node split of n qubits
/// makes (n/2)^2 of its n(n-1)/2 controlled-phase gates remote. This
/// example scales n and shows (a) the forced remote fraction, (b) how the
/// architecture designs cope, and (c) the fidelity cliff that makes
/// distributed QFT the paper's stress test.
///
/// Run: ./qft_teleportation

#include <iostream>

#include "dqcsim.hpp"

int main() {
  using namespace dqcsim;
  runtime::ArchConfig config;

  std::cout << "Distributed QFT on a 2-node architecture (10 comm + 10 "
               "buffer qubits per node)\n\n";

  TablePrinter table({"n", "CP gates", "remote", "depth original",
                      "depth async_buf", "depth init_buf", "rel. ideal",
                      "fid async_buf"});

  for (const int n : {8, 16, 24, 32}) {
    const Circuit qc = gen::make_qft(n);
    const auto part = runtime::partition_circuit(qc, 2);
    const auto placement = sched::classify_gates(qc, part.assignment);
    const double ideal = runtime::ideal_depth(qc, config);

    const auto original = runtime::run_design(
        qc, part.assignment, config, runtime::DesignKind::Original, 15);
    const auto async = runtime::run_design(
        qc, part.assignment, config, runtime::DesignKind::AsyncBuf, 15);
    const auto init = runtime::run_design(
        qc, part.assignment, config, runtime::DesignKind::InitBuf, 15);

    table.add_row(
        {TablePrinter::fmt(n), TablePrinter::fmt(qc.count_2q()),
         TablePrinter::fmt(placement.num_remote_2q),
         TablePrinter::fmt(original.depth.mean(), 1),
         TablePrinter::fmt(async.depth.mean(), 1),
         TablePrinter::fmt(init.depth.mean(), 1),
         TablePrinter::fmt(init.depth.mean() / ideal, 2),
         TablePrinter::fmt(async.fidelity.mean(), 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nThe remote-gate count grows quadratically ((n/2)^2), so the "
         "link's generation rate (comm_pairs * p_succ / T_EG = 0.4 pairs "
         "per t_CNOT) becomes the hard bottleneck: depth scales with the "
         "remote count for every design, buffering mainly removes the "
         "waste, and fidelity collapses once hundreds of teleported gates "
         "stack up — exactly the paper's argument for why partitioning "
         "quality and entanglement throughput dominate DQC performance.\n";
  return 0;
}
