/// \file adaptive_scheduling_demo.cpp
/// \brief Inside the adaptive scheduler: segments, variants, and the
/// run-time policy decisions (paper §III-D, Fig. 4).
///
/// Takes a small distributed circuit, shows its segmentation into m-remote-
/// gate segments, prints the ASAP/ALAP variant orders next to the original,
/// then runs adapt_buf and reports which variant the controller picked per
/// segment under the live buffer occupancy.
///
/// Run: ./adaptive_scheduling_demo

#include <iostream>

#include "dqcsim.hpp"

int main() {
  using namespace dqcsim;

  // A QAOA-like segmentable workload: 8 qubits split 4|4.
  Rng rng(77);
  const Circuit qc = gen::make_qaoa_regular(8, 4, rng);
  std::vector<int> assignment(8);
  for (int i = 0; i < 8; ++i) assignment[static_cast<std::size_t>(i)] = i / 4;

  const auto placement = sched::classify_gates(qc, assignment);
  std::cout << "circuit: " << qc.name() << " with " << qc.num_gates()
            << " gates, " << placement.num_remote_2q
            << " of them remote under the 4|4 split\n\n";

  // --- 1. Segmentation. ----------------------------------------------------
  const std::size_t m = 2;
  const auto segments = sched::segment_by_remote_gates(placement, m);
  std::cout << "1) Segmentation at m = " << m << " remote gates/segment:\n";
  for (std::size_t s = 0; s < segments.size(); ++s) {
    std::cout << "   segment " << s << ": gates [" << segments[s].begin << ", "
              << segments[s].end << ") with " << segments[s].num_remote
              << " remote\n";
  }

  // --- 2. Variants of the first segment. -----------------------------------
  const sched::SegmentVariantTable table(qc, placement, segments);
  std::cout << "\n2) Variant orders for segment 0 "
               "(* marks remote gates):\n";
  for (const auto policy :
       {sched::SchedulingPolicy::Original, sched::SchedulingPolicy::Asap,
        sched::SchedulingPolicy::Alap}) {
    std::cout << "   " << sched::policy_name(policy) << ": ";
    for (const std::size_t g : table.order(0, policy)) {
      std::cout << (placement.remote(g) ? "*" : "") << g << ' ';
    }
    std::cout << '\n';
  }

  // --- 3. The adaptive rule. ------------------------------------------------
  const sched::AdaptivePolicy policy(m);
  std::cout << "\n3) Controller rule (m = " << m << "): e=0 -> "
            << sched::policy_name(policy.choose(0)) << ", e=1 -> "
            << sched::policy_name(policy.choose(1)) << ", e=" << m + 1
            << " -> " << sched::policy_name(policy.choose(m + 1)) << "\n";

  // --- 4. Decisions made during real executions. ----------------------------
  std::cout << "\n4) adapt_buf executions (segment size " << m
            << ", varying seeds):\n\n";
  runtime::ArchConfig config;
  config.comm_per_node = 4;
  config.buffer_per_node = 4;
  config.segment_size = m;
  TablePrinter results({"seed", "depth", "fidelity", "ASAP segs",
                        "ALAP segs", "original segs"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    runtime::ExecutionEngine engine(qc, assignment, config,
                                    runtime::DesignKind::AdaptBuf, seed);
    const auto r = engine.run();
    results.add_row({TablePrinter::fmt(static_cast<std::size_t>(seed)),
                     TablePrinter::fmt(r.depth, 1),
                     TablePrinter::fmt(r.fidelity, 3),
                     TablePrinter::fmt(r.segments_asap),
                     TablePrinter::fmt(r.segments_alap),
                     TablePrinter::fmt(r.segments_original)});
  }
  results.print(std::cout);
  std::cout << "\nEarly segments tend to draw ALAP (empty buffer at t = 0); "
               "once generation catches up the controller switches between "
               "original and ASAP with the stochastic buffer level.\n";
  return 0;
}
