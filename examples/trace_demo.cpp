/// \file trace_demo.cpp
/// \brief Observability tour: trace one trial, collect registry metrics and
/// the engine self-profile across a Monte-Carlo sweep.
///
/// Runs the 32-qubit QAOA workload on an 8-node chain under a deterministic
/// mid-chain link outage (edge 3-4 down over [50, 170]), with
/// ArchConfig::observe attached: the registry accumulates counters and
/// streaming-quantile histograms over every trial, the profile times the
/// engine phases, and the single trial whose seed matches `trace_seed` is
/// exported as Chrome trace-event JSON (trace_demo_trace.json). Open the
/// file at https://ui.perfetto.dev or chrome://tracing to see per-link
/// generation spans, the outage interval and the recovery reroute.
/// ci/check_trace.py validates the same file in CI.
///
/// Run: ./trace_demo

#include <iostream>

#include "dqcsim.hpp"

int main() {
  using namespace dqcsim;

  constexpr int kNodes = 8;
  constexpr int kRuns = 8;
  constexpr std::uint64_t kBaseSeed = 1000;

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const net::Topology topo = net::Topology::chain(kNodes);
  const auto part = runtime::partition_circuit(qc, topo);

  runtime::ArchConfig config;
  config.num_nodes = kNodes;
  config.comm_per_node = 16;
  config.buffer_per_node = 16;
  config.record_arrival_trace = false;
  config.set_topology(topo);

  // A chain cannot detour around its middle edge, so this outage guarantees
  // downtime on every trial — and a recovery reroute when the edge returns.
  scenario::Scenario scn;
  scn.link_outages.push_back({3, 4, 50.0, 120.0});
  config.set_scenario(std::move(scn));

  // Attach the observability layer: metrics + profile over all runs, a
  // full event trace of the trial with seed kBaseSeed + 3.
  auto observe = obs::make_observe();
  observe->trace_seed = kBaseSeed + 3;
  observe->trace_path = "trace_demo_trace.json";
  config.observe = observe;

  std::cout << "=== Observability demo: QAOA-32 on chain(8), mid-chain "
               "outage ===\n\n";
  const runtime::AggregateResult agg =
      runtime::run_design(qc, part.assignment, config,
                          runtime::DesignKind::AsyncBuf, kRuns, kBaseSeed);

  std::cout << "Aggregate over " << kRuns << " runs:\n"
            << "  depth            mean "
            << TablePrinter::fmt(agg.depth.mean(), 1) << "\n"
            << "  fidelity         mean "
            << TablePrinter::fmt(agg.fidelity.mean(), 4) << "\n"
            << "  outage downtime  mean "
            << TablePrinter::fmt(agg.outage_downtime.mean(), 1) << "  p50 "
            << TablePrinter::fmt(agg.outage_downtime.quantile(0.5), 1)
            << "  p99 "
            << TablePrinter::fmt(agg.outage_downtime.quantile(0.99), 1) << "\n"
            << "  avg pair age     p50  "
            << TablePrinter::fmt(agg.avg_pair_age.quantile(0.5), 2) << "  p99 "
            << TablePrinter::fmt(agg.avg_pair_age.quantile(0.99), 2) << "\n"
            << "  avg remote wait  p50  "
            << TablePrinter::fmt(agg.avg_remote_wait.quantile(0.5), 2)
            << "  p99 "
            << TablePrinter::fmt(agg.avg_remote_wait.quantile(0.99), 2)
            << "\n\n";

  std::cout << "Registry snapshot (deterministic at any thread count):\n"
            << observe->collector.registry_json() << "\n\n";

  std::cout << "Engine self-profile (wall clock, machine-dependent):\n"
            << observe->collector.profile().to_json().dump(2) << "\n\n";

  std::cout << "Traced trial (seed " << observe->trace_seed
            << ") written to trace_demo_trace.json — open it at "
               "https://ui.perfetto.dev\n";
  return observe->collector.has_trace() ? 0 : 1;
}
