/// \file quickstart.cpp
/// \brief Minimal end-to-end tour of the dqcsim public API.
///
/// Builds a QAOA workload, partitions it across two QPU nodes, and compares
/// all six architecture designs from the paper on depth and fidelity.
///
/// Run: ./quickstart

#include <cstdio>
#include <iostream>

#include "dqcsim.hpp"

int main() {
  using namespace dqcsim;

  // 1. Build a workload: QAOA MaxCut on a random 8-regular graph.
  Rng rng(/*seed=*/42);
  Circuit qc = gen::make_qaoa_regular(/*num_qubits=*/32, /*degree=*/8, rng);
  std::cout << "workload: " << qc.name() << " — " << qc.num_qubits()
            << " qubits, " << qc.num_gates() << " gates ("
            << qc.count_2q() << " two-qubit)\n";

  // 2. Partition qubits across 2 QPU nodes (balanced min-cut, METIS-style).
  const auto part = runtime::partition_circuit(qc, /*num_nodes=*/2);
  std::cout << "partition: cut=" << part.cut << " remote gates, balance="
            << part.balance << "\n\n";

  // 3. Configure the architecture with the paper's Table II parameters.
  runtime::ArchConfig config;  // 10 comm + 10 buffer qubits per node, etc.

  // 4. Simulate every design, 20 runs each, and print the comparison.
  const double d_ideal = runtime::ideal_depth(qc, config);
  const double f_ideal = runtime::ideal_fidelity(qc, config);

  TablePrinter table({"design", "depth", "rel. ideal", "fidelity",
                      "rel. ideal", "EPR wasted"});
  for (runtime::DesignKind design : runtime::all_designs()) {
    if (design == runtime::DesignKind::IdealMono) {
      table.add_row({"ideal", TablePrinter::fmt(d_ideal, 1),
                     TablePrinter::fmt(1.0, 2), TablePrinter::fmt(f_ideal, 3),
                     TablePrinter::fmt(1.0, 2), "-"});
      continue;
    }
    const auto agg = runtime::run_design(qc, part.assignment, config, design,
                                         /*runs=*/20);
    table.add_row({design_name(design),
                   TablePrinter::fmt(agg.depth.mean(), 1),
                   TablePrinter::fmt(agg.depth.mean() / d_ideal, 2),
                   TablePrinter::fmt(agg.fidelity.mean(), 3),
                   TablePrinter::fmt(agg.fidelity.mean() / f_ideal, 2),
                   TablePrinter::fmt(agg.epr_wasted.mean(), 1)});
  }
  table.print(std::cout);
  return 0;
}
