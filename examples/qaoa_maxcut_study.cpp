/// \file qaoa_maxcut_study.cpp
/// \brief Domain example: planning a QAOA MaxCut campaign on a 2-node DQC.
///
/// A user wants to run QAOA on random regular graphs of growing degree and
/// asks: how much does graph density cost me in remote gates, runtime and
/// fidelity on a buffered DQC versus the bufferless baseline? This walks
/// the full pipeline — generate, partition, inspect, simulate — the way a
/// downstream study would.
///
/// Run: ./qaoa_maxcut_study [qubits]   (default 32)

#include <cstdlib>
#include <iostream>

#include "dqcsim.hpp"

int main(int argc, char** argv) {
  using namespace dqcsim;
  const int qubits = argc > 1 ? std::atoi(argv[1]) : 32;
  if (qubits < 8 || qubits % 2 != 0) {
    std::cerr << "usage: qaoa_maxcut_study [even qubits >= 8]\n";
    return 1;
  }

  runtime::ArchConfig config;
  std::cout << "QAOA MaxCut on " << qubits
            << " qubits, 2 QPU nodes, paper Table II parameters\n\n";

  TablePrinter table({"degree", "edges", "remote gates", "remote %",
                      "depth original", "depth async_buf", "speedup",
                      "fid async_buf"});

  for (const int degree : {3, 4, 6, 8}) {
    Rng rng(7000 + static_cast<std::uint64_t>(degree));
    const Circuit qc = gen::make_qaoa_regular(qubits, degree, rng);
    const auto part = runtime::partition_circuit(qc, 2);
    const auto placement = sched::classify_gates(qc, part.assignment);
    const double remote_share =
        100.0 * static_cast<double>(placement.num_remote_2q) /
        static_cast<double>(qc.count_2q());

    const auto original = runtime::run_design(
        qc, part.assignment, config, runtime::DesignKind::Original, 25);
    const auto buffered = runtime::run_design(
        qc, part.assignment, config, runtime::DesignKind::AsyncBuf, 25);

    table.add_row({TablePrinter::fmt(degree),
                   TablePrinter::fmt(qc.count_2q()),
                   TablePrinter::fmt(placement.num_remote_2q),
                   TablePrinter::fmt(remote_share, 1) + "%",
                   TablePrinter::fmt(original.depth.mean(), 1),
                   TablePrinter::fmt(buffered.depth.mean(), 1),
                   TablePrinter::fmt(
                       original.depth.mean() / buffered.depth.mean(), 2) + "x",
                   TablePrinter::fmt(buffered.fidelity.mean(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nReading: denser graphs put more weight across any balanced "
               "partition, so the remote-gate share grows with degree, and "
               "with it both the buffered architecture's advantage over the "
               "bufferless baseline and the total fidelity cost.\n";
  return 0;
}
