/// \file entanglement_service_tour.cpp
/// \brief Tour of the entanglement layer as a standalone service.
///
/// Uses the DES kernel, generation service, buffer pool and Werner decay
/// directly — without the circuit runtime — the way a quantum-network
/// researcher would study link provisioning: how fast does the buffer fill,
/// how does a cutoff policy bound pair age, and what does the teleported
/// gate fidelity look like as a function of buffering delay?
///
/// Run: ./entanglement_service_tour

#include <iostream>

#include "dqcsim.hpp"

int main() {
  using namespace dqcsim;

  // --- 1. Watch the buffer fill under sync vs async generation. ----------
  std::cout << "1) Buffer occupancy over time (capacity 10, p_succ 0.4)\n\n";
  for (const auto schedule : {ent::AttemptSchedule::Synchronous,
                              ent::AttemptSchedule::Asynchronous}) {
    des::Simulator sim;
    Rng rng(11);
    ent::LinkParams link;
    link.schedule = schedule;
    ent::GenerationService service(sim, link, rng,
                                   ent::ServiceMode::Buffered);
    service.start();
    std::cout << (schedule == ent::AttemptSchedule::Synchronous
                      ? "   synchronous : "
                      : "   asynchronous: ");
    for (double t = 5.0; t <= 100.0; t += 5.0) {
      sim.run_until(t);
      std::cout << service.buffer().size(t) << ' ';
    }
    std::cout << "  (every 5 t_CNOT)\n";
  }

  // --- 2. Cutoff policy bounds the age of buffered pairs. -----------------
  std::cout << "\n2) Cut-off policy: oldest buffered pair age at t = 200\n\n";
  for (const double cutoff : {10.0, 25.0, 50.0, 1e18}) {
    des::Simulator sim;
    Rng rng(13);
    ent::LinkParams link;
    link.cutoff = cutoff;
    ent::GenerationService service(sim, link, rng,
                                   ent::ServiceMode::Buffered);
    service.start();
    sim.run_until(200.0);
    auto& buffer = service.buffer();
    double oldest_age = 0.0;
    // Drain the pool to inspect the ages of what survived the cutoff.
    while (auto pair = buffer.pop_oldest(200.0)) {
      oldest_age = std::max(oldest_age, 200.0 - pair->deposited);
    }
    std::cout << "   cutoff " << (cutoff > 1e17 ? "none" : std::to_string(
                                      static_cast<int>(cutoff)))
              << ": oldest surviving pair age = "
              << TablePrinter::fmt(oldest_age, 1) << ", expired so far = "
              << buffer.total_expired() << '\n';
  }

  // --- 3. From pair age to teleported-gate fidelity. ----------------------
  std::cout << "\n3) Teleported-CNOT fidelity vs buffered age "
               "(F0 = 0.99, 1/kappa = 150 us)\n\n";
  const noise::TeleportFidelityModel model{noise::TeleportNoiseParams{}};
  TablePrinter table({"age [t_CNOT]", "pair fidelity", "teleported-CNOT"});
  for (const double age : {0.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0}) {
    const double pair_f = noise::werner_decayed_fidelity(0.99, 0.002, age);
    table.add_row({TablePrinter::fmt(age, 0), TablePrinter::fmt(pair_f, 4),
                   TablePrinter::fmt(model.eval(pair_f), 4)});
  }
  table.print(std::cout);
  std::cout << "\nThis is why the architecture consumes pairs immediately "
               "(async + adaptive) and why pre-initialized pairs (init_buf) "
               "cost fidelity: every t_CNOT spent in the buffer eats into "
               "the teleported gate's fidelity budget.\n";
  return 0;
}
