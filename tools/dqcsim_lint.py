#!/usr/bin/env python3
"""dqcsim-lint — mechanical enforcement of the project's determinism and
hot-path invariants (docs/ARCHITECTURE.md "Determinism rules").

The simulator's correctness contract is bit-identical results at any thread
count, plus zero steady-state allocations per trial. Those invariants used to
live only in prose and runtime tests; this checker turns them into CI-gated
properties of the source text itself.

Rules (see --list-rules for the one-line summaries):

  no-nondet-rand   rand()/srand()/std::random_device/std::mt19937/... anywhere
                   in src/, bench/, tests/. All randomness must flow through
                   dqcsim::Rng (xoshiro256** seeded via splitmix64) so a run
                   is reproducible from one 64-bit seed.
  no-wall-clock    system_clock/steady_clock/high_resolution_clock/time()/
                   clock()/gettimeofday/clock_gettime in src/. Wall time read
                   inside the engine is a nondeterminism source; simulation
                   time is des::SimTime. (Profiling code suppresses this with
                   a justification — see obs/scope.hpp.)
  no-unordered     std::unordered_{map,set,multimap,multiset} in the
                   result-affecting subsystems (runtime, ent, net, scenario,
                   des, qsim). Hash-container iteration order varies with
                   libstdc++ version and insertion history; ordered containers
                   or index-keyed vectors keep every traversal deterministic.
  no-raw-libm      std::pow/exp/log (and the exp2/expm1/log2/log10/log1p
                   variants, qualified or not) in engine subsystems outside
                   the blessed wrappers (src/noise/, src/common/rng,
                   src/common/stats). Transcendental results differ in the
                   last ulp across libm implementations; result-affecting math
                   goes through the wrappers (or exact operations such as
                   std::ldexp / iterated multiply) so results are bit-stable
                   across glibc/musl/llvm-libc.
  hot-alloc        new / make_unique / make_shared / malloc-family, and
                   push_back/emplace_back without a reserve() in the same
                   body, inside functions annotated `// DQCSIM_HOT`. These
                   functions sit on the zero-allocs-per-trial path measured by
                   perf_micro's operator-new counter.
  pragma-once      every header starts with `#pragma once` (before any other
                   preprocessor directive or code).
  include-order    within each contiguous `#include` block: entries sorted
                   and styles not mixed (<...> vs "..."); blocks are separated
                   by blank lines, Google-style (own header first, then
                   system, then project headers).

Suppressions are explicit and justified, never silent:

  // DQCSIM_LINT_ALLOW(rule-id): why this exception is sound
  // DQCSIM_LINT_ALLOW_FILE(rule-id): file-wide, for e.g. a profiling header

A line-level ALLOW covers its own line and the next code line (intervening
comment lines are skipped, so justifications may wrap). An ALLOW with an
unknown rule id or an empty justification is itself a finding
(bad-suppression), and an ALLOW that suppresses nothing is a finding
(stale-suppression) so the exception list cannot rot.

Modes: when the libclang python bindings are importable the scrubber uses the
clang token stream (comments and literals blanked with exact line fidelity);
otherwise a built-in lexer performs the same scrub. Rule logic is identical in
both modes, so findings and suppressions never depend on the environment.

Usage:
  python3 tools/dqcsim_lint.py src bench tests          # lint the tree
  python3 tools/dqcsim_lint.py --list-rules
  python3 tools/dqcsim_lint.py --force-rules no-raw-libm file.cpp   # fixtures

Exit status: 0 when every finding is suppressed-with-justification, 1
otherwise, 2 on usage errors.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule scoping
# --------------------------------------------------------------------------

# Subsystems whose code affects simulation *results* (stats, fidelities,
# event order). Iteration-order and libm discipline are enforced here.
RESULT_SUBSYSTEMS = {"runtime", "ent", "net", "scenario", "des", "qsim"}

# Superset: everything that feeds the engine (circuit generation, scheduling,
# partitioning) — raw libm here leaks into results through gate angles,
# segment choices, and placements.
ENGINE_SUBSYSTEMS = RESULT_SUBSYSTEMS | {"sched", "gen", "circuit",
                                         "partition"}

# Blessed wrapper files for no-raw-libm: the noise layer owns the Werner /
# fidelity-ledger math, and common/rng + common/stats own the sampling and
# aggregation transcendentals. Everything result-affecting funnels through
# these so a libm swap changes at most these files' review surface.
BLESSED_LIBM_PREFIXES = (
    os.path.join("src", "noise") + os.sep,
    os.path.join("src", "common", "rng"),
    os.path.join("src", "common", "stats"),
)

HEADER_EXTS = (".hpp", ".h", ".hh", ".hxx")
SOURCE_EXTS = (".cpp", ".cc", ".cxx") + HEADER_EXTS


def _top_dir(relpath):
    parts = relpath.split(os.sep)
    return parts[0] if parts else ""


def _subsystem(relpath):
    parts = relpath.split(os.sep)
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return ""


def scope_nondet_rand(relpath):
    return _top_dir(relpath) in ("src", "bench", "tests")


def scope_wall_clock(relpath):
    return _top_dir(relpath) == "src"


def scope_unordered(relpath):
    return _subsystem(relpath) in RESULT_SUBSYSTEMS


def scope_raw_libm(relpath):
    if _subsystem(relpath) not in ENGINE_SUBSYSTEMS:
        return False
    return not relpath.startswith(BLESSED_LIBM_PREFIXES)


def scope_everywhere(relpath):  # hot-alloc: wherever the annotation appears
    return _top_dir(relpath) in ("src", "bench", "tests")


def scope_headers(relpath):
    return (_top_dir(relpath) in ("src", "bench", "tests")
            and relpath.endswith(HEADER_EXTS))


def scope_hygiene(relpath):
    return _top_dir(relpath) in ("src", "bench", "tests")


# --------------------------------------------------------------------------
# Pattern rules (run over scrubbed lines)
# --------------------------------------------------------------------------

NONDET_RAND_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:rand|srand|random_shuffle)\s*\("
    r"|\brandom_device\b"
    r"|\bmt19937(?:_64)?\b|\bdefault_random_engine\b|\bminstd_rand0?\b"
    r"|\branlux(?:24|48)(?:_base)?\b|\bknuth_b\b")

WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|(?<![\w:.])(?:std\s*::\s*)?"
    r"(?:time|clock|gettimeofday|clock_gettime|timespec_get)\s*\("
    r"|\b__rdtscp?\b")

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")

RAW_LIBM_RE = re.compile(
    r"(?<![\w.:])(?:std\s*::\s*)?"
    r"(?:pow|exp|exp2|expm1|log|log2|log10|log1p)[fl]?\s*\(")

HOT_ALLOC_RE = re.compile(
    r"(?<![\w:])new\b(?!\s*\()"          # new T / new T[] (not a var "new(")
    r"|(?<![\w:])new\s*\("               # placement/nothrow new
    r"|\bmake_unique\b|\bmake_shared\b"
    r"|(?<![\w:])(?:malloc|calloc|realloc|strdup)\s*\(")

HOT_PUSH_RE = re.compile(r"\b(push_back|emplace_back)\s*\(")
HOT_RESERVE_RE = re.compile(r"\breserve\s*\(")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(<[^>]+>|"[^"]+")')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")

ALLOW_RE = re.compile(
    r"//\s*DQCSIM_LINT_ALLOW(_FILE)?\(([^)]*)\)\s*(?::\s*(.*))?$")
HOT_MARK_RE = re.compile(r"//\s*DQCSIM_HOT\b")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "suppressed")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = False

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _line_findings(path, lines, regex, rule, message):
    out = []
    for i, text in enumerate(lines, start=1):
        m = regex.search(text)
        if m:
            out.append(Finding(path, i, rule,
                               f"{message}: `{m.group(0).strip()}`"))
    return out


def check_nondet_rand(path, lines, _raw):
    return _line_findings(
        path, lines, NONDET_RAND_RE, "no-nondet-rand",
        "nondeterminism source; draw from dqcsim::Rng instead")


def check_wall_clock(path, lines, _raw):
    return _line_findings(
        path, lines, WALL_CLOCK_RE, "no-wall-clock",
        "wall-clock read in engine code; use des::SimTime")


def check_unordered(path, lines, _raw):
    # Include directives are exempt: the hazard is hash-order *usage*, and
    # flagging `#include <unordered_map>` would double-report every hit.
    out = []
    for i, text in enumerate(lines, start=1):
        if INCLUDE_RE.match(text):
            continue
        m = UNORDERED_RE.search(text)
        if m:
            out.append(Finding(
                path, i, "no-unordered",
                "hash container in a result-affecting subsystem "
                "(iteration order is libstdc++-dependent): "
                f"`{m.group(0)}`"))
    return out


def check_raw_libm(path, lines, _raw):
    return _line_findings(
        path, lines, RAW_LIBM_RE, "no-raw-libm",
        "raw libm transcendental outside the blessed wrappers "
        "(last-ulp results differ across libm implementations)")


def _body_extent(lines, start):
    """(first_line, last_line) of the brace-matched body opening at or after
    `start` (1-based), or None when no `{` is found within a few lines."""
    depth = 0
    opened = False
    for i in range(start - 1, min(len(lines), start + 9)):
        if "{" in lines[i]:
            first = i + 1
            break
    else:
        return None
    for i in range(first - 1, len(lines)):
        for ch in lines[i]:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return (first, i + 1)
    return (first, len(lines))


def check_hot_alloc(path, lines, raw_lines):
    out = []
    for i, text in enumerate(raw_lines, start=1):
        if not HOT_MARK_RE.search(text):
            continue
        extent = _body_extent(lines, i + 1)
        if extent is None:
            out.append(Finding(path, i, "hot-alloc",
                               "DQCSIM_HOT annotation with no function "
                               "body in the following lines"))
            continue
        first, last = extent
        body = lines[first - 1:last]
        reserved = any(HOT_RESERVE_RE.search(l) for l in body)
        for j, btext in enumerate(body, start=first):
            m = HOT_ALLOC_RE.search(btext)
            if m:
                out.append(Finding(
                    path, j, "hot-alloc",
                    "heap allocation inside a DQCSIM_HOT function: "
                    f"`{m.group(0).strip()}`"))
            m = HOT_PUSH_RE.search(btext)
            if m and not reserved:
                out.append(Finding(
                    path, j, "hot-alloc",
                    f"`{m.group(1)}` without a reserve() in a DQCSIM_HOT "
                    "function body (may reallocate in the steady state)"))
    return out


def check_pragma_once(path, lines, raw_lines):
    # Operates on raw lines: the scrubber blanks string-literal contents,
    # which would erase quote-include names. A leading comment block is
    # skipped via the scrubbed view so `/* ... */` banners don't count as
    # code before the pragma.
    for i, (text, scrubbed) in enumerate(zip(raw_lines, lines), start=1):
        if not scrubbed.strip():
            continue
        if PRAGMA_ONCE_RE.match(text):
            return []
        return [Finding(path, i, "pragma-once",
                        "header must start with `#pragma once` "
                        "(before any code or other directive)")]
    return [Finding(path, 1, "pragma-once",
                    "empty header without `#pragma once`")]


def check_include_order(path, lines, raw_lines):
    # Raw lines carry the include names (the scrubber blanks string
    # contents); the scrubbed view gates which lines are live code so a
    # commented-out include can't split or pollute a block.
    out = []
    block = []  # (line_no, include_text e.g. `<vector>` or `"a.hpp"`)

    def flush():
        if len(block) >= 2:
            styles = {inc[0] for _, inc in block}
            if len(styles) > 1:
                out.append(Finding(
                    path, block[0][0], "include-order",
                    "mixed <...> and \"...\" includes in one block; "
                    "separate system and project headers with a blank line"))
            else:
                # Anchor at the first include that sorts before its
                # predecessor — the line a suppression naturally sits above.
                names = [inc[1:-1] for _, inc in block]
                for k in range(1, len(names)):
                    if names[k] < names[k - 1]:
                        out.append(Finding(
                            path, block[k][0], "include-order",
                            f"includes not sorted: `{names[k]}` belongs "
                            f"before `{names[k - 1]}`"))
                        break
        del block[:]

    for i, (text, scrubbed) in enumerate(zip(raw_lines, lines), start=1):
        m = INCLUDE_RE.match(text) if scrubbed.strip() else None
        if m:
            block.append((i, m.group(1)))
        elif not text.strip():
            flush()  # a blank line separates blocks
        elif scrubbed.strip() and block:
            flush()  # macros/code end a block; comment-only lines don't
    flush()
    return out


RULES = [
    ("no-nondet-rand", scope_nondet_rand, check_nondet_rand,
     "ban rand()/srand()/std::random_device/<random> engines"),
    ("no-wall-clock", scope_wall_clock, check_wall_clock,
     "ban wall-clock reads (system/steady/high_resolution_clock, time())"),
    ("no-unordered", scope_unordered, check_unordered,
     "ban std::unordered_{map,set} in result-affecting subsystems"),
    ("no-raw-libm", scope_raw_libm, check_raw_libm,
     "ban raw std::pow/exp/log outside the blessed math wrappers"),
    ("hot-alloc", scope_everywhere, check_hot_alloc,
     "ban heap allocation inside `// DQCSIM_HOT` functions"),
    ("pragma-once", scope_headers, check_pragma_once,
     "headers must start with #pragma once"),
    ("include-order", scope_hygiene, check_include_order,
     "includes sorted per block, system/project styles not mixed"),
]

RULE_IDS = {r[0] for r in RULES}
META_RULES = ("bad-suppression", "stale-suppression")


# --------------------------------------------------------------------------
# Scrubbing: blank comments and literals, preserving line structure
# --------------------------------------------------------------------------

def scrub_token_mode(text):
    """Replace comment and string/char literal contents with spaces.

    Handles //, /* */, "..." (with escapes), '...', and raw strings
    R"delim(...)delim". Line count and column positions are preserved so
    findings point at real locations.
    """
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string R"delim( ... )delim"? Look back for the R
                # prefix (possibly u8R / uR / UR / LR) ending right here.
                is_raw = False
                if i >= 1 and text[i - 1] == "R":
                    j = i - 2
                    while j >= 0 and text[j] in "uUL8":
                        j -= 1
                    prefix_ok = j < 0 or not (text[j].isalnum()
                                              or text[j] == "_")
                else:
                    prefix_ok = False
                if prefix_ok:
                    m2 = re.match(r'"([^()\\ \n]{0,16})\(', text[i:i + 20])
                    if m2:
                        raw_delim = m2.group(1)
                        is_raw = True
                if is_raw:
                    state = RAW
                else:
                    state = STRING
                out.append('"')
                i += 1
            elif c == "'":
                state = CHAR
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            elif c == "\\" and nxt == "\n":  # line-continued comment
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == CHAR:
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW
            end = ')' + raw_delim + '"'
            if text.startswith(end, i):
                out.append(" " * (len(end) - 1) + '"')
                i += len(end)
                state = NORMAL
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def _load_libclang():
    try:
        from clang import cindex  # noqa: F401
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def scrub_libclang_mode(cindex, path, text):
    """Scrub via the clang token stream: blank COMMENT and LITERAL tokens in
    place. Falls back to the built-in lexer on any parse trouble."""
    tu = cindex.TranslationUnit.from_source(
        path, args=["-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    lines = [list(l) for l in text.split("\n")]
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name
        if kind not in ("COMMENT", "LITERAL"):
            continue
        if kind == "LITERAL" and tok.spelling and \
                tok.spelling[0] not in "\"'" and "\"" not in tok.spelling:
            continue  # numeric literals stay (harmless, keeps columns exact)
        start, end = tok.extent.start, tok.extent.end
        for ln in range(start.line, end.line + 1):
            if ln - 1 >= len(lines):
                continue
            c0 = start.column - 1 if ln == start.line else 0
            c1 = end.column - 1 if ln == end.line else len(lines[ln - 1])
            for col in range(c0, min(c1, len(lines[ln - 1]))):
                lines[ln - 1][col] = " "
    return "\n".join("".join(l) for l in lines)


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------

class Suppression:
    __slots__ = ("line", "rules", "file_wide", "justified", "used")

    def __init__(self, line, rules, file_wide, justified):
        self.line = line
        self.rules = rules
        self.file_wide = file_wide
        self.justified = justified
        self.used = False


def collect_suppressions(path, raw_lines):
    sups, meta = [], []
    for i, text in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(text)
        if not m:
            continue
        file_wide = m.group(1) is not None
        rules = [r.strip() for r in m.group(2).split(",") if r.strip()]
        justification = (m.group(3) or "").strip()
        unknown = [r for r in rules if r not in RULE_IDS]
        if unknown or not rules:
            meta.append(Finding(
                path, i, "bad-suppression",
                f"unknown rule id(s) {unknown or ['<empty>']} in "
                "DQCSIM_LINT_ALLOW (see --list-rules)"))
            continue
        if not justification:
            meta.append(Finding(
                path, i, "bad-suppression",
                "DQCSIM_LINT_ALLOW without a justification — write "
                "`// DQCSIM_LINT_ALLOW(rule): why this is sound`"))
        sups.append(Suppression(i, rules, file_wide, bool(justification)))
    return sups, meta


def apply_suppressions(findings, sups, scrubbed_lines):
    # A line-level ALLOW covers its own line and the next *code* line, so a
    # multi-line justification comment between the ALLOW and the code it
    # excuses does not break the association.
    def next_code_line(after):
        for ln in range(after + 1, len(scrubbed_lines) + 1):
            if scrubbed_lines[ln - 1].strip():
                return ln
        return after

    for f in findings:
        for s in sups:
            if f.rule not in s.rules or not s.justified:
                continue
            if s.file_wide or f.line == s.line or \
                    f.line == next_code_line(s.line):
                f.suppressed = True
                s.used = True
                break


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_file(path, relpath, cindex, force_rules=None):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        return [Finding(relpath, 0, "io-error", str(exc))]

    raw_lines = text.split("\n")
    scrubbed = None
    if cindex is not None:
        try:
            scrubbed = scrub_libclang_mode(cindex, path, text)
        except Exception:
            scrubbed = None
    if scrubbed is None:
        scrubbed = scrub_token_mode(text)
    lines = scrubbed.split("\n")

    findings = []
    for rule_id, scope, check, _ in RULES:
        if force_rules is not None:
            if rule_id not in force_rules:
                continue
        elif not scope(relpath):
            continue
        findings.extend(check(relpath, lines, raw_lines))

    sups, meta = collect_suppressions(relpath, raw_lines)
    apply_suppressions(findings, sups, lines)
    for s in sups:
        if s.justified and not s.used:
            meta.append(Finding(
                relpath, s.line, "stale-suppression",
                f"DQCSIM_LINT_ALLOW({', '.join(s.rules)}) suppresses "
                "nothing — remove it or fix the rule id"))
    return findings + meta


def collect_files(targets, root):
    files = []
    for t in targets:
        full = t if os.path.isabs(t) else os.path.join(root, t)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"dqcsim-lint: no such file or directory: {t}",
                  file=sys.stderr)
            return None
    return files


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dqcsim-lint",
        description="Project-specific determinism & hot-path linter.")
    parser.add_argument("targets", nargs="*", default=[],
                        help="files or directories (relative to --root)")
    parser.add_argument("--root", default=None,
                        help="repo root for scope decisions (default: the "
                             "directory containing this script's parent)")
    parser.add_argument("--force-rules", default=None, metavar="IDS",
                        help="comma-separated rule ids to apply to every "
                             "input file regardless of path scoping "
                             "(fixture/self-test mode)")
    parser.add_argument("--no-libclang", action="store_true",
                        help="skip the libclang scrubber even if available")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the OK summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, _, _, summary in RULES:
            print(f"{rule_id:16} {summary}")
        print(f"{'bad-suppression':16} ALLOW with unknown rule or missing "
              "justification")
        print(f"{'stale-suppression':16} ALLOW that no longer suppresses "
              "anything")
        return 0

    if not args.targets:
        parser.error("no targets; try: tools/dqcsim_lint.py src bench tests")

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    force = None
    if args.force_rules is not None:
        force = {r.strip() for r in args.force_rules.split(",") if r.strip()}
        unknown = force - RULE_IDS
        if unknown:
            parser.error(f"unknown rule ids: {sorted(unknown)}")

    files = collect_files(args.targets, root)
    if files is None:
        return 2

    cindex = None if args.no_libclang else _load_libclang()

    all_findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        all_findings.extend(lint_file(path, rel, cindex, force))

    visible = [f for f in all_findings if not f.suppressed]
    for f in visible:
        print(f)
    suppressed = sum(1 for f in all_findings if f.suppressed)
    if visible:
        print(f"dqcsim-lint: {len(visible)} finding(s) in {len(files)} "
              f"file(s) ({suppressed} suppressed with justification)",
              file=sys.stderr)
        return 1
    if not args.quiet:
        mode = "libclang" if cindex is not None else "token"
        print(f"dqcsim-lint: OK — {len(files)} file(s), 0 findings "
              f"({suppressed} suppressed with justification, {mode} mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
