// Fixture: heap traffic inside an annotated hot function.
#include <memory>
#include <vector>

struct Event {
  int id = 0;
};

// DQCSIM_HOT
int drain(std::vector<Event>& out, int n) {
  auto scratch = std::make_unique<Event[]>(16);
  Event* extra = new Event{n};
  for (int i = 0; i < n; ++i) {
    out.push_back(Event{i});  // unreserved: may reallocate mid-trial
  }
  const int id = extra->id + scratch[0].id;
  delete extra;
  return id;
}
