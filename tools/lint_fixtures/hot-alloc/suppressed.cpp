// Fixture: a hot function whose single append is justified.
#include <vector>

struct Event {
  int id = 0;
};

// DQCSIM_HOT
void record(std::vector<Event>& log, int id) {
  // DQCSIM_LINT_ALLOW(hot-alloc): grows to the high-water mark once per
  // reused workspace; steady state appends into retained capacity.
  log.push_back(Event{id});
}
