// Fixture: a hot function appending into reserved capacity, and an
// unannotated function that may allocate freely (setup-phase code).
#include <memory>
#include <vector>

struct Event {
  int id = 0;
};

// DQCSIM_HOT
void drain(std::vector<Event>& out, int n) {
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(Event{i});  // lands in the reservation above
  }
}

std::unique_ptr<Event> setup() {
  // Not annotated: allocation is fine off the hot path.
  return std::make_unique<Event>();
}
