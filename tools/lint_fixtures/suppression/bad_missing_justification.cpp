// Fixture: an ALLOW without a justification is itself a finding.
#include <unordered_map>

// DQCSIM_LINT_ALLOW(no-unordered)
std::unordered_map<int, int> table;
