// Fixture: an ALLOW naming a rule that does not exist.
// DQCSIM_LINT_ALLOW(no-such-rule): this id is a typo and must be reported.
int value = 0;
