// Fixture: a justified ALLOW that no longer suppresses anything — the
// hash table it once excused was removed, so the exception must go too.
#include <map>

// DQCSIM_LINT_ALLOW(no-unordered): lookup-only cache (stale: it is a map
// now, nothing here trips the rule anymore).
std::map<int, int> table;
