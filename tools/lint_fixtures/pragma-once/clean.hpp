/// \file clean.hpp
/// \brief A leading doc banner is fine; the first code line is the pragma.

#pragma once

struct Guarded {
  int value = 0;
};
