// Fixture: a justified multiple-inclusion header (X-macro table).
// DQCSIM_LINT_ALLOW_FILE(pragma-once): X-macro fragment included many times
// on purpose; a pragma would break every expansion after the first.
DQCSIM_PHASE(Setup)
DQCSIM_PHASE(Drive)
DQCSIM_PHASE(Finalize)
