// Fixture: legacy include guard instead of #pragma once.
#ifndef DQCSIM_FIXTURE_VIOLATE_HPP
#define DQCSIM_FIXTURE_VIOLATE_HPP

struct Guarded {
  int value = 0;
};

#endif  // DQCSIM_FIXTURE_VIOLATE_HPP
