// Fixture: simulation time is a parameter, never read from a clock.
// Identifiers *containing* banned names (cycle_time, downtime) must not
// match, nor may a mention of steady_clock in this comment.
using SimTime = double;

SimTime advance(SimTime now, double cycle_time) {
  const double downtime = 0.0;
  return now + cycle_time + downtime;
}
