// Fixture: file-wide suppression for a profiling translation unit.
// DQCSIM_LINT_ALLOW_FILE(no-wall-clock): profiling scope — wall time is the
// measured quantity and never feeds simulation results.
#include <chrono>

double profile_tick() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
