// Fixture: wall-clock reads inside engine code.
#include <chrono>
#include <ctime>

double elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::high_resolution_clock::now();
  const std::time_t wall = std::time(nullptr);
  return static_cast<double>(wall) +
         std::chrono::duration<double>(t1 - t0).count();
}
