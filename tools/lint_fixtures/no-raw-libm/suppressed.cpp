// Fixture: a justified raw-libm use on a non-result path.
#include <cmath>

double axis_scale(double v) {
  // DQCSIM_LINT_ALLOW(no-raw-libm): report-only axis cosmetics — feeds a
  // human-readable plot scale, never a simulation statistic.
  return std::log10(v);
}
