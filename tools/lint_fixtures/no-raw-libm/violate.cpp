// Fixture: raw transcendentals whose last ulp differs across libm builds.
#include <cmath>

double half_life(double p, int k, double x) {
  const double a = std::pow(2.0, static_cast<double>(k));
  const double b = std::exp(-2.0 * x);
  const double c = std::log(1.0 - p);
  const double d = log1p(-p);  // unqualified spelling must match too
  return a + b + c + d;
}
