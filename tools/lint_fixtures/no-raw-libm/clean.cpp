// Fixture: exact, libm-independent alternatives — std::ldexp scales by a
// power of two exactly, iterated multiply stays bit-stable, and identifiers
// merely containing banned names (explore, prologue, exp_counter) are fine.
// Calls like std::exp(...) in comments must not match either.
#include <cmath>

double half_life(int k, double growth, int n) {
  const double a = std::ldexp(1.0, -k);
  double explore = 1.0;
  int exp_counter = 0;
  for (int i = 0; i < n; ++i) {
    explore *= growth;  // iterated multiply, not std::pow
    ++exp_counter;
  }
  return a * explore + exp_counter;
}
