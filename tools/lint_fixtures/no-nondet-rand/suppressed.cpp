// Fixture: a justified exception — the ALLOW covers the next code line.
#include <random>

unsigned seed_material() {
  // DQCSIM_LINT_ALLOW(no-nondet-rand): entropy harvested once at process
  // start for the CLI's --seed=random convenience flag; never used inside
  // a trial, so replay from the printed seed stays exact.
  std::random_device rd;
  return rd();
}
