// Fixture: deterministic code plus banned tokens hidden in comments and
// string literals — the scrubber must keep all of them from matching.
// A comment mentioning rand() or std::random_device is not a finding.
const char* kDoc = "do not call rand() or srand(7) here";

struct Rng {
  unsigned long long s = 0x9E3779B97F4A7C15ULL;
  unsigned long long next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;  // xorshift: reproducible from the seed (no <random> engine)
  }
};

int draw(Rng& rng) { return static_cast<int>(rng.next() & 0xFF); }
