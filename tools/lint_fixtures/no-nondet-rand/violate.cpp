// Fixture: every line below is a nondeterminism source the lint must flag.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;
  std::mt19937 engine(rd());
  std::srand(42);
  return std::rand() + static_cast<int>(engine());
}
