// Fixture: a justified ordering exception (config macro must precede).
#include "config_macros.hpp"
// DQCSIM_LINT_ALLOW(include-order): config_macros.hpp defines the feature
// test macro the platform header keys on, so it must stay first.
#include "aaa_platform.hpp"
