// Fixture: one unsorted block, then one block mixing styles.
#include <vector>
#include <algorithm>

#include "zeta.hpp"
#include <cstdint>
