// Fixture: own header first, then sorted system block, then sorted
// project block — the blank lines separate the styles.
#include "own_header.hpp"

#include <algorithm>
#include <vector>

#include "alpha/one.hpp"
#include "beta/two.hpp"
