// Fixture: hash containers in a result-affecting subsystem.
#include <string>
#include <unordered_map>
#include <unordered_set>

int tally(const std::unordered_map<std::string, int>& scores) {
  std::unordered_set<int> seen;
  int total = 0;
  for (const auto& [name, value] : scores) {  // iteration order varies!
    if (seen.insert(value).second) total += value;
  }
  return total;
}
