// Fixture: a justified lookup-only hash table.
#include <string>
#include <unordered_map>

int lookup(const char* key) {
  // DQCSIM_LINT_ALLOW(no-unordered): lookup-only cache — never iterated, so
  // hash order cannot reach any result; keyed lookups are order-free.
  static const std::unordered_map<std::string, int> kTable = {{"x", 1}};
  const auto it = kTable.find(key);
  return it == kTable.end() ? 0 : it->second;
}
