// Fixture: ordered containers traverse deterministically. The comment may
// mention unordered_map without tripping the rule.
#include <map>
#include <set>
#include <string>

int tally(const std::map<std::string, int>& scores) {
  std::set<int> seen;
  int total = 0;
  for (const auto& [name, value] : scores) {
    if (seen.insert(value).second) total += value;
  }
  return total;
}
