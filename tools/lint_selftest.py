#!/usr/bin/env python3
"""Self-tests for tools/dqcsim_lint.py, driven by the fixture snippets under
tools/lint_fixtures/. One directory per rule, three snippets each: one that
must violate the rule, one that must be clean (including banned tokens hidden
in comments/strings, which exercises the scrubber), and one whose violation
is suppressed with a justified DQCSIM_LINT_ALLOW. The suppression/ directory
covers the meta rules (bad-suppression, stale-suppression).

Plain-assert runner, registered with ctest as `lint_selftest` — no pytest
dependency, mirroring ci/check_links.py and ci/check_bench_regression.py.

Usage: python3 tools/lint_selftest.py [--verbose]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import dqcsim_lint  # noqa: E402

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(TOOLS_DIR, "lint_fixtures")

failures = []
checks = 0


def run_fixture(rule, name):
    path = os.path.join(FIXTURES, rule, name)
    assert os.path.isfile(path), f"missing fixture {path}"
    findings = dqcsim_lint.lint_file(
        path, os.path.relpath(path, os.path.dirname(TOOLS_DIR)),
        cindex=None, force_rules={rule} if rule != "suppression" else set())
    return findings


def expect(cond, message):
    global checks
    checks += 1
    if not cond:
        failures.append(message)


def rule_ids(findings, suppressed=False):
    return sorted({f.rule for f in findings if f.suppressed == suppressed})


# ---- per-rule fixtures ----------------------------------------------------

RULE_DIRS = ["no-nondet-rand", "no-wall-clock", "no-unordered",
             "no-raw-libm", "hot-alloc", "pragma-once", "include-order"]

VIOLATE_NAMES = {"pragma-once": "violate.hpp"}
CLEAN_NAMES = {"pragma-once": "clean.hpp"}
SUPPRESSED_NAMES = {"pragma-once": "suppressed.hpp"}

# Minimum number of distinct violation lines each violate fixture must hit
# (every banned construct in the snippet must be caught, not just the first).
MIN_VIOLATIONS = {
    "no-nondet-rand": 4,   # random_device, mt19937, srand, rand
    "no-wall-clock": 3,    # steady_clock, high_resolution_clock, time()
    "no-unordered": 2,     # unordered_map, unordered_set
    "no-raw-libm": 4,      # pow, exp, log, unqualified log1p
    "hot-alloc": 3,        # make_unique, new, unreserved push_back
    "pragma-once": 1,
    "include-order": 2,    # unsorted block + mixed-style block
}

for rule in RULE_DIRS:
    findings = run_fixture(rule, VIOLATE_NAMES.get(rule, "violate.cpp"))
    visible = [f for f in findings if not f.suppressed]
    expect(rule_ids(findings) == [rule],
           f"{rule}/violate: expected only [{rule}] findings, "
           f"got {rule_ids(findings)}")
    expect(len(visible) >= MIN_VIOLATIONS[rule],
           f"{rule}/violate: expected >= {MIN_VIOLATIONS[rule]} findings, "
           f"got {len(visible)}: {[str(f) for f in visible]}")

    findings = run_fixture(rule, CLEAN_NAMES.get(rule, "clean.cpp"))
    expect(findings == [],
           f"{rule}/clean: expected no findings, "
           f"got {[str(f) for f in findings]}")

    findings = run_fixture(rule, SUPPRESSED_NAMES.get(rule,
                                                      "suppressed.cpp"))
    visible = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    expect(visible == [],
           f"{rule}/suppressed: expected every finding suppressed (and no "
           f"stale-suppression), got {[str(f) for f in visible]}")
    expect(len(suppressed) >= 1,
           f"{rule}/suppressed: the ALLOW should have matched a finding")

# ---- suppression meta rules ----------------------------------------------

findings = run_fixture("suppression", "bad_missing_justification.cpp")
expect("bad-suppression" in rule_ids(findings),
       "missing-justification ALLOW must yield bad-suppression, got "
       f"{rule_ids(findings)}")

findings = run_fixture("suppression", "bad_unknown_rule.cpp")
expect("bad-suppression" in rule_ids(findings),
       "unknown-rule ALLOW must yield bad-suppression, got "
       f"{rule_ids(findings)}")

path = os.path.join(FIXTURES, "suppression", "stale.cpp")
findings = dqcsim_lint.lint_file(
    path, os.path.relpath(path, os.path.dirname(TOOLS_DIR)),
    cindex=None, force_rules={"no-unordered"})
expect(rule_ids(findings) == ["stale-suppression"],
       f"stale ALLOW must yield stale-suppression, got {rule_ids(findings)}")

# ---- CLI behavior ---------------------------------------------------------

rc = dqcsim_lint.main(["--force-rules", "no-unordered", "--quiet",
                       os.path.join(FIXTURES, "no-unordered", "clean.cpp")])
expect(rc == 0, f"CLI on a clean fixture must exit 0, got {rc}")

import contextlib  # noqa: E402
import io  # noqa: E402

buf = io.StringIO()
with contextlib.redirect_stdout(buf), contextlib.redirect_stderr(buf):
    rc = dqcsim_lint.main(
        ["--force-rules", "no-unordered",
         os.path.join(FIXTURES, "no-unordered", "violate.cpp")])
expect(rc == 1, f"CLI on a violating fixture must exit 1, got {rc}")
expect("no-unordered" in buf.getvalue(),
       "CLI output must name the violated rule")

rc = dqcsim_lint.main(["--list-rules"]) if "--verbose" in sys.argv else 0
expect(rc == 0, "--list-rules must exit 0")

# ---- scrubber unit checks -------------------------------------------------

scrub = dqcsim_lint.scrub_token_mode
expect("rand" not in scrub("int x; // rand()\n"),
       "line comments must be scrubbed")
expect("rand" not in scrub("/* rand() \n spans lines */ int x;\n"),
       "block comments must be scrubbed")
expect("rand" not in scrub('const char* s = "rand()";\n'),
       "string literals must be scrubbed")
expect("rand" not in scrub('auto s = R"(rand())";\n'),
       "raw string literals must be scrubbed")
expect("keep_me" in scrub('f("x"); keep_me(1);\n'),
       "code outside literals must survive the scrub")
expect(scrub("a\nb\nc").count("\n") == 2,
       "the scrub must preserve line structure")

if failures:
    for f in failures:
        print(f"FAIL: {f}")
    print(f"lint_selftest: {len(failures)}/{checks} checks failed")
    sys.exit(1)
print(f"lint_selftest: OK — {checks} checks passed")
