/// \file table1_benchmarks.cpp
/// \brief Reproduces the paper's Table I: benchmark properties.
///
/// For each of the 6 benchmarks: qubit count, local/remote two-qubit gate
/// counts under the balanced 2-node partition, one-qubit gate count, and
/// unit-layer circuit depth. Our QAOA instances use different random-graph
/// seeds than the authors', so remote counts match in magnitude rather than
/// exactly; TLIM and QFT are structurally forced and match exactly.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Table I: benchmark properties ===\n\n";

  TablePrinter table(
      {"Name", "#qubits", "#local 2Q", "#remote 2Q", "#1Q", "depth"});
  CsvWriter csv(bench::csv_path("table1_benchmarks"),
                {"name", "qubits", "local_2q", "remote_2q", "oneq", "depth"});

  bench::BenchReport report("table1_benchmarks");
  for (const auto id : gen::all_benchmarks()) {
    Circuit qc(0);
    partition::PartitionResult part;
    report.time_section("table1/build+partition/" + benchmark_name(id), 1,
                        [&] {
                          qc = gen::make_benchmark(id);
                          part = bench::partition2(qc);
                        });
    const auto placement = sched::classify_gates(qc, part.assignment);
    const auto depth = qc.unit_depth();

    table.add_row({benchmark_name(id), TablePrinter::fmt(qc.num_qubits()),
                   TablePrinter::fmt(placement.num_local_2q),
                   TablePrinter::fmt(placement.num_remote_2q),
                   TablePrinter::fmt(placement.num_1q),
                   TablePrinter::fmt(depth)});
    csv.add_row({benchmark_name(id), std::to_string(qc.num_qubits()),
                 std::to_string(placement.num_local_2q),
                 std::to_string(placement.num_remote_2q),
                 std::to_string(placement.num_1q), std::to_string(depth)});
  }
  table.print(std::cout);
  report.write();

  std::cout << "\nPaper reference rows (Table I):\n"
               "  TLIM-32:    300 local / 10 remote / 640 1Q / depth 40\n"
               "  QAOA-r4-32:  52 local / 12 remote /  64 1Q / depth 21\n"
               "  QAOA-r8-32:  91 local / 34 remote /  64 1Q / depth 64\n"
               "  QFT-32:     240 local / 256 remote /  32 1Q / depth 63\n"
               "  QAOA-r4-64: 104 local / 28 remote / 128 1Q / depth 24\n"
               "  QAOA-r8-64: 174 local / 82 remote / 128 1Q / depth 84\n"
               "(QAOA rows use different random-graph instances; TLIM/QFT "
               "are exact.)\n";
  return 0;
}
