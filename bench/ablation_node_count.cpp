/// \file ablation_node_count.cpp
/// \brief Ablation: scaling the interconnect from 2 to 16 QPU nodes.
///
/// The paper evaluates a 2-node system; this extension partitions the same
/// workloads across k nodes (all-to-all links, each node's communication
/// and buffer qubits split evenly across its k-1 links) and measures the
/// compounding cost: more parts means a larger total cut (more remote
/// gates) while every link gets a smaller slice of the generation capacity.
/// The per-node budget is 16 comm + 16 buffer qubits so the widest
/// interconnect (15 links at k = 16) still gets one pair per link.

#include <iostream>
#include <string>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: number of QPU nodes ===\n\n";

  const int runs = bench::runs_from_env();
  bench::BenchReport report("ablation_node_count");
  TablePrinter table({"benchmark", "#nodes", "remote gates", "depth",
                      "rel. ideal", "fidelity"});
  CsvWriter csv(bench::csv_path("ablation_node_count"),
                {"benchmark", "nodes", "remote_gates", "depth_mean",
                 "depth_rel_ideal", "fidelity_mean"});

  for (const auto id :
       {gen::BenchmarkId::QAOA_R8_32, gen::BenchmarkId::QFT_32}) {
    const Circuit qc = gen::make_benchmark(id);
    for (const int nodes : {2, 4, 8, 16}) {
      const auto part = runtime::partition_circuit(qc, nodes);
      const auto placement = sched::classify_gates(qc, part.assignment);

      runtime::ArchConfig config;
      config.num_nodes = nodes;
      // Keep the per-node hardware budget fixed (16 comm + 16 buffer);
      // wider interconnects thin each link.
      config.comm_per_node = 16;
      config.buffer_per_node = 16;
      config.record_arrival_trace = false;  // Monte-Carlo sweep: no Fig. 3
      const double ideal = runtime::ideal_depth(qc, config);
      runtime::AggregateResult agg;
      report.time_section(
          benchmark_name(id) + "/nodes=" + std::to_string(nodes),
          static_cast<std::size_t>(runs), [&] {
            agg = runtime::run_design(qc, part.assignment, config,
                                      runtime::DesignKind::AsyncBuf, runs);
          });
      table.add_row({benchmark_name(id), TablePrinter::fmt(nodes),
                     TablePrinter::fmt(placement.num_remote_2q),
                     TablePrinter::fmt(agg.depth.mean(), 1),
                     TablePrinter::fmt(agg.depth.mean() / ideal, 2),
                     TablePrinter::fmt(agg.fidelity.mean(), 4)});
      csv.add_row({benchmark_name(id), std::to_string(nodes),
                   std::to_string(placement.num_remote_2q),
                   TablePrinter::fmt(agg.depth.mean(), 3),
                   TablePrinter::fmt(agg.depth.mean() / ideal, 4),
                   TablePrinter::fmt(agg.fidelity.mean(), 5)});
    }
  }
  table.print(std::cout);
  report.write();

  std::cout << "\nExpected shape: both the remote-gate count (larger total "
               "cut) and the per-link scarcity (fixed comm budget split "
               "k-1 ways) grow with the node count, so depth rises "
               "superlinearly and fidelity falls; this quantifies why the "
               "paper's 2-node sweet spot matters.\n";
  return 0;
}
