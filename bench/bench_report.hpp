/// \file bench_report.hpp
/// \brief Machine-readable benchmark reports: every bench executable emits
/// a BENCH_<name>.json next to its console output so CI (and humans) can
/// track the repo's performance trajectory over time.
///
/// Schema (schema_version 1):
/// \code{.json}
/// {
///   "report": "perf_micro",
///   "schema_version": 1,
///   "kernels": [
///     {"name": "BM_SvApplyCircuitFused_QFT/16", "ns_per_op": 1234.5,
///      "items_per_s": 2.1e6, "iterations": 512, "label": ""}
///   ]
/// }
/// \endcode
///
/// `ns_per_op` is wall time per benchmark iteration; `items_per_s` is the
/// bench's own throughput notion (gates/s, runs/s, ...; 0 when untracked).
/// CI's bench-smoke job diffs these files against ci/bench_baseline.json
/// (see ci/check_bench_regression.py).

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dqcsim::bench {

/// One measured kernel/section.
struct KernelResult {
  std::string name;
  double ns_per_op = 0.0;
  double items_per_s = 0.0;
  double iterations = 0.0;
  std::string label;
  /// Extra named metrics (e.g. allocs_per_op); emitted as a JSON object
  /// when non-empty.
  std::vector<std::pair<std::string, double>> counters;
};

/// Accumulates kernel results and writes BENCH_<name>.json.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void add(KernelResult result);

  /// Time one call of `fn` as a section named `name`; `items` scales the
  /// items/s throughput (ns_per_op is per item when items > 0).
  template <typename F>
  void time_section(const std::string& name, std::size_t items, F&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    KernelResult r;
    r.name = name;
    r.iterations = 1.0;
    if (items > 0) {
      r.ns_per_op = ns / static_cast<double>(items);
      r.items_per_s = static_cast<double>(items) / (ns * 1e-9);
    } else {
      r.ns_per_op = ns;
    }
    add(std::move(r));
  }

  const std::vector<KernelResult>& results() const noexcept {
    return results_;
  }

  /// "BENCH_<name>.json" in the working directory.
  std::string path() const;

  /// Write the JSON report and print a one-line note to stdout.
  void write() const;

 private:
  std::string name_;
  std::vector<KernelResult> results_;
};

}  // namespace dqcsim::bench
