/// \file ablation_consume_order.cpp
/// \brief Ablation of the buffered-pair consumption order (DESIGN.md
/// "Pair consumption order").
///
/// The paper does not specify which buffered pair a remote gate consumes.
/// dqcsim defaults to freshest-first, which realizes the paper's §V-B
/// observation that pairs are consumed "immediately after generation,
/// maintaining high fidelity"; oldest-first (FIFO) is the naive alternative
/// that drags the whole standing stock's age into every consumed pair.
/// Depth is unaffected (same pair counts); fidelity is not.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: buffered-pair consumption order ===\n\n";

  TablePrinter table({"benchmark", "design", "order", "depth", "fidelity",
                      "avg pair age"});
  CsvWriter csv(bench::csv_path("ablation_consume_order"),
                {"benchmark", "design", "order", "depth_mean",
                 "fidelity_mean", "avg_pair_age_mean"});

  for (const auto id :
       {gen::BenchmarkId::TLIM_32, gen::BenchmarkId::QAOA_R8_32}) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = bench::partition2(qc);
    for (const auto design :
         {runtime::DesignKind::SyncBuf, runtime::DesignKind::InitBuf}) {
      for (const bool freshest : {true, false}) {
        runtime::ArchConfig config;
        config.consume_freshest = freshest;
        const auto agg = runtime::run_design(qc, part.assignment, config,
                                             design, bench::kRuns);
        const std::string order = freshest ? "freshest" : "oldest";
        table.add_row({benchmark_name(id), design_name(design), order,
                       TablePrinter::fmt(agg.depth.mean(), 1),
                       TablePrinter::fmt(agg.fidelity.mean(), 4),
                       TablePrinter::fmt(agg.avg_pair_age.mean(), 2)});
        csv.add_row({benchmark_name(id), design_name(design), order,
                     TablePrinter::fmt(agg.depth.mean(), 3),
                     TablePrinter::fmt(agg.fidelity.mean(), 5),
                     TablePrinter::fmt(agg.avg_pair_age.mean(), 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: identical depth for both orders; "
               "freshest-first yields lower consumed-pair age and hence "
               "higher fidelity whenever a standing buffer stock exists "
               "(TLIM's demand-light link, init_buf's pre-filled pairs).\n";
  return 0;
}
