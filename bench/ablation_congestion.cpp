/// \file ablation_congestion.cpp
/// \brief Ablation: edge-capacity contention and swap-as-you-go delivery.
///
/// Two sweeps isolate what the opt-in contention modes change:
///
///  1. Star-hub sharing (star(8), 28 comm + 28 buffer qubits per node, so
///     every hub edge owns 4 pairs): k in {1, 2, 4, 6} logical routes all
///     crossing the hub-leaf edge of node 1. The legacy engine lets every
///     route draw the edge's full budget concurrently — hub throughput is
///     k-independent. With ArchConfig::share_edge_capacity the k routes
///     split the 4 pairs, so depth grows with the route count; the ratio
///     column is the congestion penalty the legacy numbers hide.
///
///  2. Chain@16 delivery model (chain(16), end-to-end and half-length
///     traffic): the composed model generates all hops of a route within
///     one attempt window (success p_succ^hops — the ablation_topology
///     chain@16 cliff), while ArchConfig::swap_as_you_go buffers pairs at
///     intermediate nodes and fuses on demand, one buffered pair per hop.
///     The composed rows cap their trial count (the cliff makes each run
///     ~1e5 windows); the ratio is the headline speedup.
///
/// All results derive from fixed seeds, so the depth/fidelity counters are
/// bit-stable across machines and CI gates them exactly against
/// ci/bench_baseline.json (timing gates are widened via gate_threshold).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dqcsim;

/// k remote pairs all routed through the hub edge of node 1: qubit 0 sits
/// on node 1 and talks to one qubit on each of nodes 2 .. k+1.
Circuit hub_circuit(int k) {
  Circuit qc(k + 1);
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 1; i <= k; ++i) qc.rzz(0, i, 0.1);
  }
  return qc;
}

std::vector<int> hub_assignment(int k) {
  std::vector<int> nodes(static_cast<std::size_t>(k) + 1);
  nodes[0] = 1;
  for (int i = 1; i <= k; ++i) nodes[static_cast<std::size_t>(i)] = i + 1;
  return nodes;
}

/// Long-haul chain traffic: one qubit per node, an end-to-end pair and a
/// half-length pair (13 and 11 hops on chain(16)).
Circuit chain_circuit(int nodes) {
  Circuit qc(nodes);
  for (int rep = 0; rep < 2; ++rep) {
    qc.rzz(0, nodes - 3, 0.1);
    qc.rzz(2, nodes - 1, 0.1);
  }
  return qc;
}

struct Cell {
  runtime::AggregateResult agg;
  double ns_per_run = 0.0;
};

Cell run_cell(const Circuit& qc, const std::vector<int>& nodes,
              const runtime::ArchConfig& config, int runs) {
  Cell cell;
  const auto t0 = std::chrono::steady_clock::now();
  cell.agg = runtime::run_design(qc, nodes, config,
                                 runtime::DesignKind::AsyncBuf, runs);
  const auto t1 = std::chrono::steady_clock::now();
  cell.ns_per_run =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(runs);
  return cell;
}

void add_kernel(bench::BenchReport& report, const std::string& name,
                const Cell& cell, int runs) {
  bench::KernelResult r;
  r.name = name;
  std::cerr << name << ": " << (cell.ns_per_run * 1e-6) << " ms/run\n";
  r.iterations = 1.0;
  r.ns_per_op = cell.ns_per_run;
  r.items_per_s = 1e9 / cell.ns_per_run;
  r.counters = {{"depth_mean", cell.agg.depth.mean()},
                {"fidelity_mean", cell.agg.fidelity.mean()},
                {"max_edge_load_mean", cell.agg.max_edge_load.mean()}};
  report.add(std::move(r));
  (void)runs;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: edge contention & swap-as-you-go ===\n\n";

  const int runs = bench::runs_from_env();
  bench::BenchReport report("ablation_congestion");

  // ---- sweep 1: star-hub capacity sharing --------------------------------
  TablePrinter star_table({"routes", "depth indep", "depth shared", "ratio",
                           "hub load", "fid indep", "fid shared"});
  CsvWriter star_csv(
      bench::csv_path("ablation_congestion_star"),
      {"routes", "depth_independent", "depth_shared", "depth_ratio",
       "max_edge_load", "fidelity_independent", "fidelity_shared"});

  for (const int k : {1, 2, 4, 6}) {
    const Circuit qc = hub_circuit(k);
    const std::vector<int> nodes = hub_assignment(k);
    runtime::ArchConfig config;
    config.num_nodes = 8;
    config.comm_per_node = 28;  // hub degree 7 -> 4 pairs per hub edge
    config.buffer_per_node = 28;
    config.record_arrival_trace = false;
    config.set_topology(net::Topology::star(8));

    const Cell indep = run_cell(qc, nodes, config, runs);
    config.share_edge_capacity = true;
    const Cell shared = run_cell(qc, nodes, config, runs);

    const std::string tag = "star8/routes=" + std::to_string(k);
    add_kernel(report, tag + "/independent", indep, runs);
    add_kernel(report, tag + "/shared", shared, runs);

    const double ratio = shared.agg.depth.mean() / indep.agg.depth.mean();
    star_table.add_row({TablePrinter::fmt(k),
                        TablePrinter::fmt(indep.agg.depth.mean(), 1),
                        TablePrinter::fmt(shared.agg.depth.mean(), 1),
                        TablePrinter::fmt(ratio, 2),
                        TablePrinter::fmt(shared.agg.max_edge_load.mean(), 0),
                        TablePrinter::fmt(indep.agg.fidelity.mean(), 4),
                        TablePrinter::fmt(shared.agg.fidelity.mean(), 4)});
    star_csv.add_row({std::to_string(k),
                      TablePrinter::fmt(indep.agg.depth.mean(), 3),
                      TablePrinter::fmt(shared.agg.depth.mean(), 3),
                      TablePrinter::fmt(ratio, 4),
                      TablePrinter::fmt(shared.agg.max_edge_load.mean(), 0),
                      TablePrinter::fmt(indep.agg.fidelity.mean(), 5),
                      TablePrinter::fmt(shared.agg.fidelity.mean(), 5)});
  }
  std::cout << "Star-hub capacity sharing (star(8), 4 pairs per hub edge):\n";
  star_table.print(std::cout);

  // ---- sweep 2: chain@16 composed vs swap-as-you-go ----------------------
  TablePrinter chain_table({"mode", "runs", "depth", "fidelity",
                            "avg hops", "rel. composed"});
  CsvWriter chain_csv(bench::csv_path("ablation_congestion_chain"),
                      {"mode", "runs", "depth_mean", "fidelity_mean",
                       "avg_route_hops", "depth_rel_composed"});

  const int chain_nodes = 16;
  const Circuit qc = chain_circuit(chain_nodes);
  std::vector<int> nodes(chain_nodes);
  for (int i = 0; i < chain_nodes; ++i) nodes[static_cast<std::size_t>(i)] = i;
  runtime::ArchConfig config;
  config.num_nodes = chain_nodes;
  config.comm_per_node = 16;
  config.buffer_per_node = 16;
  config.record_arrival_trace = false;
  config.set_topology(net::Topology::chain(chain_nodes));

  // The composed rows pay the p_succ^hops cliff (~0.4^13 per window): cap
  // their trial count so the sweep stays minutes, not hours, at the full
  // paper run count.
  const int composed_runs = std::min(runs, 4);
  if (composed_runs < runs) {
    std::cerr << "composed rows capped at " << composed_runs << " of " << runs
              << " runs (p_succ^hops cliff)\n";
  }
  const Cell composed = run_cell(qc, nodes, config, composed_runs);
  config.swap_as_you_go = true;
  const Cell swap_go = run_cell(qc, nodes, config, runs);

  add_kernel(report, "chain16/composed", composed, composed_runs);
  add_kernel(report, "chain16/swap_as_you_go", swap_go, runs);

  const double speedup = composed.agg.depth.mean() / swap_go.agg.depth.mean();
  chain_table.add_row({"composed", TablePrinter::fmt(composed_runs),
                       TablePrinter::fmt(composed.agg.depth.mean(), 1),
                       TablePrinter::fmt(composed.agg.fidelity.mean(), 4),
                       TablePrinter::fmt(composed.agg.avg_route_hops.mean(), 1),
                       "1.00"});
  chain_table.add_row({"swap_as_you_go", TablePrinter::fmt(runs),
                       TablePrinter::fmt(swap_go.agg.depth.mean(), 1),
                       TablePrinter::fmt(swap_go.agg.fidelity.mean(), 4),
                       TablePrinter::fmt(swap_go.agg.avg_route_hops.mean(), 1),
                       TablePrinter::fmt(1.0 / speedup, 4)});
  chain_csv.add_row({"composed", std::to_string(composed_runs),
                     TablePrinter::fmt(composed.agg.depth.mean(), 3),
                     TablePrinter::fmt(composed.agg.fidelity.mean(), 5),
                     TablePrinter::fmt(composed.agg.avg_route_hops.mean(), 2),
                     "1.0"});
  chain_csv.add_row({"swap_as_you_go", std::to_string(runs),
                     TablePrinter::fmt(swap_go.agg.depth.mean(), 3),
                     TablePrinter::fmt(swap_go.agg.fidelity.mean(), 5),
                     TablePrinter::fmt(swap_go.agg.avg_route_hops.mean(), 2),
                     TablePrinter::fmt(1.0 / speedup, 6)});

  std::cout << "\nChain@16 delivery model (composed window vs buffered "
               "swap-as-you-go):\n";
  chain_table.print(std::cout);
  std::cout << "\nswap-as-you-go depth speedup over the composed model: "
            << TablePrinter::fmt(speedup, 1) << "x\n";
  report.write();

  std::cout << "\nExpected shape: shared capacity leaves the single-route "
               "star untouched and degrades hub throughput as routes pile "
               "onto one edge; swap-as-you-go collapses the composed "
               "model's exponential chain@16 depth cliff while paying the "
               "same swap-chain fidelity cost.\n";
  return 0;
}
