/// \file bench_util.hpp
/// \brief Shared helpers for the reproduction harness: configuration echo
/// (paper Table II), standard run loops, and CSV output locations.

#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "dqcsim.hpp"

namespace dqcsim::bench {

/// Number of stochastic runs per configuration (the paper averages 50).
inline constexpr int kRuns = 50;

/// kRuns unless the DQCSIM_BENCH_RUNS environment variable overrides it
/// (CI smoke jobs run the sweep shape at a reduced trial count).
inline int runs_from_env() {
  if (const char* env = std::getenv("DQCSIM_BENCH_RUNS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  return kRuns;
}

/// Evaluate `designs` on one configuration through the batched matrix API:
/// all design x seed cells share one thread pool, so the whole sweep runs
/// at full machine width. Element i corresponds to designs[i].
inline std::vector<runtime::AggregateResult> run_designs(
    const Circuit& qc, const std::vector<int>& assignment,
    const runtime::ArchConfig& config,
    const std::vector<runtime::DesignKind>& designs, int runs = kRuns) {
  std::vector<runtime::DesignPoint> points;
  points.reserve(designs.size());
  for (const auto design : designs) points.push_back({design, config});
  return runtime::run_design_matrix(qc, assignment, points, runs);
}

/// run_designs with the wall time recorded in `report` under `section`
/// (items = design x seed cells), so every figure leaves a BENCH_*.json
/// perf trajectory alongside its CSV.
inline std::vector<runtime::AggregateResult> run_designs_timed(
    BenchReport& report, const std::string& section, const Circuit& qc,
    const std::vector<int>& assignment, const runtime::ArchConfig& config,
    const std::vector<runtime::DesignKind>& designs, int runs = kRuns) {
  std::vector<runtime::AggregateResult> out;
  report.time_section(
      section, static_cast<std::size_t>(runs) * designs.size(),
      [&] { out = run_designs(qc, assignment, config, designs, runs); });
  return out;
}

/// Print the Table II operation properties actually in effect, so every
/// bench is self-describing.
inline void print_config(const runtime::ArchConfig& config,
                         std::ostream& os = std::cout) {
  TablePrinter t({"operation", "latency [t_CNOT]", "fidelity"});
  t.add_row({"1Q gate", TablePrinter::fmt(config.lat.one_qubit, 1),
             TablePrinter::fmt(config.fid.one_qubit, 4)});
  t.add_row({"local CNOT", TablePrinter::fmt(config.lat.local_cnot, 1),
             TablePrinter::fmt(config.fid.local_cnot, 4)});
  t.add_row({"measurement", TablePrinter::fmt(config.lat.measurement, 1),
             TablePrinter::fmt(config.fid.measurement, 4)});
  t.add_row({"EPR generation cycle", TablePrinter::fmt(config.lat.epr_cycle, 1),
             TablePrinter::fmt(config.fid.epr_f0, 4)});
  os << "System configuration (paper Table II; p_succ = "
     << TablePrinter::fmt(config.p_succ, 2)
     << ", kappa = " << TablePrinter::fmt(config.kappa, 4) << " per unit, "
     << config.comm_per_node << " comm + " << config.buffer_per_node
     << " buffer qubits/node):\n";
  t.print(os);
  os << '\n';
}

/// Standard partition of a benchmark circuit onto 2 nodes.
inline partition::PartitionResult partition2(const Circuit& qc) {
  return runtime::partition_circuit(qc, 2);
}

/// Where benches drop machine-readable copies of their tables.
inline std::string csv_path(const std::string& name) {
  return name + ".csv";
}

}  // namespace dqcsim::bench
