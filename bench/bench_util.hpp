/// \file bench_util.hpp
/// \brief Shared helpers for the reproduction harness: configuration echo
/// (paper Table II), standard run loops, and CSV output locations.

#pragma once

#include <iostream>
#include <string>

#include "dqcsim.hpp"

namespace dqcsim::bench {

/// Number of stochastic runs per configuration (the paper averages 50).
inline constexpr int kRuns = 50;

/// Print the Table II operation properties actually in effect, so every
/// bench is self-describing.
inline void print_config(const runtime::ArchConfig& config,
                         std::ostream& os = std::cout) {
  TablePrinter t({"operation", "latency [t_CNOT]", "fidelity"});
  t.add_row({"1Q gate", TablePrinter::fmt(config.lat.one_qubit, 1),
             TablePrinter::fmt(config.fid.one_qubit, 4)});
  t.add_row({"local CNOT", TablePrinter::fmt(config.lat.local_cnot, 1),
             TablePrinter::fmt(config.fid.local_cnot, 4)});
  t.add_row({"measurement", TablePrinter::fmt(config.lat.measurement, 1),
             TablePrinter::fmt(config.fid.measurement, 4)});
  t.add_row({"EPR generation cycle", TablePrinter::fmt(config.lat.epr_cycle, 1),
             TablePrinter::fmt(config.fid.epr_f0, 4)});
  os << "System configuration (paper Table II; p_succ = "
     << TablePrinter::fmt(config.p_succ, 2)
     << ", kappa = " << TablePrinter::fmt(config.kappa, 4) << " per unit, "
     << config.comm_per_node << " comm + " << config.buffer_per_node
     << " buffer qubits/node):\n";
  t.print(os);
  os << '\n';
}

/// Standard partition of a benchmark circuit onto 2 nodes.
inline partition::PartitionResult partition2(const Circuit& qc) {
  return runtime::partition_circuit(qc, 2);
}

/// Where benches drop machine-readable copies of their tables.
inline std::string csv_path(const std::string& name) {
  return name + ".csv";
}

}  // namespace dqcsim::bench
