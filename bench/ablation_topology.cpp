/// \file ablation_topology.cpp
/// \brief Ablation: physical interconnect topology x node count.
///
/// Sweeps {all-to-all, chain, ring, grid, star} x {4, 8, 16} QPU nodes on
/// the 32-qubit QAOA and QFT workloads. Every topology gets the same
/// per-node hardware budget (16 comm + 16 buffer qubits, split across each
/// node's physical links), so the comparison isolates the interconnect
/// shape: sparse topologies get fatter per-link generation capacity but
/// route non-adjacent traffic through multi-hop entanglement swaps (lower
/// end-to-end fidelity, swap-chain latency), while all-to-all spreads the
/// budget thin across direct links. Partitions are topology-aware
/// (runtime::partition_circuit(circuit, topology)): heavily communicating
/// parts land on adjacent QPUs.
///
/// Caveat: this sweep runs the legacy independent-budget engine, where
/// routed logical links do not share physical-edge capacity (see
/// net/swap.hpp), so the sparse-topology numbers are optimistic for
/// congestion-prone shapes — the star hub and chain bottleneck rows show
/// the routing/fidelity cost, not queueing contention on shared edges.
/// The opt-in ArchConfig knobs (share_edge_capacity, swap_as_you_go)
/// model the contention and the buffered delivery that removes the
/// chain@16 p_succ^hops cliff; ablation_congestion.cpp measures both.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dqcsim;

net::Topology make_topology(const std::string& name, int nodes) {
  if (name == "all_to_all") return net::Topology::all_to_all(nodes);
  if (name == "chain") return net::Topology::chain(nodes);
  if (name == "ring") return net::Topology::ring(nodes);
  if (name == "star") return net::Topology::star(nodes);
  // Grid: 4 -> 2x2, 8 -> 2x4, 16 -> 4x4.
  return net::Topology::grid(nodes == 16 ? 4 : 2, nodes == 4 ? 2 : 4);
}

}  // namespace

int main() {
  std::cout << "=== Ablation: interconnect topology x node count ===\n\n";

  const int runs = bench::runs_from_env();
  bench::BenchReport report("ablation_topology");
  TablePrinter table({"benchmark", "topology", "#nodes", "remote", "multihop",
                      "avg hops", "swaps/run", "depth", "rel. ideal",
                      "fidelity"});
  CsvWriter csv(bench::csv_path("ablation_topology"),
                {"benchmark", "topology", "nodes", "remote_gates",
                 "multihop_gates", "avg_route_hops", "entanglement_swaps_mean",
                 "depth_mean", "depth_rel_ideal", "fidelity_mean"});

  for (const auto id :
       {gen::BenchmarkId::QAOA_R8_32, gen::BenchmarkId::QFT_32}) {
    const Circuit qc = gen::make_benchmark(id);
    for (const int nodes : {4, 8, 16}) {
      for (const std::string& name :
           {std::string("all_to_all"), std::string("chain"),
            std::string("ring"), std::string("grid"), std::string("star")}) {
        const net::Topology topo = make_topology(name, nodes);
        const auto part = runtime::partition_circuit(qc, topo);
        const auto placement = sched::classify_gates(qc, part.assignment);
        const net::Router router(topo);
        const auto distance = sched::remote_distance_stats(
            qc, part.assignment, placement, router);

        runtime::ArchConfig config;
        config.num_nodes = nodes;
        config.comm_per_node = 16;    // covers the 15 links of 16-node
        config.buffer_per_node = 16;  // all-to-all; sparse shapes get more
        config.record_arrival_trace = false;
        config.set_topology(topo);
        const double ideal = runtime::ideal_depth(qc, config);

        runtime::AggregateResult agg;
        report.time_section(benchmark_name(id) + "/" + name + "/nodes=" +
                                std::to_string(nodes),
                            static_cast<std::size_t>(runs), [&] {
                              agg = runtime::run_design(
                                  qc, part.assignment, config,
                                  runtime::DesignKind::AsyncBuf, runs);
                            });

        table.add_row(
            {benchmark_name(id), name, TablePrinter::fmt(nodes),
             TablePrinter::fmt(placement.num_remote_2q),
             TablePrinter::fmt(distance.multihop_gates),
             TablePrinter::fmt(agg.avg_route_hops.mean(), 2),
             TablePrinter::fmt(agg.entanglement_swaps.mean(), 1),
             TablePrinter::fmt(agg.depth.mean(), 1),
             TablePrinter::fmt(agg.depth.mean() / ideal, 2),
             TablePrinter::fmt(agg.fidelity.mean(), 4)});
        csv.add_row({benchmark_name(id), name, std::to_string(nodes),
                     std::to_string(placement.num_remote_2q),
                     std::to_string(distance.multihop_gates),
                     TablePrinter::fmt(agg.avg_route_hops.mean(), 3),
                     TablePrinter::fmt(agg.entanglement_swaps.mean(), 2),
                     TablePrinter::fmt(agg.depth.mean(), 3),
                     TablePrinter::fmt(agg.depth.mean() / ideal, 4),
                     TablePrinter::fmt(agg.fidelity.mean(), 5)});
      }
    }
  }
  table.print(std::cout);
  report.write();

  std::cout
      << "\nExpected shape: all-to-all minimizes hops but splits the comm "
         "budget across k-1 thin links; chain/ring/grid concentrate "
         "capacity on few links and pay multi-hop swap chains for distant "
         "traffic (fidelity drops with every swap); the star pays the hub: "
         "its degree bounds per-link capacity and every leaf-to-leaf pair "
         "routes through it. Topology-aware partitioning keeps the heavy "
         "node pairs adjacent, so the average route length stays well "
         "below the topology diameter.\n";
  return 0;
}
