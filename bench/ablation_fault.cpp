/// \file ablation_fault.cpp
/// \brief Ablation: link-outage rate x interconnect topology x node count.
///
/// Sweeps stochastic per-edge link failures (scenario::RandomLinkFailures,
/// mean up-time mtbf in {off, 1500, 400} local-CNOT units with a 120-unit
/// repair window) over {chain, ring, grid, star} x {4, 8, 12, 16} QPU nodes
/// on the 32-qubit QAOA workload. Each cell reports the usual depth/fidelity
/// figures of merit plus the fault-scenario accounting: mean route
/// re-establishments per run and mean routeless downtime.
///
/// The nodes=16 cells run under a trial budget
/// (ArchConfig::max_trial_sim_time): on a 16-chain the workload's
/// long-distance pairs compose p_succ ~ 0.4^hops and outages multiply the
/// makespan by the route availability, so the stationary chain@16 baseline
/// alone would run for minutes. The budget truncates those trials at a fixed
/// sim-time horizon (truncated_mean reports the truncated fraction; depth is
/// clamped to the horizon), which keeps the sweep bounded without excluding
/// the cells outright.
///
/// A second sweep exercises degraded-mode delivery: swap-as-you-go per-edge
/// services with mid-flight pair salvage on vs off, over the fault-prone
/// cells. With salvage off, severing a cut edge discards the buffered halves
/// at surviving nodes and the traffic stalls for the repair window; with
/// salvage on, the surviving per-edge stock keeps serving the severed route,
/// so outage downtime (and the depth penalty it causes) strictly shrinks on
/// the cut-edge topologies.
///
/// Expected shape: redundant topologies (ring, grid) absorb most outages by
/// switching the affected logical links to surviving detours — reroutes
/// climb with the outage rate while downtime stays near zero. Cut-edge
/// topologies (chain, star leaves) cannot detour: every failure stalls its
/// traffic for the repair window, so downtime grows with the rate and every
/// reroute is a recovery. Depth degrades accordingly; fidelity additionally
/// pays for the longer detour routes.
///
/// All results derive from fixed seeds, so counters are bit-stable across
/// machines and CI gates them exactly (see ci/bench_baseline.json).

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace dqcsim;

net::Topology make_topology(const std::string& name, int nodes) {
  if (name == "chain") return net::Topology::chain(nodes);
  if (name == "ring") return net::Topology::ring(nodes);
  if (name == "star") return net::Topology::star(nodes);
  // Grid: 4 -> 2x2, 8 -> 2x4, 12 -> 3x4, 16 -> 4x4.
  if (nodes == 16) return net::Topology::grid(4, 4);
  return net::Topology::grid(nodes == 12 ? 3 : 2, nodes == 4 ? 2 : 4);
}

/// Sim-time budget for the nodes=16 cells (see file comment).
constexpr double kBudget16 = 200000.0;

struct CellTiming {
  runtime::AggregateResult agg;
  double ns = 0.0;
};

CellTiming run_cell(const Circuit& qc, const partition::PartitionResult& part,
                    const runtime::ArchConfig& config, int runs) {
  CellTiming out;
  const auto t0 = std::chrono::steady_clock::now();
  out.agg = runtime::run_design(qc, part.assignment, config,
                                runtime::DesignKind::AsyncBuf, runs);
  const auto t1 = std::chrono::steady_clock::now();
  out.ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: outage rate x topology x node count ===\n\n";

  const int runs = bench::runs_from_env();
  bench::BenchReport report("ablation_fault");
  TablePrinter table({"topology", "#nodes", "mtbf", "reroutes/run",
                      "downtime/run", "depth", "fidelity", "trunc"});
  CsvWriter csv(bench::csv_path("ablation_fault"),
                {"benchmark", "topology", "nodes", "mtbf", "reroutes_mean",
                 "outage_downtime_mean", "depth_mean", "fidelity_mean",
                 "truncated_mean"});

  const auto id = gen::BenchmarkId::QAOA_R8_32;
  const Circuit qc = gen::make_benchmark(id);
  for (const int nodes : {4, 8, 12, 16}) {
    for (const std::string& name :
         {std::string("chain"), std::string("ring"), std::string("grid"),
          std::string("star")}) {
      const net::Topology topo = make_topology(name, nodes);
      const auto part = runtime::partition_circuit(qc, topo);

      for (const double mtbf : {0.0, 1500.0, 400.0}) {
        runtime::ArchConfig config;
        config.num_nodes = nodes;
        config.comm_per_node = 16;
        config.buffer_per_node = 16;
        config.record_arrival_trace = false;
        config.set_topology(topo);
        if (nodes == 16) config.max_trial_sim_time = kBudget16;
        if (mtbf > 0.0) {
          scenario::Scenario scn;
          scn.random_failures.mtbf = mtbf;
          scn.random_failures.duration = 120.0;
          config.set_scenario(std::move(scn));
        }

        const CellTiming cell = run_cell(qc, part, config, runs);
        const runtime::AggregateResult& agg = cell.agg;

        bench::KernelResult r;
        r.name = benchmark_name(id) + "/" + name + "/nodes=" +
                 std::to_string(nodes) + "/mtbf=" +
                 std::to_string(static_cast<int>(mtbf));
        std::cerr << r.name << ": " << (cell.ns * 1e-6) << " ms\n";
        r.iterations = 1.0;
        r.ns_per_op = cell.ns / static_cast<double>(runs);
        r.items_per_s = static_cast<double>(runs) / (cell.ns * 1e-9);
        // The distribution tails ride along for report readers (see
        // docs/BENCHMARKS.md); they are deliberately NOT gated in
        // ci/bench_baseline.json, which pins only the established means.
        r.counters = {
            {"reroutes_mean", agg.reroutes.mean()},
            {"outage_downtime_mean", agg.outage_downtime.mean()},
            {"outage_downtime_p50", agg.outage_downtime.quantile(0.5)},
            {"outage_downtime_p99", agg.outage_downtime.quantile(0.99)},
            {"avg_pair_age_p50", agg.avg_pair_age.quantile(0.5)},
            {"avg_pair_age_p99", agg.avg_pair_age.quantile(0.99)},
            {"avg_remote_wait_p50", agg.avg_remote_wait.quantile(0.5)},
            {"avg_remote_wait_p99", agg.avg_remote_wait.quantile(0.99)},
            {"depth_mean", agg.depth.mean()},
            {"fidelity_mean", agg.fidelity.mean()}};
        if (nodes == 16) {
          r.counters.emplace_back("truncated_mean", agg.truncated.mean());
        }
        report.add(std::move(r));

        table.add_row({name, TablePrinter::fmt(nodes),
                       TablePrinter::fmt(static_cast<int>(mtbf)),
                       TablePrinter::fmt(agg.reroutes.mean(), 2),
                       TablePrinter::fmt(agg.outage_downtime.mean(), 1),
                       TablePrinter::fmt(agg.depth.mean(), 1),
                       TablePrinter::fmt(agg.fidelity.mean(), 4),
                       TablePrinter::fmt(agg.truncated.mean(), 2)});
        csv.add_row({benchmark_name(id), name, std::to_string(nodes),
                     TablePrinter::fmt(mtbf, 0),
                     TablePrinter::fmt(agg.reroutes.mean(), 3),
                     TablePrinter::fmt(agg.outage_downtime.mean(), 3),
                     TablePrinter::fmt(agg.depth.mean(), 3),
                     TablePrinter::fmt(agg.fidelity.mean(), 5),
                     TablePrinter::fmt(agg.truncated.mean(), 3)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\n=== Degraded mode: swap-as-you-go pair salvage on/off "
               "===\n\n";
  TablePrinter stable({"topology", "mtbf", "salvage", "salvaged/run",
                       "discarded/run", "downtime/run", "depth"});
  for (const std::string& name : {std::string("chain"), std::string("ring")}) {
    const int nodes = 8;
    const net::Topology topo = make_topology(name, nodes);
    const auto part = runtime::partition_circuit(qc, topo);
    for (const double mtbf : {1500.0, 400.0}) {
      for (const bool salvage : {false, true}) {
        runtime::ArchConfig config;
        config.num_nodes = nodes;
        config.comm_per_node = 16;
        config.buffer_per_node = 16;
        config.record_arrival_trace = false;
        config.set_topology(topo);
        config.swap_as_you_go = true;
        config.salvage_pairs = salvage;
        scenario::Scenario scn;
        scn.random_failures.mtbf = mtbf;
        scn.random_failures.duration = 120.0;
        config.set_scenario(std::move(scn));

        const CellTiming cell = run_cell(qc, part, config, runs);
        const runtime::AggregateResult& agg = cell.agg;

        bench::KernelResult r;
        r.name = benchmark_name(id) + "/" + name + "/nodes=" +
                 std::to_string(nodes) + "/mtbf=" +
                 std::to_string(static_cast<int>(mtbf)) + "/swapgo/salvage=" +
                 (salvage ? "on" : "off");
        std::cerr << r.name << ": " << (cell.ns * 1e-6) << " ms\n";
        r.iterations = 1.0;
        r.ns_per_op = cell.ns / static_cast<double>(runs);
        r.items_per_s = static_cast<double>(runs) / (cell.ns * 1e-9);
        r.counters = {{"pairs_salvaged_mean", agg.pairs_salvaged.mean()},
                      {"pairs_discarded_mean", agg.pairs_discarded.mean()},
                      {"outage_downtime_mean", agg.outage_downtime.mean()},
                      {"depth_mean", agg.depth.mean()},
                      {"fidelity_mean", agg.fidelity.mean()}};
        report.add(std::move(r));

        stable.add_row({name, TablePrinter::fmt(static_cast<int>(mtbf)),
                        salvage ? "on" : "off",
                        TablePrinter::fmt(agg.pairs_salvaged.mean(), 1),
                        TablePrinter::fmt(agg.pairs_discarded.mean(), 1),
                        TablePrinter::fmt(agg.outage_downtime.mean(), 1),
                        TablePrinter::fmt(agg.depth.mean(), 1)});
        csv.add_row({benchmark_name(id), name + "/swapgo/salvage=" +
                     (salvage ? std::string("on") : std::string("off")),
                     std::to_string(nodes), TablePrinter::fmt(mtbf, 0),
                     TablePrinter::fmt(agg.reroutes.mean(), 3),
                     TablePrinter::fmt(agg.outage_downtime.mean(), 3),
                     TablePrinter::fmt(agg.depth.mean(), 3),
                     TablePrinter::fmt(agg.fidelity.mean(), 5),
                     TablePrinter::fmt(agg.truncated.mean(), 3)});
      }
    }
  }
  stable.print(std::cout);
  report.write();

  std::cout << "\nExpected shape: lower mtbf (more frequent outages) raises "
               "reroutes everywhere; redundant shapes (ring, grid) convert "
               "them into live detour switches with near-zero downtime, "
               "while cut-edge shapes (chain, star) stall for the repair "
               "window and accumulate downtime and depth. In the salvage "
               "sweep, salvage=on keeps severed chain routes serving from "
               "surviving per-edge stock, cutting downtime and depth versus "
               "salvage=off at identical fault schedules.\n";
  return 0;
}
