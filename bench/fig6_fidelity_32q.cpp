/// \file fig6_fidelity_32q.cpp
/// \brief Reproduces the paper's Fig. 6: circuit fidelity across designs on
/// the 2-node 32-data-qubit system, averaged over 50 runs. Reports the
/// absolute fidelity estimate, the value relative to the ideal monolithic
/// device, and the remote/idling breakdown driving the differences.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 6: circuit fidelity, 32-qubit benchmarks ===\n\n";
  runtime::ArchConfig config;
  bench::print_config(config);

  TablePrinter table({"benchmark", "design", "fidelity", "rel. ideal",
                      "avg pair age"});
  CsvWriter csv(bench::csv_path("fig6_fidelity_32q"),
                {"benchmark", "design", "fidelity_mean", "fidelity_rel_ideal",
                 "avg_pair_age"});
  bench::BenchReport report("fig6_fidelity_32q");

  for (const auto id : gen::benchmarks_32q()) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = bench::partition2(qc);
    const double ideal = runtime::ideal_fidelity(qc, config);
    const auto aggregates = bench::run_designs_timed(
        report, "fig6/" + benchmark_name(id), qc, part.assignment, config,
        runtime::distributed_designs());

    std::size_t next = 0;
    for (const auto design : runtime::all_designs()) {
      double fid = ideal, age = 0.0;
      if (design != runtime::DesignKind::IdealMono) {
        const auto& agg = aggregates[next++];
        fid = agg.fidelity.mean();
        age = agg.avg_pair_age.mean();
      }
      table.add_row({benchmark_name(id), design_name(design),
                     TablePrinter::fmt(fid, 4),
                     TablePrinter::fmt(fid / ideal, 2),
                     design == runtime::DesignKind::IdealMono
                         ? "-"
                         : TablePrinter::fmt(age, 2)});
      csv.add_row({benchmark_name(id), design_name(design),
                   TablePrinter::fmt(fid, 5), TablePrinter::fmt(fid / ideal, 4),
                   TablePrinter::fmt(age, 3)});
    }
  }
  table.print(std::cout);
  report.write();

  std::cout
      << "\nPaper shape (Fig. 6): original <= sync_buf < async_buf = "
         "adapt_buf; init_buf trails async_buf because pre-initialized pairs "
         "idle in the buffer; all distributed designs sit well below ideal, "
         "catastrophically so for QFT-32.\n";
  return 0;
}
