/// \file fig7_comm_sweep.cpp
/// \brief Reproduces the paper's Fig. 7: QAOA-r8-32 depth as the number of
/// communication and buffer qubits grows (10/10, 15/15, 20/20), for the
/// four buffered designs. The paper's observation: init_buf approaches the
/// ideal depth at 20 communication qubits while fidelity barely moves.

#include <iostream>
#include <iterator>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 7: QAOA-r8-32 vs communication/buffer qubits ===\n\n";

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"#comm=#buff", "design", "depth", "rel. ideal",
                      "fidelity"});
  CsvWriter csv(bench::csv_path("fig7_comm_sweep"),
                {"comm_qubits", "design", "depth_mean", "depth_rel_ideal",
                 "fidelity_mean"});

  const runtime::DesignKind designs[] = {
      runtime::DesignKind::SyncBuf, runtime::DesignKind::AsyncBuf,
      runtime::DesignKind::AdaptBuf, runtime::DesignKind::InitBuf};
  const int comm_counts[] = {10, 15, 20};

  // The whole comm x design grid goes through one run_design_matrix call:
  // every (config, design, seed) cell shares the same thread pool.
  std::vector<runtime::DesignPoint> points;
  for (const int comm : comm_counts) {
    runtime::ArchConfig config;
    config.comm_per_node = comm;
    config.buffer_per_node = comm;
    for (const auto design : designs) points.push_back({design, config});
  }
  bench::BenchReport report("fig7_comm_sweep");
  std::vector<runtime::AggregateResult> aggregates;
  report.time_section("fig7/comm_sweep_matrix",
                      points.size() * static_cast<std::size_t>(bench::kRuns),
                      [&] {
                        aggregates = runtime::run_design_matrix(
                            qc, part.assignment, points, bench::kRuns);
                      });

  // Rows read (design, config) back from the points grid itself, so the
  // result pairing cannot drift from the order the matrix was built in.
  for (std::size_t i = 0; i < points.size(); ++i) {
    const runtime::DesignPoint& point = points[i];
    const auto& agg = aggregates[i];
    const int comm = point.config.comm_per_node;
    const double ideal = runtime::ideal_depth(qc, point.config);
    table.add_row({TablePrinter::fmt(comm), design_name(point.design),
                   TablePrinter::fmt(agg.depth.mean(), 1),
                   TablePrinter::fmt(agg.depth.mean() / ideal, 2),
                   TablePrinter::fmt(agg.fidelity.mean(), 4)});
    csv.add_row({std::to_string(comm), design_name(point.design),
                 TablePrinter::fmt(agg.depth.mean(), 3),
                 TablePrinter::fmt(agg.depth.mean() / ideal, 4),
                 TablePrinter::fmt(agg.fidelity.mean(), 5)});
    if ((i + 1) % std::size(designs) == 0) {
      table.add_row({"", "", "", "", ""});
    }
  }
  table.print(std::cout);
  report.write();

  std::cout << "\nPaper shape (Fig. 7): depth falls as communication/buffer "
               "qubits increase; init_buf is consistently best and "
               "approaches ideal at 20; fidelity is almost unchanged across "
               "the sweep (pairs are consumed immediately).\n";
  return 0;
}
