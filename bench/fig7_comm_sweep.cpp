/// \file fig7_comm_sweep.cpp
/// \brief Reproduces the paper's Fig. 7: QAOA-r8-32 depth as the number of
/// communication and buffer qubits grows (10/10, 15/15, 20/20), for the
/// four buffered designs. The paper's observation: init_buf approaches the
/// ideal depth at 20 communication qubits while fidelity barely moves.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 7: QAOA-r8-32 vs communication/buffer qubits ===\n\n";

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"#comm=#buff", "design", "depth", "rel. ideal",
                      "fidelity"});
  CsvWriter csv(bench::csv_path("fig7_comm_sweep"),
                {"comm_qubits", "design", "depth_mean", "depth_rel_ideal",
                 "fidelity_mean"});

  const runtime::DesignKind designs[] = {
      runtime::DesignKind::SyncBuf, runtime::DesignKind::AsyncBuf,
      runtime::DesignKind::AdaptBuf, runtime::DesignKind::InitBuf};

  for (const int comm : {10, 15, 20}) {
    runtime::ArchConfig config;
    config.comm_per_node = comm;
    config.buffer_per_node = comm;
    const double ideal = runtime::ideal_depth(qc, config);
    for (const auto design : designs) {
      const auto agg = runtime::run_design(qc, part.assignment, config,
                                           design, bench::kRuns);
      table.add_row({TablePrinter::fmt(comm), design_name(design),
                     TablePrinter::fmt(agg.depth.mean(), 1),
                     TablePrinter::fmt(agg.depth.mean() / ideal, 2),
                     TablePrinter::fmt(agg.fidelity.mean(), 4)});
      csv.add_row({std::to_string(comm), design_name(design),
                   TablePrinter::fmt(agg.depth.mean(), 3),
                   TablePrinter::fmt(agg.depth.mean() / ideal, 4),
                   TablePrinter::fmt(agg.fidelity.mean(), 5)});
    }
    table.add_row({"", "", "", "", ""});
  }
  table.print(std::cout);

  std::cout << "\nPaper shape (Fig. 7): depth falls as communication/buffer "
               "qubits increase; init_buf is consistently best and "
               "approaches ideal at 20; fidelity is almost unchanged across "
               "the sweep (pairs are consumed immediately).\n";
  return 0;
}
