/// \file ablation_remote_impl.cpp
/// \brief Ablation: gate teleportation vs state teleportation for remote
/// gates (the paper's §III-D future work, implemented here).
///
/// Gate teleportation consumes one EPR pair per remote gate (Fig. 1(c));
/// the state-teleportation alternative moves the control qubit to the
/// target's node, applies the CNOT locally, and moves it back — two pairs
/// and a longer data-qubit critical path, but a building block that also
/// supports non-teleportable gate sequences. The sweep shows where the
/// doubled entanglement demand dominates.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: remote-gate implementation ===\n\n";

  // The exact gadget fidelities at a fresh pair (context for the tables).
  const noise::TeleportNoiseParams tele;  // Table II noise
  std::cout << "Gadget fidelity at fresh pairs (F0 = 0.99): gate-teleport = "
            << TablePrinter::fmt(noise::teleported_cnot_avg_fidelity(0.99,
                                                                     tele),
                                 4)
            << ", state-teleport round trip = "
            << TablePrinter::fmt(
                   noise::state_teleported_cnot_avg_fidelity(0.99, 0.99, tele),
                   4)
            << "\n\n";

  TablePrinter table({"benchmark", "design", "impl", "depth", "fidelity",
                      "pairs consumed"});
  CsvWriter csv(bench::csv_path("ablation_remote_impl"),
                {"benchmark", "design", "impl", "depth_mean", "fidelity_mean",
                 "epr_consumed"});

  for (const auto id :
       {gen::BenchmarkId::TLIM_32, gen::BenchmarkId::QAOA_R8_32}) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = bench::partition2(qc);
    for (const auto design :
         {runtime::DesignKind::AsyncBuf, runtime::DesignKind::InitBuf}) {
      for (const auto impl : {runtime::RemoteImpl::GateTeleport,
                              runtime::RemoteImpl::StateTeleport}) {
        runtime::ArchConfig config;
        config.remote_impl = impl;
        const auto agg = runtime::run_design(qc, part.assignment, config,
                                             design, bench::kRuns);
        const std::string impl_name =
            impl == runtime::RemoteImpl::GateTeleport ? "gate" : "state";
        const auto placement = sched::classify_gates(qc, part.assignment);
        const std::size_t consumed =
            placement.num_remote_2q *
            static_cast<std::size_t>(config.pairs_per_remote_gate());
        table.add_row({benchmark_name(id), design_name(design), impl_name,
                       TablePrinter::fmt(agg.depth.mean(), 1),
                       TablePrinter::fmt(agg.fidelity.mean(), 4),
                       TablePrinter::fmt(consumed)});
        csv.add_row({benchmark_name(id), design_name(design), impl_name,
                     TablePrinter::fmt(agg.depth.mean(), 3),
                     TablePrinter::fmt(agg.fidelity.mean(), 5),
                     std::to_string(consumed)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: state teleportation doubles the EPR demand "
               "and lengthens the remote critical path, so depth grows — "
               "mildly on TLIM (supply-rich) and strongly on QAOA-r8 "
               "(supply-limited); fidelity drops per gate (two noisy "
               "teleports + a local CNOT beat one teleported CNOT only "
               "never).\n";
  return 0;
}
