/// \file ablation_segment_size.cpp
/// \brief Ablation of the adaptive segment size m (paper §III-D).
///
/// The paper sets m = (#comm qubits) * p_succ = 4 and leaves other values
/// unexplored. This ablation sweeps m for adapt_buf on QAOA-r8-32 and
/// reports depth/fidelity plus the mix of ASAP/ALAP/original decisions the
/// controller makes at each granularity.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: adaptive segment size m (QAOA-r8-32) ===\n\n";

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"m", "depth", "rel. async_buf", "fidelity"});
  CsvWriter csv(bench::csv_path("ablation_segment_size"),
                {"m", "depth_mean", "depth_rel_async", "fidelity_mean"});

  // Non-adaptive async_buf is the reference (equivalent to m = infinity
  // with the original schedule everywhere).
  runtime::ArchConfig base;
  const auto async_ref = runtime::run_design(
      qc, part.assignment, base, runtime::DesignKind::AsyncBuf, bench::kRuns);
  const double ref_depth = async_ref.depth.mean();

  for (const std::size_t m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    runtime::ArchConfig config;
    config.segment_size = m;
    const auto agg = runtime::run_design(qc, part.assignment, config,
                                         runtime::DesignKind::AdaptBuf,
                                         bench::kRuns);
    table.add_row({TablePrinter::fmt(static_cast<std::size_t>(m)),
                   TablePrinter::fmt(agg.depth.mean(), 1),
                   TablePrinter::fmt(agg.depth.mean() / ref_depth, 3),
                   TablePrinter::fmt(agg.fidelity.mean(), 4)});
    csv.add_row({std::to_string(m), TablePrinter::fmt(agg.depth.mean(), 3),
                 TablePrinter::fmt(agg.depth.mean() / ref_depth, 4),
                 TablePrinter::fmt(agg.fidelity.mean(), 5)});
  }
  table.print(std::cout);
  std::cout << "\nReference: async_buf (no adaptation) depth = "
            << TablePrinter::fmt(ref_depth, 1)
            << ". The paper's default m = #comm * p_succ = "
            << base.effective_segment_size()
            << " should sit at or near the sweet spot: very small m reacts "
               "per-gate but loses lookahead; very large m degenerates to "
               "the non-adaptive schedule.\n";
  return 0;
}
