/// \file ablation_purification.cpp
/// \brief Ablation: purify-on-consume (BBPSSW) vs raw pair consumption.
///
/// Spending two buffered pairs to distill one better pair trades
/// entanglement rate (and extra local-operation latency) for remote-gate
/// fidelity. The trade only pays when raw pairs are noticeably imperfect,
/// so this sweeps the fresh-pair fidelity F0 on QAOA-r8-32 (init_buf).

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: purify-on-consume (QAOA-r8-32, init_buf) ===\n\n";

  // Gadget-level context: what one BBPSSW round does to a Werner pair.
  std::cout << "BBPSSW round on identical pairs:\n";
  TablePrinter rounds({"F_in", "F_out", "p_success"});
  for (const double f : {0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    const auto out = noise::purify_werner(f, f);
    rounds.add_row({TablePrinter::fmt(f, 2), TablePrinter::fmt(out.fidelity, 4),
                    TablePrinter::fmt(out.success_probability, 3)});
  }
  rounds.print(std::cout);
  std::cout << '\n';

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"F0", "purify", "depth", "fidelity", "remote fid",
                      "failed rounds"});
  CsvWriter csv(bench::csv_path("ablation_purification"),
                {"f0", "purify", "depth_mean", "fidelity_mean",
                 "fidelity_remote", "purification_failures"});

  for (const double f0 : {0.99, 0.95, 0.9, 0.8}) {
    for (const bool purify : {false, true}) {
      runtime::ArchConfig config;
      config.fid.epr_f0 = f0;
      config.purify_on_consume = purify;
      // Remote-fidelity factor needs a representative single run.
      noise::TeleportNoiseParams tele;
      tele.local_2q_fidelity = config.fid.local_cnot;
      tele.local_1q_fidelity = config.fid.one_qubit;
      tele.readout_fidelity = config.fid.measurement;
      const noise::TeleportFidelityModel model(tele);
      runtime::ExecutionEngine probe(qc, part.assignment, config,
                                     runtime::DesignKind::InitBuf, 424242,
                                     &model);
      const auto one = probe.run();

      const auto agg =
          runtime::run_design(qc, part.assignment, config,
                              runtime::DesignKind::InitBuf, bench::kRuns);
      table.add_row({TablePrinter::fmt(f0, 2), purify ? "yes" : "no",
                     TablePrinter::fmt(agg.depth.mean(), 1),
                     TablePrinter::fmt(agg.fidelity.mean(), 4),
                     TablePrinter::fmt(one.fidelity_remote, 4),
                     TablePrinter::fmt(one.purification_failures)});
      csv.add_row({TablePrinter::fmt(f0, 2), purify ? "yes" : "no",
                   TablePrinter::fmt(agg.depth.mean(), 3),
                   TablePrinter::fmt(agg.fidelity.mean(), 5),
                   TablePrinter::fmt(one.fidelity_remote, 5),
                   TablePrinter::fmt(one.purification_failures)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: at F0 = 0.99 purification only costs — "
               "~3x depth (doubled demand + pair-matching dwell) and a "
               "remote-fidelity *loss* because pairs now wait for their "
               "distillation partner; as F0 falls the raw remote-fidelity "
               "product collapses faster than the purified one and the "
               "trade flips — the crossover sits between F0 = 0.95 and "
               "0.90 for this workload.\n";
  return 0;
}
