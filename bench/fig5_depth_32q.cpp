/// \file fig5_depth_32q.cpp
/// \brief Reproduces the paper's Fig. 5: circuit depth across designs on the
/// 2-node 32-data-qubit system (10 comm + 10 buffer qubits per node),
/// averaged over 50 runs. Depth is reported in local-CNOT units, absolute
/// and relative to the ideal monolithic execution.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 5: circuit depth, 32-qubit benchmarks ===\n\n";
  runtime::ArchConfig config;  // paper defaults
  bench::print_config(config);

  TablePrinter table({"benchmark", "design", "depth", "rel. ideal",
                      "ci95", "EPR wasted"});
  CsvWriter csv(bench::csv_path("fig5_depth_32q"),
                {"benchmark", "design", "depth_mean", "depth_rel_ideal",
                 "depth_ci95", "epr_wasted"});
  bench::BenchReport report("fig5_depth_32q");

  for (const auto id : gen::benchmarks_32q()) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = bench::partition2(qc);
    const double ideal = runtime::ideal_depth(qc, config);
    const auto aggregates = bench::run_designs_timed(
        report, "fig5/" + benchmark_name(id), qc, part.assignment, config,
        runtime::distributed_designs());

    std::size_t next = 0;
    for (const auto design : runtime::all_designs()) {
      double depth_mean = ideal, ci = 0.0, wasted = 0.0;
      if (design != runtime::DesignKind::IdealMono) {
        const auto& agg = aggregates[next++];
        depth_mean = agg.depth.mean();
        ci = agg.depth.ci95_half_width();
        wasted = agg.epr_wasted.mean();
      }
      table.add_row({benchmark_name(id), design_name(design),
                     TablePrinter::fmt(depth_mean, 1),
                     TablePrinter::fmt(depth_mean / ideal, 2),
                     TablePrinter::fmt(ci, 2), TablePrinter::fmt(wasted, 1)});
      csv.add_row({benchmark_name(id), design_name(design),
                   TablePrinter::fmt(depth_mean, 3),
                   TablePrinter::fmt(depth_mean / ideal, 4),
                   TablePrinter::fmt(ci, 3), TablePrinter::fmt(wasted, 2)});
    }
  }
  table.print(std::cout);
  report.write();

  std::cout
      << "\nPaper shape (Fig. 5): original >> sync_buf > async_buf >= "
         "adapt_buf >= init_buf > ideal on every benchmark; buffering gives "
         "the single largest reduction; QAOA-r4-32's init_buf approaches the "
         "ideal depth; QFT-32's bufferless original is the worst case.\n";
  return 0;
}
