/// \file fig8_depth_64q.cpp
/// \brief Reproduces the paper's Fig. 8: circuit depth on the larger 2-node
/// 64-data-qubit system (32 data + 20 comm + 20 buffer qubits per node) for
/// QAOA-r4-64 and QAOA-r8-64, averaged over 50 runs.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 8: circuit depth, 64-qubit benchmarks ===\n\n";

  runtime::ArchConfig config;
  config.comm_per_node = 20;
  config.buffer_per_node = 20;
  bench::print_config(config);

  TablePrinter table({"benchmark", "design", "depth", "rel. ideal", "ci95"});
  CsvWriter csv(bench::csv_path("fig8_depth_64q"),
                {"benchmark", "design", "depth_mean", "depth_rel_ideal",
                 "depth_ci95"});
  bench::BenchReport report("fig8_depth_64q");

  for (const auto id :
       {gen::BenchmarkId::QAOA_R4_64, gen::BenchmarkId::QAOA_R8_64}) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = bench::partition2(qc);
    const double ideal = runtime::ideal_depth(qc, config);
    const auto aggregates = bench::run_designs_timed(
        report, "fig8/" + benchmark_name(id), qc, part.assignment, config,
        runtime::distributed_designs());

    std::size_t next = 0;
    for (const auto design : runtime::all_designs()) {
      double depth = ideal, ci = 0.0;
      if (design != runtime::DesignKind::IdealMono) {
        const auto& agg = aggregates[next++];
        depth = agg.depth.mean();
        ci = agg.depth.ci95_half_width();
      }
      table.add_row({benchmark_name(id), design_name(design),
                     TablePrinter::fmt(depth, 1),
                     TablePrinter::fmt(depth / ideal, 2),
                     TablePrinter::fmt(ci, 2)});
      csv.add_row({benchmark_name(id), design_name(design),
                   TablePrinter::fmt(depth, 3),
                   TablePrinter::fmt(depth / ideal, 4),
                   TablePrinter::fmt(ci, 3)});
    }
  }
  table.print(std::cout);
  report.write();

  std::cout << "\nPaper shape (Fig. 8): the design ordering from Fig. 5 "
               "persists at 64 qubits; init_buf reduces depth vs sync_buf "
               "by roughly 10-15%.\n";
  return 0;
}
