/// \file ablation_cutoff.cpp
/// \brief Ablation of the buffer cut-off policy (paper §III-C).
///
/// The paper motivates asynchronous generation partly by noting that bursty
/// arrivals "lead to excessive waste when we apply a cut-off policy to
/// buffer qubits". This ablation sweeps the cutoff on TLIM-32 (a demand-
/// light workload where pairs actually sit in the buffer) for sync_buf and
/// async_buf, reporting depth, fidelity, expiry waste, and pair age.

#include <iostream>
#include <limits>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: buffer cut-off policy (TLIM-32) ===\n\n";

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::TLIM_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"cutoff", "design", "depth", "fidelity",
                      "expired/run", "avg pair age"});
  CsvWriter csv(bench::csv_path("ablation_cutoff"),
                {"cutoff", "design", "depth_mean", "fidelity_mean",
                 "epr_expired", "avg_pair_age"});

  const double cutoffs[] = {5.0, 10.0, 20.0, 50.0,
                            std::numeric_limits<double>::infinity()};
  for (const double cutoff : cutoffs) {
    for (const auto design :
         {runtime::DesignKind::SyncBuf, runtime::DesignKind::AsyncBuf}) {
      runtime::ArchConfig config;
      config.buffer_cutoff = cutoff;
      const auto agg = runtime::run_design(qc, part.assignment, config,
                                           design, bench::kRuns);
      const std::string cutoff_label =
          std::isinf(cutoff) ? "none" : TablePrinter::fmt(cutoff, 0);
      table.add_row({cutoff_label, design_name(design),
                     TablePrinter::fmt(agg.depth.mean(), 1),
                     TablePrinter::fmt(agg.fidelity.mean(), 4),
                     TablePrinter::fmt(agg.epr_expired.mean(), 1),
                     TablePrinter::fmt(agg.avg_pair_age.mean(), 2)});
      csv.add_row({cutoff_label, design_name(design),
                   TablePrinter::fmt(agg.depth.mean(), 3),
                   TablePrinter::fmt(agg.fidelity.mean(), 5),
                   TablePrinter::fmt(agg.epr_expired.mean(), 2),
                   TablePrinter::fmt(agg.avg_pair_age.mean(), 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper §III-C): tight cutoffs discard more "
               "pairs under synchronous generation than asynchronous (burst "
               "leftovers expire together); consumed-pair age — and hence "
               "remote-gate fidelity — is protected by the cutoff at the "
               "cost of extra expiry waste and (for very tight cutoffs) "
               "longer depth.\n";
  return 0;
}
