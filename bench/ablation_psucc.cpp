/// \file ablation_psucc.cpp
/// \brief Ablation of the entanglement-generation success probability.
///
/// The paper fixes p_succ = 0.4 (§IV-A). Real links span orders of
/// magnitude in heralding efficiency, so this ablation sweeps p_succ on
/// QAOA-r8-32 and shows how the benefit of buffering + asynchrony +
/// adaptivity grows as entanglement becomes scarcer.

#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dqcsim;
  std::cout << "=== Ablation: EPR success probability (QAOA-r8-32) ===\n\n";

  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = bench::partition2(qc);

  TablePrinter table({"p_succ", "design", "depth", "rel. ideal", "fidelity"});
  CsvWriter csv(bench::csv_path("ablation_psucc"),
                {"p_succ", "design", "depth_mean", "depth_rel_ideal",
                 "fidelity_mean"});

  for (const double p : {0.1, 0.2, 0.4, 0.6, 0.8}) {
    runtime::ArchConfig config;
    config.p_succ = p;
    const double ideal = runtime::ideal_depth(qc, config);
    for (const auto design :
         {runtime::DesignKind::Original, runtime::DesignKind::SyncBuf,
          runtime::DesignKind::AsyncBuf, runtime::DesignKind::InitBuf}) {
      const auto agg = runtime::run_design(qc, part.assignment, config,
                                           design, bench::kRuns);
      table.add_row({TablePrinter::fmt(p, 1), design_name(design),
                     TablePrinter::fmt(agg.depth.mean(), 1),
                     TablePrinter::fmt(agg.depth.mean() / ideal, 2),
                     TablePrinter::fmt(agg.fidelity.mean(), 4)});
      csv.add_row({TablePrinter::fmt(p, 2), design_name(design),
                   TablePrinter::fmt(agg.depth.mean(), 3),
                   TablePrinter::fmt(agg.depth.mean() / ideal, 4),
                   TablePrinter::fmt(agg.fidelity.mean(), 5)});
    }
    table.add_row({"", "", "", "", ""});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: depth scales roughly with 1/p_succ in the "
               "supply-limited regime for every design; the relative gap "
               "between original and the buffered designs widens as p_succ "
               "drops (waste hurts more when pairs are scarce).\n";
  return 0;
}
