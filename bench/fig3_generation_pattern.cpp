/// \file fig3_generation_pattern.cpp
/// \brief Reproduces the paper's Fig. 3: synchronous vs asynchronous EPR
/// generation patterns in the time domain.
///
/// Matches the figure's setup: T_EG = 4 * T_local, communication pairs split
/// into 4 subgroups whose attempt start times are separated by T_local.
/// Output: per-time-unit arrival counts (ASCII bars) plus the burstiness
/// (coefficient of variation) of each pattern.

#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace dqcsim;

ent::ArrivalTrace run_pattern(ent::AttemptSchedule schedule,
                              double horizon) {
  des::Simulator sim;
  Rng rng(2025);
  ent::LinkParams link;
  link.num_comm_pairs = 16;
  link.cycle_time = 4.0;  // the figure's T_EG = 4 T_local
  link.p_succ = 0.4;
  link.swap_latency = 0.0;
  link.buffer_capacity = 1 << 20;  // observe the raw pattern, never reject
  link.schedule = schedule;
  link.async_subgroups = 4;
  ent::GenerationService service(sim, link, rng, ent::ServiceMode::Buffered);
  service.start();
  sim.run_until(horizon);
  return service.trace();
}

void print_pattern(const std::string& label, const ent::ArrivalTrace& trace,
                   double horizon) {
  std::cout << label << " (arrivals per T_local):\n";
  const auto counts = trace.binned_counts(1.0, horizon);
  for (std::size_t t = 0; t < counts.size(); ++t) {
    std::cout << "  t=" << (t < 10 ? " " : "") << t << " |"
              << std::string(counts[t], '#') << " " << counts[t] << '\n';
  }
  std::cout << "  burstiness (CV of per-unit counts): "
            << TablePrinter::fmt(trace.burstiness(1.0, horizon), 3) << "\n\n";
}

}  // namespace

int main() {
  using namespace dqcsim;
  std::cout << "=== Fig. 3: entanglement generation patterns ===\n"
               "16 communication pairs, T_EG = 4 T_local, p_succ = 0.4, "
               "4 async subgroups\n\n";

  const double display_horizon = 24.0;
  const double stats_horizon = 4000.0;

  const auto sync_short =
      run_pattern(ent::AttemptSchedule::Synchronous, display_horizon);
  const auto async_short =
      run_pattern(ent::AttemptSchedule::Asynchronous, display_horizon);
  print_pattern("Synchronous", sync_short, display_horizon);
  print_pattern("Asynchronous", async_short, display_horizon);

  bench::BenchReport report("fig3_generation_pattern");
  ent::ArrivalTrace sync_long, async_long;
  report.time_section(
      "fig3/sync_long_horizon", static_cast<std::size_t>(stats_horizon),
      [&] {
        sync_long = run_pattern(ent::AttemptSchedule::Synchronous,
                                stats_horizon);
      });
  report.time_section(
      "fig3/async_long_horizon", static_cast<std::size_t>(stats_horizon),
      [&] {
        async_long = run_pattern(ent::AttemptSchedule::Asynchronous,
                                 stats_horizon);
      });

  TablePrinter table({"schedule", "pairs generated", "rate [pairs/T_local]",
                      "burstiness (CV)"});
  CsvWriter csv(bench::csv_path("fig3_generation_pattern"),
                {"schedule", "pairs", "rate", "burstiness"});
  for (const auto& [name, trace] :
       {std::pair<std::string, const ent::ArrivalTrace*>{"synchronous",
                                                         &sync_long},
        {"asynchronous", &async_long}}) {
    const double rate = static_cast<double>(trace->count()) / stats_horizon;
    table.add_row({name, TablePrinter::fmt(trace->count()),
                   TablePrinter::fmt(rate, 3),
                   TablePrinter::fmt(trace->burstiness(1.0, stats_horizon), 3)});
    csv.add_row({name, std::to_string(trace->count()),
                 TablePrinter::fmt(rate, 4),
                 TablePrinter::fmt(trace->burstiness(1.0, stats_horizon), 4)});
  }
  std::cout << "Long-horizon statistics (t = 4000):\n";
  table.print(std::cout);
  report.write();
  std::cout << "\nPaper shape: identical generation rates; synchronous "
               "arrivals burst at window boundaries while asynchronous "
               "arrivals spread uniformly (Fig. 3).\n";
  return 0;
}
