/// \file perf_micro.cpp
/// \brief google-benchmark microbenchmarks of the library's hot paths
/// (not a paper experiment): DES throughput, partitioner, DAG analysis,
/// qsim statevector/density-matrix kernels (fused and unfused), and full
/// engine runs. Results are also exported to BENCH_perf_micro.json for the
/// CI perf gate (see bench_report.hpp).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "dqcsim.hpp"

namespace {

using namespace dqcsim;

/// The paper's 32-qubit benchmark families (TLIM / QAOA-r8 / QFT, Table I)
/// rebuilt at a statevector-feasible width `n`: identical gate structure
/// per layer, scaled register.
Circuit paper_class_circuit(const std::string& family, int n) {
  if (family == "TLIM") return gen::make_tlim(n, {});
  if (family == "QAOA-r8") {
    Rng rng(12);  // fixed seed: same graph for fused and unfused runs
    return gen::make_qaoa_regular(n, 8, rng);
  }
  return gen::make_qft(n);
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_BuildQft32(benchmark::State& state) {
  for (auto _ : state) {
    const Circuit qc = gen::make_qft(32);
    benchmark::DoNotOptimize(qc.num_gates());
  }
}
BENCHMARK(BM_BuildQft32);

void BM_DependencyDagQft32(benchmark::State& state) {
  const Circuit qc = gen::make_qft(32);
  for (auto _ : state) {
    const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
    benchmark::DoNotOptimize(dag.critical_path_length());
  }
}
BENCHMARK(BM_DependencyDagQft32);

void BM_PartitionQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const partition::Graph graph = interaction_graph(qc);
  for (auto _ : state) {
    const auto result = partition::multilevel_partition(graph, 2);
    benchmark::DoNotOptimize(result.cut);
  }
}
BENCHMARK(BM_PartitionQaoaR8_32);

void BM_TeleportGadgetExact(benchmark::State& state) {
  for (auto _ : state) {
    const double f = noise::teleported_cnot_avg_fidelity(0.99);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportGadgetExact);

void BM_TeleportModelEval(benchmark::State& state) {
  const noise::TeleportFidelityModel model{noise::TeleportNoiseParams{}};
  double f = 0.5;
  for (auto _ : state) {
    f = 0.25 + 0.75 * model.eval(0.25 + 0.5 * (f > 0.6));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportModelEval);

void BM_EngineRunQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    runtime::ExecutionEngine engine(qc, part.assignment, config,
                                    runtime::DesignKind::AsyncBuf, ++seed);
    benchmark::DoNotOptimize(engine.run().depth);
  }
}
BENCHMARK(BM_EngineRunQaoaR8_32);

// Serial vs parallel Monte-Carlo experiment engine. Run both and compare
// wall time per iteration: the parallel variant fans the same seeds across
// a thread pool (runtime::run_design threads=0) and must produce identical
// statistics, so any wall-clock gap is pure speedup.
void BM_RunDesignSerial(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/1);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  state.SetLabel("1 thread");
}
BENCHMARK(BM_RunDesignSerial)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignParallel(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/0);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  // parallel_for clamps workers to the run count.
  const std::size_t workers = std::min(ThreadPool::hardware_threads(),
                                       static_cast<std::size_t>(runs));
  state.SetLabel(std::to_string(workers) + " threads");
}
BENCHMARK(BM_RunDesignParallel)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignMatrixAllDesigns(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  std::vector<runtime::DesignPoint> points;
  for (const auto design : runtime::distributed_designs()) {
    points.push_back({design, runtime::ArchConfig{}});
  }
  for (auto _ : state) {
    const auto aggregates =
        runtime::run_design_matrix(qc, part.assignment, points, 8);
    benchmark::DoNotOptimize(aggregates.front().depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * points.size() * 8);
}
BENCHMARK(BM_RunDesignMatrixAllDesigns)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DensityMatrixCnot6Qubit(benchmark::State& state) {
  qsim::DensityMatrix rho(6);
  const auto u = qsim::cnot();
  for (auto _ : state) {
    rho.apply_2q(u, 2, 4);
    benchmark::DoNotOptimize(rho.trace());
  }
}
BENCHMARK(BM_DensityMatrixCnot6Qubit);

void BM_DensityMatrixHadamard8Qubit(benchmark::State& state) {
  qsim::DensityMatrix rho(8);
  const auto u = qsim::hadamard();
  for (auto _ : state) {
    rho.apply_1q(u, 3);
    benchmark::DoNotOptimize(rho.trace());
  }
}
BENCHMARK(BM_DensityMatrixHadamard8Qubit);

// --- statevector apply_circuit: the paper's 32q-class circuit families ----
// (TLIM / QAOA-r8 / QFT of Table I) at statevector-feasible width, run
// unfused gate-by-gate vs through the gate-fusion pass. The Fused/Unfused
// wall-time ratio is the fusion speedup the CI perf gate tracks.

void sv_apply_unfused(benchmark::State& state, const std::string& family) {
  const int n = static_cast<int>(state.range(0));
  const Circuit qc = paper_class_circuit(family, n);
  for (auto _ : state) {
    qsim::Statevector psi(n);
    psi.apply_circuit(qc);
    benchmark::DoNotOptimize(psi.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
  state.SetLabel(std::to_string(qc.num_gates()) + " gates");
}

void sv_apply_fused(benchmark::State& state, const std::string& family) {
  const int n = static_cast<int>(state.range(0));
  const Circuit qc = paper_class_circuit(family, n);
  const FusedCircuit fc = fuse_circuit(qc);
  for (auto _ : state) {
    qsim::Statevector psi(n);
    psi.apply_fused(fc);
    benchmark::DoNotOptimize(psi.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
  state.SetLabel(std::to_string(fc.num_ops()) + " fused ops");
}

void BM_SvApplyCircuitUnfused_TLIM(benchmark::State& state) {
  sv_apply_unfused(state, "TLIM");
}
void BM_SvApplyCircuitFused_TLIM(benchmark::State& state) {
  sv_apply_fused(state, "TLIM");
}
void BM_SvApplyCircuitUnfused_QAOA_R8(benchmark::State& state) {
  sv_apply_unfused(state, "QAOA-r8");
}
void BM_SvApplyCircuitFused_QAOA_R8(benchmark::State& state) {
  sv_apply_fused(state, "QAOA-r8");
}
void BM_SvApplyCircuitUnfused_QFT(benchmark::State& state) {
  sv_apply_unfused(state, "QFT");
}
void BM_SvApplyCircuitFused_QFT(benchmark::State& state) {
  sv_apply_fused(state, "QFT");
}
// 22 qubits (64 MiB state) is the headline width: big enough that the
// cache-block batching dominates; 16 covers the L2-resident small case.
BENCHMARK(BM_SvApplyCircuitUnfused_TLIM)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_TLIM)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitUnfused_QAOA_R8)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_QAOA_R8)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitUnfused_QFT)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_QFT)->Arg(16)->Arg(22);

void BM_FuseCircuitQft20(benchmark::State& state) {
  const Circuit qc = gen::make_qft(20);
  for (auto _ : state) {
    const FusedCircuit fc = fuse_circuit(qc);
    benchmark::DoNotOptimize(fc.num_ops());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
}
BENCHMARK(BM_FuseCircuitQft20);

/// Console output plus capture of every run for the JSON report.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Note: only RT_Iteration runs are exported; the error/skip field is
      // not consulted (its name changed across google-benchmark versions).
      if (run.run_type != Run::RT_Iteration) continue;
      bench::KernelResult k;
      k.name = run.benchmark_name();
      k.iterations = static_cast<double>(run.iterations);
      if (run.iterations > 0) {
        k.ns_per_op = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) k.items_per_s = it->second;
      k.label = run.report_label;
      report_.add(std::move(k));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("perf_micro");
  JsonExportReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.write();
  benchmark::Shutdown();
  return 0;
}
