/// \file perf_micro.cpp
/// \brief google-benchmark microbenchmarks of the library's hot paths
/// (not a paper experiment): DES throughput, partitioner, DAG analysis,
/// qsim statevector/density-matrix kernels (fused and unfused), and full
/// engine runs. Results are also exported to BENCH_perf_micro.json for the
/// CI perf gate (see bench_report.hpp).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "dqcsim.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: the steady-state benchmarks report
// allocs-per-op to prove the DES pool and RunContext reuse keep the
// Monte-Carlo hot path allocation-free (see ISSUE 3 / README "Performance").
// Counting only — allocation behavior is unchanged.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

namespace {
void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(alignment,
                                   (size + alignment - 1) / alignment *
                                       alignment)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace dqcsim;

/// Allocations since `since` (relaxed; the benches are single-threaded).
std::uint64_t allocs_since(std::uint64_t since) {
  return g_alloc_count.load(std::memory_order_relaxed) - since;
}

/// The paper's 32-qubit benchmark families (TLIM / QAOA-r8 / QFT, Table I)
/// rebuilt at a statevector-feasible width `n`: identical gate structure
/// per layer, scaled register.
Circuit paper_class_circuit(const std::string& family, int n) {
  if (family == "TLIM") return gen::make_tlim(n, {});
  if (family == "QAOA-r8") {
    Rng rng(12);  // fixed seed: same graph for fused and unfused runs
    return gen::make_qaoa_regular(n, 8, rng);
  }
  return gen::make_qft(n);
}

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

// Steady-state DES churn: one Simulator reused via reset(), the way the
// Monte-Carlo trial loop drives it. After warmup the event pool, dispatch
// window and spill list are at their high-water marks, so an iteration
// (1000 schedules + 1000 dispatches) performs zero heap allocation —
// reported as the allocs_per_op counter, asserted ~0 by the bench gate.
void BM_EventQueueSteadyStateChurn(benchmark::State& state) {
  des::Simulator sim;
  for (int warm = 0; warm < 3; ++warm) {
    sim.reset();
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run();
  }
  const std::uint64_t allocs0 = allocs_since(0);
  for (auto _ : state) {
    sim.reset();
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_since(allocs0)) /
      static_cast<double>(state.iterations() * 1000));
}
BENCHMARK(BM_EventQueueSteadyStateChurn);

// Cancel-heavy DES workload (the purification-cutoff pattern): all events
// are scheduled far in the future, every other one is cancelled before it
// fires, and the survivors are drained. The old lazy-cancellation queue
// accumulated one tombstone per cancel until the entry's timestamp
// surfaced — unbounded growth on exactly this pattern; the pooled queue
// releases the slot immediately and compacts the index.
void BM_EventQueueScheduleCancelPop(benchmark::State& state) {
  des::Simulator sim;
  std::vector<des::EventId> ids(1000);
  for (auto _ : state) {
    sim.reset();
    for (int i = 0; i < 1000; ++i) {
      ids[static_cast<std::size_t>(i)] = sim.schedule_at(
          static_cast<double>(1000000 + i), [] {});
    }
    for (int i = 0; i < 1000; i += 2) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleCancelPop);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_BuildQft32(benchmark::State& state) {
  for (auto _ : state) {
    const Circuit qc = gen::make_qft(32);
    benchmark::DoNotOptimize(qc.num_gates());
  }
}
BENCHMARK(BM_BuildQft32);

void BM_DependencyDagQft32(benchmark::State& state) {
  const Circuit qc = gen::make_qft(32);
  for (auto _ : state) {
    const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
    benchmark::DoNotOptimize(dag.critical_path_length());
  }
}
BENCHMARK(BM_DependencyDagQft32);

void BM_PartitionQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const partition::Graph graph = interaction_graph(qc);
  for (auto _ : state) {
    const auto result = partition::multilevel_partition(graph, 2);
    benchmark::DoNotOptimize(result.cut);
  }
}
BENCHMARK(BM_PartitionQaoaR8_32);

void BM_TeleportGadgetExact(benchmark::State& state) {
  for (auto _ : state) {
    const double f = noise::teleported_cnot_avg_fidelity(0.99);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportGadgetExact);

void BM_TeleportModelEval(benchmark::State& state) {
  const noise::TeleportFidelityModel model{noise::TeleportNoiseParams{}};
  double f = 0.5;
  for (auto _ : state) {
    f = 0.25 + 0.75 * model.eval(0.25 + 0.5 * (f > 0.6));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportModelEval);

void BM_EngineRunQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    runtime::ExecutionEngine engine(qc, part.assignment, config,
                                    runtime::DesignKind::AsyncBuf, ++seed);
    benchmark::DoNotOptimize(engine.run().depth);
  }
}
BENCHMARK(BM_EngineRunQaoaR8_32);

// Steady-state Monte-Carlo trial: one RunContext reused across trials, as
// each run_design worker drives it. After the warmup trials every buffer is
// at its high-water mark and the setup cache is hot, so a trial performs
// zero heap allocation (the allocs_per_op counter).
void BM_RunContextTrialSteadyState(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  noise::TeleportNoiseParams tele;
  tele.local_2q_fidelity = config.fid.local_cnot;
  tele.local_1q_fidelity = config.fid.one_qubit;
  tele.readout_fidelity = config.fid.measurement;
  const noise::TeleportFidelityModel model(tele);
  runtime::RunContext ctx;
  constexpr std::uint64_t kSeeds = 16;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    ctx.execute(qc, part.assignment, config, runtime::DesignKind::AsyncBuf,
                1000 + s, &model);
  }
  const std::uint64_t allocs0 = allocs_since(0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result =
        ctx.execute(qc, part.assignment, config,
                    runtime::DesignKind::AsyncBuf, 1000 + (seed++ % kSeeds),
                    &model);
    benchmark::DoNotOptimize(result.depth);
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_since(allocs0)) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RunContextTrialSteadyState);

// Same trial loop with ArrivalTrace recording off (the Monte-Carlo sweep
// configuration): the per-arrival log is skipped entirely, so the trial
// stays allocation-free even on arrival-heavy configs whose trace growth
// would otherwise occasionally reallocate.
void BM_RunContextTrialTraceOff(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  runtime::ArchConfig config;
  config.record_arrival_trace = false;
  noise::TeleportNoiseParams tele;
  tele.local_2q_fidelity = config.fid.local_cnot;
  tele.local_1q_fidelity = config.fid.one_qubit;
  tele.readout_fidelity = config.fid.measurement;
  const noise::TeleportFidelityModel model(tele);
  runtime::RunContext ctx;
  constexpr std::uint64_t kSeeds = 16;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    ctx.execute(qc, part.assignment, config, runtime::DesignKind::AsyncBuf,
                1000 + s, &model);
  }
  const std::uint64_t allocs0 = allocs_since(0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result =
        ctx.execute(qc, part.assignment, config,
                    runtime::DesignKind::AsyncBuf, 1000 + (seed++ % kSeeds),
                    &model);
    benchmark::DoNotOptimize(result.depth);
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_since(allocs0)) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RunContextTrialTraceOff);

// Same trial loop with the observability layer compiled in but disabled
// (config.observe == nullptr, the default): every obs hook must reduce to
// a branch on a null pointer, so the trial stays allocation-free and within
// noise of the un-instrumented engine. Gated in ci/bench_baseline.json.
void BM_RunContextTrialObserverOff(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  runtime::ArchConfig config;
  config.record_arrival_trace = false;
  config.observe = nullptr;  // explicit: the observer-off contract
  noise::TeleportNoiseParams tele;
  tele.local_2q_fidelity = config.fid.local_cnot;
  tele.local_1q_fidelity = config.fid.one_qubit;
  tele.readout_fidelity = config.fid.measurement;
  const noise::TeleportFidelityModel model(tele);
  runtime::RunContext ctx;
  constexpr std::uint64_t kSeeds = 16;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    ctx.execute(qc, part.assignment, config, runtime::DesignKind::AsyncBuf,
                1000 + s, &model);
  }
  const std::uint64_t allocs0 = allocs_since(0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result =
        ctx.execute(qc, part.assignment, config,
                    runtime::DesignKind::AsyncBuf, 1000 + (seed++ % kSeeds),
                    &model);
    benchmark::DoNotOptimize(result.depth);
  }
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs_since(allocs0)) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_RunContextTrialObserverOff);

// End-to-end trial throughput of the experiment driver (one worker): the
// number the fig5-fig8 sweeps and ablation benches are built from.
void BM_RunDesignTrialThroughput(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/1);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  state.SetLabel("trials/s");
}
BENCHMARK(BM_RunDesignTrialThroughput)->Arg(64)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Serial vs parallel Monte-Carlo experiment engine. Run both and compare
// wall time per iteration: the parallel variant fans the same seeds across
// a thread pool (runtime::run_design threads=0) and must produce identical
// statistics, so any wall-clock gap is pure speedup.
void BM_RunDesignSerial(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/1);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  state.SetLabel("1 thread");
}
BENCHMARK(BM_RunDesignSerial)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignParallel(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/0);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  // parallel_for clamps workers to the run count.
  const std::size_t workers = std::min(ThreadPool::hardware_threads(),
                                       static_cast<std::size_t>(runs));
  state.SetLabel(std::to_string(workers) + " threads");
}
BENCHMARK(BM_RunDesignParallel)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignMatrixAllDesigns(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  std::vector<runtime::DesignPoint> points;
  for (const auto design : runtime::distributed_designs()) {
    points.push_back({design, runtime::ArchConfig{}});
  }
  for (auto _ : state) {
    const auto aggregates =
        runtime::run_design_matrix(qc, part.assignment, points, 8);
    benchmark::DoNotOptimize(aggregates.front().depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * points.size() * 8);
}
BENCHMARK(BM_RunDesignMatrixAllDesigns)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DensityMatrixCnot6Qubit(benchmark::State& state) {
  qsim::DensityMatrix rho(6);
  const auto u = qsim::cnot();
  for (auto _ : state) {
    rho.apply_2q(u, 2, 4);
    benchmark::DoNotOptimize(rho.trace());
  }
}
BENCHMARK(BM_DensityMatrixCnot6Qubit);

void BM_DensityMatrixHadamard8Qubit(benchmark::State& state) {
  qsim::DensityMatrix rho(8);
  const auto u = qsim::hadamard();
  for (auto _ : state) {
    rho.apply_1q(u, 3);
    benchmark::DoNotOptimize(rho.trace());
  }
}
BENCHMARK(BM_DensityMatrixHadamard8Qubit);

// --- statevector apply_circuit: the paper's 32q-class circuit families ----
// (TLIM / QAOA-r8 / QFT of Table I) at statevector-feasible width, run
// unfused gate-by-gate vs through the gate-fusion pass. The Fused/Unfused
// wall-time ratio is the fusion speedup the CI perf gate tracks.

void sv_apply_unfused(benchmark::State& state, const std::string& family) {
  const int n = static_cast<int>(state.range(0));
  const Circuit qc = paper_class_circuit(family, n);
  for (auto _ : state) {
    qsim::Statevector psi(n);
    psi.apply_circuit(qc);
    benchmark::DoNotOptimize(psi.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
  state.SetLabel(std::to_string(qc.num_gates()) + " gates");
}

void sv_apply_fused(benchmark::State& state, const std::string& family) {
  const int n = static_cast<int>(state.range(0));
  const Circuit qc = paper_class_circuit(family, n);
  const FusedCircuit fc = fuse_circuit(qc);
  for (auto _ : state) {
    qsim::Statevector psi(n);
    psi.apply_fused(fc);
    benchmark::DoNotOptimize(psi.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
  state.SetLabel(std::to_string(fc.num_ops()) + " fused ops");
}

void BM_SvApplyCircuitUnfused_TLIM(benchmark::State& state) {
  sv_apply_unfused(state, "TLIM");
}
void BM_SvApplyCircuitFused_TLIM(benchmark::State& state) {
  sv_apply_fused(state, "TLIM");
}
void BM_SvApplyCircuitUnfused_QAOA_R8(benchmark::State& state) {
  sv_apply_unfused(state, "QAOA-r8");
}
void BM_SvApplyCircuitFused_QAOA_R8(benchmark::State& state) {
  sv_apply_fused(state, "QAOA-r8");
}
void BM_SvApplyCircuitUnfused_QFT(benchmark::State& state) {
  sv_apply_unfused(state, "QFT");
}
void BM_SvApplyCircuitFused_QFT(benchmark::State& state) {
  sv_apply_fused(state, "QFT");
}
// 22 qubits (64 MiB state) is the headline width: big enough that the
// cache-block batching dominates; 16 covers the L2-resident small case.
BENCHMARK(BM_SvApplyCircuitUnfused_TLIM)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_TLIM)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitUnfused_QAOA_R8)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_QAOA_R8)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitUnfused_QFT)->Arg(16)->Arg(22);
BENCHMARK(BM_SvApplyCircuitFused_QFT)->Arg(16)->Arg(22);

void BM_FuseCircuitQft20(benchmark::State& state) {
  const Circuit qc = gen::make_qft(20);
  for (auto _ : state) {
    const FusedCircuit fc = fuse_circuit(qc);
    benchmark::DoNotOptimize(fc.num_ops());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(qc.num_gates()));
}
BENCHMARK(BM_FuseCircuitQft20);

/// Console output plus capture of every run for the JSON report.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Note: only RT_Iteration runs are exported; the error/skip field is
      // not consulted (its name changed across google-benchmark versions).
      if (run.run_type != Run::RT_Iteration) continue;
      bench::KernelResult k;
      k.name = run.benchmark_name();
      k.iterations = static_cast<double>(run.iterations);
      if (run.iterations > 0) {
        k.ns_per_op = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9;
      }
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) k.items_per_s = it->second;
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name == "items_per_second") continue;
        k.counters.emplace_back(counter_name,
                                static_cast<double>(counter.value));
      }
      k.label = run.report_label;
      report_.add(std::move(k));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("perf_micro");
  JsonExportReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.write();
  benchmark::Shutdown();
  return 0;
}
