/// \file perf_micro.cpp
/// \brief google-benchmark microbenchmarks of the library's hot paths
/// (not a paper experiment): DES throughput, partitioner, DAG analysis,
/// density-matrix gadget evaluation, and a full engine run.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "dqcsim.hpp"

namespace {

using namespace dqcsim;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  double acc = 0.0;
  for (auto _ : state) acc += rng.uniform();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_BuildQft32(benchmark::State& state) {
  for (auto _ : state) {
    const Circuit qc = gen::make_qft(32);
    benchmark::DoNotOptimize(qc.num_gates());
  }
}
BENCHMARK(BM_BuildQft32);

void BM_DependencyDagQft32(benchmark::State& state) {
  const Circuit qc = gen::make_qft(32);
  for (auto _ : state) {
    const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
    benchmark::DoNotOptimize(dag.critical_path_length());
  }
}
BENCHMARK(BM_DependencyDagQft32);

void BM_PartitionQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const partition::Graph graph = interaction_graph(qc);
  for (auto _ : state) {
    const auto result = partition::multilevel_partition(graph, 2);
    benchmark::DoNotOptimize(result.cut);
  }
}
BENCHMARK(BM_PartitionQaoaR8_32);

void BM_TeleportGadgetExact(benchmark::State& state) {
  for (auto _ : state) {
    const double f = noise::teleported_cnot_avg_fidelity(0.99);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportGadgetExact);

void BM_TeleportModelEval(benchmark::State& state) {
  const noise::TeleportFidelityModel model{noise::TeleportNoiseParams{}};
  double f = 0.5;
  for (auto _ : state) {
    f = 0.25 + 0.75 * model.eval(0.25 + 0.5 * (f > 0.6));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TeleportModelEval);

void BM_EngineRunQaoaR8_32(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    runtime::ExecutionEngine engine(qc, part.assignment, config,
                                    runtime::DesignKind::AsyncBuf, ++seed);
    benchmark::DoNotOptimize(engine.run().depth);
  }
}
BENCHMARK(BM_EngineRunQaoaR8_32);

// Serial vs parallel Monte-Carlo experiment engine. Run both and compare
// wall time per iteration: the parallel variant fans the same seeds across
// a thread pool (runtime::run_design threads=0) and must produce identical
// statistics, so any wall-clock gap is pure speedup.
void BM_RunDesignSerial(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/1);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  state.SetLabel("1 thread");
}
BENCHMARK(BM_RunDesignSerial)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignParallel(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  const runtime::ArchConfig config;
  const int runs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto agg =
        runtime::run_design(qc, part.assignment, config,
                            runtime::DesignKind::AsyncBuf, runs,
                            /*base_seed=*/1000, /*threads=*/0);
    benchmark::DoNotOptimize(agg.depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * runs);
  // parallel_for clamps workers to the run count.
  const std::size_t workers = std::min(ThreadPool::hardware_threads(),
                                       static_cast<std::size_t>(runs));
  state.SetLabel(std::to_string(workers) + " threads");
}
BENCHMARK(BM_RunDesignParallel)->Arg(16)->Arg(32)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RunDesignMatrixAllDesigns(benchmark::State& state) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = runtime::partition_circuit(qc, 2);
  std::vector<runtime::DesignPoint> points;
  for (const auto design : runtime::distributed_designs()) {
    points.push_back({design, runtime::ArchConfig{}});
  }
  for (auto _ : state) {
    const auto aggregates =
        runtime::run_design_matrix(qc, part.assignment, points, 8);
    benchmark::DoNotOptimize(aggregates.front().depth.mean());
  }
  state.SetItemsProcessed(state.iterations() * points.size() * 8);
}
BENCHMARK(BM_RunDesignMatrixAllDesigns)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DensityMatrixCnot6Qubit(benchmark::State& state) {
  qsim::DensityMatrix rho(6);
  const auto u = qsim::cnot();
  for (auto _ : state) {
    rho.apply_2q(u, 2, 4);
    benchmark::DoNotOptimize(rho.trace());
  }
}
BENCHMARK(BM_DensityMatrixCnot6Qubit);

}  // namespace

BENCHMARK_MAIN();
