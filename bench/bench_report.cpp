#include "bench_report.hpp"

#include <iostream>
#include <utility>

#include "common/json.hpp"

namespace dqcsim::bench {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::add(KernelResult result) {
  results_.push_back(std::move(result));
}

std::string BenchReport::path() const { return "BENCH_" + name_ + ".json"; }

void BenchReport::write() const {
  JsonValue kernels = JsonValue::array();
  for (const KernelResult& r : results_) {
    JsonValue k = JsonValue::object();
    k.set("name", r.name);
    k.set("ns_per_op", r.ns_per_op);
    k.set("items_per_s", r.items_per_s);
    k.set("iterations", r.iterations);
    k.set("label", r.label);
    if (!r.counters.empty()) {
      JsonValue counters = JsonValue::object();
      for (const auto& [name, value] : r.counters) {
        counters.set(name, value);
      }
      k.set("counters", std::move(counters));
    }
    kernels.push(std::move(k));
  }
  JsonValue doc = JsonValue::object();
  doc.set("report", name_);
  doc.set("schema_version", std::int64_t{1});
  doc.set("kernels", std::move(kernels));
  doc.write_file(path());
  std::cout << "[bench_report] wrote " << path() << " ("
            << results_.size() << " kernels)\n";
}

}  // namespace dqcsim::bench
