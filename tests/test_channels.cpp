/// Unit tests for the noisy-channel helpers (qsim/channels.hpp) and the
/// gate-matrix algebra (qsim/gates_matrices.hpp): fidelity-to-depolarizing
/// conversion, trace/hermiticity preservation of every channel, and the
/// matmul/kron/swap_operands helpers the fusion pass builds on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qsim/channels.hpp"
#include "qsim/statevector.hpp"

namespace dqcsim::qsim {
namespace {

constexpr double kTol = 1e-12;

DensityMatrix random_ish_state(int qubits) {
  DensityMatrix rho(qubits);
  for (int q = 0; q < qubits; ++q) {
    rho.apply_1q(gate_unitary_1q(GateKind::RY, 0.4 + 0.3 * q), q);
    rho.apply_1q(gate_unitary_1q(GateKind::RZ, 0.9 - 0.2 * q), q);
  }
  for (int q = 0; q + 1 < qubits; ++q) {
    rho.apply_2q(cnot(), q, q + 1);
  }
  // A little mixedness so the state is not pure.
  rho.depolarize_1q(0, 0.1);
  return rho;
}

// ----------------------------------------------- noisy gate application --

TEST(NoisyGates, PerfectFidelityMatchesPureUnitary) {
  DensityMatrix noisy = random_ish_state(3);
  DensityMatrix pure = noisy;
  apply_noisy_1q(noisy, hadamard(), 1, 1.0);
  pure.apply_1q(hadamard(), 1);
  for (std::size_t r = 0; r < pure.dim(); ++r) {
    for (std::size_t c = 0; c < pure.dim(); ++c) {
      EXPECT_NEAR(std::abs(noisy.element(r, c) - pure.element(r, c)), 0.0,
                  kTol);
    }
  }
}

TEST(NoisyGates, Noisy1qPreservesTraceAndHermiticity) {
  DensityMatrix rho = random_ish_state(3);
  apply_noisy_1q(rho, gate_unitary_1q(GateKind::RX, 0.7), 2, 0.991);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(NoisyGates, Noisy2qPreservesTraceAndHermiticity) {
  DensityMatrix rho = random_ish_state(3);
  apply_noisy_2q(rho, gate_unitary_2q(GateKind::RZZ, 0.5), 0, 2, 0.97);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(NoisyGates, NoiseStrictlyReducesPurity) {
  DensityMatrix rho(2);
  rho.apply_1q(hadamard(), 0);  // pure state, purity 1
  DensityMatrix noisy = rho;
  apply_noisy_2q(noisy, cnot(), 0, 1, 0.98);
  EXPECT_LT(noisy.purity(), rho.purity() - 1e-6);
}

TEST(NoisyGates, NoisyCnotAverageFidelityMatchesRequest) {
  // The depolarizing channel is calibrated so the *average gate fidelity*
  // equals f_avg; spot-check via the entanglement fidelity identity
  // F_avg = (d F_e + 1) / (d + 1) evaluated with the Choi-state trick:
  // apply (noisy U) (ideal U)^dag to half of a maximally entangled state.
  const double f_avg = 0.9815;
  DensityMatrix rho = DensityMatrix::bell_phi_plus().tensor(
      DensityMatrix::bell_phi_plus());
  // Qubits: 0,1 = halves of pair A; 2,3 = halves of pair B. Act on (0, 2).
  apply_noisy_2q(rho, cnot(), 0, 2, f_avg);
  rho.apply_2q(cnot(), 0, 2);  // CNOT is self-inverse: ideal undo
  // Entanglement fidelity = overlap with the initial double Bell state.
  std::vector<Complex> phi4(16, Complex{0.0, 0.0});
  const double half = 0.5;
  // |Phi+>_{01} (x) |Phi+>_{23} with qubit 0 least significant:
  for (const std::size_t a : {0u, 3u}) {    // bits of qubits 0,1
    for (const std::size_t b : {0u, 3u}) {  // bits of qubits 2,3
      const std::size_t idx = (a & 1u) | ((a >> 1) << 1) | ((b & 1u) << 2) |
                              ((b >> 1) << 3);
      phi4[idx] = Complex{half, 0.0};
    }
  }
  const double f_e = rho.fidelity_with_pure(phi4);
  const double recovered = (4.0 * f_e + 1.0) / 5.0;
  EXPECT_NEAR(recovered, f_avg, 1e-9);
}

// ------------------------------------------------------- noisy readout --

TEST(NoisyReadout, ProbabilitiesSumToOneAndBranchesStayNormalized) {
  DensityMatrix rho = random_ish_state(2);
  const auto branches = noisy_measure(rho, 0, 0.97);
  EXPECT_NEAR(branches.prob[0] + branches.prob[1], 1.0, kTol);
  for (int o = 0; o < 2; ++o) {
    EXPECT_NEAR(branches.state[static_cast<std::size_t>(o)].trace(), 1.0,
                1e-9);
  }
}

TEST(NoisyReadout, FlipProbabilityMixesIdealOutcomes) {
  DensityMatrix rho(1);
  rho.apply_1q(gate_unitary_1q(GateKind::RY, 1.0), 0);
  const double p1 = rho.prob_one(0);
  const double f = 0.9;
  const auto branches = noisy_measure(rho, 0, f);
  EXPECT_NEAR(branches.prob[1], f * p1 + (1.0 - f) * (1.0 - p1), kTol);
  EXPECT_NEAR(branches.prob[0], f * (1.0 - p1) + (1.0 - f) * p1, kTol);
}

// ---------------------------------------------------------- matrix algebra --

TEST(MatrixAlgebra, MatmulMatchesHandComputedProducts) {
  // HZH = X.
  const Mat2 hzh = matmul(hadamard(), matmul(pauli_z(), hadamard()));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(hzh[i] - pauli_x()[i]), 0.0, kTol) << "entry " << i;
  }
  // CX * CX = I.
  const Mat4 cc = matmul(cnot(), cnot());
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const Complex expected = r == c ? Complex{1, 0} : Complex{0, 0};
      EXPECT_NEAR(std::abs(cc[r * 4 + c] - expected), 0.0, kTol);
    }
  }
}

TEST(MatrixAlgebra, KronMatchesTwoQubitApplication) {
  // Applying kron(A, B) on (high, low) equals applying B on low then A on
  // high.
  Statevector direct(2), viakron(2);
  direct.apply_1q(hadamard(), 0);
  direct.apply_1q(gate_unitary_1q(GateKind::T), 1);
  viakron.apply_2q(kron(gate_unitary_1q(GateKind::T), hadamard()),
                   /*q_high=*/1, /*q_low=*/0);
  EXPECT_NEAR(direct.max_amplitude_difference(viakron), 0.0, kTol);
}

TEST(MatrixAlgebra, SwapOperandsMatchesReversedApplication) {
  const Mat4 cp = gate_unitary_2q(GateKind::CP, 0.8);
  Statevector a(2), b(2);
  a.apply_1q(hadamard(), 0);
  a.apply_1q(hadamard(), 1);
  b = a;
  a.apply_2q(cp, 1, 0);
  b.apply_2q(swap_operands(cp), 0, 1);
  EXPECT_NEAR(a.max_amplitude_difference(b), 0.0, kTol);
}

TEST(MatrixAlgebra, SwapOperandsIsAnInvolution) {
  const Mat4 u = gate_unitary_2q(GateKind::CX);
  const Mat4 back = swap_operands(swap_operands(u));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(back[i], u[i]);
  }
}

TEST(MatrixAlgebra, StructuralClassification) {
  EXPECT_TRUE(is_diagonal_matrix(pauli_z()));
  EXPECT_FALSE(is_diagonal_matrix(hadamard()));
  EXPECT_TRUE(is_diagonal_matrix(gate_unitary_2q(GateKind::RZZ, 0.3)));
  EXPECT_TRUE(is_diagonal_matrix(gate_unitary_2q(GateKind::CP, 0.3)));
  EXPECT_FALSE(is_diagonal_matrix(cnot()));
  EXPECT_TRUE(is_permutation_matrix(cnot()));
  EXPECT_TRUE(is_permutation_matrix(gate_unitary_2q(GateKind::SWAP)));
  EXPECT_TRUE(is_permutation_matrix(gate_unitary_2q(GateKind::CZ)));
  EXPECT_FALSE(is_permutation_matrix(kron(hadamard(), identity2())));
}

TEST(MatrixAlgebra, ProductsOfUnitariesStayUnitary) {
  const Mat4 m = matmul(
      gate_unitary_2q(GateKind::CP, 1.1),
      matmul(kron(hadamard(), gate_unitary_1q(GateKind::RX, 0.4)),
             swap_operands(cnot())));
  EXPECT_TRUE(is_unitary(m, 1e-12));
}

}  // namespace
}  // namespace dqcsim::qsim
