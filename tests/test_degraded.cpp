/// Engine-level tests for degraded-mode delivery under faults: mid-flight
/// pair salvage (swap-as-you-go and composed), boundary capacity
/// re-sharing, retry/backoff wiring, the link_stalled watchdog, the trial
/// sim-time budget, and the determinism contract for every new knob
/// combination (thread-count invariance under drift + outages).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ent/link_params.hpp"
#include "net/topology.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::runtime {
namespace {

using dqcsim::Circuit;
using scenario::DriftField;
using scenario::DriftKind;
using scenario::DriftTrack;
using scenario::FailureBurst;
using scenario::Scenario;

RunResult run_once(const Circuit& qc, const std::vector<int>& nodes,
                   const ArchConfig& config, DesignKind design,
                   std::uint64_t seed = 1) {
  ExecutionEngine engine(qc, nodes, config, design, seed);
  return engine.run();
}

// ------------------------------------------------------------ validation ----

TEST(DegradedConfig, ReshareRequiresSharedCapacity) {
  ArchConfig config;
  config.num_nodes = 4;
  config.set_topology(net::Topology::ring(4));
  config.reshare_at_boundaries = true;
  EXPECT_THROW(config.validate(), ConfigError);
  config.share_edge_capacity = true;
  EXPECT_NO_THROW(config.validate());
}

TEST(DegradedConfig, ValidateCatchesBadKnobs) {
  ArchConfig config;
  config.stall_windows = -1;
  EXPECT_THROW(config.validate(), ConfigError);
  config.stall_windows = 0;
  config.max_trial_sim_time = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.max_trial_sim_time = 1.0;
  EXPECT_NO_THROW(config.validate());
  config.retry_policy.kind = ent::RetryKind::Fixed;
  config.retry_policy.interval = -1.0;
  EXPECT_THROW(config.validate(), ConfigError);
}

// -------------------------------------------------------------- salvage -----

/// Chain(3) with qubit 0's wire busy on local work for ~30 time units, then
/// three serialized remote gates between the end nodes. The edge buffers
/// fill before the outage at t=15 severs the route; the remote gates only
/// become ready mid-outage, so they either salvage the pre-outage stock or
/// stall until the repair at t=2015.
Circuit salvage_circuit() {
  Circuit qc(6);
  for (int i = 0; i < 300; ++i) qc.h(0);  // 30 units on wire 0
  for (int i = 0; i < 3; ++i) qc.rzz(0, 4, 0.1);
  return qc;
}

ArchConfig salvage_config(bool swap_go, bool salvage) {
  ArchConfig config;
  config.num_nodes = 3;
  config.set_topology(net::Topology::chain(3));
  config.p_succ = 0.9;  // buffers fill within the first window or two
  Scenario scn;
  scn.link_outages.push_back({0, 1, 15.0, 2000.0});
  config.set_scenario(scn);
  config.swap_as_you_go = swap_go;
  config.salvage_pairs = salvage;
  return config;
}

TEST(Salvage, SwapGoServesSeveredRouteFromSurvivingStock) {
  const Circuit qc = salvage_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2};

  const RunResult off = run_once(qc, nodes, salvage_config(true, false),
                                 DesignKind::AsyncBuf);
  const RunResult on = run_once(qc, nodes, salvage_config(true, true),
                                DesignKind::AsyncBuf);

  // Without salvage the gates stall until the repair window ends.
  EXPECT_EQ(off.pairs_salvaged, 0u);
  EXPECT_GT(off.depth, 2000.0);
  // With salvage every gate completes on pre-outage stock: all three pairs
  // are rescued and the trial ends orders of magnitude earlier.
  EXPECT_GE(on.pairs_salvaged, 3u);
  EXPECT_LT(on.depth, 100.0);
  // The route itself stays severed either way — salvage shortens the
  // trial, which is what bounds the accrued downtime.
  EXPECT_GT(off.outage_downtime, 10.0 * on.outage_downtime);
}

TEST(Salvage, SwapGoStockDiesWithADownNode) {
  // Same shape, but the *middle node* goes down: its stored halves are
  // lost (flushed and counted as discarded), so nothing can be salvaged.
  const Circuit qc = salvage_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2};
  ArchConfig config = salvage_config(true, true);
  Scenario scn;
  scn.node_outages.push_back({1, 15.0, 2000.0});
  config.set_scenario(scn);

  const RunResult r = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_EQ(r.pairs_salvaged, 0u);
  EXPECT_GT(r.pairs_discarded, 0u);
  EXPECT_GT(r.depth, 2000.0);  // gates wait for the node to come back
}

TEST(Salvage, ComposedModeCountsSalvageWithoutChangingResults) {
  // The composed engine never discards stock at boundaries, so the knob is
  // pure accounting there: bit-identical depth/fidelity, with consumption
  // while routeless now reported as salvage.
  const Circuit qc = salvage_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2};

  const RunResult off = run_once(qc, nodes, salvage_config(false, false),
                                 DesignKind::AsyncBuf);
  const RunResult on = run_once(qc, nodes, salvage_config(false, true),
                                DesignKind::AsyncBuf);
  EXPECT_EQ(off.depth, on.depth);
  EXPECT_EQ(off.fidelity, on.fidelity);
  EXPECT_EQ(off.epr_attempts, on.epr_attempts);
  EXPECT_EQ(off.pairs_salvaged, 0u);
  EXPECT_GE(on.pairs_salvaged, 3u);
}

// -------------------------------------------------------------- reshare -----

/// Ring(6) with two *disjoint* two-hop links (0-2 via 0-1-2, 3-5 via
/// 3-4-5): at t=0 every edge load is 1, so t=0 shares equal the full
/// budget. A long outage on edge {4, 5} then detours 3-5 onto
/// 3-2-1-0-5, which shares edges {1, 2} and {0, 1} with the 0-2 link.
Circuit disjoint_then_overlapping_circuit() {
  Circuit qc(12);
  for (int rep = 0; rep < 20; ++rep) {
    qc.rzz(0, 4, 0.1);   // nodes 0-2
    qc.rzz(6, 10, 0.1);  // nodes 3-5
  }
  return qc;
}

TEST(Reshare, BoundaryReshareThrottlesRoutesSharingASurvivingEdge) {
  const Circuit qc = disjoint_then_overlapping_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  ArchConfig frozen;
  frozen.num_nodes = 6;
  frozen.set_topology(net::Topology::ring(6));
  frozen.share_edge_capacity = true;
  Scenario scn;
  scn.link_outages.push_back({4, 5, 15.0, 1500.0});
  frozen.set_scenario(scn);
  ArchConfig reshared = frozen;
  reshared.reshare_at_boundaries = true;

  const RunResult a = run_once(qc, nodes, frozen, DesignKind::AsyncBuf);
  const RunResult b = run_once(qc, nodes, reshared, DesignKind::AsyncBuf);
  // Frozen shares keep both links drawing their full t=0 budgets over the
  // now-shared edges; resharing shrinks the comm-pair grants for the
  // whole fault window, so strictly fewer generation attempts run.
  EXPECT_LT(b.epr_attempts, a.epr_attempts);
  EXPECT_GT(b.reroutes, 0u);
}

// -------------------------------------------------------- retry/watchdog ----

TEST(RetryKnob, BackoffReducesProbingOnAFailingLink) {
  // Backoff changes the attempt *rate*, not the attempts-per-success law
  // (the Bernoulli stream per pair is untouched), so the observable is
  // probing over a fixed sim-time horizon on a link that effectively
  // never succeeds: every-window probes each cycle, backoff stretches
  // the gaps up to the ceiling.
  Circuit qc(4);
  qc.rzz(0, 2, 0.1);
  const std::vector<int> nodes = {0, 0, 1, 1};
  ArchConfig every;
  every.num_nodes = 2;
  every.set_topology(net::Topology::chain(2));
  every.p_succ = 1e-7;  // dead-in-practice link
  every.max_trial_sim_time = 2000.0;
  ArchConfig backoff = every;
  backoff.retry_policy.kind = ent::RetryKind::ExponentialBackoff;
  backoff.retry_policy.interval = backoff.lat.epr_cycle;
  backoff.retry_policy.growth = 2.0;
  backoff.retry_policy.max_interval = 16.0 * backoff.lat.epr_cycle;

  const RunResult a = run_once(qc, nodes, every, DesignKind::AsyncBuf);
  const RunResult b = run_once(qc, nodes, backoff, DesignKind::AsyncBuf);
  EXPECT_TRUE(a.truncated);
  EXPECT_TRUE(b.truncated);
  EXPECT_GT(a.epr_attempts, 2u * b.epr_attempts);
  EXPECT_GT(b.epr_attempts, 0u);
}

TEST(StallWatchdog, LongOutageTripsTheWatchdog) {
  Circuit qc(4);
  for (int i = 0; i < 10; ++i) qc.rzz(0, 2, 0.1);
  const std::vector<int> nodes = {0, 0, 1, 1};
  ArchConfig config;
  config.num_nodes = 2;
  config.set_topology(net::Topology::chain(2));
  Scenario scn;
  scn.link_outages.push_back({0, 1, 12.0, 200.0});
  config.set_scenario(scn);

  // Watchdog off: nothing reported.
  const RunResult off = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_EQ(off.links_stalled, 0u);

  // A 200-unit success drought beats 10 attempt windows (100 units).
  config.stall_windows = 10;
  const RunResult tight = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_EQ(tight.links_stalled, 1u);
  // The watchdog is observation only: identical trial results.
  EXPECT_EQ(off.depth, tight.depth);
  EXPECT_EQ(off.fidelity, tight.fidelity);

  // A lenient threshold stays quiet.
  config.stall_windows = 50;
  const RunResult loose = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_EQ(loose.links_stalled, 0u);
}

// ------------------------------------------------------------ truncation ----

TEST(Truncation, PermanentOutageTerminatesAtTheBudget) {
  Circuit qc(4);
  qc.rzz(0, 2, 0.1);
  const std::vector<int> nodes = {0, 0, 1, 1};
  ArchConfig config;
  config.num_nodes = 2;
  config.set_topology(net::Topology::chain(2));
  Scenario scn;
  scn.link_outages.push_back({0, 1, 0.0, 1e9});  // down from t=0, forever
  config.set_scenario(scn);
  config.max_trial_sim_time = 500.0;

  const RunResult r = run_once(qc, nodes, config, DesignKind::AsyncBuf);
  EXPECT_TRUE(r.truncated);
  // Depth reports the budget horizon (local-CNOT latency is 1.0) and the
  // severed link accrued downtime over the whole truncated trial.
  EXPECT_DOUBLE_EQ(r.depth, 500.0);
  EXPECT_DOUBLE_EQ(r.outage_downtime, 500.0);
}

TEST(Truncation, GenerousBudgetIsBitIdenticalToNoBudget) {
  Circuit qc(4);
  for (int i = 0; i < 6; ++i) qc.rzz(0, 2, 0.1);
  const std::vector<int> nodes = {0, 0, 1, 1};
  ArchConfig unbounded;
  unbounded.num_nodes = 2;
  unbounded.set_topology(net::Topology::chain(2));
  ArchConfig bounded = unbounded;
  bounded.max_trial_sim_time = 1e9;

  for (const DesignKind design : distributed_designs()) {
    SCOPED_TRACE(design_name(design));
    const RunResult a = run_once(qc, nodes, unbounded, design);
    const RunResult b = run_once(qc, nodes, bounded, design);
    EXPECT_FALSE(b.truncated);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.fidelity, b.fidelity);
    EXPECT_EQ(a.epr_attempts, b.epr_attempts);
  }
}

// ----------------------------------------------------------- determinism ----

void expect_identical(const Accumulator& a, const Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_identical(const AggregateResult& a, const AggregateResult& b) {
  expect_identical(a.depth, b.depth, "depth");
  expect_identical(a.fidelity, b.fidelity, "fidelity");
  expect_identical(a.epr_wasted, b.epr_wasted, "epr_wasted");
  expect_identical(a.epr_expired, b.epr_expired, "epr_expired");
  expect_identical(a.avg_pair_age, b.avg_pair_age, "avg_pair_age");
  expect_identical(a.avg_remote_wait, b.avg_remote_wait, "avg_remote_wait");
  expect_identical(a.entanglement_swaps, b.entanglement_swaps,
                   "entanglement_swaps");
  expect_identical(a.avg_route_hops, b.avg_route_hops, "avg_route_hops");
  expect_identical(a.reroutes, b.reroutes, "reroutes");
  expect_identical(a.outage_downtime, b.outage_downtime, "outage_downtime");
  expect_identical(a.pairs_salvaged, b.pairs_salvaged, "pairs_salvaged");
  expect_identical(a.pairs_discarded, b.pairs_discarded, "pairs_discarded");
  expect_identical(a.links_stalled, b.links_stalled, "links_stalled");
  expect_identical(a.truncated, b.truncated, "truncated");
}

/// 8 qubits over 4 nodes with remote traffic on four node pairs.
Circuit four_node_circuit() {
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);  // nodes 0-1
    qc.rzz(3, 4, 0.1);  // nodes 1-2
    qc.rzz(5, 6, 0.1);  // nodes 2-3
    qc.rzz(7, 0, 0.1);  // nodes 3-0
    qc.rzz(0, 1, 0.1);  // local on node 0
    qc.h(2);
  }
  return qc;
}

/// Drift + deterministic and stochastic outages, exercising every scenario
/// component the degraded knobs interact with.
Scenario faulty_scenario() {
  Scenario scn;
  DriftTrack walk;
  walk.field = DriftField::PSucc;
  walk.kind = DriftKind::RandomWalk;
  walk.walk_interval = 25.0;
  walk.walk_step = 0.15;
  scn.drift.push_back(walk);
  scn.link_outages.push_back({1, 2, 60.0, 40.0});
  scn.node_outages.push_back({3, 150.0, 30.0});
  scn.random_failures.mtbf = 500.0;
  scn.random_failures.duration = 35.0;
  return scn;
}

TEST(DegradedDeterminism, EveryKnobComboIsThreadCountInvariant) {
  const Circuit qc = four_node_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2, 3, 3};
  constexpr int kRuns = 6;
  constexpr std::uint64_t kSeed = 1200;

  struct Combo {
    const char* name;
    bool swap_go, salvage, share, reshare, retry, jitter;
    int stall;
    double budget;
  };
  const Combo combos[] = {
      {"salvage_swap_go", true, true, false, false, false, false, 0, 1e18},
      {"salvage_composed", false, true, false, false, false, false, 0, 1e18},
      {"reshare", false, false, true, true, false, false, 0, 1e18},
      {"retry_jitter", false, false, false, false, true, true, 0, 1e18},
      {"stall_budget", false, false, false, false, false, false, 5, 900.0},
      {"all_swap_go", true, true, false, false, true, true, 5, 900.0},
      {"all_composed", false, true, true, true, true, true, 5, 900.0},
  };
  for (const Combo& combo : combos) {
    ArchConfig config;
    config.num_nodes = 4;
    config.set_topology(net::Topology::ring(4));
    config.set_scenario(faulty_scenario());
    config.swap_as_you_go = combo.swap_go;
    config.salvage_pairs = combo.salvage;
    config.share_edge_capacity = combo.share;
    config.reshare_at_boundaries = combo.reshare;
    if (combo.retry) {
      config.retry_policy.kind = ent::RetryKind::ExponentialBackoff;
      config.retry_policy.interval = config.lat.epr_cycle;
      config.retry_policy.growth = 2.0;
      config.retry_policy.max_interval = 8.0 * config.lat.epr_cycle;
      config.retry_policy.attempt_cutoff = 6;
      if (combo.jitter) config.retry_policy.jitter = 0.3;
    }
    config.stall_windows = combo.stall;
    config.max_trial_sim_time = combo.budget;
    for (const DesignKind design : distributed_designs()) {
      const AggregateResult serial =
          run_design(qc, nodes, config, design, kRuns, kSeed, /*threads=*/1);
      for (const int threads : {0, 2, 4}) {
        SCOPED_TRACE(std::string(combo.name) + " " + design_name(design) +
                     " @ " + std::to_string(threads) + " threads");
        const AggregateResult parallel =
            run_design(qc, nodes, config, design, kRuns, kSeed, threads);
        expect_identical(serial, parallel);
      }
    }
  }
}

}  // namespace
}  // namespace dqcsim::runtime
