/// Integration tests: full pipeline (generate -> partition -> simulate)
/// asserting the paper's qualitative results hold (§V shapes), plus
/// parameterized property sweeps over architecture knobs.

#include <gtest/gtest.h>

#include "gen/benchmarks.hpp"
#include "runtime/experiment.hpp"

namespace dqcsim::runtime {
namespace {

struct PipelineResult {
  double ideal_depth = 0.0;
  double ideal_fidelity = 0.0;
  AggregateResult by_design[5];
};

/// Run all five distributed designs on a benchmark with a modest number of
/// seeds (kept small: these are integration tests, not the bench harness).
/// Goes through run_design_matrix so one pool covers the whole design sweep.
PipelineResult run_pipeline(gen::BenchmarkId id, const ArchConfig& config,
                            int runs = 8) {
  const Circuit qc = gen::make_benchmark(id);
  const auto part = partition_circuit(qc, 2);
  PipelineResult result;
  result.ideal_depth = ideal_depth(qc, config);
  result.ideal_fidelity = ideal_fidelity(qc, config);
  std::vector<DesignPoint> points;
  for (const DesignKind design : distributed_designs()) {
    points.push_back({design, config});
  }
  const auto aggregates = run_design_matrix(qc, part.assignment, points, runs);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    result.by_design[i] = aggregates[i];
  }
  return result;
}

constexpr std::size_t kOriginal = 0, kSync = 1, kAsync = 2, kAdapt = 3,
                      kInit = 4;

TEST(PaperShapes, Fig5DepthOrderingQaoaR8) {
  const PipelineResult r = run_pipeline(gen::BenchmarkId::QAOA_R8_32, {});
  const auto depth = [&](std::size_t i) { return r.by_design[i].depth.mean(); };
  // original > sync_buf > async_buf >= adapt_buf >= init_buf > ideal.
  EXPECT_GT(depth(kOriginal), depth(kSync));
  EXPECT_GT(depth(kSync), depth(kAsync));
  EXPECT_GE(depth(kAsync) * 1.02, depth(kAdapt));  // allow 2% tolerance
  EXPECT_GT(depth(kAdapt), depth(kInit));
  EXPECT_GT(depth(kInit), r.ideal_depth);
}

TEST(PaperShapes, Fig5BuffersHelpMostOnRemoteHeavyCircuits) {
  const ArchConfig config;
  const PipelineResult qft = run_pipeline(gen::BenchmarkId::QFT_32, config, 4);
  const PipelineResult tlim =
      run_pipeline(gen::BenchmarkId::TLIM_32, config, 4);
  const auto improvement = [](const PipelineResult& p) {
    return p.by_design[kOriginal].depth.mean() /
           p.by_design[kSync].depth.mean();
  };
  // Both circuits benefit from buffering; QFT's original design also wastes
  // more EPR pairs than TLIM's in absolute terms (its makespan is an order
  // of magnitude longer, so far more heralded pairs find no pending gate).
  EXPECT_GT(improvement(qft), 1.1);
  EXPECT_GT(improvement(tlim), 1.5);
  EXPECT_GT(qft.by_design[kOriginal].epr_wasted.mean(),
            2.0 * tlim.by_design[kOriginal].epr_wasted.mean());
}

TEST(PaperShapes, Fig6FidelityOrdering) {
  const PipelineResult r = run_pipeline(gen::BenchmarkId::QAOA_R8_32, {});
  const auto fid = [&](std::size_t i) {
    return r.by_design[i].fidelity.mean();
  };
  // original <= sync_buf < async_buf ~= adapt_buf; init_buf <= async_buf;
  // everything below ideal.
  EXPECT_LE(fid(kOriginal), fid(kSync) * 1.02);
  EXPECT_LT(fid(kSync), fid(kAsync));
  // The paper reports identical async/adapt fidelity; in our model adaptive
  // ASAP drains the buffer stock a little deeper (slightly older pairs), so
  // allow an 8% band around async_buf.
  EXPECT_NEAR(fid(kAdapt), fid(kAsync), 0.08 * fid(kAsync));
  EXPECT_LE(fid(kInit), fid(kAsync));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LT(fid(i), r.ideal_fidelity);
  }
}

TEST(PaperShapes, Fig5InitBufNearIdealForSparseRemote) {
  // QAOA-r4-32 in the paper reaches the ideal depth with init_buf; our
  // reproduction should land within ~2x of ideal while async stays >2.5x.
  const PipelineResult r = run_pipeline(gen::BenchmarkId::QAOA_R4_32, {});
  EXPECT_LT(r.by_design[kInit].depth.mean(), 2.0 * r.ideal_depth);
  EXPECT_GT(r.by_design[kAsync].depth.mean(), 2.5 * r.ideal_depth);
}

TEST(PaperShapes, OnlyOriginalWastesPairs) {
  const PipelineResult r = run_pipeline(gen::BenchmarkId::QAOA_R8_32, {});
  EXPECT_GT(r.by_design[kOriginal].epr_wasted.mean(), 1.0);
  // Buffered designs with ample capacity waste (almost) nothing.
  EXPECT_LT(r.by_design[kSync].epr_wasted.mean(), 1.0);
  EXPECT_LT(r.by_design[kAsync].epr_wasted.mean(), 1.0);
}

TEST(PaperShapes, Fig7MoreCommQubitsReduceDepth) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  double previous = 1e18;
  for (int comm : {10, 15, 20}) {
    ArchConfig config;
    config.comm_per_node = comm;
    config.buffer_per_node = comm;
    const auto agg =
        run_design(qc, part.assignment, config, DesignKind::InitBuf, 6);
    EXPECT_LT(agg.depth.mean(), previous) << comm << " comm qubits";
    previous = agg.depth.mean();
  }
}

TEST(PaperShapes, Fig7FidelityInsensitiveToCommCount) {
  // Paper §V-B: "the circuit fidelity remains almost unchanged."
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  ArchConfig config10;
  ArchConfig config20;
  config20.comm_per_node = 20;
  config20.buffer_per_node = 20;
  const auto f10 =
      run_design(qc, part.assignment, config10, DesignKind::AsyncBuf, 6);
  const auto f20 =
      run_design(qc, part.assignment, config20, DesignKind::AsyncBuf, 6);
  EXPECT_NEAR(f10.fidelity.mean(), f20.fidelity.mean(),
              0.15 * f10.fidelity.mean());
}

// ------------------------------------------------------- property sweeps ----

class PSuccSweep : public ::testing::TestWithParam<double> {};

TEST_P(PSuccSweep, HigherSuccessProbabilityNeverHurtsDepth) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  ArchConfig lo;
  lo.p_succ = GetParam();
  ArchConfig hi = lo;
  hi.p_succ = std::min(1.0, GetParam() + 0.3);
  const auto dlo = run_design(qc, part.assignment, lo, DesignKind::AsyncBuf, 6);
  const auto dhi = run_design(qc, part.assignment, hi, DesignKind::AsyncBuf, 6);
  EXPECT_LT(dhi.depth.mean(), dlo.depth.mean() * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, PSuccSweep,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6));

class DesignSweep : public ::testing::TestWithParam<DesignKind> {};

TEST_P(DesignSweep, FidelityIsAlwaysAValidProbability) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  const auto agg = run_design(qc, part.assignment, {}, GetParam(), 4);
  EXPECT_GT(agg.fidelity.min(), 0.0);
  EXPECT_LE(agg.fidelity.max(), 1.0);
  EXPECT_GT(agg.depth.min(), 0.0);
}

TEST_P(DesignSweep, DepthNeverBeatsIdeal) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  const ArchConfig config;
  const auto agg = run_design(qc, part.assignment, config, GetParam(), 4);
  EXPECT_GE(agg.depth.min(), ideal_depth(qc, config) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributed, DesignSweep,
    ::testing::Values(DesignKind::Original, DesignKind::SyncBuf,
                      DesignKind::AsyncBuf, DesignKind::AdaptBuf,
                      DesignKind::InitBuf),
    [](const ::testing::TestParamInfo<DesignKind>& tp) {
      return design_name(tp.param);
    });

TEST(PropertySweeps, CutoffTradesWasteForFreshness) {
  // An aggressive cutoff discards stale pairs: expired count rises, and
  // the average consumed-pair age cannot grow.
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::TLIM_32);
  const auto part = partition_circuit(qc, 2);
  ArchConfig no_cutoff;
  ArchConfig strict = no_cutoff;
  strict.buffer_cutoff = 5.0;
  const auto free_run =
      run_design(qc, part.assignment, no_cutoff, DesignKind::SyncBuf, 6);
  const auto strict_run =
      run_design(qc, part.assignment, strict, DesignKind::SyncBuf, 6);
  EXPECT_GT(strict_run.epr_expired.mean(), free_run.epr_expired.mean());
  EXPECT_LE(strict_run.avg_pair_age.mean(),
            free_run.avg_pair_age.mean() + 1.0);
}

TEST(PropertySweeps, SegmentSizeOneStillCorrectAndComplete) {
  // Degenerate adaptive segmentation (m = 1) must still execute every gate.
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  ArchConfig config;
  config.segment_size = 1;
  const auto agg =
      run_design(qc, part.assignment, config, DesignKind::AdaptBuf, 4);
  EXPECT_GT(agg.depth.mean(), 0.0);
}

TEST(PropertySweeps, SixtyFourQubitSystemsScale) {
  // Fig. 8 configuration: 64 data qubits, 20 comm + 20 buffer per node.
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_64);
  const auto part = partition_circuit(qc, 2);
  ArchConfig config;
  config.comm_per_node = 20;
  config.buffer_per_node = 20;
  const double ideal = ideal_depth(qc, config);
  const auto sync =
      run_design(qc, part.assignment, config, DesignKind::SyncBuf, 4);
  const auto init =
      run_design(qc, part.assignment, config, DesignKind::InitBuf, 4);
  EXPECT_GT(sync.depth.mean(), init.depth.mean());
  EXPECT_GT(init.depth.mean(), ideal);
}

}  // namespace
}  // namespace dqcsim::runtime
