/// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "des/event_queue.hpp"
#include "des/simulator.hpp"

namespace dqcsim::des {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(1.0, [] {});
  EXPECT_FALSE(q.cancel(999));
  EXPECT_FALSE(q.cancel(0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, RejectsInvalidTimes) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), [] {}),
               PreconditionError);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}),
               PreconditionError);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), PreconditionError);
  EXPECT_THROW(q.next_time(), PreconditionError);
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CannotScheduleInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(4.0, [] {}), PreconditionError);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), PreconditionError);
  });
  sim.run();
}

TEST(Simulator, EventsCanChain) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunRespectsEventLimit) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_THROW(sim.run_until(41.0), PreconditionError);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.idle());
  sim.schedule_at(1.0, [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_TRUE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace dqcsim::des
