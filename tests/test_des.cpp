/// Unit tests for the discrete-event simulation kernel: ordering and clock
/// semantics, plus the pooled-event store's edge cases (eager cancellation,
/// cancel-during-dispatch, pool reuse across reset(), oversized-closure
/// fallback, and the bounded-memory guarantee that replaced the old
/// tombstone-accumulating lazy cancellation).

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "des/event_queue.hpp"
#include "des/simulator.hpp"

namespace dqcsim::des {
namespace {

/// Fire every pending event in order.
void drain(EventQueue& q) {
  while (!q.empty()) q.dispatch_next();
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  drain(q);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  drain(q);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, TiesBreakFifoUnderInterleavedCancels) {
  // Cancelling entries between equal-time inserts must not disturb the
  // FIFO order of the survivors (the heap swap-with-last removal is
  // order-restoring because ordering is (time, seq), not position).
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(q.schedule(1.0, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 12; i += 3) EXPECT_TRUE(q.cancel(ids[i]));
  drain(q);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 7, 8, 10, 11}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(1.0, [] {});
  EXPECT_FALSE(q.cancel(999));
  EXPECT_FALSE(q.cancel(0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(id);
  drain(q);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelOfFiredEventIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.dispatch_next();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsNoop) {
  // After an event fires, its slot is recycled for the next schedule; the
  // old handle must not cancel the new occupant (generation mismatch).
  EventQueue q;
  const EventId stale = q.schedule(1.0, [] {});
  q.dispatch_next();
  bool fired = false;
  q.schedule(2.0, [&] { fired = true; });
  EXPECT_FALSE(q.cancel(stale));
  drain(q);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelDuringDispatch) {
  EventQueue q;
  std::vector<int> fired;
  EventId self = 0;
  EventId other = 0;
  other = q.schedule(2.0, [&] { fired.push_back(2); });
  self = q.schedule(1.0, [&] {
    fired.push_back(1);
    // Cancelling the event currently dispatching is a no-op...
    EXPECT_FALSE(q.cancel(self));
    // ...while cancelling another pending event takes effect immediately.
    EXPECT_TRUE(q.cancel(other));
  });
  drain(q);
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

TEST(EventQueue, CallbackMayScheduleDuringDispatch) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1.0);
    // Re-entrant scheduling may grow the pool while this callback executes
    // from its own (stable) slot.
    for (int i = 0; i < 1000; ++i) {
      q.schedule(2.0 + i, [&fired, i] {
        if (i == 0) fired.push_back(2.0);
      });
    }
  });
  drain(q);
  ASSERT_EQ(fired.size(), 2u);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, RejectsInvalidTimes) {
  EventQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), [] {}),
               PreconditionError);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}),
               PreconditionError);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.dispatch_next(), PreconditionError);
  EXPECT_THROW(q.next_time(), PreconditionError);
}

// ---------------------------------------------------- pooled-event store ----

TEST(EventPool, CancelHeavyWorkloadStaysBounded) {
  // Regression for the old lazy-cancellation design: cancelled entries were
  // only purged when they reached the top of the priority queue, so a
  // schedule-then-cancel pattern (e.g. purification cutoff timers that are
  // usually cancelled early) grew the heap without bound. The indexed heap
  // removes entries eagerly: memory stays at the live high-water mark.
  EventQueue q;
  constexpr int kWave = 64;
  std::array<EventId, kWave> ids{};
  for (int round = 0; round < 10000; ++round) {
    for (int i = 0; i < kWave; ++i) {
      // Far-future events: under lazy cancellation none would ever surface.
      ids[static_cast<std::size_t>(i)] =
          q.schedule(1e9 + round, [] {});
    }
    for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 0u);
  // 640k schedule/cancel cycles must not grow the store past one slab block
  // (the live count never exceeds kWave <= 256), and the dead-entry
  // compaction must keep the index bounded too.
  EXPECT_EQ(q.pool_blocks(), 1u);
  EXPECT_LE(q.pool_slots(), 256u);
  EXPECT_LE(q.index_entries(), 2048u);
  EXPECT_EQ(q.oversized_allocations(), 0u);
}

TEST(EventPool, CancelHeavyWithSurvivorsStaysOrderedAndBounded) {
  // Interleave cancels with survivors across compaction sweeps: ordering
  // must hold and all survivors must fire exactly once.
  EventQueue q;
  std::size_t fired = 0;
  double last_time = -1.0;
  std::size_t scheduled_survivors = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<EventId> doomed;
    for (int i = 0; i < 50; ++i) {
      doomed.push_back(q.schedule(1e6 + round, [] { FAIL(); }));
    }
    const double t = static_cast<double>(round);
    q.schedule(t, [&fired, &last_time, t] {
      EXPECT_GE(t, last_time);
      last_time = t;
      ++fired;
    });
    ++scheduled_survivors;
    for (const EventId id : doomed) EXPECT_TRUE(q.cancel(id));
    if (round % 3 == 0) q.dispatch_next();
  }
  while (!q.empty()) q.dispatch_next();
  EXPECT_EQ(fired, scheduled_survivors);
  EXPECT_LE(q.index_entries(), 2048u);
}

TEST(EventPool, ReuseAcrossResetKeepsCapacity) {
  EventQueue q;
  auto churn = [&q] {
    for (int i = 0; i < 2000; ++i) {
      q.schedule(static_cast<double>(i % 97), [] {});
    }
    drain(q);
  };
  churn();
  const std::size_t blocks = q.pool_blocks();
  const std::size_t slots = q.pool_slots();
  ASSERT_GT(blocks, 0u);
  for (int trial = 0; trial < 5; ++trial) {
    q.reset();
    churn();
    // Steady state: identical workloads never grow the pool again.
    EXPECT_EQ(q.pool_blocks(), blocks);
    EXPECT_EQ(q.pool_slots(), slots);
  }
}

TEST(EventPool, ResetDestroysPendingCallbacks) {
  // Callback destructors must run on reset (no leaks of captured state).
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  EventQueue q;
  q.schedule(1.0, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  q.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_TRUE(q.empty());
}

TEST(EventPool, OversizedClosureFallsBackToHeap) {
  EventQueue q;
  std::array<char, 128> big{};
  big[0] = 7;
  int observed = 0;
  q.schedule(1.0, [big, &observed] { observed = big[0]; });
  EXPECT_EQ(q.oversized_allocations(), 1u);
  drain(q);
  EXPECT_EQ(observed, 7);

  // Cancellation must destroy the boxed copy too (ASan would flag a leak).
  const EventId id = q.schedule(1.0, [big, &observed] { observed = 9; });
  EXPECT_EQ(q.oversized_allocations(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(observed, 7);
}

TEST(EventPool, InlineCallbacksNeverBox) {
  EventQueue q;
  // The engine's hot callbacks capture at most a pointer + two indices.
  struct {
    void* self = nullptr;
    std::size_t a = 0, b = 0;
  } payload;
  for (int i = 0; i < 1000; ++i) {
    q.schedule(1.0, [payload] { (void)payload; });
  }
  EXPECT_EQ(q.oversized_allocations(), 0u);
  drain(q);
}

TEST(EventPool, ReserveWarmsThePool) {
  EventQueue q;
  q.reserve(1000);
  const std::size_t blocks = q.pool_blocks();
  EXPECT_GE(q.pool_slots(), 1000u);
  for (int i = 0; i < 1000; ++i) q.schedule(1.0, [] {});
  EXPECT_EQ(q.pool_blocks(), blocks);
  drain(q);
}

// -------------------------------------------------------------- simulator ----

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, CannotScheduleInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(4.0, [] {}), PreconditionError);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), PreconditionError);
  });
  sim.run();
}

TEST(Simulator, EventsCanChain) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) sim.schedule_in(1.0, tick);
  };
  sim.schedule_at(0.0, tick);
  sim.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulator, RunRespectsEventLimit) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
  EXPECT_THROW(sim.run_until(41.0), PreconditionError);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.idle());
  sim.schedule_at(1.0, [] {});
  EXPECT_FALSE(sim.idle());
  EXPECT_TRUE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ResetRewindsClockAndDropsEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(1.0, [] {});
  sim.run();
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_TRUE(sim.idle());
  // Scheduling at t < the pre-reset clock is legal again after reset.
  sim.schedule_at(0.5, [] {});
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(fired);
}

TEST(Simulator, IdenticalReplayAfterReset) {
  // A reused simulator must reproduce a fresh one's behavior exactly —
  // the foundation of the reusable per-worker RunContext.
  auto script = [](Simulator& sim) {
    std::vector<double> fired;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<double>((i * 37) % 50),
                      [&fired, &sim] { fired.push_back(sim.now()); });
    }
    sim.run();
    return fired;
  };
  Simulator fresh;
  const auto expected = script(fresh);
  Simulator reused;
  (void)script(reused);
  reused.reset();
  EXPECT_EQ(script(reused), expected);
}

}  // namespace
}  // namespace dqcsim::des
