/// Unit tests for the gate-fusion pass (circuit/fusion.hpp) and the fused
/// statevector execution path: random-circuit equivalence against the
/// unfused gate-by-gate reference, structural guarantees of the fused ops,
/// and the engine-facing 1q-chain analysis.

#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "circuit/fusion.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/tlim.hpp"
#include "qsim/statevector.hpp"

namespace dqcsim {
namespace {

using qsim::Complex;
using qsim::Statevector;

constexpr double kTol = 1e-10;

/// A random unitary circuit over the full gate vocabulary.
Circuit random_circuit(int num_qubits, std::size_t num_gates, Rng& rng) {
  const GateKind one_q[] = {GateKind::H,  GateKind::X,   GateKind::Y,
                            GateKind::Z,  GateKind::S,   GateKind::Sdg,
                            GateKind::T,  GateKind::Tdg, GateKind::RX,
                            GateKind::RY, GateKind::RZ};
  const GateKind two_q[] = {GateKind::CX, GateKind::CZ, GateKind::CP,
                            GateKind::RZZ, GateKind::SWAP};
  Circuit qc(num_qubits, "random");
  for (std::size_t i = 0; i < num_gates; ++i) {
    const double param = rng.uniform(-3.0, 3.0);
    if (num_qubits >= 2 && rng.bernoulli(0.5)) {
      const auto kind = two_q[rng.uniform_int(std::size(two_q))];
      const auto a = static_cast<QubitId>(rng.uniform_int(
          static_cast<std::uint64_t>(num_qubits)));
      auto b = static_cast<QubitId>(
          rng.uniform_int(static_cast<std::uint64_t>(num_qubits - 1)));
      if (b >= a) ++b;
      qc.append(make_gate(kind, a, b, param));
    } else {
      const auto kind = one_q[rng.uniform_int(std::size(one_q))];
      const auto q = static_cast<QubitId>(rng.uniform_int(
          static_cast<std::uint64_t>(num_qubits)));
      qc.append(make_gate(kind, q, param));
    }
  }
  return qc;
}

/// Max amplitude difference between the unfused and fused execution of `qc`
/// from a fixed nontrivial product-state-ish input.
double fused_unfused_difference(const Circuit& qc,
                                const FusionOptions& opts = {}) {
  Statevector reference(qc.num_qubits());
  // Start from a non-basis state so phases matter everywhere.
  for (QubitId q = 0; q < qc.num_qubits(); ++q) {
    reference.apply_1q(qsim::gate_unitary_1q(GateKind::RY, 0.3 + 0.1 * q),
                       q);
  }
  Statevector fused = reference;
  reference.apply_circuit(qc);
  fused.apply_fused(fuse_circuit(qc, opts));
  return fused.max_amplitude_difference(reference);
}

// ------------------------------------------------------------ correctness --

TEST(Fusion, RandomCircuitsMatchUnfusedReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    const int n = 2 + static_cast<int>(rng.uniform_int(6));  // 2..7 qubits
    const Circuit qc = random_circuit(n, 200, rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ", " + std::to_string(n) +
                 " qubits");
    EXPECT_LT(fused_unfused_difference(qc), kTol);
  }
}

TEST(Fusion, RandomCircuitsMatchWithoutCommuteHops) {
  Rng rng(77);
  const Circuit qc = random_circuit(5, 300, rng);
  FusionOptions opts;
  opts.allow_diagonal_commute = false;
  EXPECT_LT(fused_unfused_difference(qc, opts), kTol);
}

TEST(Fusion, PaperFamiliesMatchUnfusedReference) {
  Rng rng(12);
  const Circuit circuits[] = {gen::make_qft(8), gen::make_tlim(8, {}),
                              gen::make_qaoa_regular(8, 4, rng)};
  for (const Circuit& qc : circuits) {
    SCOPED_TRACE(qc.name());
    EXPECT_LT(fused_unfused_difference(qc), kTol);
  }
}

TEST(Fusion, ApplyOpMatchesApplyFusedOpByOp) {
  Rng rng(9);
  const Circuit qc = random_circuit(6, 120, rng);
  const FusedCircuit fc = fuse_circuit(qc);
  Statevector a(6), b(6);
  for (const FusedOp& op : fc.ops()) a.apply_op(op);
  b.apply_fused(fc);
  EXPECT_LT(a.max_amplitude_difference(b), kTol);
}

// ------------------------------------------------------------- structure --

TEST(Fusion, EveryFusedMatrixIsUnitary) {
  Rng rng(21);
  const Circuit qc = random_circuit(6, 250, rng);
  const FusedCircuit fc = fuse_circuit(qc);
  for (const FusedOp& op : fc.ops()) {
    if (op.arity() == 1) {
      EXPECT_TRUE(qsim::is_unitary(op.m2, 1e-9));
    } else {
      EXPECT_TRUE(qsim::is_unitary(op.m4, 1e-9));
    }
  }
}

TEST(Fusion, CompressesOneQubitRuns) {
  Circuit qc(3);
  for (int rep = 0; rep < 5; ++rep) {
    qc.h(0);
    qc.t(0);
    qc.rz(0, 0.3);
  }
  qc.cx(0, 1);
  const FusedCircuit fc = fuse_circuit(qc);
  // The fifteen 1q gates collapse into (at most) one op, absorbed or not
  // by the trailing CX.
  EXPECT_LE(fc.num_ops(), 2u);
  EXPECT_EQ(fc.source_gate_count(), 16u);
  EXPECT_GE(fc.compression_ratio(), 8.0);
}

TEST(Fusion, MergesSamePairTwoQubitRuns) {
  Circuit qc(4);
  qc.cx(2, 1);
  qc.cz(1, 2);      // same pair, reversed operand order
  qc.rzz(2, 1, 0.4);
  const FusedCircuit fc = fuse_circuit(qc);
  EXPECT_EQ(fc.num_ops(), 1u);
  EXPECT_EQ(fc.ops()[0].source_gates, 3u);
  EXPECT_LT(fused_unfused_difference(qc), kTol);
}

TEST(Fusion, DiagonalGatesStayDiagonal) {
  Circuit qc(4);
  qc.rzz(0, 1, 0.5);
  qc.rz(0, 0.2);
  qc.cp(2, 3, 0.7);
  qc.rzz(1, 2, 0.1);
  const FusedCircuit fc = fuse_circuit(qc);
  for (const FusedOp& op : fc.ops()) {
    EXPECT_TRUE(op.diagonal()) << "op is not diagonal";
  }
  EXPECT_LT(fused_unfused_difference(qc), kTol);
}

TEST(Fusion, DiagonalCommuteHopMergesAcrossDiagonalNeighbours) {
  Circuit qc(3);
  qc.rzz(0, 1, 0.3);
  qc.rzz(1, 2, 0.4);  // shares wire 1, diagonal: hop-over candidate
  qc.rzz(0, 1, 0.2);  // merges back into the first op
  const FusedCircuit with_hops = fuse_circuit(qc);
  EXPECT_EQ(with_hops.num_ops(), 2u);
  FusionOptions no_hops;
  no_hops.allow_diagonal_commute = false;
  EXPECT_EQ(fuse_circuit(qc, no_hops).num_ops(), 3u);
  EXPECT_LT(fused_unfused_difference(qc), kTol);
}

TEST(Fusion, ClassifiesPermutationOps) {
  Circuit qc(2);
  qc.cx(0, 1);
  const FusedCircuit fc = fuse_circuit(qc);
  ASSERT_EQ(fc.num_ops(), 1u);
  EXPECT_EQ(fc.ops()[0].kind, FusedOp::Kind::Perm2Q);
}

TEST(Fusion, SourceGateCountsAreConserved) {
  Rng rng(31);
  const Circuit qc = random_circuit(5, 150, rng);
  const FusedCircuit fc = fuse_circuit(qc);
  std::size_t total = 0;
  for (const FusedOp& op : fc.ops()) total += op.source_gates;
  EXPECT_EQ(total, qc.num_gates());
  EXPECT_LE(fc.num_ops(), qc.num_gates());
}

TEST(Fusion, RejectsMeasurement) {
  Circuit qc(2);
  qc.h(0);
  qc.measure(0);
  EXPECT_THROW(fuse_circuit(qc), PreconditionError);
}

TEST(Fusion, EmptyCircuit) {
  const FusedCircuit fc = fuse_circuit(Circuit(3));
  EXPECT_EQ(fc.num_ops(), 0u);
  EXPECT_EQ(fc.compression_ratio(), 1.0);
}

// --------------------------------------------------------- chain analysis --

TEST(FusibleChains, FindsPerWireOneQubitRuns) {
  Circuit qc(2);
  qc.rz(0, 0.1);  // 0
  qc.rz(1, 0.2);  // 1
  qc.rx(0, 0.3);  // 2: follows gate 0 on wire 0
  qc.cx(0, 1);    // 3: breaks both wires
  qc.rx(0, 0.4);  // 4
  qc.measure(0);  // 5: measurement chains too (same scheduling shape)
  const auto next = fusible_1q_chain_next(qc);
  ASSERT_EQ(next.size(), 6u);
  EXPECT_EQ(next[0], 2u);
  EXPECT_EQ(next[1], kNoFusedNext);  // wire 1's next op is the CX
  EXPECT_EQ(next[2], kNoFusedNext);
  EXPECT_EQ(next[3], kNoFusedNext);
  EXPECT_EQ(next[4], 5u);
  EXPECT_EQ(next[5], kNoFusedNext);
}

TEST(FusibleChains, TlimHasRzRxChains) {
  const Circuit qc = gen::make_tlim(8, {});
  const auto next = fusible_1q_chain_next(qc);
  std::size_t links = 0;
  for (const std::size_t n : next) {
    if (n != kNoFusedNext) ++links;
  }
  // Every step's rz layer chains into the rx layer on each wire.
  EXPECT_GE(links, 8u);
}

}  // namespace
}  // namespace dqcsim
