/// Unit tests for the experiment driver: thread-pool mechanics, and the
/// determinism contract that parallel Monte-Carlo execution is bit-identical
/// to the serial path for every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "gen/benchmarks.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"

namespace dqcsim::runtime {
namespace {

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(16,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must still be usable after an exception.
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, FreeParallelForHandlesEdgeCases) {
  std::atomic<int> counter{0};
  parallel_for(0, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
  parallel_for(1, [&](std::size_t) { counter.fetch_add(1); }, 8);
  EXPECT_EQ(counter.load(), 1);
  parallel_for(10, [&](std::size_t) { counter.fetch_add(1); }, 1);
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

// ----------------------------------------------------------- determinism ----

void expect_identical(const Accumulator& a, const Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_identical(const AggregateResult& a, const AggregateResult& b) {
  expect_identical(a.depth, b.depth, "depth");
  expect_identical(a.fidelity, b.fidelity, "fidelity");
  expect_identical(a.epr_wasted, b.epr_wasted, "epr_wasted");
  expect_identical(a.epr_expired, b.epr_expired, "epr_expired");
  expect_identical(a.avg_pair_age, b.avg_pair_age, "avg_pair_age");
  expect_identical(a.avg_remote_wait, b.avg_remote_wait, "avg_remote_wait");
}

TEST(ExperimentDeterminism, ParallelRunDesignIsBitIdenticalToSerial) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  const ArchConfig config;
  constexpr int kRuns = 16;
  constexpr std::uint64_t kSeed = 1000;

  for (const DesignKind design : distributed_designs()) {
    const AggregateResult serial = run_design(qc, part.assignment, config,
                                              design, kRuns, kSeed,
                                              /*threads=*/1);
    for (const int threads : {0, 2, 4, 8}) {
      SCOPED_TRACE(design_name(design) + " @ " + std::to_string(threads) +
                   " threads");
      const AggregateResult parallel = run_design(
          qc, part.assignment, config, design, kRuns, kSeed, threads);
      expect_identical(serial, parallel);
    }
  }
}

TEST(ExperimentDeterminism, RepeatedParallelRunsAgree) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  const AggregateResult first = run_design(qc, part.assignment, {},
                                           DesignKind::AsyncBuf, 8, 42, 4);
  const AggregateResult second = run_design(qc, part.assignment, {},
                                            DesignKind::AsyncBuf, 8, 42, 4);
  expect_identical(first, second);
}

TEST(ExperimentDeterminism, FusedLocalGatesAreBitIdenticalToUnfused) {
  // The engine's 1q-chain fusion (ArchConfig::fuse_local_gates) elides
  // scheduling events but must leave every statistic bit-identical: chain
  // members have no external observers between head start and tail
  // completion, and the completion instant left-folds latencies exactly as
  // sequential scheduling would. TLIM is the chain-rich workload (rz/rx
  // runs per wire); QAOA and QFT cover the chain-free shapes.
  for (const auto id : {gen::BenchmarkId::TLIM_32, gen::BenchmarkId::QAOA_R8_32,
                        gen::BenchmarkId::QFT_32}) {
    const Circuit qc = gen::make_benchmark(id);
    const auto part = partition_circuit(qc, 2);
    for (const DesignKind design : all_designs()) {
      SCOPED_TRACE(gen::benchmark_name(id) + " / " + design_name(design));
      ArchConfig fused, unfused;
      fused.fuse_local_gates = true;
      unfused.fuse_local_gates = false;
      const AggregateResult a =
          run_design(qc, part.assignment, fused, design, 6, 1000, 1);
      const AggregateResult b =
          run_design(qc, part.assignment, unfused, design, 6, 1000, 1);
      expect_identical(a, b);
    }
  }
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.fidelity, b.fidelity);
  EXPECT_EQ(a.fidelity_local, b.fidelity_local);
  EXPECT_EQ(a.fidelity_remote, b.fidelity_remote);
  EXPECT_EQ(a.fidelity_idling, b.fidelity_idling);
  EXPECT_EQ(a.epr_attempts, b.epr_attempts);
  EXPECT_EQ(a.epr_successes, b.epr_successes);
  EXPECT_EQ(a.epr_consumed, b.epr_consumed);
  EXPECT_EQ(a.epr_wasted, b.epr_wasted);
  EXPECT_EQ(a.epr_expired, b.epr_expired);
  EXPECT_EQ(a.avg_pair_age, b.avg_pair_age);
  EXPECT_EQ(a.avg_remote_wait, b.avg_remote_wait);
  EXPECT_EQ(a.segments_asap, b.segments_asap);
  EXPECT_EQ(a.segments_alap, b.segments_alap);
  EXPECT_EQ(a.segments_original, b.segments_original);
  EXPECT_EQ(a.purification_rounds, b.purification_rounds);
  EXPECT_EQ(a.purification_failures, b.purification_failures);
}

TEST(RunContextReuse, MatchesFreshEngineAcrossSetupChanges) {
  // One RunContext executing a heterogeneous sweep — design switches,
  // config switches that invalidate the cached setup (segment size, fusion,
  // remote implementation) and ones that do not (cutoff, purification) —
  // must reproduce a fresh one-shot engine bit for bit on every trial.
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);

  std::vector<std::pair<DesignKind, ArchConfig>> setups;
  for (const DesignKind design : distributed_designs()) {
    setups.push_back({design, ArchConfig{}});
  }
  ArchConfig cutoff;
  cutoff.buffer_cutoff = 25.0;
  setups.push_back({DesignKind::AsyncBuf, cutoff});
  ArchConfig purify;
  purify.purify_on_consume = true;
  setups.push_back({DesignKind::AsyncBuf, purify});
  ArchConfig unfused;
  unfused.fuse_local_gates = false;
  setups.push_back({DesignKind::AsyncBuf, unfused});
  ArchConfig state_tp;
  state_tp.remote_impl = RemoteImpl::StateTeleport;
  setups.push_back({DesignKind::AsyncBuf, state_tp});
  ArchConfig wide_segments;
  wide_segments.segment_size = 2;
  setups.push_back({DesignKind::AdaptBuf, wide_segments});
  setups.push_back({DesignKind::IdealMono, ArchConfig{}});

  RunContext reused;
  // Two passes so every setup is revisited after the cache was retargeted.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < setups.size(); ++i) {
      SCOPED_TRACE("pass " + std::to_string(pass) + " setup " +
                   std::to_string(i));
      const auto& [design, config] = setups[i];
      const std::vector<int> assignment =
          design == DesignKind::IdealMono ? std::vector<int>{}
                                          : part.assignment;
      const std::uint64_t seed = 100 + i;
      const RunResult fresh =
          ExecutionEngine(qc, assignment, config, design, seed).run();
      const RunResult ctx = reused.execute(qc, assignment, config, design,
                                           seed);
      expect_identical(ctx, fresh);
    }
  }
}

TEST(RunContextReuse, RepeatedSameSeedTrialsAreIdentical) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::TLIM_32);
  const auto part = partition_circuit(qc, 2);
  RunContext ctx;
  const RunResult first =
      ctx.execute(qc, part.assignment, {}, DesignKind::SyncBuf, 9);
  for (int i = 0; i < 3; ++i) {
    ctx.execute(qc, part.assignment, {}, DesignKind::SyncBuf, 9 + i + 1);
    const RunResult again =
        ctx.execute(qc, part.assignment, {}, DesignKind::SyncBuf, 9);
    expect_identical(again, first);
  }
}

TEST(RunContextReuse, ValidatesInputsOnEveryCall) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  RunContext ctx;
  ctx.execute(qc, part.assignment, {}, DesignKind::AsyncBuf, 1);
  EXPECT_THROW(
      ctx.execute(qc, {0, 1}, {}, DesignKind::AsyncBuf, 1),
      PreconditionError);
  std::vector<int> bad = part.assignment;
  bad.front() = 7;
  EXPECT_THROW(ctx.execute(qc, bad, {}, DesignKind::AsyncBuf, 1),
               PreconditionError);
  // The context stays usable after a rejected call.
  ctx.execute(qc, part.assignment, {}, DesignKind::AsyncBuf, 1);
}

TEST(ExperimentDeterminism, DifferentBaseSeedsDiffer) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  const auto a = run_design(qc, part.assignment, {}, DesignKind::AsyncBuf, 8,
                            1000, 4);
  const auto b = run_design(qc, part.assignment, {}, DesignKind::AsyncBuf, 8,
                            2000, 4);
  EXPECT_NE(a.depth.mean(), b.depth.mean());
}

// ---------------------------------------------------------- matrix sweeps ----

TEST(RunDesignMatrix, MatchesIndividualRunDesignCalls) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 2);
  constexpr int kRuns = 6;

  std::vector<DesignPoint> points;
  for (const DesignKind design : distributed_designs()) {
    points.push_back({design, ArchConfig{}});
  }
  ArchConfig wide;
  wide.comm_per_node = 20;
  wide.buffer_per_node = 20;
  points.push_back({DesignKind::AsyncBuf, wide});

  const auto matrix =
      run_design_matrix(qc, part.assignment, points, kRuns, 1000, 4);
  ASSERT_EQ(matrix.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const AggregateResult direct =
        run_design(qc, part.assignment, points[i].config, points[i].design,
                   kRuns, 1000, /*threads=*/1);
    expect_identical(matrix[i], direct);
  }
}

TEST(RunDesignMatrix, EmptyPointListYieldsEmptyResult) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R4_32);
  const auto part = partition_circuit(qc, 2);
  EXPECT_TRUE(run_design_matrix(qc, part.assignment, {}, 4).empty());
}

TEST(RunDesignMatrix, ThreadCountNeverChangesResults) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::TLIM_32);
  const auto part = partition_circuit(qc, 2);
  const std::vector<DesignPoint> points = {{DesignKind::SyncBuf, {}},
                                           {DesignKind::InitBuf, {}}};
  const auto serial = run_design_matrix(qc, part.assignment, points, 5, 7, 1);
  const auto parallel =
      run_design_matrix(qc, part.assignment, points, 5, 7, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace dqcsim::runtime
