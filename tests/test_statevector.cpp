/// Unit + functional tests for the statevector simulator, including the
/// end-to-end validation of the QFT generator against the exact DFT and
/// cross-checks against the density-matrix simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/tlim.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/statevector.hpp"

namespace dqcsim::qsim {
namespace {

constexpr double kTol = 1e-10;

TEST(Statevector, InitialStateIsGround) {
  Statevector psi(3);
  EXPECT_EQ(psi.dim(), 8u);
  EXPECT_NEAR(std::abs(psi.amplitude(0) - Complex{1, 0}), 0.0, kTol);
  EXPECT_NEAR(psi.norm2(), 1.0, kTol);
}

TEST(Statevector, BasisStateConstructor) {
  Statevector psi(3, 5);
  EXPECT_NEAR(std::abs(psi.amplitude(5) - Complex{1, 0}), 0.0, kTol);
  EXPECT_NEAR(psi.prob_one(0), 1.0, kTol);  // bit 0 of 5 is set
  EXPECT_NEAR(psi.prob_one(1), 0.0, kTol);
  EXPECT_NEAR(psi.prob_one(2), 1.0, kTol);
}

TEST(Statevector, AmplitudeConstructorNormalizes) {
  Statevector psi(std::vector<Complex>{{3.0, 0.0}, {4.0, 0.0}});
  EXPECT_NEAR(psi.norm2(), 1.0, kTol);
  EXPECT_NEAR(psi.amplitude(0).real(), 0.6, kTol);
  EXPECT_NEAR(psi.amplitude(1).real(), 0.8, kTol);
}

TEST(Statevector, RejectsBadConstruction) {
  EXPECT_THROW(Statevector(0), PreconditionError);
  EXPECT_THROW(Statevector(25), PreconditionError);
  EXPECT_THROW(Statevector(std::vector<Complex>{{1, 0}, {0, 0}, {0, 0}}),
               PreconditionError);
  EXPECT_THROW(Statevector(std::vector<Complex>{{0, 0}, {0, 0}}),
               PreconditionError);
}

TEST(Statevector, HadamardMakesUniform) {
  Statevector psi(1);
  psi.apply_1q(hadamard(), 0);
  EXPECT_NEAR(psi.prob_one(0), 0.5, kTol);
  EXPECT_NEAR(psi.norm2(), 1.0, kTol);
}

TEST(Statevector, BellStateViaCircuit) {
  Circuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  Statevector psi(2);
  psi.apply_circuit(qc);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(psi.amplitude(0) - Complex{s, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(psi.amplitude(3) - Complex{s, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(psi.amplitude(1)), 0.0, kTol);
}

TEST(Statevector, UnitariesPreserveNorm) {
  Rng rng(5);
  const Circuit qc = gen::make_qaoa_regular(8, 4, rng);
  Statevector psi(8);
  psi.apply_circuit(qc);
  EXPECT_NEAR(psi.norm2(), 1.0, 1e-9);
}

TEST(Statevector, FidelityWithSelfIsOne) {
  Circuit qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.rz(2, 0.7);
  Statevector a(3), b(3);
  a.apply_circuit(qc);
  b.apply_circuit(qc);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, kTol);
  EXPECT_NEAR(a.max_amplitude_difference(b), 0.0, kTol);
}

TEST(Statevector, FidelityDetectsOrthogonal) {
  Statevector zero(1, 0), one(1, 1);
  EXPECT_NEAR(zero.fidelity_with(one), 0.0, kTol);
}

TEST(Statevector, MatchesDensityMatrixOnRandomCircuit) {
  // Cross-validation of the two simulators on a 4-qubit circuit.
  Circuit qc(4);
  qc.h(0);
  qc.cx(0, 1);
  qc.ry(2, 0.9);
  qc.rzz(1, 2, 0.4);
  qc.cp(3, 0, 0.8);
  qc.swap(2, 3);
  qc.tdg(1);

  Statevector psi(4);
  psi.apply_circuit(qc);
  DensityMatrix rho(4);
  for (const Gate& g : qc.gates()) rho.apply_gate(g);

  // rho must equal |psi><psi|.
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      const Complex expected = psi.amplitude(r) * std::conj(psi.amplitude(c));
      EXPECT_NEAR(std::abs(rho.element(r, c) - expected), 0.0, 1e-10);
    }
  }
}

// ------------------------------------------------ functional validation ----

class QftFunctional : public ::testing::TestWithParam<int> {};

TEST_P(QftFunctional, MatchesExactDftOnAllBasisStates) {
  const int n = GetParam();
  const Circuit qft = gen::make_qft(n);
  for (std::size_t k = 0; k < (std::size_t{1} << n); ++k) {
    Statevector psi(n, k);
    psi.apply_circuit(qft);
    const Statevector reference = qft_reference_state(n, k);
    ASSERT_NEAR(psi.fidelity_with(reference), 1.0, 1e-9)
        << "QFT-" << n << " on basis state " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QftFunctional, ::testing::Values(1, 2, 3, 4,
                                                                  5, 6));

TEST(QftFunctional, SuperpositionInput) {
  // Linearity check: QFT of (|0> + |3>)/sqrt(2) on 3 qubits.
  const int n = 3;
  const Circuit qft = gen::make_qft(n);
  std::vector<Complex> amps(8, Complex{0, 0});
  amps[0] = Complex{1, 0};
  amps[3] = Complex{1, 0};
  Statevector psi(amps);
  psi.apply_circuit(qft);

  const Statevector r0 = qft_reference_state(n, 0);
  const Statevector r3 = qft_reference_state(n, 3);
  std::vector<Complex> expected(8);
  for (std::size_t i = 0; i < 8; ++i) {
    expected[i] = (r0.amplitude(i) + r3.amplitude(i)) / std::sqrt(2.0);
  }
  const Statevector ref(expected);
  EXPECT_NEAR(psi.fidelity_with(ref), 1.0, 1e-9);
}

TEST(TlimFunctional, TrotterStepPreservesNormAndActs) {
  gen::TlimParams params;
  params.steps = 2;
  const Circuit qc = gen::make_tlim(6, params);
  Statevector psi(6);
  psi.apply_circuit(qc);
  EXPECT_NEAR(psi.norm2(), 1.0, 1e-9);
  // The transverse field must move population out of |000000>.
  EXPECT_LT(std::norm(psi.amplitude(0)), 0.999);
}

TEST(QaoaFunctional, PlusStateIsUniformAfterHLayer) {
  Rng rng(3);
  const Circuit qc = gen::make_qaoa_regular(6, 2, rng);
  Statevector psi(6);
  psi.apply_circuit(qc);
  EXPECT_NEAR(psi.norm2(), 1.0, 1e-9);
  // QAOA output magnitudes are symmetric under global bit flip for MaxCut
  // (Z2 symmetry of the cost Hamiltonian and the mixer).
  for (std::size_t i = 0; i < psi.dim(); ++i) {
    EXPECT_NEAR(std::norm(psi.amplitude(i)),
                std::norm(psi.amplitude(psi.dim() - 1 - i)), 1e-9);
  }
}

}  // namespace
}  // namespace dqcsim::qsim
