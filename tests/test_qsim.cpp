/// Unit tests for the density-matrix simulator: unitaries, channels,
/// measurement, composition, and canonical states.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qsim/channels.hpp"
#include "qsim/density_matrix.hpp"
#include "qsim/gates_matrices.hpp"

namespace dqcsim::qsim {
namespace {

constexpr double kTol = 1e-12;

// ------------------------------------------------------------- matrices ----

TEST(GateMatrices, AllOneQubitKindsAreUnitary) {
  for (GateKind k : {GateKind::H, GateKind::X, GateKind::Y, GateKind::Z,
                     GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg}) {
    EXPECT_TRUE(is_unitary(gate_unitary_1q(k))) << gate_name(k);
  }
  for (GateKind k : {GateKind::RX, GateKind::RY, GateKind::RZ}) {
    EXPECT_TRUE(is_unitary(gate_unitary_1q(k, 0.7))) << gate_name(k);
  }
}

TEST(GateMatrices, AllTwoQubitKindsAreUnitary) {
  for (GateKind k : {GateKind::CX, GateKind::CZ, GateKind::SWAP}) {
    EXPECT_TRUE(is_unitary(gate_unitary_2q(k))) << gate_name(k);
  }
  EXPECT_TRUE(is_unitary(gate_unitary_2q(GateKind::CP, 0.9)));
  EXPECT_TRUE(is_unitary(gate_unitary_2q(GateKind::RZZ, 1.3)));
}

TEST(GateMatrices, RejectsWrongArity) {
  EXPECT_THROW(gate_unitary_1q(GateKind::CX), PreconditionError);
  EXPECT_THROW(gate_unitary_1q(GateKind::Measure), PreconditionError);
  EXPECT_THROW(gate_unitary_2q(GateKind::H), PreconditionError);
}

TEST(GateMatrices, HadamardSquaresToIdentity) {
  const Mat2 h = hadamard();
  Mat2 h2{};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (int k = 0; k < 2; ++k) {
        h2[static_cast<std::size_t>(r * 2 + c)] +=
            h[static_cast<std::size_t>(r * 2 + k)] *
            h[static_cast<std::size_t>(k * 2 + c)];
      }
    }
  }
  EXPECT_NEAR(std::abs(h2[0] - Complex{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(h2[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(h2[3] - Complex{1, 0}), 0.0, kTol);
}

TEST(GateMatrices, RzzIsDiagonalWithCorrectPhases) {
  const Mat4 u = gate_unitary_2q(GateKind::RZZ, 1.0);
  // Off-diagonal entries vanish.
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r != c) {
        EXPECT_NEAR(std::abs(u[static_cast<std::size_t>(r * 4 + c)]), 0.0,
                    kTol);
      }
    }
  }
  // |00> and |11> get exp(-i/2); |01>, |10> get exp(+i/2).
  EXPECT_NEAR(std::arg(u[0]), -0.5, kTol);
  EXPECT_NEAR(std::arg(u[5]), 0.5, kTol);
  EXPECT_NEAR(std::arg(u[10]), 0.5, kTol);
  EXPECT_NEAR(std::arg(u[15]), -0.5, kTol);
}

// -------------------------------------------------------- density matrix ----

TEST(DensityMatrix, InitialStateIsGround) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.element(0, 0).real(), 1.0, kTol);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian());
}

TEST(DensityMatrix, RejectsTooManyQubits) {
  EXPECT_THROW(DensityMatrix(0), PreconditionError);
  EXPECT_THROW(DensityMatrix(13), PreconditionError);
}

TEST(DensityMatrix, FromAmplitudesNormalizes) {
  // Unnormalized |0> + |1>.
  DensityMatrix rho(std::vector<Complex>{{2.0, 0.0}, {2.0, 0.0}});
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.element(0, 1).real(), 0.5, kTol);
}

TEST(DensityMatrix, HadamardCreatesPlusState) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, kTol);
  EXPECT_NEAR(rho.element(0, 1).real(), 0.5, kTol);
  EXPECT_NEAR(rho.prob_one(0), 0.5, kTol);
}

TEST(DensityMatrix, BellStateViaHAndCnot) {
  DensityMatrix rho(2);
  rho.apply_1q(hadamard(), 0);
  rho.apply_2q(cnot(), 0, 1);  // control = qubit 0 (first operand)
  const DensityMatrix bell = DensityMatrix::bell_phi_plus();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(rho.element(r, c) - bell.element(r, c)), 0.0, kTol)
          << r << "," << c;
    }
  }
}

TEST(DensityMatrix, ApplyGateUsesIrKinds) {
  DensityMatrix a(2), b(2);
  a.apply_gate(make_gate(GateKind::H, 0));
  a.apply_gate(make_gate(GateKind::CX, 0, 1));
  b.apply_1q(hadamard(), 0);
  b.apply_2q(cnot(), 0, 1);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(a.element(r, c) - b.element(r, c)), 0.0, kTol);
    }
  }
}

TEST(DensityMatrix, UnitariesPreserveTraceAndPurity) {
  DensityMatrix rho(3);
  rho.apply_1q(hadamard(), 0);
  rho.apply_2q(cnot(), 0, 1);
  rho.apply_1q(gate_unitary_1q(GateKind::RY, 0.3), 2);
  rho.apply_2q(gate_unitary_2q(GateKind::RZZ, 0.8), 1, 2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian(1e-10));
}

TEST(DensityMatrix, XFlipsProbability) {
  DensityMatrix rho(2);
  rho.apply_1q(pauli_x(), 1);
  EXPECT_NEAR(rho.prob_one(1), 1.0, kTol);
  EXPECT_NEAR(rho.prob_one(0), 0.0, kTol);
}

// --------------------------------------------------------------- channels ----

TEST(Channels, PauliChannelIsTracePreserving) {
  DensityMatrix rho(2);
  rho.apply_1q(hadamard(), 0);
  rho.pauli_channel(0, 0.1, 0.05, 0.2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_TRUE(rho.is_hermitian(1e-10));
}

TEST(Channels, FullXChannelActsLikeX) {
  DensityMatrix rho(1);
  rho.pauli_channel(0, 1.0, 0.0, 0.0);
  EXPECT_NEAR(rho.prob_one(0), 1.0, kTol);
}

TEST(Channels, FullZChannelPreservesGroundState) {
  DensityMatrix rho(1);
  rho.pauli_channel(0, 0.0, 0.0, 1.0);
  EXPECT_NEAR(rho.element(0, 0).real(), 1.0, kTol);
}

TEST(Channels, ZChannelKillsCoherence) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  rho.pauli_channel(0, 0.0, 0.0, 0.5);  // fully dephasing at p_z = 1/2
  EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, kTol);
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, kTol);
}

TEST(Channels, YChannelMatchesXZComposition) {
  // Y rho Y should equal applying the Y unitary.
  DensityMatrix via_channel(1);
  via_channel.apply_1q(hadamard(), 0);
  via_channel.apply_1q(gate_unitary_1q(GateKind::T), 0);
  DensityMatrix via_unitary = via_channel;
  via_channel.pauli_channel(0, 0.0, 1.0, 0.0);
  via_unitary.apply_1q(pauli_y(), 0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(std::abs(via_channel.element(r, c) -
                           via_unitary.element(r, c)),
                  0.0, kTol);
    }
  }
}

TEST(Channels, DepolarizeToMaximallyMixed) {
  DensityMatrix rho(1);
  rho.depolarize_1q(0, 1.0);
  EXPECT_NEAR(rho.element(0, 0).real(), 0.5, kTol);
  EXPECT_NEAR(rho.element(1, 1).real(), 0.5, kTol);
  EXPECT_NEAR(rho.purity(), 0.5, kTol);
}

TEST(Channels, Depolarize2qToMaximallyMixedPair) {
  DensityMatrix rho = DensityMatrix::bell_phi_plus();
  rho.depolarize_2q(0, 1, 1.0);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(rho.element(r, r).real(), 0.25, kTol);
  }
  EXPECT_NEAR(rho.purity(), 0.25, kTol);
}

TEST(Channels, Depolarize2qPartialOnBellGivesWerner) {
  DensityMatrix rho = DensityMatrix::bell_phi_plus();
  const double p = 0.2;
  rho.depolarize_2q(0, 1, p);
  // (1-p) |Phi+><Phi+| + p I/4 is a Werner state with w = 1 - p... up to
  // the identity component of the Bell projector: F = (1-p) + p/4.
  const DensityMatrix werner = DensityMatrix::werner(1.0 - p + p / 4.0);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(rho.element(r, c) - werner.element(r, c)), 0.0,
                  kTol);
    }
  }
}

TEST(Channels, DepolarizingProbRoundTrip) {
  // p derived from a target average fidelity must reproduce that fidelity
  // when applied to the identity gate (measured via a Bell/Choi state).
  const double f_target = 0.999;
  const double p = depolarizing_prob_for_avg_fidelity(4, f_target);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.01);
  // Average fidelity of two-qubit depolarizing: 1 - p*(1 - 1/16)*(4/5).
  const double f_pro = 1.0 - p * (1.0 - 1.0 / 16.0);
  const double f_avg = (4.0 * f_pro + 1.0) / 5.0;
  EXPECT_NEAR(f_avg, f_target, 1e-12);
}

TEST(Channels, DepolarizingProbRejectsOutOfRange) {
  EXPECT_THROW(depolarizing_prob_for_avg_fidelity(3, 0.9), PreconditionError);
  EXPECT_THROW(depolarizing_prob_for_avg_fidelity(2, 0.2), PreconditionError);
  EXPECT_THROW(depolarizing_prob_for_avg_fidelity(2, 1.1), PreconditionError);
}

// ------------------------------------------------------------ measurement ----

TEST(Measurement, BranchProbabilitiesSumToOne) {
  DensityMatrix rho(2);
  rho.apply_1q(gate_unitary_1q(GateKind::RY, 1.1), 0);
  const auto branches = rho.measure_branches(0);
  EXPECT_NEAR(branches.prob[0] + branches.prob[1], 1.0, kTol);
  EXPECT_NEAR(branches.prob[1], rho.prob_one(0), kTol);
}

TEST(Measurement, BranchesAreProjected) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  const auto branches = rho.measure_branches(0);
  EXPECT_NEAR(branches.state[0].prob_one(0), 0.0, kTol);
  EXPECT_NEAR(branches.state[1].prob_one(0), 1.0, kTol);
  EXPECT_NEAR(branches.state[0].trace(), 1.0, kTol);
}

TEST(Measurement, BellMeasurementCollapsesBothQubits) {
  DensityMatrix rho = DensityMatrix::bell_phi_plus();
  const auto branches = rho.measure_branches(0);
  EXPECT_NEAR(branches.prob[0], 0.5, kTol);
  EXPECT_NEAR(branches.state[0].prob_one(1), 0.0, kTol);
  EXPECT_NEAR(branches.state[1].prob_one(1), 1.0, kTol);
}

TEST(Measurement, ZeroProbabilityBranchIsZeroMatrix) {
  DensityMatrix rho(1);  // |0>
  const auto branches = rho.measure_branches(0);
  EXPECT_NEAR(branches.prob[1], 0.0, kTol);
  EXPECT_NEAR(branches.state[1].trace(), 0.0, kTol);
}

TEST(Measurement, DephaseRemovesCrossTerms) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  rho.dephase(0);
  EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, kTol);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
}

TEST(Measurement, NoisyMeasureBranchesAreNormalized) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  const auto noisy = noisy_measure(rho, 0, 0.9);
  EXPECT_NEAR(noisy.prob[0] + noisy.prob[1], 1.0, kTol);
  EXPECT_NEAR(noisy.state[0].trace(), 1.0, kTol);
  EXPECT_NEAR(noisy.state[1].trace(), 1.0, kTol);
}

TEST(Measurement, NoisyMeasureProbabilitiesAccountForFlips) {
  DensityMatrix rho(1);  // definite |0>
  const auto noisy = noisy_measure(rho, 0, 0.9);
  EXPECT_NEAR(noisy.prob[0], 0.9, kTol);
  EXPECT_NEAR(noisy.prob[1], 0.1, kTol);
  // Given report "1" the underlying state is still |0>.
  EXPECT_NEAR(noisy.state[1].prob_one(0), 0.0, kTol);
}

TEST(Measurement, PerfectReadoutReducesToIdeal) {
  DensityMatrix rho(1);
  rho.apply_1q(hadamard(), 0);
  const auto ideal = rho.measure_branches(0);
  const auto noisy = noisy_measure(rho, 0, 1.0);
  EXPECT_NEAR(noisy.prob[0], ideal.prob[0], kTol);
  EXPECT_NEAR(noisy.prob[1], ideal.prob[1], kTol);
}

// ------------------------------------------------- composition & states ----

TEST(Composition, PartialTraceOfBellIsMaximallyMixed) {
  const DensityMatrix bell = DensityMatrix::bell_phi_plus();
  const DensityMatrix reduced = bell.partial_trace(1);
  EXPECT_EQ(reduced.num_qubits(), 1);
  EXPECT_NEAR(reduced.element(0, 0).real(), 0.5, kTol);
  EXPECT_NEAR(reduced.element(1, 1).real(), 0.5, kTol);
}

TEST(Composition, PartialTraceOfProductRecoversFactor) {
  DensityMatrix a(1);
  a.apply_1q(gate_unitary_1q(GateKind::RY, 0.8), 0);
  DensityMatrix b(1);
  const DensityMatrix product = a.tensor(b);  // a on qubit 0, b on qubit 1
  const DensityMatrix back = product.partial_trace(1);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(std::abs(back.element(r, c) - a.element(r, c)), 0.0, kTol);
    }
  }
}

TEST(Composition, TensorDimensions) {
  const DensityMatrix pair =
      DensityMatrix::bell_phi_plus().tensor(DensityMatrix(1));
  EXPECT_EQ(pair.num_qubits(), 3);
  EXPECT_EQ(pair.dim(), 8u);
  EXPECT_NEAR(pair.trace(), 1.0, kTol);
}

TEST(Composition, MixInterpolates) {
  const DensityMatrix a(1);  // |0>
  DensityMatrix b(1);
  b.apply_1q(pauli_x(), 0);  // |1>
  const DensityMatrix half = DensityMatrix::mix(a, 0.5, b, 0.5);
  EXPECT_NEAR(half.element(0, 0).real(), 0.5, kTol);
  EXPECT_NEAR(half.element(1, 1).real(), 0.5, kTol);
}

TEST(States, WernerFidelityIsConsistent) {
  for (double f : {0.25, 0.5, 0.75, 0.99, 1.0}) {
    const DensityMatrix w = DensityMatrix::werner(f);
    // <Phi+| W |Phi+> must equal the nominal fidelity.
    const double s = 1.0 / std::sqrt(2.0);
    const double overlap = w.fidelity_with_pure(
        {Complex{s, 0}, Complex{0, 0}, Complex{0, 0}, Complex{s, 0}});
    EXPECT_NEAR(overlap, f, kTol);
    EXPECT_NEAR(w.trace(), 1.0, kTol);
  }
}

TEST(States, WernerRejectsOutOfRangeFidelity) {
  EXPECT_THROW(DensityMatrix::werner(0.2), PreconditionError);
  EXPECT_THROW(DensityMatrix::werner(1.1), PreconditionError);
}

TEST(States, FidelityWithPureDetectsOrthogonality) {
  DensityMatrix rho(1);  // |0>
  EXPECT_NEAR(rho.fidelity_with_pure({Complex{0, 0}, Complex{1, 0}}), 0.0,
              kTol);
  EXPECT_NEAR(rho.fidelity_with_pure({Complex{1, 0}, Complex{0, 0}}), 1.0,
              kTol);
}

// ------------------------------------------ teleportation sanity (qsim) ----

/// Noiseless state teleportation (paper Fig. 1(b)) implemented directly on
/// the density matrix: the output qubit must carry the input state exactly.
TEST(Teleportation, NoiselessStateTeleportationIsExact) {
  // Qubits: 0 = data, 1 = Bell half A, 2 = Bell half B.
  DensityMatrix rho(1);
  rho.apply_1q(gate_unitary_1q(GateKind::RY, 1.234), 0);  // arbitrary state
  const DensityMatrix input = rho;
  DensityMatrix sys = rho.tensor(DensityMatrix::bell_phi_plus());

  sys.apply_2q(cnot(), 0, 1);
  sys.apply_1q(hadamard(), 0);

  // Measure qubits 0 and 1; apply the textbook corrections on qubit 2.
  DensityMatrix accum = DensityMatrix::mix(sys, 0.0, sys, 0.0);
  const auto m0 = sys.measure_branches(0);
  for (int o0 = 0; o0 < 2; ++o0) {
    if (m0.prob[o0] <= 1e-15) continue;
    const auto m1 = m0.state[static_cast<std::size_t>(o0)].measure_branches(1);
    for (int o1 = 0; o1 < 2; ++o1) {
      if (m1.prob[o1] <= 1e-15) continue;
      DensityMatrix leaf = m1.state[static_cast<std::size_t>(o1)];
      if (o1 == 1) leaf.apply_1q(pauli_x(), 2);
      if (o0 == 1) leaf.apply_1q(pauli_z(), 2);
      accum = DensityMatrix::mix(accum, 1.0, leaf,
                                 m0.prob[o0] * m1.prob[o1]);
    }
  }
  const DensityMatrix out = accum.partial_trace(1).partial_trace(0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(std::abs(out.element(r, c) - input.element(r, c)), 0.0,
                  1e-10);
    }
  }
}

}  // namespace
}  // namespace dqcsim::qsim
