/// Unit tests for the entanglement layer: link parameters, buffer pool,
/// generation service (sync/async, buffered/on-demand), arrival traces.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "des/simulator.hpp"
#include "ent/buffer_pool.hpp"
#include "ent/generation_service.hpp"
#include "ent/link_params.hpp"
#include "ent/trace.hpp"

namespace dqcsim::ent {
namespace {

LinkParams paper_link() {
  LinkParams link;  // defaults match the paper's Table II configuration
  return link;
}

// ------------------------------------------------------------ LinkParams ----

TEST(LinkParams, DefaultsAreValid) { EXPECT_NO_THROW(paper_link().validate()); }

TEST(LinkParams, ValidateCatchesEveryBadField) {
  const auto expect_bad = [](auto mutate) {
    LinkParams link;
    mutate(link);
    EXPECT_THROW(link.validate(), ConfigError);
  };
  expect_bad([](LinkParams& l) { l.num_comm_pairs = 0; });
  expect_bad([](LinkParams& l) { l.buffer_capacity = -1; });
  expect_bad([](LinkParams& l) { l.p_succ = 0.0; });
  expect_bad([](LinkParams& l) { l.p_succ = 1.5; });
  expect_bad([](LinkParams& l) { l.cycle_time = 0.0; });
  expect_bad([](LinkParams& l) { l.swap_latency = -1.0; });
  expect_bad([](LinkParams& l) { l.f0 = 0.1; });
  expect_bad([](LinkParams& l) { l.kappa = -0.1; });
  expect_bad([](LinkParams& l) { l.cutoff = 0.0; });
  expect_bad([](LinkParams& l) { l.async_subgroups = 0; });
}

// ------------------------------------------------------------ BufferPool ----

TEST(BufferPool, DepositAndPopFifo) {
  BufferPool pool(4, 0.99, 0.002, 1e9);
  EXPECT_TRUE(pool.deposit(1.0));
  EXPECT_TRUE(pool.deposit(2.0));
  const auto pair = pool.pop_oldest(3.0);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->deposited, 1.0);
  EXPECT_EQ(pool.size(3.0), 1u);
}

TEST(BufferPool, PopFreshestTakesNewest) {
  BufferPool pool(4, 0.99, 0.002, 1e9);
  pool.deposit(1.0);
  pool.deposit(2.0);
  pool.deposit(5.0);
  const auto pair = pool.pop_freshest(6.0);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->deposited, 5.0);
}

TEST(BufferPool, PopViaOrderEnum) {
  BufferPool pool(4, 0.99, 0.002, 1e9);
  pool.deposit(1.0);
  pool.deposit(2.0);
  EXPECT_DOUBLE_EQ(pool.pop(3.0, ConsumeOrder::FreshestFirst)->deposited, 2.0);
  EXPECT_DOUBLE_EQ(pool.pop(3.0, ConsumeOrder::OldestFirst)->deposited, 1.0);
}

TEST(BufferPool, CapacityRejectsOverflow) {
  BufferPool pool(2, 0.99, 0.002, 1e9);
  EXPECT_TRUE(pool.deposit(1.0));
  EXPECT_TRUE(pool.deposit(1.0));
  EXPECT_FALSE(pool.deposit(1.0));
  EXPECT_EQ(pool.total_rejected(), 1u);
  EXPECT_TRUE(pool.full(1.0));
}

TEST(BufferPool, PopOnEmptyReturnsNullopt) {
  BufferPool pool(2, 0.99, 0.002, 1e9);
  EXPECT_FALSE(pool.pop_oldest(0.0).has_value());
  EXPECT_FALSE(pool.pop_freshest(0.0).has_value());
}

TEST(BufferPool, CutoffExpiresOldPairs) {
  BufferPool pool(4, 0.99, 0.002, /*cutoff=*/10.0);
  pool.deposit(0.0);
  pool.deposit(5.0);
  EXPECT_EQ(pool.size(9.0), 2u);
  EXPECT_EQ(pool.size(11.0), 1u);  // the t=0 pair exceeded the cutoff
  EXPECT_EQ(pool.total_expired(), 1u);
  const auto pair = pool.pop_oldest(12.0);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->deposited, 5.0);
}

TEST(BufferPool, ExpiryFreesCapacity) {
  BufferPool pool(1, 0.99, 0.002, 10.0);
  pool.deposit(0.0);
  EXPECT_FALSE(pool.deposit(5.0));
  EXPECT_TRUE(pool.deposit(20.0));  // the old pair expired
}

TEST(BufferPool, CountersAreConsistent) {
  BufferPool pool(2, 0.99, 0.002, 10.0);
  pool.deposit(0.0);
  pool.deposit(1.0);
  pool.pop_oldest(2.0);
  pool.deposit(15.0);  // expires the t=1 pair on access
  EXPECT_EQ(pool.total_deposited(), 3u);
  EXPECT_EQ(pool.total_consumed(), 1u);
  EXPECT_EQ(pool.total_expired(), 1u);
  EXPECT_EQ(pool.raw_size(), 1u);
}

TEST(BufferPool, FidelityAtAgeFollowsWernerDecay) {
  BufferPool pool(2, 0.99, 0.002, 1e9);
  EXPECT_DOUBLE_EQ(pool.fidelity_at_age(0.0), 0.99);
  const double expected =
      0.99 * std::exp(-2 * 0.002 * 25.0) + (1 - std::exp(-2 * 0.002 * 25.0)) / 4;
  EXPECT_DOUBLE_EQ(pool.fidelity_at_age(25.0), expected);
  EXPECT_THROW(pool.fidelity_at_age(-1.0), PreconditionError);
}

// ----------------------------------------------------- GenerationService ----

TEST(GenerationService, SyncCompletionsLandOnCycleGrid) {
  des::Simulator sim;
  Rng rng(1);
  LinkParams link = paper_link();
  link.p_succ = 1.0;  // every window succeeds
  link.swap_latency = 0.0;
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  service.start();
  sim.run_until(35.0);
  // Completions at t = 10, 20, 30 with 10 pairs each, capacity 10:
  // deposits beyond capacity are wasted.
  for (des::SimTime t : service.trace().arrivals()) {
    EXPECT_NEAR(std::fmod(t, link.cycle_time), 0.0, 1e-9);
  }
  EXPECT_EQ(service.buffer().size(35.0), 10u);
  EXPECT_GT(service.wasted_buffer_full(), 0u);
}

TEST(GenerationService, TraceOptOutSkipsRecordingOnly) {
  // Same physics with record_trace off: deposits, counters and buffer
  // occupancy are untouched; only the arrival log stays empty.
  LinkParams link = paper_link();
  link.p_succ = 1.0;

  des::Simulator sim_on;
  Rng rng_on(1);
  GenerationService on(sim_on, link, rng_on, ServiceMode::Buffered);
  on.start();
  sim_on.run_until(35.0);

  link.record_trace = false;
  des::Simulator sim_off;
  Rng rng_off(1);
  GenerationService off(sim_off, link, rng_off, ServiceMode::Buffered);
  off.start();
  sim_off.run_until(35.0);

  EXPECT_GT(on.trace().count(), 0u);
  EXPECT_EQ(off.trace().count(), 0u);
  EXPECT_EQ(on.attempts(), off.attempts());
  EXPECT_EQ(on.successes(), off.successes());
  EXPECT_EQ(on.wasted_buffer_full(), off.wasted_buffer_full());
  EXPECT_EQ(on.buffer().size(35.0), off.buffer().size(35.0));
}

TEST(GenerationService, TraceOptOutAppliesOnDemandToo) {
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.record_trace = false;
  des::Simulator sim;
  Rng rng(1);
  GenerationService service(sim, link, rng, ServiceMode::OnDemand);
  service.start();
  sim.run_until(25.0);
  EXPECT_GT(service.successes(), 0u);
  EXPECT_EQ(service.trace().count(), 0u);
}

TEST(GenerationService, AsyncOffsetsAreStaggered) {
  des::Simulator sim;
  Rng rng(2);
  LinkParams link = paper_link();
  link.schedule = AttemptSchedule::Asynchronous;
  link.async_subgroups = 10;
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  // Pair p belongs to subgroup p%10 with offset p%10 * cycle/10.
  EXPECT_DOUBLE_EQ(service.offset_of(0), 0.0);
  EXPECT_DOUBLE_EQ(service.offset_of(3), 3.0);
  EXPECT_DOUBLE_EQ(service.offset_of(9), 9.0);
}

TEST(GenerationService, SubgroupCountControlsSpacing) {
  des::Simulator sim;
  Rng rng(2);
  LinkParams link = paper_link();
  link.schedule = AttemptSchedule::Asynchronous;
  link.async_subgroups = 4;  // the paper's Fig. 3 example
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  EXPECT_DOUBLE_EQ(service.offset_of(0), 0.0);
  EXPECT_DOUBLE_EQ(service.offset_of(1), 2.5);
  EXPECT_DOUBLE_EQ(service.offset_of(5), 2.5);  // wraps by subgroup
  EXPECT_DOUBLE_EQ(service.offset_of(3), 7.5);
}

TEST(GenerationService, SyncOffsetsAllZero) {
  des::Simulator sim;
  Rng rng(2);
  GenerationService service(sim, paper_link(), rng, ServiceMode::Buffered);
  for (int p = 0; p < 10; ++p) EXPECT_DOUBLE_EQ(service.offset_of(p), 0.0);
}

TEST(GenerationService, SuccessRateMatchesPSucc) {
  des::Simulator sim;
  Rng rng(3);
  LinkParams link = paper_link();
  link.buffer_capacity = 1000000;  // never reject
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  service.start();
  sim.run_until(10000.0);
  const double rate = static_cast<double>(service.successes()) /
                      static_cast<double>(service.attempts());
  EXPECT_NEAR(rate, link.p_succ, 0.02);
  // Throughput: num_pairs * p_succ / cycle pairs per unit time.
  const double expected_pairs = 10 * 0.4 / 10.0 * 10000.0;
  EXPECT_NEAR(static_cast<double>(service.successes()), expected_pairs,
              expected_pairs * 0.1);
}

TEST(GenerationService, BufferedArrivalsDelayedBySwap) {
  des::Simulator sim;
  Rng rng(4);
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.swap_latency = 1.0;
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  service.start();
  sim.run_until(12.0);
  ASSERT_FALSE(service.trace().arrivals().empty());
  // Completion at 10, deposit at 11.
  EXPECT_DOUBLE_EQ(service.trace().arrivals().front(), 11.0);
}

TEST(GenerationService, OnDemandUnconsumedPairsAreWasted) {
  des::Simulator sim;
  Rng rng(5);
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  GenerationService service(sim, link, rng, ServiceMode::OnDemand);
  service.set_arrival_handler([](des::SimTime) { return false; });
  service.start();
  sim.run_until(20.0);
  EXPECT_EQ(service.wasted_unconsumed(), service.successes());
  EXPECT_GT(service.successes(), 0u);
}

TEST(GenerationService, OnDemandConsumedPairsAreNotWasted) {
  des::Simulator sim;
  Rng rng(6);
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  GenerationService service(sim, link, rng, ServiceMode::OnDemand);
  int consumed = 0;
  service.set_arrival_handler([&](des::SimTime) {
    ++consumed;
    return true;
  });
  service.start();
  sim.run_until(20.0);
  EXPECT_EQ(service.wasted_unconsumed(), 0u);
  EXPECT_EQ(static_cast<std::size_t>(consumed), service.successes());
}

TEST(GenerationService, PreFillTopsUpBuffer) {
  des::Simulator sim;
  Rng rng(7);
  GenerationService service(sim, paper_link(), rng, ServiceMode::Buffered);
  service.pre_fill_buffer();
  EXPECT_EQ(service.buffer().size(0.0), 10u);
}

TEST(GenerationService, PreFillRequiresBufferedMode) {
  des::Simulator sim;
  Rng rng(8);
  GenerationService service(sim, paper_link(), rng, ServiceMode::OnDemand);
  EXPECT_THROW(service.pre_fill_buffer(), PreconditionError);
}

TEST(GenerationService, StopCeasesGeneration) {
  des::Simulator sim;
  Rng rng(9);
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  service.start();
  sim.run_until(15.0);
  const std::size_t attempts_then = service.attempts();
  service.stop();
  sim.run(); // drain remaining events
  EXPECT_EQ(service.attempts(), attempts_then);
}

TEST(GenerationService, StartIsIdempotent) {
  des::Simulator sim;
  Rng rng(10);
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  service.start();
  service.start();
  sim.run_until(10.5);
  // Exactly one completion batch (10 pairs), not two.
  EXPECT_EQ(service.attempts(), 10u);
}

TEST(GenerationService, DeterministicForFixedSeed) {
  const auto run_once = [] {
    des::Simulator sim;
    Rng rng(77);
    GenerationService service(sim, paper_link(), rng, ServiceMode::Buffered);
    service.start();
    sim.run_until(500.0);
    return service.trace().arrivals();
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------------- ArrivalTrace ----

TEST(ArrivalTrace, BinsArrivals) {
  ArrivalTrace trace;
  trace.record(0.5);
  trace.record(1.5);
  trace.record(1.7);
  trace.record(9.0);
  const auto counts = trace.binned_counts(1.0, 10.0);
  ASSERT_EQ(counts.size(), 10u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[9], 1u);
}

TEST(ArrivalTrace, SyncIsBurstierThanAsync) {
  // The quantitative heart of the paper's Fig. 3: identical rates, very
  // different temporal patterns.
  const auto burstiness_of = [](AttemptSchedule schedule) {
    des::Simulator sim;
    Rng rng(42);
    LinkParams link;
    link.schedule = schedule;
    link.buffer_capacity = 1000000;
    link.swap_latency = 0.0;
    GenerationService service(sim, link, rng, ServiceMode::Buffered);
    service.start();
    sim.run_until(2000.0);
    return service.trace().burstiness(1.0, 2000.0);
  };
  const double sync = burstiness_of(AttemptSchedule::Synchronous);
  const double async = burstiness_of(AttemptSchedule::Asynchronous);
  EXPECT_GT(sync, 2.0 * async);
}

TEST(GenerationService, ResetReplaysIdentically) {
  // A reset service on a reset simulator must reproduce a fresh service's
  // event stream exactly — the contract the reusable RunContext rests on.
  des::Simulator sim;
  Rng rng(7);
  const LinkParams link = paper_link();
  const auto run_once = [&](GenerationService& service) {
    service.start();
    sim.run_until(200.0);
    service.stop();
    return std::tuple{service.attempts(), service.successes(),
                      service.trace().count(),
                      service.buffer().raw_size()};
  };
  GenerationService service(sim, link, rng, ServiceMode::Buffered);
  const auto first = run_once(service);
  sim.reset();
  rng = Rng(7);
  service.reset(link, ServiceMode::Buffered);
  EXPECT_EQ(service.attempts(), 0u);
  EXPECT_EQ(service.trace().count(), 0u);
  EXPECT_EQ(service.buffer().raw_size(), 0u);
  EXPECT_EQ(run_once(service), first);
}

TEST(GenerationService, ResetCanSwitchModeAndParams) {
  des::Simulator sim;
  Rng rng(3);
  GenerationService service(sim, paper_link(), rng, ServiceMode::Buffered);
  service.start();
  sim.run_until(100.0);
  service.stop();
  sim.reset();
  LinkParams narrow = paper_link();
  narrow.buffer_capacity = 2;
  service.reset(narrow, ServiceMode::OnDemand);
  EXPECT_EQ(service.mode(), ServiceMode::OnDemand);
  EXPECT_EQ(service.buffer().capacity(), 2u);
  std::size_t offered = 0;
  service.set_arrival_handler([&offered](des::SimTime) {
    ++offered;
    return true;
  });
  service.start();
  sim.run_until(100.0);
  EXPECT_EQ(offered, service.successes());
  EXPECT_EQ(service.wasted_unconsumed(), 0u);
}

TEST(ArrivalTrace, RejectsBadBins) {
  ArrivalTrace trace;
  trace.record(1.0);
  EXPECT_THROW(trace.binned_counts(0.0, 10.0), PreconditionError);
  EXPECT_THROW(trace.binned_counts(1.0, 0.0), PreconditionError);
  EXPECT_THROW(trace.record(-1.0), PreconditionError);
}

TEST(ArrivalTrace, BurstinessZeroWhenEmpty) {
  ArrivalTrace trace;
  EXPECT_DOUBLE_EQ(trace.burstiness(1.0, 10.0), 0.0);
}

// ----------------------------------------------- degraded-mode primitives ----

TEST(RetryPolicy, ValidateCatchesEveryBadField) {
  const auto expect_bad = [](auto mutate) {
    RetryPolicy r;
    r.kind = RetryKind::ExponentialBackoff;
    r.interval = 10.0;
    mutate(r);
    EXPECT_THROW(r.validate(), ConfigError);
  };
  expect_bad([](RetryPolicy& r) { r.interval = 0.0; });
  expect_bad([](RetryPolicy& r) { r.growth = 0.5; });
  expect_bad([](RetryPolicy& r) { r.max_interval = 5.0; });  // < interval
  expect_bad([](RetryPolicy& r) { r.jitter = 1.0; });        // must be < 1
  expect_bad([](RetryPolicy& r) { r.jitter = -0.1; });
  expect_bad([](RetryPolicy& r) { r.attempt_cutoff = -1; });
  expect_bad([](RetryPolicy& r) { r.attempt_cutoff = 3; });  // infinite ceiling
  // The default every-window policy validates whatever the other fields
  // hold — they are ignored.
  RetryPolicy off;
  off.interval = -5.0;
  EXPECT_NO_THROW(off.validate());
  // A well-formed backoff policy passes.
  RetryPolicy ok;
  ok.kind = RetryKind::ExponentialBackoff;
  ok.interval = 10.0;
  ok.max_interval = 80.0;
  ok.attempt_cutoff = 4;
  ok.jitter = 0.25;
  EXPECT_NO_THROW(ok.validate());
}

TEST(BufferPool, ResizeShrinkDropsOldestFirst) {
  BufferPool pool(4, 0.99, 0.002, 1e9);
  pool.deposit(1.0);
  pool.deposit(2.0);
  pool.deposit(3.0);
  EXPECT_EQ(pool.resize_capacity(2, 4.0), 1u);  // the t=1 pair dropped
  EXPECT_EQ(pool.size(4.0), 2u);
  const auto oldest = pool.pop_oldest(4.0);
  ASSERT_TRUE(oldest.has_value());
  EXPECT_DOUBLE_EQ(oldest->deposited, 2.0);
  // The pool enforces the new capacity: one slot freed by the pop.
  EXPECT_TRUE(pool.deposit(5.0));
  EXPECT_FALSE(pool.deposit(6.0));
}

TEST(BufferPool, ResizeGrowKeepsStockAndOpensRoom) {
  BufferPool pool(1, 0.99, 0.002, 1e9);
  pool.deposit(1.0);
  EXPECT_FALSE(pool.deposit(2.0));
  EXPECT_EQ(pool.resize_capacity(3, 3.0), 0u);
  EXPECT_TRUE(pool.deposit(4.0));
  EXPECT_TRUE(pool.deposit(5.0));
  EXPECT_FALSE(pool.deposit(6.0));
  const auto pair = pool.pop_oldest(7.0);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->deposited, 1.0);  // pre-resize stock survived
}

TEST(BufferPool, ResizeExpiresBeforeDropping) {
  BufferPool pool(3, 0.99, 0.002, /*cutoff=*/10.0);
  pool.deposit(0.0);   // expired by t=15
  pool.deposit(12.0);  // live
  EXPECT_EQ(pool.resize_capacity(1, 15.0), 0u);  // expiry made room
  EXPECT_EQ(pool.total_expired(), 1u);
  EXPECT_EQ(pool.size(15.0), 1u);
}

TEST(BufferPool, FlushDropsEverythingAndReportsCount) {
  BufferPool pool(4, 0.99, 0.002, 1e9);
  pool.deposit(1.0);
  pool.deposit(2.0);
  pool.deposit(3.0);
  EXPECT_EQ(pool.flush(4.0), 3u);
  EXPECT_EQ(pool.size(4.0), 0u);
  EXPECT_FALSE(pool.pop_oldest(4.0).has_value());
  EXPECT_TRUE(pool.deposit(5.0));  // pool remains usable
  EXPECT_EQ(pool.flush(6.0), 1u);
}

TEST(GenerationService, FixedRetryAtOrBelowCycleIsIdentity) {
  // A retry interval no longer than the attempt window clamps to the
  // window: the schedule (and the RNG stream — jitter off draws nothing)
  // is bit-identical to the every-window default.
  LinkParams every = paper_link();
  every.p_succ = 0.3;
  LinkParams fixed = every;
  fixed.retry.kind = RetryKind::Fixed;
  fixed.retry.interval = every.cycle_time / 2.0;

  des::Simulator sim_a;
  Rng rng_a(42);
  GenerationService a(sim_a, every, rng_a, ServiceMode::Buffered);
  des::Simulator sim_b;
  Rng rng_b(42);
  GenerationService b(sim_b, fixed, rng_b, ServiceMode::Buffered);
  a.start();
  b.start();
  sim_a.run_until(500.0);
  sim_b.run_until(500.0);
  EXPECT_EQ(a.attempts(), b.attempts());
  EXPECT_EQ(a.successes(), b.successes());
  ASSERT_EQ(a.trace().arrivals().size(), b.trace().arrivals().size());
  for (std::size_t i = 0; i < a.trace().arrivals().size(); ++i) {
    EXPECT_EQ(a.trace().arrivals()[i], b.trace().arrivals()[i]);
  }
}

TEST(GenerationService, ExponentialBackoffThrottlesFailingLink) {
  // A link that essentially never succeeds: every-window probes each
  // cycle, backoff doubles the gap up to the ceiling — far fewer attempts
  // over the same horizon.
  LinkParams every = paper_link();
  every.p_succ = 1e-9;
  every.num_comm_pairs = 1;
  LinkParams backoff = every;
  backoff.retry.kind = RetryKind::ExponentialBackoff;
  backoff.retry.interval = every.cycle_time;
  backoff.retry.growth = 2.0;
  backoff.retry.max_interval = 64.0 * every.cycle_time;

  des::Simulator sim_a;
  Rng rng_a(7);
  GenerationService a(sim_a, every, rng_a, ServiceMode::Buffered);
  des::Simulator sim_b;
  Rng rng_b(7);
  GenerationService b(sim_b, backoff, rng_b, ServiceMode::Buffered);
  a.start();
  b.start();
  sim_a.run_until(10000.0);
  sim_b.run_until(10000.0);
  EXPECT_GE(a.attempts(), 999u);  // one per cycle
  EXPECT_LT(b.attempts(), a.attempts() / 4);
  EXPECT_GT(b.attempts(), 0u);
}

TEST(GenerationService, AttemptCutoffDropsToProbingRate) {
  // After attempt_cutoff consecutive failures the pair probes at the
  // ceiling interval straight away.
  LinkParams link = paper_link();
  link.p_succ = 1e-9;
  link.num_comm_pairs = 1;
  link.retry.kind = RetryKind::ExponentialBackoff;
  link.retry.interval = link.cycle_time;
  link.retry.growth = 1.0;  // no growth: cutoff is the only throttle
  link.retry.max_interval = 50.0 * link.cycle_time;
  link.retry.attempt_cutoff = 3;

  des::Simulator sim;
  Rng rng(7);
  GenerationService svc(sim, link, rng, ServiceMode::Buffered);
  svc.start();
  sim.run_until(10000.0);
  // 3 tight attempts (t=10,20,30), then every 500: attempts stay near
  // 3 + horizon / max_interval instead of one per cycle.
  EXPECT_LT(svc.attempts(), 30u);
  EXPECT_GE(svc.attempts(), 20u);
}

TEST(GenerationService, JitterDrawsPerturbDelaysDeterministically) {
  LinkParams link = paper_link();
  link.p_succ = 0.05;
  link.num_comm_pairs = 2;
  link.retry.kind = RetryKind::Fixed;
  link.retry.interval = 3.0 * link.cycle_time;
  link.retry.jitter = 0.5;

  const auto run = [&](std::uint64_t seed) {
    des::Simulator sim;
    Rng rng(seed);
    GenerationService svc(sim, link, rng, ServiceMode::Buffered);
    svc.start();
    sim.run_until(2000.0);
    return std::tuple(svc.attempts(), svc.successes());
  };
  const auto a = run(11);
  EXPECT_EQ(a, run(11));       // same seed replays exactly
  EXPECT_NE(a, run(12));       // jitter stream is seed-dependent
}

TEST(GenerationService, MaxDeliveryGapTracksSuccessDroughts) {
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.num_comm_pairs = 1;
  link.buffer_capacity = 1;  // full buffer still counts as a success
  des::Simulator sim;
  Rng rng(1);
  GenerationService svc(sim, link, rng, ServiceMode::Buffered);
  EXPECT_DOUBLE_EQ(svc.max_delivery_gap(100.0), 0.0);  // not started
  svc.start();
  sim.run_until(95.0);
  // Every window succeeds: the widest gap is one cycle (start -> first).
  EXPECT_DOUBLE_EQ(svc.max_delivery_gap(sim.now()), link.cycle_time);

  // A service that never succeeds reports the whole span since start.
  LinkParams dead = link;
  dead.p_succ = 1e-12;
  des::Simulator sim2;
  Rng rng2(1);
  GenerationService never(sim2, dead, rng2, ServiceMode::Buffered);
  never.start();
  sim2.run_until(95.0);
  EXPECT_DOUBLE_EQ(never.max_delivery_gap(sim2.now()), sim2.now());
}

TEST(GenerationService, CapacityShareShrinkFinishesInFlightWindow) {
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.num_comm_pairs = 2;
  link.buffer_capacity = 10;
  link.swap_latency = 0.0;
  des::Simulator sim;
  Rng rng(1);
  GenerationService svc(sim, link, rng, ServiceMode::Buffered);
  svc.start();
  sim.run_until(5.0);
  // Both pairs have an in-flight window ending at t=10; shrinking to one
  // pair lets both complete (the epoch guard) and only then stops pair 1.
  EXPECT_EQ(svc.set_capacity_share(1, 10), 0u);
  sim.run_until(45.0);
  // t=10: 2 attempts (both in-flight windows), then one per cycle at
  // t=20, 30, 40 from the surviving pair.
  EXPECT_EQ(svc.attempts(), 5u);
  EXPECT_EQ(svc.successes(), 5u);
}

TEST(GenerationService, CapacityShareGrowRestartsOnlyDeadChains) {
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.num_comm_pairs = 2;
  link.buffer_capacity = 10;
  link.swap_latency = 0.0;
  des::Simulator sim;
  Rng rng(1);
  GenerationService svc(sim, link, rng, ServiceMode::Buffered);
  svc.start();
  sim.run_until(15.0);   // both chains fired at t=10
  svc.set_capacity_share(1, 10);
  sim.run_until(25.0);   // pair 1's chain dies after its t=20 completion
  svc.set_capacity_share(2, 10);
  sim.run_until(44.0);
  // Pair 0 fires at t=10,20,30,40; pair 1 at t=10, t=20 (the in-flight
  // window that ends its chain), then restarted at t=25 on a fresh grid:
  // one completion at t=35 inside the horizon.
  EXPECT_EQ(svc.attempts(), 7u);
  // A second grow to an already-alive chain is a no-op (no double chain).
  svc.set_capacity_share(2, 10);
  sim.run_until(54.0);
  EXPECT_EQ(svc.attempts(), 9u);  // t=45 (pair 1), t=50 (pair 0)
}

TEST(GenerationService, CapacityShareShrinkReturnsDroppedOverflow) {
  LinkParams link = paper_link();
  link.p_succ = 1.0;
  link.num_comm_pairs = 4;
  link.buffer_capacity = 4;
  link.swap_latency = 0.0;
  des::Simulator sim;
  Rng rng(1);
  GenerationService svc(sim, link, rng, ServiceMode::Buffered);
  svc.start();
  sim.run_until(15.0);  // buffer holds 4 pairs
  EXPECT_EQ(svc.buffer().size(sim.now()), 4u);
  EXPECT_EQ(svc.set_capacity_share(1, 1), 3u);  // oldest three dropped
  EXPECT_EQ(svc.buffer().size(sim.now()), 1u);
}

}  // namespace
}  // namespace dqcsim::ent
