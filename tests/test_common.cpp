/// Unit tests for common utilities: RNG, statistics, tables, CSV, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace dqcsim {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DistinctSeedsGiveDistinctStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.4) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.4, 0.01);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng(17);
  Accumulator acc;
  const double p = 0.4;
  for (int i = 0; i < 100000; ++i) {
    acc.add(static_cast<double>(rng.geometric(p)));
  }
  // E[failures before success] = (1-p)/p = 1.5.
  EXPECT_NEAR(acc.mean(), (1.0 - p) / p, 0.05);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ExponentialMeanMatchesTheory) {
  Rng rng(19);
  Accumulator acc;
  const double mean = 2.5;
  for (int i = 0; i < 100000; ++i) {
    acc.add(rng.exponential(mean));
  }
  EXPECT_NEAR(acc.mean(), mean, 0.05);
}

TEST(Rng, ExponentialIsTheBlessedInversionSample) {
  // exponential() is the blessed libm wrapper for Exp sampling (the
  // no-raw-libm lint rule routes engine code here). Pin the contract:
  // one uniform() draw per call, transformed by -mean * log(1 - u), so
  // swapping an inline formula for the wrapper is bit-identical.
  Rng a(31);
  Rng b(31);
  for (int i = 0; i < 100; ++i) {
    const double u = a.uniform();
    EXPECT_EQ(b.exponential(4.0), -4.0 * std::log(1.0 - u));
  }
  // Both streams consumed the same number of draws.
  EXPECT_EQ(a(), b());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// --------------------------------------------------------- Accumulator ----

TEST(Accumulator, EmptyDefaults) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.stderr_mean(), 0.0);
}

TEST(Accumulator, EmptyExtremaAreFiniteZero) {
  // Regression: an empty accumulator used to leak its ±inf sentinels
  // through min()/max() into bench reports, where the JSON writer has no
  // representation for non-finite doubles and emitted `null` — crashing
  // the CI regression gate. Empty extrema are now 0 (count() == 0
  // distinguishes "no data" from a genuine 0 observation).
  Accumulator acc;
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_TRUE(std::isfinite(acc.min()));
  EXPECT_TRUE(std::isfinite(acc.max()));
  // Adding data restores real extrema; going through merge keeps them.
  acc.add(-2.5);
  EXPECT_DOUBLE_EQ(acc.min(), -2.5);
  EXPECT_DOUBLE_EQ(acc.max(), -2.5);
  Accumulator empty;
  acc.merge(empty);
  EXPECT_DOUBLE_EQ(acc.min(), -2.5);
  EXPECT_DOUBLE_EQ(acc.max(), -2.5);
}

TEST(Accumulator, MeanAndVarianceKnownSample) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic sample is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, MinMaxTracked) {
  Accumulator acc;
  for (double x : {3.0, -1.0, 7.5, 2.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.5);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsNoop) {
  Accumulator acc, empty;
  acc.add(1.0);
  acc.add(3.0);
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Accumulator small, large;
  Rng rng(41);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Accumulator, QuantileUniformBins) {
  Accumulator acc;
  acc.enable_histogram(0.0, 10.0, 10);
  EXPECT_TRUE(acc.histogram_enabled());
  for (int i = 0; i < 10; ++i) acc.add(static_cast<double>(i) + 0.5);
  // One sample per unit bin: the interpolated median lands on the bin
  // boundary where half the mass has accumulated.
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 5.0);
  // q outside [0, 1] clamps to the exact extrema.
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(acc.quantile(-3.0), 0.5);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 9.5);
  EXPECT_DOUBLE_EQ(acc.quantile(2.0), 9.5);
}

TEST(Accumulator, QuantileEmptyIsZero) {
  Accumulator acc;
  acc.enable_histogram(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 0.0);
}

TEST(Accumulator, QuantileSingleValueClampsToObservation) {
  // The bin spans [3, 4) but the only observation is 3.7: interpolation is
  // clamped to the observed [min, max], so every quantile reports 3.7.
  Accumulator acc;
  acc.enable_histogram(0.0, 10.0, 10);
  acc.add(3.7);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(acc.quantile(q), 3.7) << "q=" << q;
  }
}

TEST(Accumulator, QuantileTailMassStaysInObservedRange) {
  // Samples outside [lo, hi) land in the under/overflow tails, which
  // interpolate against the exact extrema instead of escaping the range.
  Accumulator acc;
  acc.enable_histogram(0.0, 10.0, 10);
  for (double x : {-6.0, -2.0, 5.5, 14.0, 20.0}) acc.add(x);
  EXPECT_GE(acc.quantile(0.01), -6.0);
  EXPECT_LE(acc.quantile(0.99), 20.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), -6.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 20.0);
}

TEST(Accumulator, HistogramMergeIsAssociativeAndOrderIndependent) {
  // Bin counts are integers and extrema are exact min/max, so merge is
  // associative and commutative bit-for-bit — the property the parallel
  // run-folding in runtime::run_design relies on for determinism at any
  // thread count.
  const auto fresh = [] {
    Accumulator acc;
    acc.enable_histogram(0.0, 10.0, 20);
    return acc;
  };
  Accumulator a = fresh(), b = fresh(), c = fresh(), all = fresh();
  Rng rng(91);
  for (int i = 0; i < 900; ++i) {
    const double x = rng.uniform(-2.0, 14.0);  // exercises the tails too
    all.add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  Accumulator left = fresh();   // (a + b) + c
  Accumulator right = fresh();  // a + (b + c)
  left.merge(a);
  left.merge(b);
  left.merge(c);
  Accumulator bc = fresh();
  bc.merge(b);
  bc.merge(c);
  right.merge(a);
  right.merge(bc);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_EQ(right.count(), all.count());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q)) << "q=" << q;
    EXPECT_DOUBLE_EQ(right.quantile(q), all.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, HistogramMergeWithEmptySameConfig) {
  Accumulator acc, empty;
  acc.enable_histogram(0.0, 4.0, 4);
  empty.enable_histogram(0.0, 4.0, 4);
  acc.add(1.0);
  acc.add(3.0);
  acc.merge(empty);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 3.0);
  empty.merge(acc);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 1.0);
}

TEST(StatsHelpers, MeanAndStddevOfVector) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(stddev_of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

// ------------------------------------------------------------ Histogram ----

TEST(Histogram, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9}) h.add(x);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
}

TEST(Histogram, EdgesAreUniform) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_edge(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_edge(2), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_edge(4), 4.0);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
}

// --------------------------------------------------------- TablePrinter ----

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("longer |  2.50"), std::string::npos);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(std::size_t{42}), "42");
  EXPECT_EQ(TablePrinter::fmt(-7), "-7");
}

// ------------------------------------------------------------ CsvWriter ----

TEST(CsvWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "dqcsim_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4,5"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"4,5\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongWidth) {
  const std::string path = ::testing::TempDir() + "dqcsim_csv_width.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.add_row({"1", "2"}), PreconditionError);
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), ConfigError);
}

// ----------------------------------------------------------------- JSON ----

TEST(Json, ScalarsAndNesting) {
  JsonValue doc = JsonValue::object();
  doc.set("name", "bench");
  doc.set("version", 3);
  doc.set("ratio", 1.5);
  doc.set("ok", true);
  doc.set("nothing", JsonValue{});
  JsonValue arr = JsonValue::array();
  arr.push(1).push(2.5).push("three");
  doc.set("items", std::move(arr));
  EXPECT_EQ(doc.dump(0),
            "{\"name\": \"bench\", \"version\": 3, \"ratio\": 1.5, "
            "\"ok\": true, \"nothing\": null, \"items\": [1, 2.5, "
            "\"three\"]}");
}

TEST(Json, SetOverwritesExistingKeyInPlace) {
  JsonValue doc = JsonValue::object();
  doc.set("a", 1).set("b", 2).set("a", 3);
  EXPECT_EQ(doc.dump(0), "{\"a\": 3, \"b\": 2}");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  JsonValue doc = JsonValue::array();
  doc.push(std::numeric_limits<double>::infinity());
  doc.push(std::nan(""));
  EXPECT_EQ(doc.dump(0), "[null, null]");
}

TEST(Json, RoundTripsDoublesExactly) {
  JsonValue v(0.1 + 0.2);
  EXPECT_EQ(std::stod(v.dump(0)), 0.1 + 0.2);
}

TEST(Json, WriteFileThrowsOnUnopenablePath) {
  EXPECT_THROW(JsonValue::object().write_file("/nonexistent-dir/x.json"),
               ConfigError);
}

// ---------------------------------------------------------------- errors ----

TEST(ErrorMacros, ExpectsThrowsWithLocation) {
  try {
    DQCSIM_EXPECTS_MSG(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(ErrorMacros, EnsuresThrowsInvariantError) {
  EXPECT_THROW(DQCSIM_ENSURES(false), InvariantError);
  EXPECT_NO_THROW(DQCSIM_ENSURES(true));
}

}  // namespace
}  // namespace dqcsim
