/// Unit tests for OpenQASM 2.0 export/import round-tripping.

#include <gtest/gtest.h>

#include <cctype>
#include <numbers>
#include <string>

#include "circuit/qasm.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "gen/benchmarks.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"

namespace dqcsim {
namespace {

TEST(QasmExport, HeaderAndRegister) {
  Circuit qc(3, "demo");
  qc.h(0);
  const std::string qasm = to_qasm(qc);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
  EXPECT_NE(qasm.find("// circuit: demo"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_EQ(qasm.find("creg"), std::string::npos);  // no measurements
}

TEST(QasmExport, TwoQubitAndParamGates) {
  Circuit qc(4);
  qc.cx(0, 1);
  qc.rzz(1, 2, 0.5);
  qc.cp(2, 3, 0.25);
  const std::string qasm = to_qasm(qc);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("rzz(0.5) q[1], q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("cp(0.25) q[2], q[3];"), std::string::npos);
}

TEST(QasmExport, MeasurementsEmitCreg) {
  Circuit qc(2);
  qc.h(0);
  qc.measure(0);
  const std::string qasm = to_qasm(qc);
  EXPECT_NE(qasm.find("creg c[2];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmImport, ParsesMinimalProgram) {
  const Circuit qc = from_qasm(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[2];\n"
      "h q[0];\n"
      "cx q[0], q[1];\n");
  EXPECT_EQ(qc.num_qubits(), 2);
  ASSERT_EQ(qc.num_gates(), 2u);
  EXPECT_EQ(qc.gate(0).kind, GateKind::H);
  EXPECT_EQ(qc.gate(1).kind, GateKind::CX);
  EXPECT_EQ(qc.gate(1).q0(), 0);
  EXPECT_EQ(qc.gate(1).q1(), 1);
}

TEST(QasmImport, ParsesPiExpressions) {
  const Circuit qc = from_qasm(
      "qreg q[1];\n"
      "rz(pi) q[0];\n"
      "rx(pi/2) q[0];\n"
      "ry(-pi/4) q[0];\n"
      "rz(3*pi/2) q[0];\n"
      "rx(0.5) q[0];\n");
  EXPECT_NEAR(qc.gate(0).param, std::numbers::pi, 1e-12);
  EXPECT_NEAR(qc.gate(1).param, std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(qc.gate(2).param, -std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(qc.gate(3).param, 3 * std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(qc.gate(4).param, 0.5, 1e-12);
}

TEST(QasmImport, SkipsCommentsAndBarriers) {
  const Circuit qc = from_qasm(
      "// a leading comment\n"
      "qreg q[2];\n"
      "h q[0]; // trailing comment\n"
      "barrier q;\n"
      "x q[1];\n");
  EXPECT_EQ(qc.num_gates(), 2u);
}

TEST(QasmImport, ErrorsCarryLineNumbers) {
  try {
    from_qasm("qreg q[2];\nfoo q[0];\n");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(QasmImport, RejectsMalformedPrograms) {
  EXPECT_THROW(from_qasm("h q[0];\n"), ConfigError);           // gate first
  EXPECT_THROW(from_qasm(""), ConfigError);                    // no qreg
  EXPECT_THROW(from_qasm("qreg q[2];\ncx q[0];\n"), ConfigError);
  EXPECT_THROW(from_qasm("qreg q[2];\nrz q[0];\n"), ConfigError);
  EXPECT_THROW(from_qasm("qreg q[2];\nh q[5];\n"), PreconditionError);
  EXPECT_THROW(from_qasm("qreg q[2];\nqreg r[2];\n"), ConfigError);
}

void expect_round_trip(const Circuit& original) {
  const Circuit back = from_qasm(to_qasm(original));
  ASSERT_EQ(back.num_qubits(), original.num_qubits());
  ASSERT_EQ(back.num_gates(), original.num_gates());
  EXPECT_EQ(back.name(), original.name());
  for (std::size_t i = 0; i < original.num_gates(); ++i) {
    EXPECT_EQ(back.gate(i).kind, original.gate(i).kind) << "gate " << i;
    EXPECT_EQ(back.gate(i).qubits, original.gate(i).qubits) << "gate " << i;
    EXPECT_DOUBLE_EQ(back.gate(i).param, original.gate(i).param)
        << "gate " << i;
  }
}

TEST(QasmRoundTrip, AllGateKinds) {
  Circuit qc(4, "kinds");
  qc.h(0);
  qc.x(1);
  qc.y(2);
  qc.z(3);
  qc.s(0);
  qc.sdg(1);
  qc.t(2);
  qc.tdg(3);
  qc.rx(0, 0.123456789012345);
  qc.ry(1, -2.5);
  qc.rz(2, 1e-9);
  qc.cx(0, 1);
  qc.cz(1, 2);
  qc.cp(2, 3, 0.75);
  qc.rzz(3, 0, -0.25);
  qc.swap(1, 3);
  qc.measure(2);
  expect_round_trip(qc);
}

TEST(QasmRoundTrip, Qft32IsExact) {
  expect_round_trip(gen::make_qft(32));
}

TEST(QasmRoundTrip, QaoaBenchmark) {
  expect_round_trip(gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32));
}

TEST(QasmRoundTrip, TlimBenchmark) {
  expect_round_trip(gen::make_benchmark(gen::BenchmarkId::TLIM_32));
}

// Property tests over the full benchmark suite: parse(emit(qc)) preserves
// the gate list exactly, and emit reaches a fixed point after one cycle.
class QasmBenchmarkRoundTrip
    : public ::testing::TestWithParam<gen::BenchmarkId> {};

TEST_P(QasmBenchmarkRoundTrip, ParseEmitParseIsIdentity) {
  const Circuit original = gen::make_benchmark(GetParam());
  expect_round_trip(original);

  // Second cycle: the emitted text itself must be a fixed point, so any
  // external tool that re-serializes sees a byte-identical program.
  const std::string once = to_qasm(original);
  const std::string twice = to_qasm(from_qasm(once));
  EXPECT_EQ(once, twice);
}

TEST_P(QasmBenchmarkRoundTrip, ParsedCircuitKeepsStructure) {
  const Circuit original = gen::make_benchmark(GetParam());
  const Circuit back = from_qasm(to_qasm(original));
  EXPECT_EQ(back.num_qubits(), gen::benchmark_qubits(GetParam()));
  EXPECT_EQ(back.unit_depth(), original.unit_depth());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, QasmBenchmarkRoundTrip,
    ::testing::ValuesIn(gen::all_benchmarks()),
    [](const ::testing::TestParamInfo<gen::BenchmarkId>& tp) {
      std::string name = gen::benchmark_name(tp.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dqcsim
