/// Unit tests for workload generators: regular graphs, QFT, QAOA, TLIM,
/// and the frozen benchmark suite (paper Table I structure).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "common/error.hpp"
#include "gen/benchmarks.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/regular_graph.hpp"
#include "gen/tlim.hpp"

namespace dqcsim::gen {
namespace {

// --------------------------------------------------------- regular graph ----

struct RegularCase {
  int n;
  int d;
};

class RegularGraphTest : public ::testing::TestWithParam<RegularCase> {};

TEST_P(RegularGraphTest, ProducesSimpleRegularGraph) {
  const auto [n, d] = GetParam();
  Rng rng(1234);
  const EdgeList g = random_regular_graph(n, d, rng);
  EXPECT_EQ(g.num_vertices, n);
  EXPECT_EQ(g.edges.size(), static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(d) / 2);
  EXPECT_TRUE(is_simple_regular(g, d));
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, RegularGraphTest,
    ::testing::Values(RegularCase{8, 3}, RegularCase{32, 4}, RegularCase{32, 8},
                      RegularCase{64, 4}, RegularCase{64, 8},
                      RegularCase{16, 15},  // complete graph corner case
                      RegularCase{10, 2}),
    [](const ::testing::TestParamInfo<RegularCase>& tp) {
      return "n" + std::to_string(tp.param.n) + "d" +
             std::to_string(tp.param.d);
    });

TEST(RegularGraph, DeterministicForFixedSeed) {
  Rng a(99), b(99);
  const EdgeList g1 = random_regular_graph(32, 8, a);
  const EdgeList g2 = random_regular_graph(32, 8, b);
  EXPECT_EQ(g1.edges, g2.edges);
}

TEST(RegularGraph, DifferentSeedsDifferentGraphs) {
  Rng a(1), b(2);
  const EdgeList g1 = random_regular_graph(32, 4, a);
  const EdgeList g2 = random_regular_graph(32, 4, b);
  EXPECT_NE(g1.edges, g2.edges);
}

TEST(RegularGraph, RejectsImpossibleParameters) {
  Rng rng(1);
  EXPECT_THROW(random_regular_graph(5, 3, rng), PreconditionError);  // odd nd
  EXPECT_THROW(random_regular_graph(4, 4, rng), PreconditionError);  // d >= n
  EXPECT_THROW(random_regular_graph(4, 0, rng), PreconditionError);
}

TEST(RegularGraph, EdgesAreCanonicalAndSorted) {
  Rng rng(7);
  const EdgeList g = random_regular_graph(16, 4, rng);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_LT(g.edges[i].first, g.edges[i].second);
    if (i > 0) {
      EXPECT_LT(g.edges[i - 1], g.edges[i]);
    }
  }
}

TEST(RegularGraph, IsSimpleRegularDetectsViolations) {
  EdgeList bad;
  bad.num_vertices = 3;
  bad.edges = {{0, 0}};
  EXPECT_FALSE(is_simple_regular(bad, 1));  // self loop
  bad.edges = {{0, 1}, {0, 1}};
  EXPECT_FALSE(is_simple_regular(bad, 2));  // duplicate
  bad.edges = {{0, 1}};
  EXPECT_FALSE(is_simple_regular(bad, 1));  // vertex 2 has degree 0
}

// -------------------------------------------------------------------- QFT ----

TEST(Qft, GateCountsMatchFormula) {
  for (int n : {1, 2, 8, 32}) {
    const Circuit qc = make_qft(n);
    EXPECT_EQ(qc.num_qubits(), n);
    EXPECT_EQ(qc.count_1q(), static_cast<std::size_t>(n));
    EXPECT_EQ(qc.count_2q(),
              static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2);
  }
}

TEST(Qft, DepthIs2nMinus1) {
  // Known property of the list-scheduled textbook QFT on all-to-all
  // hardware; the paper's Table I reports 63 for QFT-32.
  EXPECT_EQ(make_qft(32).unit_depth(), 63u);
  EXPECT_EQ(make_qft(8).unit_depth(), 15u);
}

TEST(Qft, AnglesHalveWithDistance) {
  const Circuit qc = make_qft(4);
  // First CP gate after H(0) is CP(q1, q0, pi/2); next CP(q2, q0, pi/4).
  EXPECT_EQ(qc.gate(1).kind, GateKind::CP);
  EXPECT_NEAR(qc.gate(1).param, std::numbers::pi / 2.0, 1e-12);
  EXPECT_NEAR(qc.gate(2).param, std::numbers::pi / 4.0, 1e-12);
}

TEST(Qft, RotationAnglesAreBitIdenticalToPowFormula) {
  // Regression guard for the std::pow -> std::ldexp rewrite in make_qft.
  // ldexp scales by a power of two exactly, and pow(2.0, k) is exact for
  // the small integer exponents a QFT uses, so every rotation angle must
  // equal the historical pi / 2^(j-i) value bit for bit (exact ==, not
  // EXPECT_NEAR): the rewrite removes libm variance without changing a
  // single result bit.
  const int n = 16;
  const Circuit qc = make_qft(n);
  std::size_t g = 0;
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(qc.gate(g).kind, GateKind::H);
    ++g;
    for (int j = i + 1; j < n; ++j, ++g) {
      ASSERT_EQ(qc.gate(g).kind, GateKind::CP);
      const double dist = static_cast<double>(j - i);
      const double pow_formula = std::numbers::pi / std::pow(2.0, dist);
      EXPECT_EQ(qc.gate(g).param, pow_formula)
          << "angle drifted at i=" << i << " j=" << j;
      EXPECT_EQ(qc.gate(g).param, std::ldexp(std::numbers::pi, -(j - i)));
    }
  }
  EXPECT_EQ(g, qc.num_gates());
}

TEST(Qft, RejectsZeroQubits) {
  EXPECT_THROW(make_qft(0), PreconditionError);
}

// ------------------------------------------------------------------- QAOA ----

TEST(Qaoa, GateCountsMatchGraph) {
  Rng rng(5);
  const EdgeList g = random_regular_graph(32, 4, rng);
  const Circuit qc = make_qaoa_maxcut(g);
  // n Hadamards + n RX per layer; |E| RZZ per layer (p = 1).
  EXPECT_EQ(qc.count_1q(), 64u);
  EXPECT_EQ(qc.count_2q(), 64u);
}

TEST(Qaoa, MultiLayerScalesCounts) {
  Rng rng(5);
  const EdgeList g = random_regular_graph(16, 4, rng);
  QaoaParams params;
  params.layers = 3;
  const Circuit qc = make_qaoa_maxcut(g, params);
  EXPECT_EQ(qc.count_1q(), 16u + 3u * 16u);
  EXPECT_EQ(qc.count_2q(), 3u * g.edges.size());
}

TEST(Qaoa, UsesConfiguredAngles) {
  Rng rng(5);
  const EdgeList g = random_regular_graph(8, 2, rng);
  QaoaParams params;
  params.gamma = 0.5;
  params.beta = 0.25;
  const Circuit qc = make_qaoa_maxcut(g, params);
  bool saw_rzz = false, saw_rx = false;
  for (const Gate& gate : qc.gates()) {
    if (gate.kind == GateKind::RZZ) {
      EXPECT_DOUBLE_EQ(gate.param, 1.0);  // 2 * gamma
      saw_rzz = true;
    }
    if (gate.kind == GateKind::RX) {
      EXPECT_DOUBLE_EQ(gate.param, 0.5);  // 2 * beta
      saw_rx = true;
    }
  }
  EXPECT_TRUE(saw_rzz);
  EXPECT_TRUE(saw_rx);
}

TEST(Qaoa, RegularConvenienceNamesCircuit) {
  Rng rng(6);
  const Circuit qc = make_qaoa_regular(32, 8, rng);
  EXPECT_EQ(qc.name(), "QAOA-r8-32");
}

// ------------------------------------------------------------------- TLIM ----

TEST(Tlim, GateCountsMatchChainAndSteps) {
  const Circuit qc = make_tlim(32);  // 10 steps default
  EXPECT_EQ(qc.count_2q(), 310u);    // 31 bonds x 10 steps (paper: 300+10)
  EXPECT_EQ(qc.count_1q(), 640u);    // (32 RZ + 32 RX) x 10 steps
}

TEST(Tlim, UnitDepthIsFourPerStep) {
  // Brick RZZ (2 layers) + RZ layer + RX layer = 4 unit layers per step;
  // the paper's Table I reports depth 40 for 10 steps.
  EXPECT_EQ(make_tlim(32).unit_depth(), 40u);
  TlimParams params;
  params.steps = 3;
  EXPECT_EQ(make_tlim(8, params).unit_depth(), 12u);
}

TEST(Tlim, OnlyNearestNeighborCoupling) {
  const Circuit qc = make_tlim(16);
  for (const Gate& g : qc.gates()) {
    if (g.arity() == 2) {
      EXPECT_EQ(std::abs(g.q1() - g.q0()), 1) << g.to_string();
    }
  }
}

TEST(Tlim, RejectsDegenerateInputs) {
  EXPECT_THROW(make_tlim(1), PreconditionError);
  TlimParams params;
  params.steps = 0;
  EXPECT_THROW(make_tlim(8, params), PreconditionError);
}

// ------------------------------------------------------------- benchmarks ----

TEST(Benchmarks, SuiteMatchesPaperOrder) {
  const auto suite = all_benchmarks();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(benchmark_name(suite[0]), "TLIM-32");
  EXPECT_EQ(benchmark_name(suite[3]), "QFT-32");
  EXPECT_EQ(benchmark_name(suite[5]), "QAOA-r8-64");
}

TEST(Benchmarks, QubitCounts) {
  for (const auto id : all_benchmarks()) {
    const Circuit qc = make_benchmark(id);
    EXPECT_EQ(qc.num_qubits(), benchmark_qubits(id)) << benchmark_name(id);
  }
}

TEST(Benchmarks, DeterministicConstruction) {
  const Circuit a = make_benchmark(BenchmarkId::QAOA_R8_32);
  const Circuit b = make_benchmark(BenchmarkId::QAOA_R8_32);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t i = 0; i < a.num_gates(); ++i) {
    EXPECT_EQ(a.gate(i), b.gate(i));
  }
}

TEST(Benchmarks, TwoQubitGateTotalsMatchStructure) {
  // Structural counts that must hold exactly (cf. paper Table I).
  EXPECT_EQ(make_benchmark(BenchmarkId::QFT_32).count_2q(), 496u);
  EXPECT_EQ(make_benchmark(BenchmarkId::TLIM_32).count_2q(), 310u);
  EXPECT_EQ(make_benchmark(BenchmarkId::QAOA_R4_32).count_2q(), 64u);
  EXPECT_EQ(make_benchmark(BenchmarkId::QAOA_R8_32).count_2q(), 128u);
  EXPECT_EQ(make_benchmark(BenchmarkId::QAOA_R4_64).count_2q(), 128u);
  EXPECT_EQ(make_benchmark(BenchmarkId::QAOA_R8_64).count_2q(), 256u);
}

TEST(Benchmarks, The32QSubset) {
  const auto subset = benchmarks_32q();
  ASSERT_EQ(subset.size(), 4u);
  for (const auto id : subset) EXPECT_EQ(benchmark_qubits(id), 32);
}

}  // namespace
}  // namespace dqcsim::gen
