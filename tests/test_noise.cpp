/// Unit tests for the noise models: Werner decay, teleported-gate fidelity,
/// and the fidelity ledger.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "noise/fidelity_ledger.hpp"
#include "noise/purification.hpp"
#include "noise/teleport_fidelity.hpp"
#include "noise/werner.hpp"

namespace dqcsim::noise {
namespace {

// ------------------------------------------------------------ Werner decay ----

TEST(Werner, NoDecayAtTimeZero) {
  EXPECT_DOUBLE_EQ(werner_decayed_fidelity(0.99, 0.002, 0.0), 0.99);
}

TEST(Werner, NoDecayWithZeroKappa) {
  EXPECT_DOUBLE_EQ(werner_decayed_fidelity(0.9, 0.0, 1e6), 0.9);
}

TEST(Werner, DecaysTowardQuarter) {
  const double f = werner_decayed_fidelity(0.99, 0.01, 1e5);
  EXPECT_NEAR(f, 0.25, 1e-9);
}

TEST(Werner, MatchesClosedForm) {
  const double f0 = 0.95, kappa = 0.002, t = 37.0;
  const double expected =
      f0 * std::exp(-2 * kappa * t) + (1 - std::exp(-2 * kappa * t)) / 4.0;
  EXPECT_DOUBLE_EQ(werner_decayed_fidelity(f0, kappa, t), expected);
}

TEST(Werner, IsMonotoneDecreasingInTime) {
  double prev = 1.0;
  for (double t : {0.0, 1.0, 5.0, 20.0, 100.0, 1000.0}) {
    const double f = werner_decayed_fidelity(0.99, 0.002, t);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(Werner, TimeToFidelityInvertsDecay) {
  const double f0 = 0.99, kappa = 0.002, f_min = 0.9;
  const double t = werner_time_to_fidelity(f0, kappa, f_min);
  EXPECT_NEAR(werner_decayed_fidelity(f0, kappa, t), f_min, 1e-12);
}

TEST(Werner, TimeToFidelityEdgeCases) {
  EXPECT_DOUBLE_EQ(werner_time_to_fidelity(0.9, 0.002, 0.95), 0.0);
  EXPECT_TRUE(std::isinf(werner_time_to_fidelity(0.99, 0.0, 0.9)));
}

TEST(Werner, WeightFromFidelityBounds) {
  EXPECT_DOUBLE_EQ(werner_weight_from_fidelity(1.0), 1.0);
  EXPECT_DOUBLE_EQ(werner_weight_from_fidelity(0.25), 0.0);
  EXPECT_THROW(werner_weight_from_fidelity(0.1), PreconditionError);
}

TEST(Werner, RejectsBadArguments) {
  EXPECT_THROW(werner_decayed_fidelity(0.1, 0.002, 1.0), PreconditionError);
  EXPECT_THROW(werner_decayed_fidelity(0.9, -1.0, 1.0), PreconditionError);
  EXPECT_THROW(werner_decayed_fidelity(0.9, 0.002, -1.0), PreconditionError);
}

TEST(Werner, FidelityFromWeightInvertsWeightFromFidelity) {
  for (const double f : {0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_NEAR(werner_fidelity_from_weight(werner_weight_from_fidelity(f)),
                f, 1e-12);
  }
  EXPECT_THROW(werner_fidelity_from_weight(-0.1), PreconditionError);
  EXPECT_THROW(werner_fidelity_from_weight(1.1), PreconditionError);
}

TEST(Werner, SwappedFidelityMultipliesWeights) {
  // Perfect pairs swap perfectly; a maximally mixed partner destroys the
  // pair (w = 0 -> F = 0.25).
  EXPECT_DOUBLE_EQ(werner_swapped_fidelity(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(werner_swapped_fidelity(0.9, 0.25), 0.25);
  // Hand-computed: w(0.95) = 2.8/3, w(0.85) = 2.4/3,
  // F = (3 * (2.8 * 2.4 / 9) + 1) / 4.
  const double expected = (3.0 * (2.8 * 2.4 / 9.0) + 1.0) / 4.0;
  EXPECT_NEAR(werner_swapped_fidelity(0.95, 0.85), expected, 1e-12);
  // Commutative, and never better than the worse pair.
  EXPECT_DOUBLE_EQ(werner_swapped_fidelity(0.95, 0.85),
                   werner_swapped_fidelity(0.85, 0.95));
  EXPECT_LT(werner_swapped_fidelity(0.95, 0.85), 0.85);
}

// ------------------------------------------------- teleported-CNOT fidelity ----

TEST(TeleportFidelity, NoiselessPerfectPairIsExact) {
  TeleportNoiseParams perfect;
  perfect.local_2q_fidelity = 1.0;
  perfect.local_1q_fidelity = 1.0;
  perfect.readout_fidelity = 1.0;
  EXPECT_NEAR(teleported_cnot_avg_fidelity(1.0, perfect), 1.0, 1e-10);
}

TEST(TeleportFidelity, MaximallyMixedPairIsUseless) {
  TeleportNoiseParams perfect;
  perfect.local_2q_fidelity = 1.0;
  perfect.local_1q_fidelity = 1.0;
  perfect.readout_fidelity = 1.0;
  // A Werner pair at F = 0.25 carries no entanglement; the teleported
  // "CNOT" degrades to a highly depolarized channel whose average fidelity
  // sits near (but above) the d=4 random-channel floor of 0.25-0.4.
  const double f = teleported_cnot_avg_fidelity(0.25, perfect);
  EXPECT_LT(f, 0.5);
  EXPECT_GT(f, 0.2);
}

TEST(TeleportFidelity, MonotoneInPairFidelity) {
  double prev = 0.0;
  for (double fp : {0.25, 0.5, 0.7, 0.9, 0.99, 1.0}) {
    const double f = teleported_cnot_avg_fidelity(fp);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(TeleportFidelity, LocalNoiseReducesFidelity) {
  TeleportNoiseParams noisier;
  noisier.local_2q_fidelity = 0.99;
  EXPECT_LT(teleported_cnot_avg_fidelity(0.99, noisier),
            teleported_cnot_avg_fidelity(0.99, TeleportNoiseParams{}));
}

TEST(TeleportFidelity, ReadoutNoiseReducesFidelity) {
  TeleportNoiseParams noisier;
  noisier.readout_fidelity = 0.95;
  EXPECT_LT(teleported_cnot_avg_fidelity(0.99, noisier),
            teleported_cnot_avg_fidelity(0.99, TeleportNoiseParams{}));
}

TEST(TeleportFidelity, PaperDefaultsAreInPlausibleRange) {
  // With Table II noise (CNOT 99.9%, readout 99.8%) and a fresh pair at
  // F0 = 0.99 the teleported gate should land a little below F0.
  const double f = teleported_cnot_avg_fidelity(0.99);
  EXPECT_GT(f, 0.95);
  EXPECT_LT(f, 0.99);
}

TEST(TeleportFidelity, RejectsOutOfRangePairFidelity) {
  EXPECT_THROW(teleported_cnot_avg_fidelity(0.1), PreconditionError);
  EXPECT_THROW(teleported_cnot_avg_fidelity(1.01), PreconditionError);
}

TEST(TeleportFidelityModel, MatchesExactEvaluationEverywhere) {
  const TeleportNoiseParams params;  // defaults
  const TeleportFidelityModel model(params);
  for (double fp : {0.25, 0.4, 0.6, 0.8, 0.9, 0.99, 1.0}) {
    EXPECT_NEAR(model.eval(fp), teleported_cnot_avg_fidelity(fp, params),
                1e-10)
        << "pair fidelity " << fp;
  }
}

TEST(TeleportFidelityModel, SlopeIsPositive) {
  const TeleportFidelityModel model{TeleportNoiseParams{}};
  EXPECT_GT(model.slope(), 0.0);
  EXPECT_GT(model.eval(1.0), model.eval(0.5));
}

TEST(TeleportFidelityModel, EvalValidatesDomain) {
  const TeleportFidelityModel model{TeleportNoiseParams{}};
  EXPECT_THROW(model.eval(0.0), PreconditionError);
}

// ------------------------------------------- state-teleportation gadgets ----

TEST(StateTeleport, NoiselessStateTeleportIsExact) {
  TeleportNoiseParams perfect;
  perfect.local_2q_fidelity = 1.0;
  perfect.local_1q_fidelity = 1.0;
  perfect.readout_fidelity = 1.0;
  EXPECT_NEAR(teleported_state_avg_fidelity(1.0, perfect), 1.0, 1e-10);
}

TEST(StateTeleport, StateFidelityMatchesWernerTheory) {
  // Teleporting through a Werner pair of fidelity F realizes a depolarizing
  // channel whose average fidelity is (2F + 1)/3 for ideal local ops.
  TeleportNoiseParams perfect;
  perfect.local_2q_fidelity = 1.0;
  perfect.local_1q_fidelity = 1.0;
  perfect.readout_fidelity = 1.0;
  for (double f : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(teleported_state_avg_fidelity(f, perfect), (2.0 * f + 1.0) / 3.0,
                1e-10)
        << "pair fidelity " << f;
  }
}

TEST(StateTeleport, NoiselessRoundTripCnotIsExact) {
  TeleportNoiseParams perfect;
  perfect.local_2q_fidelity = 1.0;
  perfect.local_1q_fidelity = 1.0;
  perfect.readout_fidelity = 1.0;
  EXPECT_NEAR(state_teleported_cnot_avg_fidelity(1.0, 1.0, perfect), 1.0,
              1e-9);
}

TEST(StateTeleport, RoundTripIsWorseThanGateTeleport) {
  // Two teleports + one noisy local CNOT always lose to one teleported
  // CNOT under identical noise and pair quality.
  const TeleportNoiseParams params;  // Table II defaults
  for (double f : {0.8, 0.9, 0.99}) {
    EXPECT_LT(state_teleported_cnot_avg_fidelity(f, f, params),
              teleported_cnot_avg_fidelity(f, params))
        << "pair fidelity " << f;
  }
}

TEST(StateTeleport, MonotoneInEachPair) {
  const TeleportNoiseParams params;
  EXPECT_LT(state_teleported_cnot_avg_fidelity(0.8, 0.99, params),
            state_teleported_cnot_avg_fidelity(0.99, 0.99, params));
  EXPECT_LT(state_teleported_cnot_avg_fidelity(0.99, 0.8, params),
            state_teleported_cnot_avg_fidelity(0.99, 0.99, params));
}

TEST(StateTeleport, RejectsOutOfRangePairs) {
  EXPECT_THROW(state_teleported_cnot_avg_fidelity(0.1, 0.9),
               PreconditionError);
  EXPECT_THROW(state_teleported_cnot_avg_fidelity(0.9, 1.2),
               PreconditionError);
}

TEST(StateTeleportCnotModel, MatchesExactOnAGrid) {
  const TeleportNoiseParams params;
  const StateTeleportCnotModel model(params);
  for (double f1 : {0.25, 0.6, 0.99}) {
    for (double f2 : {0.4, 0.9, 1.0}) {
      EXPECT_NEAR(model.eval(f1, f2),
                  state_teleported_cnot_avg_fidelity(f1, f2, params), 1e-9)
          << f1 << ", " << f2;
    }
  }
}

// ------------------------------------------------------------ purification ----

TEST(Purification, PerfectPairsStayPerfect) {
  const auto out = purify_werner(1.0, 1.0);
  EXPECT_NEAR(out.fidelity, 1.0, 1e-12);
  EXPECT_NEAR(out.success_probability, 1.0, 1e-12);
}

TEST(Purification, ImprovesAboveThreshold) {
  for (double f : {0.6, 0.7, 0.8, 0.9, 0.99}) {
    const auto out = purify_werner(f, f);
    EXPECT_GT(out.fidelity, f) << "input fidelity " << f;
    EXPECT_GT(out.success_probability, 0.25);
    EXPECT_LE(out.success_probability, 1.0);
  }
}

TEST(Purification, DoesNotImproveAtOrBelowThreshold) {
  const auto at = purify_werner(kPurificationThreshold,
                                kPurificationThreshold);
  EXPECT_LE(at.fidelity, kPurificationThreshold + 1e-12);
  const auto below = purify_werner(0.4, 0.4);
  EXPECT_LE(below.fidelity, 0.4 + 1e-12);
}

TEST(Purification, MaximallyMixedIsFixed) {
  const auto out = purify_werner(0.25, 0.25);
  EXPECT_NEAR(out.fidelity, 0.25, 1e-12);
}

TEST(Purification, IsSymmetricInInputs) {
  const auto ab = purify_werner(0.9, 0.7);
  const auto ba = purify_werner(0.7, 0.9);
  EXPECT_NEAR(ab.fidelity, ba.fidelity, 1e-12);
  EXPECT_NEAR(ab.success_probability, ba.success_probability, 1e-12);
}

TEST(Purification, KnownValueAtF075) {
  // Closed form at f1 = f2 = 0.75: p = 0.75^2 + 2*0.75/12 + 5/144.
  const auto out = purify_werner(0.75, 0.75);
  const double p = 0.5625 + 0.125 + 5.0 / 144.0;
  EXPECT_NEAR(out.success_probability, p, 1e-12);
  EXPECT_NEAR(out.fidelity, (0.5625 + 1.0 / 144.0) / p, 1e-12);
}

TEST(Purification, NestedRoundsConverge) {
  const auto once = purify_werner_nested(0.8, 1);
  const auto thrice = purify_werner_nested(0.8, 3);
  EXPECT_GT(thrice.fidelity, once.fidelity);
  EXPECT_LT(thrice.success_probability, once.success_probability);
  // BBPSSW gains ~0.035 per round from 0.8 (0.838, 0.872, 0.905): slower
  // than DEJMPS but strictly convergent toward 1.
  EXPECT_GT(thrice.fidelity, 0.90);
  const auto zero = purify_werner_nested(0.8, 0);
  EXPECT_DOUBLE_EQ(zero.fidelity, 0.8);
  EXPECT_DOUBLE_EQ(zero.success_probability, 1.0);
}

TEST(Purification, RejectsOutOfRange) {
  EXPECT_THROW(purify_werner(0.1, 0.9), PreconditionError);
  EXPECT_THROW(purify_werner(0.9, 1.2), PreconditionError);
  EXPECT_THROW(purify_werner_nested(0.9, -1), PreconditionError);
}

// --------------------------------------------------------- fidelity ledger ----

TEST(FidelityLedger, EmptyLedgerIsUnity) {
  FidelityLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.fidelity(), 1.0);
}

TEST(FidelityLedger, ProductAccumulates) {
  FidelityLedger ledger;
  ledger.add_factor(FidelityTerm::Local2Q, 0.999);
  ledger.add_factor(FidelityTerm::Local2Q, 0.999);
  ledger.add_factor(FidelityTerm::Local1Q, 0.9999);
  EXPECT_NEAR(ledger.fidelity(), 0.999 * 0.999 * 0.9999, 1e-12);
}

TEST(FidelityLedger, CategoriesAreSeparate) {
  FidelityLedger ledger;
  ledger.add_factor(FidelityTerm::Remote, 0.98);
  ledger.add_factor(FidelityTerm::Local2Q, 0.999);
  EXPECT_NEAR(ledger.category_fidelity(FidelityTerm::Remote), 0.98, 1e-12);
  EXPECT_NEAR(ledger.category_fidelity(FidelityTerm::Local2Q), 0.999, 1e-12);
  EXPECT_EQ(ledger.category_count(FidelityTerm::Remote), 1u);
  EXPECT_EQ(ledger.category_count(FidelityTerm::Measurement), 0u);
}

TEST(FidelityLedger, IdlingIsExponential) {
  FidelityLedger ledger;
  ledger.add_idling(0.002, 100.0);
  EXPECT_NEAR(ledger.fidelity(), std::exp(-0.2), 1e-12);
  EXPECT_NEAR(ledger.category_fidelity(FidelityTerm::Idling), std::exp(-0.2),
              1e-12);
}

TEST(FidelityLedger, ManyFactorsStayAccurate) {
  // 10^4 factors of 0.9999 in log space: relative error must stay tiny.
  FidelityLedger ledger;
  for (int i = 0; i < 10000; ++i) {
    ledger.add_factor(FidelityTerm::Local1Q, 0.9999);
  }
  EXPECT_NEAR(ledger.fidelity(), std::exp(10000 * std::log(0.9999)), 1e-9);
}

TEST(FidelityLedger, RejectsInvalidFactors) {
  FidelityLedger ledger;
  EXPECT_THROW(ledger.add_factor(FidelityTerm::Remote, 0.0),
               PreconditionError);
  EXPECT_THROW(ledger.add_factor(FidelityTerm::Remote, 1.5),
               PreconditionError);
  EXPECT_THROW(ledger.add_idling(-0.1, 1.0), PreconditionError);
}

}  // namespace
}  // namespace dqcsim::noise
