/// Unit and engine-level tests for the opt-in contention modes
/// (net/congestion.hpp + ArchConfig knobs): deterministic capacity shares,
/// congestion-aware route assignment, star-hub throughput degradation under
/// shared capacity, swap-as-you-go delivery on long chains, and the
/// thread-count bit-identity contract with every knob enabled.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gen/benchmarks.hpp"
#include "net/congestion.hpp"
#include "net/topology.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"
#include "scenario/scenario.hpp"

namespace dqcsim::net {
namespace {

using dqcsim::Circuit;
using runtime::AggregateResult;
using runtime::ArchConfig;
using runtime::DesignKind;

// ------------------------------------------------------- capacity_share ----

TEST(CapacityShare, EvenSplitAndRemainderByRank) {
  // 8 units over 4 routes: everyone gets 2.
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(capacity_share(8, 4, rank), 2);
  }
  // 10 over 4: ranks 0 and 1 absorb the remainder.
  EXPECT_EQ(capacity_share(10, 4, 0), 3);
  EXPECT_EQ(capacity_share(10, 4, 1), 3);
  EXPECT_EQ(capacity_share(10, 4, 2), 2);
  EXPECT_EQ(capacity_share(10, 4, 3), 2);
  // Shares sum to the capacity whenever load <= capacity.
  int total = 0;
  for (int rank = 0; rank < 5; ++rank) total += capacity_share(13, 5, rank);
  EXPECT_EQ(total, 13);
}

TEST(CapacityShare, SaturatedEdgeGrantsAtLeastOneUnit) {
  // 2 units over 5 routes: nobody starves; the edge oversubscribes.
  for (int rank = 0; rank < 5; ++rank) {
    EXPECT_EQ(capacity_share(2, 5, rank), rank < 2 ? 1 : 1);
  }
  EXPECT_EQ(capacity_share(1, 3, 2), 1);
}

TEST(CapacityShare, NonpositiveCapacityPassesThrough) {
  // The bufferless designs carry a zero buffer budget; sharing preserves it.
  EXPECT_EQ(capacity_share(0, 3, 0), 0);
  EXPECT_EQ(capacity_share(-1, 2, 1), -1);
}

TEST(CapacityShare, UnloadedEdgeKeepsFullBudget) {
  EXPECT_EQ(capacity_share(7, 1, 0), 7);
}

// ---------------------------------------------------- CongestionPlanner ----

std::vector<double> unit_costs(const Topology& topo) {
  return std::vector<double>(topo.num_edges(), 1.0);
}

TEST(CongestionPlanner, LaterTrafficDetoursAroundLoadedEdges) {
  // ring(4): 0-2 has two 2-hop paths, via 1 and via 3. Unloaded, the
  // planner picks a deterministic one; after charging that path twice, the
  // load-scaled cost makes the other side strictly cheaper.
  const Topology topo = Topology::ring(4);
  const std::vector<double> costs = unit_costs(topo);
  CongestionPlanner planner;
  planner.begin(topo, costs, /*alpha=*/1.0, nullptr);

  RoutePlan first;
  planner.plan(0, 2, /*split_tied=*/false, first);
  ASSERT_TRUE(first.has_route);
  EXPECT_EQ(first.primary.hops(), 2);

  RoutePlan second;
  planner.plan(0, 2, /*split_tied=*/false, second);
  ASSERT_TRUE(second.has_route);
  EXPECT_EQ(second.primary.hops(), 2);
  // The two plans take edge-disjoint sides of the ring.
  for (const std::size_t e : second.primary.edges) {
    for (const std::size_t f : first.primary.edges) {
      EXPECT_NE(e, f);
    }
  }
  // Both paths charged: every ring edge now carries exactly one route.
  for (const int load : planner.edge_load()) EXPECT_EQ(load, 1);
}

TEST(CongestionPlanner, ZeroAlphaReproducesStaticRoutes) {
  const Topology topo = Topology::star(6);
  const std::vector<double> costs = unit_costs(topo);
  const Router router(topo, costs);
  CongestionPlanner planner;
  planner.begin(topo, costs, /*alpha=*/0.0, nullptr);
  for (int leaf = 1; leaf < 6; ++leaf) {
    RoutePlan plan;
    planner.plan(leaf, (leaf % 5) + 1, false, plan);
    ASSERT_TRUE(plan.has_route);
    EXPECT_EQ(plan.primary.edges,
              router.route(leaf, (leaf % 5) + 1).edges);
  }
}

TEST(CongestionPlanner, TiedDisjointPathsSplit) {
  const Topology topo = Topology::ring(4);
  const std::vector<double> costs = unit_costs(topo);
  CongestionPlanner planner;
  planner.begin(topo, costs, 1.0, nullptr);
  RoutePlan plan;
  planner.plan(0, 2, /*split_tied=*/true, plan);
  ASSERT_TRUE(plan.has_route);
  EXPECT_TRUE(plan.split);
  EXPECT_EQ(plan.primary.hops(), 2);
  EXPECT_EQ(plan.alternate.hops(), 2);
  for (const std::size_t e : plan.alternate.edges) {
    for (const std::size_t f : plan.primary.edges) EXPECT_NE(e, f);
  }
  // Both sides are charged, so the next pair sees a uniformly loaded ring.
  for (const int load : planner.edge_load()) EXPECT_EQ(load, 1);
}

TEST(CongestionPlanner, NoDisjointAlternateMeansNoSplit) {
  // A chain has a unique path: requesting a split must not invent one.
  const Topology topo = Topology::chain(5);
  const std::vector<double> costs = unit_costs(topo);
  CongestionPlanner planner;
  planner.begin(topo, costs, 1.0, nullptr);
  RoutePlan plan;
  planner.plan(0, 4, true, plan);
  ASSERT_TRUE(plan.has_route);
  EXPECT_FALSE(plan.split);
  EXPECT_EQ(plan.primary.hops(), 4);
}

TEST(CongestionPlanner, MaskedEdgesAreUnusable) {
  const Topology topo = Topology::ring(4);
  const std::vector<double> costs = unit_costs(topo);
  std::vector<char> enabled(topo.num_edges(), 1);
  enabled[topo.edge_index(0, 1)] = 0;
  CongestionPlanner planner;
  planner.begin(topo, costs, 1.0, &enabled);
  RoutePlan plan;
  planner.plan(0, 1, false, plan);
  ASSERT_TRUE(plan.has_route);
  EXPECT_EQ(plan.primary.hops(), 3);  // the long way around

  // Masking both endpoints' edges disconnects the pair.
  enabled[topo.edge_index(0, 3)] = 0;
  planner.begin(topo, costs, 1.0, &enabled);
  planner.plan(0, 2, false, plan);
  EXPECT_FALSE(plan.has_route);
}

// --------------------------------------------------- engine-level tests ----

/// 5 leaf qubits on star(8): four remote pairs all routed through the
/// hub-leaf edge of node 1, the contention hot spot.
Circuit hub_circuit() {
  Circuit qc(5);
  for (int rep = 0; rep < 4; ++rep) {
    qc.rzz(0, 1, 0.1);  // nodes 1-2
    qc.rzz(0, 2, 0.1);  // nodes 1-3
    qc.rzz(0, 3, 0.1);  // nodes 1-4
    qc.rzz(0, 4, 0.1);  // nodes 1-5
  }
  return qc;
}

std::vector<int> hub_assignment() { return {1, 2, 3, 4, 5}; }

/// Star config with enough hub budget that the independent-vs-shared
/// difference is structural, not a clamp artifact: the hub degree is 7, so
/// comm_per_node = 28 gives each hub edge 4 pairs — 4 routes sharing edge
/// (0,1) get 1 pair each instead of 4 each.
ArchConfig star_config() {
  ArchConfig config;
  config.num_nodes = 8;
  config.comm_per_node = 28;
  config.buffer_per_node = 28;
  config.set_topology(Topology::star(8));
  return config;
}

TEST(SharedCapacity, StarHubThroughputDegradesVersusIndependentBudgets) {
  const Circuit qc = hub_circuit();
  const std::vector<int> nodes = hub_assignment();
  const ArchConfig independent = star_config();
  ArchConfig shared = star_config();
  shared.share_edge_capacity = true;

  constexpr int kRuns = 8;
  for (const DesignKind design :
       {DesignKind::AsyncBuf, DesignKind::SyncBuf}) {
    SCOPED_TRACE(runtime::design_name(design));
    const AggregateResult indep =
        runtime::run_design(qc, nodes, independent, design, kRuns, 42, 1);
    const AggregateResult contended =
        runtime::run_design(qc, nodes, shared, design, kRuns, 42, 1);
    // Four routes sharing the hub edge each run at a quarter of the pair
    // rate: the makespan must grow strictly.
    EXPECT_GT(contended.depth.mean(), indep.depth.mean());
    // The legacy engine reports no contention; the shared engine sees the
    // hub edge loaded fourfold in every run.
    EXPECT_EQ(indep.max_edge_load.mean(), 0.0);
    EXPECT_GE(contended.edges_shared.mean(), 1.0);
    EXPECT_EQ(contended.max_edge_load.mean(), 4.0);
  }
}

TEST(SharedCapacity, KnobIsNoOpWithoutTopology) {
  const Circuit qc = hub_circuit();
  const std::vector<int> nodes = hub_assignment();
  ArchConfig legacy;
  legacy.num_nodes = 8;
  ArchConfig knobs = legacy;
  knobs.share_edge_capacity = true;
  knobs.congestion_aware_routing = true;
  knobs.swap_as_you_go = true;
  const AggregateResult a =
      runtime::run_design(qc, nodes, legacy, DesignKind::AsyncBuf, 4, 7, 1);
  const AggregateResult b =
      runtime::run_design(qc, nodes, knobs, DesignKind::AsyncBuf, 4, 7, 1);
  EXPECT_EQ(a.depth.mean(), b.depth.mean());
  EXPECT_EQ(a.fidelity.mean(), b.fidelity.mean());
  EXPECT_EQ(a.edges_shared.mean(), 0.0);
}

TEST(CongestionRouting, UniquePathTopologyIsBitIdenticalToLegacy) {
  // On a star every pair has a unique path, so congestion-aware routing
  // (without capacity sharing) must reproduce the legacy engine exactly —
  // same routes, same budgets, same draws.
  const Circuit qc = hub_circuit();
  const std::vector<int> nodes = hub_assignment();
  const ArchConfig legacy = star_config();
  ArchConfig congested = star_config();
  congested.congestion_aware_routing = true;
  for (const DesignKind design : runtime::distributed_designs()) {
    SCOPED_TRACE(runtime::design_name(design));
    const AggregateResult a =
        runtime::run_design(qc, nodes, legacy, design, 4, 11, 1);
    const AggregateResult b =
        runtime::run_design(qc, nodes, congested, design, 4, 11, 1);
    EXPECT_EQ(a.depth.mean(), b.depth.mean());
    EXPECT_EQ(a.depth.stddev(), b.depth.stddev());
    EXPECT_EQ(a.fidelity.mean(), b.fidelity.mean());
    EXPECT_EQ(a.epr_wasted.mean(), b.epr_wasted.mean());
  }
}

// Two-node chain: one physical edge, zero swaps. Swap-as-you-go then
// differs from the composed model only in bookkeeping (pairs transit the
// per-edge pool instead of the per-link service), so timing statistics
// must match exactly and fidelity to float round-off (the single-pair
// "fusion" round-trips the Werner weight once).
TEST(SwapAsYouGo, SingleHopMatchesComposedModel) {
  Circuit qc(4);
  for (int rep = 0; rep < 6; ++rep) {
    qc.rzz(0, 2, 0.1);
    qc.rzz(1, 3, 0.2);
    qc.h(0);
  }
  const std::vector<int> nodes = {0, 0, 1, 1};
  ArchConfig legacy;
  legacy.num_nodes = 2;
  legacy.set_topology(Topology::chain(2));
  ArchConfig swap_go = legacy;
  swap_go.swap_as_you_go = true;
  for (const DesignKind design :
       {DesignKind::AsyncBuf, DesignKind::SyncBuf, DesignKind::InitBuf}) {
    SCOPED_TRACE(runtime::design_name(design));
    const AggregateResult a =
        runtime::run_design(qc, nodes, legacy, design, 6, 21, 1);
    const AggregateResult b =
        runtime::run_design(qc, nodes, swap_go, design, 6, 21, 1);
    EXPECT_EQ(a.depth.mean(), b.depth.mean());
    EXPECT_EQ(a.avg_remote_wait.mean(), b.avg_remote_wait.mean());
    EXPECT_NEAR(a.fidelity.mean(), b.fidelity.mean(), 1e-12);
  }
}

TEST(SwapAsYouGo, BeatsComposedModelOnLongChains) {
  // End-to-end traffic across chain(8): the composed model needs all 7
  // hops to herald within one window (p_succ^7), swap-as-you-go buffers
  // each hop independently. The depth gap is the ablation's headline.
  Circuit qc(8);
  for (int rep = 0; rep < 2; ++rep) qc.rzz(0, 7, 0.1);
  const std::vector<int> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  ArchConfig composed;
  composed.num_nodes = 8;
  composed.set_topology(Topology::chain(8));
  ArchConfig swap_go = composed;
  swap_go.swap_as_you_go = true;

  const AggregateResult slow = runtime::run_design(
      qc, nodes, composed, DesignKind::AsyncBuf, 3, 33, 1);
  const AggregateResult fast = runtime::run_design(
      qc, nodes, swap_go, DesignKind::AsyncBuf, 3, 33, 1);
  EXPECT_GT(slow.depth.mean(), 5.0 * fast.depth.mean());
  // Every delivered pair still pays its 7-hop swap chain.
  EXPECT_EQ(fast.avg_route_hops.mean(), 7.0);
  EXPECT_GT(fast.entanglement_swaps.mean(), 0.0);
}

TEST(SwapAsYouGo, OnDemandDesignRunsDegradedPerEdgeService) {
  // The bufferless original design no longer falls back to the composed
  // model under swap_as_you_go: each edge runs a one-slot buffered
  // service, so hop pairs park on the communication qubits instead of
  // needing all hops to herald within one window (p_succ^hops). On a long
  // chain that degraded service still beats the composed model by a wide
  // margin — and the multi-hop bookkeeping (route hops, swaps) proves the
  // pairs were fused per edge, not composed.
  Circuit qc(5);
  for (int rep = 0; rep < 2; ++rep) qc.rzz(0, 4, 0.1);
  const std::vector<int> nodes = {0, 1, 2, 3, 4};
  ArchConfig composed;
  composed.num_nodes = 5;
  composed.set_topology(Topology::chain(5));
  ArchConfig swap_go = composed;
  swap_go.swap_as_you_go = true;

  const AggregateResult slow = runtime::run_design(
      qc, nodes, composed, DesignKind::Original, 3, 47, 1);
  const AggregateResult fast = runtime::run_design(
      qc, nodes, swap_go, DesignKind::Original, 3, 47, 1);
  EXPECT_GT(slow.depth.mean(), 3.0 * fast.depth.mean());
  EXPECT_EQ(fast.avg_route_hops.mean(), 4.0);
  EXPECT_GT(fast.entanglement_swaps.mean(), 0.0);
}

// ----------------------------------------------------------- determinism ----

void expect_identical(const Accumulator& a, const Accumulator& b,
                      const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void expect_identical(const AggregateResult& a, const AggregateResult& b) {
  expect_identical(a.depth, b.depth, "depth");
  expect_identical(a.fidelity, b.fidelity, "fidelity");
  expect_identical(a.epr_wasted, b.epr_wasted, "epr_wasted");
  expect_identical(a.epr_expired, b.epr_expired, "epr_expired");
  expect_identical(a.avg_pair_age, b.avg_pair_age, "avg_pair_age");
  expect_identical(a.avg_remote_wait, b.avg_remote_wait, "avg_remote_wait");
  expect_identical(a.entanglement_swaps, b.entanglement_swaps,
                   "entanglement_swaps");
  expect_identical(a.avg_route_hops, b.avg_route_hops, "avg_route_hops");
  expect_identical(a.edges_shared, b.edges_shared, "edges_shared");
  expect_identical(a.max_edge_load, b.max_edge_load, "max_edge_load");
  expect_identical(a.route_splits, b.route_splits, "route_splits");
  expect_identical(a.reroutes, b.reroutes, "reroutes");
  expect_identical(a.outage_downtime, b.outage_downtime, "outage_downtime");
}

/// 8 qubits over 4 ring nodes with traffic on four node pairs, two of them
/// non-adjacent (multi-hop, eligible for tied-path splits).
Circuit ring_circuit() {
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);  // nodes 0-1, adjacent
    qc.rzz(3, 4, 0.1);  // nodes 1-2, adjacent
    qc.rzz(0, 5, 0.1);  // nodes 0-2, across the ring
    qc.rzz(2, 7, 0.1);  // nodes 1-3, across the ring
    qc.h(6);
  }
  return qc;
}

TEST(CongestionDeterminism, EveryKnobCombinationIsThreadCountInvariant) {
  const Circuit qc = ring_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2, 3, 3};
  constexpr int kRuns = 8;
  constexpr std::uint64_t kSeed = 500;

  struct Combo {
    const char* name;
    bool share, congest, swap_go;
  };
  const Combo combos[] = {
      {"shared", true, false, false},
      {"congestion", false, true, false},
      {"swap_go", false, false, true},
      {"all", true, true, true},
  };
  for (const Combo& combo : combos) {
    ArchConfig config;
    config.num_nodes = 4;
    config.set_topology(Topology::ring(4));
    config.share_edge_capacity = combo.share;
    config.congestion_aware_routing = combo.congest;
    config.swap_as_you_go = combo.swap_go;
    for (const DesignKind design : runtime::distributed_designs()) {
      const AggregateResult serial = runtime::run_design(
          qc, nodes, config, design, kRuns, kSeed, /*threads=*/1);
      for (const int threads : {0, 2, 4}) {
        SCOPED_TRACE(std::string(combo.name) + " " +
                     runtime::design_name(design) + " @ " +
                     std::to_string(threads) + " threads");
        const AggregateResult parallel = runtime::run_design(
            qc, nodes, config, design, kRuns, kSeed, threads);
        expect_identical(serial, parallel);
      }
    }
  }
}

TEST(CongestionDeterminism, OutageRePlanningIsThreadCountInvariant) {
  // Outage boundaries re-run the congestion pass over the surviving
  // subgraph and (in swap mode) re-serve every link; the whole machinery
  // must stay bit-identical across thread counts.
  const Circuit qc = ring_circuit();
  const std::vector<int> nodes = {0, 0, 1, 1, 2, 2, 3, 3};
  scenario::Scenario scn;
  scn.link_outages.push_back({0, 1, 60.0, 40.0});
  scn.link_outages.push_back({1, 2, 150.0, 30.0});

  for (const bool swap_go : {false, true}) {
    ArchConfig config;
    config.num_nodes = 4;
    config.set_topology(Topology::ring(4));
    config.set_scenario(scn);
    config.share_edge_capacity = !swap_go;
    config.congestion_aware_routing = true;
    config.swap_as_you_go = swap_go;
    for (const DesignKind design : runtime::distributed_designs()) {
      const AggregateResult serial =
          runtime::run_design(qc, nodes, config, design, 8, 900, 1);
      for (const int threads : {0, 4}) {
        SCOPED_TRACE(std::string(swap_go ? "swap_go" : "composed") + " " +
                     runtime::design_name(design) + " @ " +
                     std::to_string(threads) + " threads");
        const AggregateResult parallel =
            runtime::run_design(qc, nodes, config, design, 8, 900, threads);
        expect_identical(serial, parallel);
      }
    }
  }
}

}  // namespace
}  // namespace dqcsim::net
