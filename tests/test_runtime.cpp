/// Unit tests for the runtime: design enumeration, architecture config,
/// and the execution engine on small hand-analyzable circuits.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gen/benchmarks.hpp"
#include "runtime/arch_config.hpp"
#include "runtime/design.hpp"
#include "runtime/engine.hpp"
#include "runtime/experiment.hpp"
#include "runtime/metrics.hpp"

namespace dqcsim::runtime {
namespace {

ArchConfig paper_config() { return ArchConfig{}; }

/// 2 data qubits on different nodes plus one remote CX.
Circuit single_remote_cx() {
  Circuit qc(2);
  qc.cx(0, 1);
  return qc;
}

RunResult run_once(const Circuit& qc, const std::vector<int>& assignment,
                   const ArchConfig& config, DesignKind design,
                   std::uint64_t seed = 1) {
  ExecutionEngine engine(qc, assignment, config, design, seed);
  return engine.run();
}

/// 24 two-qubit gates on a 2|2 split, half of them remote.
Circuit gen_heavy_circuit() {
  Circuit qc(4);
  for (int rep = 0; rep < 6; ++rep) {
    qc.rzz(0, 2, 0.1);
    qc.rzz(1, 3, 0.1);
    qc.rzz(0, 1, 0.1);
    qc.rzz(2, 3, 0.1);
  }
  return qc;
}

std::vector<int> heavy_assignment() { return {0, 0, 1, 1}; }

// ----------------------------------------------------------------- design ----

TEST(Design, NamesMatchPaper) {
  EXPECT_EQ(design_name(DesignKind::Original), "original");
  EXPECT_EQ(design_name(DesignKind::SyncBuf), "sync_buf");
  EXPECT_EQ(design_name(DesignKind::AsyncBuf), "async_buf");
  EXPECT_EQ(design_name(DesignKind::AdaptBuf), "adapt_buf");
  EXPECT_EQ(design_name(DesignKind::InitBuf), "init_buf");
  EXPECT_EQ(design_name(DesignKind::IdealMono), "ideal");
}

TEST(Design, FeatureMatrix) {
  EXPECT_FALSE(design_uses_buffer(DesignKind::Original));
  EXPECT_TRUE(design_uses_buffer(DesignKind::SyncBuf));
  EXPECT_FALSE(design_uses_async(DesignKind::SyncBuf));
  EXPECT_TRUE(design_uses_async(DesignKind::AsyncBuf));
  EXPECT_FALSE(design_uses_adaptive(DesignKind::AsyncBuf));
  EXPECT_TRUE(design_uses_adaptive(DesignKind::AdaptBuf));
  EXPECT_TRUE(design_uses_adaptive(DesignKind::InitBuf));
  EXPECT_TRUE(design_uses_prefill(DesignKind::InitBuf));
  EXPECT_FALSE(design_uses_prefill(DesignKind::AdaptBuf));
}

TEST(Design, EnumerationsCoverAll) {
  EXPECT_EQ(all_designs().size(), 6u);
  EXPECT_EQ(distributed_designs().size(), 5u);
}

// ------------------------------------------------------------- ArchConfig ----

TEST(ArchConfig, PaperDefaultsAreValid) {
  EXPECT_NO_THROW(paper_config().validate());
}

TEST(ArchConfig, ValidateCatchesBadFields) {
  const auto expect_bad = [](auto mutate) {
    ArchConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), ConfigError);
  };
  expect_bad([](ArchConfig& c) { c.num_nodes = 1; });
  expect_bad([](ArchConfig& c) { c.comm_per_node = 0; });
  expect_bad([](ArchConfig& c) { c.buffer_per_node = -1; });
  expect_bad([](ArchConfig& c) { c.p_succ = 0.0; });
  expect_bad([](ArchConfig& c) { c.kappa = -0.5; });
  expect_bad([](ArchConfig& c) { c.buffer_cutoff = -3.0; });
  expect_bad([](ArchConfig& c) { c.async_subgroups = 0; });
  expect_bad([](ArchConfig& c) { c.lat.local_cnot = 0.0; });
  expect_bad([](ArchConfig& c) { c.fid.local_cnot = 0.0; });
  expect_bad([](ArchConfig& c) { c.fid.epr_f0 = 0.1; });
}

TEST(ArchConfig, LinkParamsFollowDesignFeatures) {
  const ArchConfig config = paper_config();
  const auto original = config.link_params(DesignKind::Original);
  EXPECT_EQ(original.buffer_capacity, 0);
  EXPECT_EQ(original.schedule, ent::AttemptSchedule::Synchronous);

  const auto sync = config.link_params(DesignKind::SyncBuf);
  EXPECT_EQ(sync.buffer_capacity, 10);
  EXPECT_EQ(sync.schedule, ent::AttemptSchedule::Synchronous);

  const auto async = config.link_params(DesignKind::AsyncBuf);
  EXPECT_EQ(async.schedule, ent::AttemptSchedule::Asynchronous);
  EXPECT_EQ(async.num_comm_pairs, 10);
  EXPECT_DOUBLE_EQ(async.cycle_time, 10.0);
}

TEST(ArchConfig, EffectiveSegmentSizeUsesPaperDefault) {
  ArchConfig config;
  EXPECT_EQ(config.effective_segment_size(), 4u);  // 10 * 0.4
  config.segment_size = 7;
  EXPECT_EQ(config.effective_segment_size(), 7u);
  config.segment_size = 0;
  config.comm_per_node = 20;
  EXPECT_EQ(config.effective_segment_size(), 8u);
}

// -------------------------------------------------------------- ideal runs ----

TEST(Engine, IdealDepthOfSerialCnotChain) {
  Circuit qc(3);
  qc.cx(0, 1);
  qc.cx(1, 2);
  qc.cx(0, 1);
  const double depth = ideal_depth(qc, paper_config());
  EXPECT_DOUBLE_EQ(depth, 3.0);
}

TEST(Engine, IdealDepthUsesGateLatencies) {
  Circuit qc(2);
  qc.h(0);       // 0.1
  qc.cx(0, 1);   // 1.0
  qc.measure(1); // 5.0
  EXPECT_NEAR(ideal_depth(qc, paper_config()), 6.1, 1e-9);
}

TEST(Engine, IdealFidelityIsGateProductTimesIdling) {
  Circuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  const ArchConfig config = paper_config();
  const double expected =
      0.9999 * 0.999 * std::exp(-config.kappa * 1.1);
  EXPECT_NEAR(ideal_fidelity(qc, config), expected, 1e-9);
}

TEST(Engine, IdealTreatsRemotePairsAsLocal) {
  const Circuit qc = single_remote_cx();
  const RunResult r = run_once(qc, {}, paper_config(), DesignKind::IdealMono);
  EXPECT_DOUBLE_EQ(r.depth, 1.0);
  EXPECT_EQ(r.remote_gates, 0u);
  EXPECT_EQ(r.epr_attempts, 0u);
}

// ----------------------------------------------------------- remote timing ----

TEST(Engine, SyncBufSingleRemoteGateWaitsForFirstPair) {
  // First sync completion at t=10, swap 1 -> pair available at 11; the
  // remote gate then occupies its data qubits for 1 unit -> depth 12.
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.p_succ = 1.0;  // deterministic first window
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(r.depth, 12.0, 1e-9);
  EXPECT_EQ(r.remote_gates, 1u);
  EXPECT_NEAR(r.avg_remote_wait, 11.0, 1e-9);
}

TEST(Engine, InitBufSingleRemoteGateStartsImmediately) {
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::InitBuf);
  EXPECT_NEAR(r.depth, 1.0, 1e-9);
  EXPECT_NEAR(r.avg_remote_wait, 0.0, 1e-9);
  EXPECT_NEAR(r.avg_pair_age, 0.0, 1e-9);
}

TEST(Engine, AsyncBufFirstPairArrivesEarlier) {
  // Async steady-state offsets put the earliest completion at t=1
  // (subgroup 1), deposit at 2 -> depth 3.
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::AsyncBuf);
  EXPECT_NEAR(r.depth, 3.0, 1e-9);
}

TEST(Engine, OriginalConsumesAtHeraldingInstant) {
  // No buffer: the pair is consumed exactly at the t=10 completion; the
  // gate runs [10, 11].
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::Original);
  EXPECT_NEAR(r.depth, 11.0, 1e-9);
  // 9 of the 10 simultaneous successes found no pending gate -> wasted.
  EXPECT_EQ(r.epr_wasted, 9u);
  EXPECT_EQ(r.epr_consumed, 1u);
}

TEST(Engine, LocalGatesBeforeRemoteOverlapGeneration) {
  // A long local prefix means the buffered pair (available at 11) is
  // already waiting when the remote gate becomes ready at t=20.
  Circuit qc(3);
  for (int i = 0; i < 20; ++i) qc.cx(0, 1);  // qubits 0,1 stay on node 0
  qc.cx(1, 2);                               // remote
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 0, 1}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(r.depth, 21.0, 1e-9);
  EXPECT_NEAR(r.avg_remote_wait, 0.0, 1e-9);
  EXPECT_NEAR(r.avg_pair_age, 9.0, 1e-9);  // deposited at 11, used at 20
}

TEST(Engine, RemoteFidelityReflectsPairAge) {
  // Same circuit as above: the consumed pair is 9 units old, so the
  // remote-gate fidelity must be below the fresh-pair teleport fidelity.
  Circuit qc(3);
  for (int i = 0; i < 20; ++i) qc.cx(0, 1);
  qc.cx(1, 2);
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  const RunResult aged = run_once(qc, {0, 0, 1}, config, DesignKind::SyncBuf);
  const RunResult fresh =
      run_once(qc, {0, 0, 1}, config, DesignKind::InitBuf);
  // init_buf consumes a fresh pre-filled pair... which has age 20 at use.
  // Compare against the single-gate fresh case instead:
  const RunResult baseline =
      run_once(single_remote_cx(), {0, 1}, config, DesignKind::Original);
  EXPECT_LT(aged.fidelity_remote, baseline.fidelity_remote);
  (void)fresh;
}

// --------------------------------------------------------------- counters ----

TEST(Engine, EntanglementAccountingBalances) {
  const Circuit qc = gen_heavy_circuit();
  ArchConfig config = paper_config();
  const RunResult r =
      run_once(qc, heavy_assignment(), config, DesignKind::SyncBuf, 7);
  // successes = consumed + wasted + expired + still-buffered.
  EXPECT_GE(r.epr_successes,
            r.epr_consumed + r.epr_wasted + r.epr_expired);
  EXPECT_EQ(r.epr_consumed, r.remote_gates);
  EXPECT_GT(r.epr_attempts, r.epr_successes);
}

TEST(Engine, DeterministicForFixedSeed) {
  const Circuit qc = gen_heavy_circuit();
  const ArchConfig config = paper_config();
  const RunResult a =
      run_once(qc, heavy_assignment(), config, DesignKind::AsyncBuf, 42);
  const RunResult b =
      run_once(qc, heavy_assignment(), config, DesignKind::AsyncBuf, 42);
  EXPECT_DOUBLE_EQ(a.depth, b.depth);
  EXPECT_DOUBLE_EQ(a.fidelity, b.fidelity);
  EXPECT_EQ(a.epr_attempts, b.epr_attempts);
}

TEST(Engine, DifferentSeedsVaryOutcomes) {
  const Circuit qc = gen_heavy_circuit();
  const ArchConfig config = paper_config();
  const RunResult a =
      run_once(qc, heavy_assignment(), config, DesignKind::SyncBuf, 1);
  const RunResult b =
      run_once(qc, heavy_assignment(), config, DesignKind::SyncBuf, 2);
  // Stochastic generation: depths should differ at least sometimes.
  EXPECT_TRUE(a.depth != b.depth || a.epr_attempts != b.epr_attempts);
}

TEST(Engine, RunTwiceIsRejected) {
  const Circuit qc = single_remote_cx();
  ExecutionEngine engine(qc, {0, 1}, paper_config(), DesignKind::SyncBuf, 1);
  engine.run();
  EXPECT_THROW(engine.run(), PreconditionError);
}

TEST(Engine, RejectsBadAssignments) {
  const Circuit qc = single_remote_cx();
  EXPECT_THROW(
      ExecutionEngine(qc, {0}, paper_config(), DesignKind::SyncBuf, 1),
      PreconditionError);
  EXPECT_THROW(
      ExecutionEngine(qc, {0, 2}, paper_config(), DesignKind::SyncBuf, 1),
      PreconditionError);
}

TEST(Engine, BufferedDesignNeedsBufferQubits) {
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.buffer_per_node = 0;
  ExecutionEngine engine(qc, {0, 1}, config, DesignKind::SyncBuf, 1);
  EXPECT_THROW(engine.run(), ConfigError);
  // The bufferless original design is fine without buffer qubits.
  ExecutionEngine original(qc, {0, 1}, config, DesignKind::Original, 1);
  EXPECT_NO_THROW(original.run());
}

TEST(Engine, FidelityDecomposesMultiplicatively) {
  const Circuit qc = gen_heavy_circuit();
  const RunResult r = run_once(qc, heavy_assignment(), paper_config(),
                               DesignKind::AsyncBuf, 3);
  EXPECT_NEAR(
      r.fidelity,
      r.fidelity_local * r.fidelity_remote * r.fidelity_idling, 1e-9);
  EXPECT_GT(r.fidelity, 0.0);
  EXPECT_LE(r.fidelity, 1.0);
}

TEST(Engine, AdaptiveCountsSegmentDecisions) {
  const Circuit qc = gen_heavy_circuit();
  const RunResult r = run_once(qc, heavy_assignment(), paper_config(),
                               DesignKind::AdaptBuf, 5);
  const std::size_t total =
      r.segments_asap + r.segments_alap + r.segments_original;
  // 12 remote gates at m = 4 -> 3 segments.
  EXPECT_EQ(total, 3u);
}

TEST(Engine, NonAdaptiveDesignsMakeNoSegmentDecisions) {
  const Circuit qc = gen_heavy_circuit();
  const RunResult r = run_once(qc, heavy_assignment(), paper_config(),
                               DesignKind::AsyncBuf, 5);
  EXPECT_EQ(r.segments_asap + r.segments_alap + r.segments_original, 0u);
}

TEST(Engine, CutoffExpiresBufferedPairs) {
  // Long local prefix, tiny cutoff: the early pairs must expire.
  Circuit qc(3);
  for (int i = 0; i < 40; ++i) qc.cx(0, 1);
  qc.cx(1, 2);
  ArchConfig config = paper_config();
  config.p_succ = 1.0;
  config.buffer_cutoff = 5.0;
  const RunResult r = run_once(qc, {0, 0, 1}, config, DesignKind::SyncBuf);
  EXPECT_GT(r.epr_expired, 0u);
}

// ------------------------------------------------- state teleportation ----

TEST(StateTeleportRuntime, ConsumesTwoPairsPerRemoteGate) {
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.remote_impl = RemoteImpl::StateTeleport;
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::InitBuf);
  EXPECT_EQ(r.epr_consumed, 2u);
  EXPECT_NEAR(r.depth, config.lat.remote_gate_state, 1e-9);
}

TEST(StateTeleportRuntime, BufferedGateWaitsForBothPairs) {
  // sync_buf with one comm pair: deposits at 11, 21 -> gate starts at 21.
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.remote_impl = RemoteImpl::StateTeleport;
  config.comm_per_node = 1;
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::SyncBuf);
  EXPECT_NEAR(r.depth, 21.0 + config.lat.remote_gate_state, 1e-9);
}

TEST(StateTeleportRuntime, OriginalCollectsPairsAcrossHeralds) {
  // Bufferless design, one comm pair: heralds at 10 and 20; the first pair
  // is held (decaying) until the second completes the quota.
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.remote_impl = RemoteImpl::StateTeleport;
  config.comm_per_node = 1;
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::Original);
  EXPECT_NEAR(r.depth, 20.0 + config.lat.remote_gate_state, 1e-9);
  EXPECT_EQ(r.epr_consumed, 2u);
  EXPECT_NEAR(r.avg_pair_age, 5.0, 1e-9);  // ages 10 and 0
}

TEST(StateTeleportRuntime, LowerFidelityThanGateTeleport) {
  const Circuit qc = gen_heavy_circuit();
  ArchConfig gate_cfg = paper_config();
  ArchConfig state_cfg = paper_config();
  state_cfg.remote_impl = RemoteImpl::StateTeleport;
  const auto gate_agg = run_design(qc, heavy_assignment(), gate_cfg,
                                   DesignKind::AsyncBuf, 8);
  const auto state_agg = run_design(qc, heavy_assignment(), state_cfg,
                                    DesignKind::AsyncBuf, 8);
  EXPECT_LT(state_agg.fidelity.mean(), gate_agg.fidelity.mean());
  EXPECT_GT(state_agg.depth.mean(), gate_agg.depth.mean());
}

// -------------------------------------------------------------- multi-node ----

TEST(MultiNode, LinkParamsSplitResourcesAcrossLinks) {
  ArchConfig config = paper_config();
  config.num_nodes = 3;
  config.comm_per_node = 10;
  config.buffer_per_node = 10;
  const auto link = config.link_params(DesignKind::SyncBuf);
  EXPECT_EQ(link.num_comm_pairs, 5);  // 10 comm qubits over 2 links
  EXPECT_EQ(link.buffer_capacity, 5);
}

TEST(MultiNode, RejectsMoreLinksThanCommQubits) {
  ArchConfig config = paper_config();
  config.num_nodes = 12;
  config.comm_per_node = 10;
  EXPECT_THROW(config.link_params(DesignKind::SyncBuf), ConfigError);
}

TEST(MultiNode, LinkSplittingCoversEveryNodeCount) {
  // k-node all-to-all: each node splits its budget over k-1 links. Sweep
  // k = 2..16 at the paper's 10+10 budget: valid up to k = 11 (10 links),
  // ConfigError beyond.
  for (int k = 2; k <= 16; ++k) {
    ArchConfig config = paper_config();
    config.num_nodes = k;
    const int links = k - 1;
    if (links > config.comm_per_node) {
      EXPECT_THROW(config.link_params(DesignKind::SyncBuf), ConfigError)
          << "k=" << k;
      continue;
    }
    const auto link = config.link_params(DesignKind::SyncBuf);
    EXPECT_EQ(link.num_comm_pairs, 10 / links) << "k=" << k;
    EXPECT_EQ(link.buffer_capacity, std::max(1, 10 / links)) << "k=" << k;
    EXPECT_NO_THROW(link.validate()) << "k=" << k;
  }
}

TEST(MultiNode, UnevenSplitsRoundDownButStayPositive) {
  ArchConfig config = paper_config();
  // 10 comm over 3 links -> 3 pairs each (1 qubit idle per node).
  config.num_nodes = 4;
  const auto four = config.link_params(DesignKind::SyncBuf);
  EXPECT_EQ(four.num_comm_pairs, 3);
  EXPECT_EQ(four.buffer_capacity, 3);
  // 10 comm over 7 links -> 1 pair each; buffer clamps to >= 1 for
  // buffered designs even though 10 / 7 = 1 anyway.
  config.num_nodes = 8;
  const auto eight = config.link_params(DesignKind::SyncBuf);
  EXPECT_EQ(eight.num_comm_pairs, 1);
  EXPECT_EQ(eight.buffer_capacity, 1);
  // Exactly one comm qubit per link is the edge of validity.
  config.num_nodes = 11;
  EXPECT_EQ(config.link_params(DesignKind::SyncBuf).num_comm_pairs, 1);
  // Buffer clamp: a buffered design with a tiny buffer budget still gets
  // one slot per link; bufferless designs get none.
  config.num_nodes = 4;
  config.buffer_per_node = 1;
  EXPECT_EQ(config.link_params(DesignKind::SyncBuf).buffer_capacity, 1);
  EXPECT_EQ(config.link_params(DesignKind::Original).buffer_capacity, 0);
}

TEST(MultiNode, EngineSurfacesTheLinkSplittingError) {
  // The ConfigError must also fire end-to-end, not just in link_params.
  ArchConfig config = paper_config();
  config.num_nodes = 12;
  config.comm_per_node = 10;
  Circuit wide(12);
  for (int i = 0; i < 12; ++i) wide.h(i);
  wide.cx(0, 11);
  std::vector<int> nodes(12);
  for (int i = 0; i < 12; ++i) nodes[static_cast<std::size_t>(i)] = i;
  ExecutionEngine engine(wide, nodes, config, DesignKind::SyncBuf, 1);
  EXPECT_THROW(engine.run(), ConfigError);
}

TEST(MultiNode, FourNodeRingExecutes) {
  // 8 qubits over 4 nodes; ring of remote RZZ between adjacent nodes.
  Circuit qc(8);
  for (int rep = 0; rep < 3; ++rep) {
    qc.rzz(1, 2, 0.1);  // link 0-1
    qc.rzz(3, 4, 0.1);  // link 1-2
    qc.rzz(5, 6, 0.1);  // link 2-3
    qc.rzz(7, 0, 0.1);  // link 3-0
    qc.rzz(0, 1, 0.1);  // local on node 0
  }
  const std::vector<int> nodes{0, 0, 1, 1, 2, 2, 3, 3};
  ArchConfig config = paper_config();
  config.num_nodes = 4;
  const RunResult r = run_once(qc, nodes, config, DesignKind::AsyncBuf, 3);
  EXPECT_EQ(r.remote_gates, 12u);
  EXPECT_EQ(r.epr_consumed, 12u);
  EXPECT_GT(r.fidelity, 0.0);
}

TEST(MultiNode, IndependentLinksServeInParallel) {
  // Two remote gates on DIFFERENT links with deterministic generation both
  // start at their link's first deposit; a shared link would serialize.
  Circuit qc(4);
  qc.rzz(0, 1, 0.1);  // link 0-1
  qc.rzz(2, 3, 0.1);  // link 2-3
  const std::vector<int> nodes{0, 1, 2, 3};
  ArchConfig config = paper_config();
  config.num_nodes = 4;
  config.comm_per_node = 3;
  config.buffer_per_node = 3;
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, nodes, config, DesignKind::SyncBuf, 1);
  // Both gates wait for their own link's first pair (t = 11) and run in
  // parallel: makespan 12, not 12 + another generation round.
  EXPECT_NEAR(r.depth, 12.0, 1e-9);
}

TEST(MultiNode, SharedLinkSerializesUnderScarcity) {
  // Two remote gates on the SAME link with a single comm pair: the second
  // gate must wait a full extra cycle.
  Circuit qc(4);
  qc.rzz(0, 2, 0.1);
  qc.rzz(1, 3, 0.1);
  const std::vector<int> nodes{0, 0, 1, 1};
  ArchConfig config = paper_config();
  config.comm_per_node = 1;
  config.buffer_per_node = 1;
  config.p_succ = 1.0;
  const RunResult r = run_once(qc, nodes, config, DesignKind::SyncBuf, 1);
  EXPECT_NEAR(r.depth, 22.0, 1e-9);  // deposits at 11 and 21
}

TEST(MultiNode, FourWayPartitionOfBenchmarkRuns) {
  const Circuit qc = gen::make_benchmark(gen::BenchmarkId::QAOA_R8_32);
  const auto part = partition_circuit(qc, 4);
  ArchConfig config = paper_config();
  config.num_nodes = 4;
  const auto agg = run_design(qc, part.assignment, config,
                              DesignKind::AsyncBuf, 4);
  EXPECT_GT(agg.depth.mean(), 0.0);
  EXPECT_GT(agg.fidelity.mean(), 0.0);
  EXPECT_LE(agg.fidelity.max(), 1.0);
}

// ------------------------------------------------------------ purification ----

TEST(PurificationRuntime, ConsumesTwoPairsAndDelaysStart) {
  const Circuit qc = single_remote_cx();
  ArchConfig config = paper_config();
  config.purify_on_consume = true;
  config.p_succ = 1.0;
  // init_buf: both pairs available at t=0; BBPSSW at F0=0.99 succeeds with
  // probability ~0.987, so pick a seed where the first roll succeeds.
  const RunResult r = run_once(qc, {0, 1}, config, DesignKind::InitBuf, 3);
  ASSERT_EQ(r.purification_failures, 0u);
  EXPECT_EQ(r.purification_rounds, 1u);
  EXPECT_EQ(r.epr_consumed, 2u);
  EXPECT_NEAR(r.depth, config.purification_latency + config.lat.remote_gate,
              1e-9);
}

TEST(PurificationRuntime, ImprovesRemoteFidelityForNoisyPairs) {
  // With f0 = 0.9 the purified pair is markedly better; compare the remote
  // fidelity factor of the same workload with and without purification.
  const Circuit qc = gen_heavy_circuit();
  ArchConfig plain = paper_config();
  plain.fid.epr_f0 = 0.9;
  ArchConfig purified = plain;
  purified.purify_on_consume = true;
  const auto base = run_design(qc, heavy_assignment(), plain,
                               DesignKind::InitBuf, 10);
  const auto pure = run_design(qc, heavy_assignment(), purified,
                               DesignKind::InitBuf, 10);
  // Depth cost is real (2x demand + local rounds)...
  EXPECT_GT(pure.depth.mean(), base.depth.mean());
  // ...but the average consumed-pair quality must rise; check via a direct
  // single-run comparison of the remote-fidelity product.
  ExecutionEngine base_engine(qc, heavy_assignment(), plain,
                              DesignKind::InitBuf, 7);
  ExecutionEngine pure_engine(qc, heavy_assignment(), purified,
                              DesignKind::InitBuf, 7);
  const double per_gate_base = std::pow(
      base_engine.run().fidelity_remote, 1.0 / 12.0);
  const double per_gate_pure = std::pow(
      pure_engine.run().fidelity_remote, 1.0 / 12.0);
  EXPECT_GT(per_gate_pure, per_gate_base);
}

TEST(PurificationRuntime, FailuresAreCountedAndRetried) {
  // Force failures: f0 = 0.5 gives success probability ~0.56 per round, so
  // across enough gates some rounds must fail — and every gate still
  // completes (retry logic).
  const Circuit qc = gen_heavy_circuit();
  ArchConfig config = paper_config();
  config.fid.epr_f0 = 0.5;
  config.purify_on_consume = true;
  const auto agg = run_design(qc, heavy_assignment(), config,
                              DesignKind::AsyncBuf, 10);
  EXPECT_EQ(agg.depth.count(), 10u);  // all runs completed
  RunResult one = RunResult{};
  ExecutionEngine engine(qc, heavy_assignment(), config,
                         DesignKind::AsyncBuf, 11);
  one = engine.run();
  EXPECT_GE(one.purification_rounds, 12u);  // >= one round per remote gate
  EXPECT_EQ(one.purification_rounds - one.purification_failures, 12u);
}

// ------------------------------------------------------------- experiment ----

TEST(Experiment, RunDesignAggregates) {
  const Circuit qc = gen_heavy_circuit();
  const AggregateResult agg = run_design(qc, heavy_assignment(),
                                         paper_config(),
                                         DesignKind::SyncBuf, 10);
  EXPECT_EQ(agg.depth.count(), 10u);
  EXPECT_GT(agg.depth.mean(), 0.0);
  EXPECT_GT(agg.fidelity.mean(), 0.0);
  EXPECT_LE(agg.fidelity.max(), 1.0);
}

TEST(Experiment, PartitionCircuitBalances) {
  Circuit qc(4);
  qc.cx(0, 1);
  qc.cx(0, 1);
  qc.cx(2, 3);
  qc.cx(2, 3);
  qc.cx(1, 2);
  const auto part = partition_circuit(qc, 2);
  EXPECT_EQ(part.k, 2);
  EXPECT_EQ(part.cut, 1);
  EXPECT_DOUBLE_EQ(part.balance, 1.0);
  // The heavy pairs stay together.
  EXPECT_EQ(part.assignment[0], part.assignment[1]);
  EXPECT_EQ(part.assignment[2], part.assignment[3]);
  EXPECT_NE(part.assignment[0], part.assignment[2]);
}

}  // namespace
}  // namespace dqcsim::runtime
