/// Unit tests for the multilevel partitioner (graph, coarsening, initial
/// partitioning, FM refinement, and the full METIS-substitute pipeline).

#include <gtest/gtest.h>

#include <set>

#include "circuit/interaction_graph.hpp"
#include "common/error.hpp"
#include "gen/qft.hpp"
#include "gen/regular_graph.hpp"
#include "gen/tlim.hpp"
#include "partition/coarsen.hpp"
#include "partition/fm_refine.hpp"
#include "partition/graph.hpp"
#include "partition/initial_partition.hpp"
#include "partition/partitioner.hpp"

namespace dqcsim::partition {
namespace {

Graph path_graph(NodeId n, Weight w = 1) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, w);
  return g;
}

Graph complete_graph(NodeId n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
  }
  return g;
}

/// Two K5 cliques joined by a single bridge edge: optimal balanced cut = 1.
Graph two_cliques_with_bridge() {
  Graph g(10);
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = i + 1; j < 5; ++j) {
      g.add_edge(i, j);
      g.add_edge(i + 5, j + 5);
    }
  }
  g.add_edge(4, 5);
  return g;
}

// ------------------------------------------------------------------ Graph ----

TEST(Graph, EdgeInsertionAccumulatesWeight) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.edge_weight(0, 1), 5);
  EXPECT_EQ(g.edge_weight(1, 0), 5);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.total_edge_weight(), 5);
}

TEST(Graph, MissingEdgeHasZeroWeight) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_weight(0, 2), 0);
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 3), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, -2), PreconditionError);
}

TEST(Graph, NodeWeightsDefaultToOne) {
  Graph g(2);
  EXPECT_EQ(g.node_weight(0), 1);
  EXPECT_EQ(g.total_node_weight(), 2);
  g.set_node_weight(0, 5);
  EXPECT_EQ(g.total_node_weight(), 6);
  EXPECT_THROW(g.set_node_weight(0, 0), PreconditionError);
}

TEST(Graph, WeightedDegreeSumsIncidentEdges) {
  Graph g = path_graph(3, 2);
  EXPECT_EQ(g.weighted_degree(0), 2);
  EXPECT_EQ(g.weighted_degree(1), 4);
}

TEST(Graph, CutWeightCountsCrossingEdges) {
  Graph g = path_graph(4);
  EXPECT_EQ(cut_weight(g, {0, 0, 1, 1}), 1);
  EXPECT_EQ(cut_weight(g, {0, 1, 0, 1}), 3);
  EXPECT_EQ(cut_weight(g, {0, 0, 0, 0}), 0);
}

TEST(Graph, BalanceRatioPerfectAndSkewed) {
  Graph g(4);
  EXPECT_DOUBLE_EQ(balance_ratio(g, {0, 0, 1, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(balance_ratio(g, {0, 0, 0, 1}, 2), 1.5);
}

TEST(Graph, PartWeightsRespectNodeWeights) {
  Graph g(3);
  g.set_node_weight(2, 4);
  const auto w = part_weights(g, {0, 1, 1}, 2);
  EXPECT_EQ(w[0], 1);
  EXPECT_EQ(w[1], 5);
}

// ------------------------------------------------------------- coarsening ----

TEST(Coarsen, PreservesTotalNodeWeight) {
  Rng rng(3);
  const Graph g = complete_graph(16);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  EXPECT_EQ(level.graph.total_node_weight(), g.total_node_weight());
}

TEST(Coarsen, RoughlyHalvesConnectedGraphs) {
  Rng rng(3);
  const Graph g = complete_graph(16);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  EXPECT_EQ(level.graph.num_nodes(), 8);  // perfect matching exists
}

TEST(Coarsen, MapsEveryFineNode) {
  Rng rng(4);
  const Graph g = path_graph(9);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  ASSERT_EQ(level.fine_to_coarse.size(), 9u);
  for (NodeId c : level.fine_to_coarse) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, level.graph.num_nodes());
  }
}

TEST(Coarsen, PrefersHeavyEdges) {
  // Star of light edges plus one heavy edge: heavy pair must contract.
  Graph g(4);
  g.add_edge(0, 1, 100);
  g.add_edge(1, 2, 1);
  g.add_edge(1, 3, 1);
  Rng rng(5);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  EXPECT_EQ(level.fine_to_coarse[0], level.fine_to_coarse[1]);
}

TEST(Coarsen, EdgelessGraphDoesNotShrink) {
  Graph g(4);
  Rng rng(6);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  EXPECT_EQ(level.graph.num_nodes(), 4);
}

TEST(Coarsen, CutIsPreservedUnderProjection) {
  Rng rng(7);
  gen::EdgeList el = gen::random_regular_graph(24, 4, rng);
  Graph g(24);
  for (auto [a, b] : el.edges) g.add_edge(a, b);
  const CoarseLevel level = coarsen_heavy_edge_matching(g, rng);
  // Any coarse assignment, projected, must have the same cut weight.
  std::vector<int> coarse(static_cast<std::size_t>(level.graph.num_nodes()));
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    coarse[i] = static_cast<int>(i % 2);
  }
  const auto fine = project_assignment(coarse, level.fine_to_coarse);
  // Fine cut = coarse cut + (intra-coarse-node edges are never cut).
  EXPECT_EQ(cut_weight(g, fine), cut_weight(level.graph, coarse));
}

// ------------------------------------------------------ initial partition ----

TEST(InitialPartition, GreedyGrowingBalances) {
  Rng rng(11);
  const Graph g = complete_graph(12);
  const auto a = greedy_graph_growing_bipartition(g, rng);
  EXPECT_DOUBLE_EQ(balance_ratio(g, a, 2), 1.0);
}

TEST(InitialPartition, RandomBalanced) {
  Rng rng(12);
  const Graph g = complete_graph(10);
  const auto a = random_balanced_bipartition(g, rng);
  EXPECT_DOUBLE_EQ(balance_ratio(g, a, 2), 1.0);
}

TEST(InitialPartition, GreedyHandlesDisconnectedGraphs) {
  Graph g(8);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // two components + isolated vertices
  Rng rng(13);
  const auto a = greedy_graph_growing_bipartition(g, rng);
  const auto w = part_weights(g, a, 2);
  EXPECT_EQ(w[0], 4);
  EXPECT_EQ(w[1], 4);
}

TEST(InitialPartition, FractionTargetsPartZero) {
  const Graph g = complete_graph(12);
  Rng rng(14);
  const auto a = greedy_graph_growing_bipartition(g, rng, 0.25);
  const auto w = part_weights(g, a, 2);
  EXPECT_EQ(w[0], 3);
  EXPECT_EQ(w[1], 9);
}

TEST(InitialPartition, BestOfTrialsFindsBridgeCut) {
  const Graph g = two_cliques_with_bridge();
  Rng rng(15);
  const auto a = best_initial_bipartition(g, rng, 8, 1.0);
  EXPECT_EQ(cut_weight(g, a), 1);
  EXPECT_DOUBLE_EQ(balance_ratio(g, a, 2), 1.0);
}

// ---------------------------------------------------------- FM refinement ----

TEST(FmRefine, NeverWorsensTheCut) {
  Rng rng(21);
  gen::EdgeList el = gen::random_regular_graph(32, 4, rng);
  Graph g(32);
  for (auto [a, b] : el.edges) g.add_edge(a, b);
  std::vector<int> assignment(32);
  for (int i = 0; i < 32; ++i) {
    assignment[static_cast<std::size_t>(i)] = i % 2;  // poor interleaved cut
  }
  const Weight before = cut_weight(g, assignment);
  const FmStats stats = fm_refine_bipartition(g, assignment);
  EXPECT_LE(stats.final_cut, before);
  EXPECT_EQ(stats.final_cut, cut_weight(g, assignment));
}

TEST(FmRefine, MaintainsPerfectBalance) {
  Rng rng(22);
  gen::EdgeList el = gen::random_regular_graph(24, 4, rng);
  Graph g(24);
  for (auto [a, b] : el.edges) g.add_edge(a, b);
  std::vector<int> assignment(24);
  for (int i = 0; i < 24; ++i) {
    assignment[static_cast<std::size_t>(i)] = i % 2;
  }
  fm_refine_bipartition(g, assignment);
  EXPECT_DOUBLE_EQ(balance_ratio(g, assignment, 2), 1.0);
}

TEST(FmRefine, FindsBridgeOnTwoCliques) {
  const Graph g = two_cliques_with_bridge();
  // Start from a bad but balanced split mixing the cliques.
  std::vector<int> assignment{0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  fm_refine_bipartition(g, assignment);
  EXPECT_EQ(cut_weight(g, assignment), 1);
}

TEST(FmRefine, OptimalInputIsFixpoint) {
  const Graph g = two_cliques_with_bridge();
  std::vector<int> assignment{0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  const FmStats stats = fm_refine_bipartition(g, assignment);
  EXPECT_EQ(stats.final_cut, 1);
  EXPECT_EQ(assignment, (std::vector<int>{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}));
}

TEST(FmRefine, RespectsBalanceTolerance) {
  // A path: allowing imbalance lets FM pull the split to a lighter cut
  // position, but part weights must stay within max_balance.
  const Graph g = path_graph(10);
  std::vector<int> assignment{0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  FmOptions opts;
  opts.max_balance = 1.2;
  fm_refine_bipartition(g, assignment, opts);
  const auto w = part_weights(g, assignment, 2);
  EXPECT_LE(w[0], 6);
  EXPECT_LE(w[1], 6);
  EXPECT_LE(cut_weight(g, assignment), 2);
}

TEST(FmRefine, ValidatesArguments) {
  const Graph g = path_graph(4);
  std::vector<int> wrong_size{0, 1};
  EXPECT_THROW(fm_refine_bipartition(g, wrong_size), PreconditionError);
  std::vector<int> ok{0, 0, 1, 1};
  FmOptions opts;
  opts.max_balance = 0.5;
  EXPECT_THROW(fm_refine_bipartition(g, ok, opts), PreconditionError);
}

// ------------------------------------------------------- full partitioner ----

TEST(Partitioner, ChainCutsOneEdge) {
  const Graph g = path_graph(32);
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_EQ(r.cut, 1);
  EXPECT_DOUBLE_EQ(r.balance, 1.0);
}

TEST(Partitioner, WeightedChainStillCutsOneBond) {
  // TLIM-like: every bond has weight 10 -> min cut = 10 (one bond).
  const Graph g = path_graph(32, 10);
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_EQ(r.cut, 10);
}

TEST(Partitioner, CompleteGraphCutIsForced) {
  // Any balanced bipartition of K_n cuts exactly (n/2)^2 edges.
  const Graph g = complete_graph(16);
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_EQ(r.cut, 64);
  EXPECT_DOUBLE_EQ(r.balance, 1.0);
}

TEST(Partitioner, TwoCliquesFindBridge) {
  const Graph g = two_cliques_with_bridge();
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_EQ(r.cut, 1);
}

TEST(Partitioner, SinglePartIsTrivial) {
  const Graph g = complete_graph(6);
  const PartitionResult r = multilevel_partition(g, 1);
  EXPECT_EQ(r.cut, 0);
  for (int p : r.assignment) EXPECT_EQ(p, 0);
}

TEST(Partitioner, FourWayUsesAllParts) {
  const Graph g = complete_graph(16);
  const PartitionResult r = multilevel_partition(g, 4);
  std::set<int> parts(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(parts.size(), 4u);
  const auto w = part_weights(g, r.assignment, 4);
  for (Weight pw : w) EXPECT_EQ(pw, 4);
}

TEST(Partitioner, ThreeWayBalanced) {
  const Graph g = complete_graph(12);
  const PartitionResult r = multilevel_partition(g, 3);
  const auto w = part_weights(g, r.assignment, 3);
  for (Weight pw : w) EXPECT_EQ(pw, 4);
}

TEST(Partitioner, DeterministicForFixedSeed) {
  Rng grng(31);
  gen::EdgeList el = gen::random_regular_graph(32, 8, grng);
  Graph g(32);
  for (auto [a, b] : el.edges) g.add_edge(a, b);
  const PartitionResult r1 = multilevel_partition(g, 2);
  const PartitionResult r2 = multilevel_partition(g, 2);
  EXPECT_EQ(r1.assignment, r2.assignment);
}

TEST(Partitioner, RejectsBadArguments) {
  const Graph g = complete_graph(4);
  EXPECT_THROW(multilevel_partition(g, 0), PreconditionError);
  EXPECT_THROW(multilevel_partition(g, 5), PreconditionError);
}

TEST(Partitioner, RandomRegularCutWithinExpectedRange) {
  // Degree-4 random graphs on 32 vertices have balanced bisection width
  // around 10-20; anything wildly above means the partitioner regressed.
  Rng grng(33);
  gen::EdgeList el = gen::random_regular_graph(32, 4, grng);
  Graph g(32);
  for (auto [a, b] : el.edges) g.add_edge(a, b);
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_DOUBLE_EQ(r.balance, 1.0);
  EXPECT_LE(r.cut, 24);
  EXPECT_GE(r.cut, 4);
}

// --------------------------------------------------- interaction graphs ----

TEST(InteractionGraph, CountsGateMultiplicity) {
  Circuit qc(3);
  qc.cx(0, 1);
  qc.cx(1, 0);  // same pair, reversed direction
  qc.rzz(1, 2, 0.1);
  qc.h(0);  // ignored
  const Graph g = interaction_graph(qc);
  EXPECT_EQ(g.edge_weight(0, 1), 2);
  EXPECT_EQ(g.edge_weight(1, 2), 1);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(InteractionGraph, QftIsComplete) {
  const Graph g = interaction_graph(gen::make_qft(8));
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(InteractionGraph, TlimIsAWeightedPath) {
  const Graph g = interaction_graph(gen::make_tlim(8));
  EXPECT_EQ(g.num_edges(), 7u);
  for (NodeId i = 0; i + 1 < 8; ++i) {
    EXPECT_EQ(g.edge_weight(i, i + 1), 10);  // 10 Trotter steps
  }
  // Balanced min-cut of the TLIM interaction graph = one bond = 10 remote
  // gates, reproducing the paper's Table I remote count for TLIM-32.
  const PartitionResult r = multilevel_partition(g, 2);
  EXPECT_EQ(r.cut, 10);
}

}  // namespace
}  // namespace dqcsim::partition
