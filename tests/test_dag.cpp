/// Unit tests for commutation analysis and the dependency DAG.

#include <gtest/gtest.h>

#include "circuit/commutation.hpp"
#include "circuit/dag.hpp"
#include "common/error.hpp"

namespace dqcsim {
namespace {

// ----------------------------------------------------------- commutation ----

TEST(Commutation, DisjointGatesAlwaysCommute) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::H, 0),
                            make_gate(GateKind::H, 1)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, 0, 1),
                            make_gate(GateKind::CX, 2, 3)));
}

TEST(Commutation, DiagonalGatesCommuteOnOverlap) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::RZZ, 0, 1, 0.3),
                            make_gate(GateKind::RZZ, 1, 2, 0.4)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CZ, 0, 1),
                            make_gate(GateKind::RZ, 0, 0.2)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CP, 0, 1, 0.1),
                            make_gate(GateKind::CP, 1, 2, 0.2)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::T, 0),
                            make_gate(GateKind::Z, 0)));
}

TEST(Commutation, HadamardDoesNotCommuteWithOverlap) {
  EXPECT_FALSE(gates_commute(make_gate(GateKind::H, 0),
                             make_gate(GateKind::RZ, 0, 0.2)));
  EXPECT_FALSE(gates_commute(make_gate(GateKind::H, 0),
                             make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, CxPairsShareControlCommute) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, 0, 1),
                            make_gate(GateKind::CX, 0, 2)));
}

TEST(Commutation, CxPairsShareTargetCommute) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, 0, 2),
                            make_gate(GateKind::CX, 1, 2)));
}

TEST(Commutation, CxChainDoesNotCommute) {
  // Target of the first is control of the second.
  EXPECT_FALSE(gates_commute(make_gate(GateKind::CX, 0, 1),
                             make_gate(GateKind::CX, 1, 2)));
  EXPECT_FALSE(gates_commute(make_gate(GateKind::CX, 1, 2),
                             make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, IdenticalCxCommutes) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, 0, 1),
                            make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, ReversedCxDoesNotCommute) {
  EXPECT_FALSE(gates_commute(make_gate(GateKind::CX, 0, 1),
                             make_gate(GateKind::CX, 1, 0)));
}

TEST(Commutation, DiagonalOnCxControlCommutes) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::RZ, 0, 0.7),
                            make_gate(GateKind::CX, 0, 1)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::CX, 0, 1),
                            make_gate(GateKind::T, 0)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::RZZ, 0, 2, 0.3),
                            make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, DiagonalOnCxTargetDoesNotCommute) {
  EXPECT_FALSE(gates_commute(make_gate(GateKind::RZ, 1, 0.7),
                             make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, XAxisOnCxTargetCommutes) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::X, 1),
                            make_gate(GateKind::CX, 0, 1)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::RX, 1, 0.4),
                            make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, XAxisOnCxControlDoesNotCommute) {
  EXPECT_FALSE(gates_commute(make_gate(GateKind::X, 0),
                             make_gate(GateKind::CX, 0, 1)));
}

TEST(Commutation, SameAxisOneQubitRotationsCommute) {
  EXPECT_TRUE(gates_commute(make_gate(GateKind::RX, 0, 0.1),
                            make_gate(GateKind::X, 0)));
  EXPECT_FALSE(gates_commute(make_gate(GateKind::RX, 0, 0.1),
                             make_gate(GateKind::RY, 0, 0.1)));
}

TEST(Commutation, MeasurementPinsOrdering) {
  EXPECT_FALSE(gates_commute(make_gate(GateKind::Measure, 0),
                             make_gate(GateKind::Z, 0)));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::Measure, 0),
                            make_gate(GateKind::Z, 1)));
}

TEST(Commutation, IsSymmetric) {
  const Gate gates[] = {
      make_gate(GateKind::H, 0),        make_gate(GateKind::RZ, 0, 0.3),
      make_gate(GateKind::CX, 0, 1),    make_gate(GateKind::CX, 1, 0),
      make_gate(GateKind::RZZ, 0, 1, 1), make_gate(GateKind::X, 1),
      make_gate(GateKind::CZ, 1, 2),    make_gate(GateKind::Measure, 2),
  };
  for (const Gate& a : gates) {
    for (const Gate& b : gates) {
      EXPECT_EQ(gates_commute(a, b), gates_commute(b, a))
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

// ------------------------------------------------------------------ DAG ----

Circuit ghz3() {
  Circuit qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.cx(1, 2);
  return qc;
}

TEST(DependencyDag, ProgramOrderChain) {
  const Circuit qc = ghz3();
  const DependencyDag dag(qc);
  EXPECT_EQ(dag.num_nodes(), 3u);
  EXPECT_TRUE(dag.preds(0).empty());
  EXPECT_EQ(dag.preds(1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.preds(2), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dag.critical_path_length(), 3u);
}

TEST(DependencyDag, AsapAlapAndSlack) {
  Circuit qc(3);
  qc.cx(0, 1);  // 0
  qc.h(2);      // 1: parallel with everything before gate 2
  qc.cx(1, 2);  // 2
  const DependencyDag dag(qc);
  EXPECT_EQ(dag.asap_levels()[0], 1u);
  EXPECT_EQ(dag.asap_levels()[1], 1u);
  EXPECT_EQ(dag.asap_levels()[2], 2u);
  EXPECT_EQ(dag.slack(0), 0u);
  EXPECT_EQ(dag.slack(1), 0u);  // alap of gate 1 is level 1 (succ at 2)
  EXPECT_EQ(dag.slack(2), 0u);
}

TEST(DependencyDag, SlackOfDanglingGate) {
  Circuit qc(3);
  qc.h(2);      // 0: no successors -> full slack
  qc.cx(0, 1);  // 1
  qc.cx(0, 1);  // 2
  const DependencyDag dag(qc);
  EXPECT_EQ(dag.critical_path_length(), 2u);
  EXPECT_EQ(dag.slack(0), 1u);
}

TEST(DependencyDag, ReachesFollowsEdges) {
  const Circuit qc = ghz3();
  const DependencyDag dag(qc);
  EXPECT_TRUE(dag.reaches(0, 2));
  EXPECT_FALSE(dag.reaches(2, 0));
  EXPECT_TRUE(dag.reaches(1, 1));
}

TEST(DependencyDag, CommutationAwareRemovesDiagonalEdges) {
  Circuit qc(3);
  qc.rzz(0, 1, 0.2);  // all three mutually commute
  qc.rzz(1, 2, 0.2);
  qc.rzz(0, 2, 0.2);
  const DependencyDag program(qc, DependencyDag::Mode::ProgramOrder);
  const DependencyDag commuting(qc, DependencyDag::Mode::CommutationAware);
  EXPECT_EQ(program.critical_path_length(), 3u);  // chained by sharing
  EXPECT_EQ(commuting.critical_path_length(), 1u);
  EXPECT_TRUE(commuting.preds(2).empty());
}

TEST(DependencyDag, CommutationAwareSeesThroughIntermediary) {
  // Z(0), then Z(0) again, then X(0): X must depend on BOTH Z gates even
  // though the second Z "hides" the first on the wire.
  Circuit qc(1);
  qc.z(0);
  qc.z(0);
  qc.x(0);
  const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
  EXPECT_EQ(dag.preds(2), (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(dag.preds(1).empty());  // Z commutes with Z
}

TEST(DependencyDag, CommutationAwareKeepsRealDependencies) {
  Circuit qc(2);
  qc.h(0);      // 0
  qc.cx(0, 1);  // 1 depends on 0
  qc.rz(1, 1);  // 2 depends on 1 (diagonal on target)
  const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
  EXPECT_EQ(dag.preds(1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dag.preds(2), (std::vector<std::size_t>{1}));
}

TEST(DependencyDag, QaoaLayerIsFullyParallelUnderCommutation) {
  // One QAOA cost layer: every RZZ commutes with every other.
  Circuit qc(6);
  qc.rzz(0, 1, 0.1);
  qc.rzz(1, 2, 0.1);
  qc.rzz(2, 3, 0.1);
  qc.rzz(3, 4, 0.1);
  qc.rzz(4, 5, 0.1);
  qc.rzz(5, 0, 0.1);
  const DependencyDag dag(qc, DependencyDag::Mode::CommutationAware);
  EXPECT_EQ(dag.critical_path_length(), 1u);
}

TEST(DependencyDag, TopologicalOrderIsIdentity) {
  const Circuit qc = ghz3();
  const DependencyDag dag(qc);
  const auto order = dag.topological_order();
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(DependencyDag, PredsOutOfRangeThrows) {
  const Circuit qc = ghz3();
  const DependencyDag dag(qc);
  EXPECT_THROW(dag.preds(3), PreconditionError);
  EXPECT_THROW(dag.slack(99), PreconditionError);
}

TEST(DependencyDag, EmptyCircuit) {
  Circuit qc(2);
  const DependencyDag dag(qc);
  EXPECT_EQ(dag.num_nodes(), 0u);
  EXPECT_EQ(dag.critical_path_length(), 0u);
}

}  // namespace
}  // namespace dqcsim
