/// Unit tests for the gate/circuit IR: construction, counting, depth.

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"

namespace dqcsim {
namespace {

TEST(Gate, ArityByKind) {
  EXPECT_EQ(gate_arity(GateKind::H), 1);
  EXPECT_EQ(gate_arity(GateKind::RZ), 1);
  EXPECT_EQ(gate_arity(GateKind::Measure), 1);
  EXPECT_EQ(gate_arity(GateKind::CX), 2);
  EXPECT_EQ(gate_arity(GateKind::RZZ), 2);
  EXPECT_EQ(gate_arity(GateKind::SWAP), 2);
}

TEST(Gate, DiagonalClassification) {
  for (GateKind k : {GateKind::Z, GateKind::S, GateKind::Sdg, GateKind::T,
                     GateKind::Tdg, GateKind::RZ, GateKind::CZ, GateKind::CP,
                     GateKind::RZZ}) {
    EXPECT_TRUE(is_diagonal(k)) << gate_name(k);
  }
  for (GateKind k : {GateKind::H, GateKind::X, GateKind::Y, GateKind::RX,
                     GateKind::RY, GateKind::CX, GateKind::SWAP,
                     GateKind::Measure}) {
    EXPECT_FALSE(is_diagonal(k)) << gate_name(k);
  }
}

TEST(Gate, ParamClassification) {
  EXPECT_TRUE(has_param(GateKind::RX));
  EXPECT_TRUE(has_param(GateKind::CP));
  EXPECT_FALSE(has_param(GateKind::H));
  EXPECT_FALSE(has_param(GateKind::CX));
}

TEST(Gate, MakeGateValidation) {
  EXPECT_THROW(make_gate(GateKind::CX, 0), PreconditionError);
  EXPECT_THROW(make_gate(GateKind::H, 0, 1), PreconditionError);
  EXPECT_THROW(make_gate(GateKind::CX, 2, 2), PreconditionError);
  EXPECT_THROW(make_gate(GateKind::H, -1), PreconditionError);
}

TEST(Gate, ActsOnAndOverlap) {
  const Gate cx = make_gate(GateKind::CX, 1, 3);
  EXPECT_TRUE(cx.acts_on(1));
  EXPECT_TRUE(cx.acts_on(3));
  EXPECT_FALSE(cx.acts_on(2));
  const Gate h = make_gate(GateKind::H, 3);
  EXPECT_TRUE(cx.overlaps(h));
  EXPECT_TRUE(h.overlaps(cx));
  const Gate rz = make_gate(GateKind::RZ, 0, 0.5);
  EXPECT_FALSE(cx.overlaps(rz));
}

TEST(Gate, ToStringFormats) {
  EXPECT_EQ(make_gate(GateKind::CX, 0, 1).to_string(), "cx q0, q1");
  EXPECT_EQ(make_gate(GateKind::H, 2).to_string(), "h q2");
  EXPECT_EQ(make_gate(GateKind::RZ, 1, 0.5).to_string(), "rz(0.5000) q1");
}

TEST(Circuit, AppendValidatesRange) {
  Circuit qc(3);
  EXPECT_NO_THROW(qc.cx(0, 2));
  EXPECT_THROW(qc.h(3), PreconditionError);
  EXPECT_THROW(qc.cx(0, 5), PreconditionError);
  EXPECT_EQ(qc.num_gates(), 1u);
}

TEST(Circuit, GateAccessorBounds) {
  Circuit qc(2);
  qc.h(0);
  EXPECT_EQ(qc.gate(0).kind, GateKind::H);
  EXPECT_THROW(qc.gate(1), PreconditionError);
}

TEST(Circuit, CountsByCategory) {
  Circuit qc(4);
  qc.h(0);
  qc.h(1);
  qc.cx(0, 1);
  qc.rzz(2, 3, 0.3);
  qc.rx(2, 0.1);
  qc.measure(0);
  EXPECT_EQ(qc.count_1q(), 3u);  // measurement not counted as 1Q gate
  EXPECT_EQ(qc.count_2q(), 2u);
  EXPECT_EQ(qc.count_measure(), 1u);
}

TEST(Circuit, UnitDepthSerialChain) {
  Circuit qc(1);
  for (int i = 0; i < 5; ++i) qc.h(0);
  EXPECT_EQ(qc.unit_depth(), 5u);
}

TEST(Circuit, UnitDepthParallelGates) {
  Circuit qc(4);
  qc.h(0);
  qc.h(1);
  qc.h(2);
  qc.h(3);
  EXPECT_EQ(qc.unit_depth(), 1u);
  qc.cx(0, 1);
  qc.cx(2, 3);
  EXPECT_EQ(qc.unit_depth(), 2u);
  qc.cx(1, 2);
  EXPECT_EQ(qc.unit_depth(), 3u);
}

TEST(Circuit, UnitDepthEmptyCircuit) {
  Circuit qc(3);
  EXPECT_EQ(qc.unit_depth(), 0u);
}

namespace {
double unit_latency(const Gate&) { return 1.0; }
double typed_latency(const Gate& g) {
  return g.arity() == 2 ? 1.0 : 0.1;
}
}  // namespace

TEST(Circuit, WeightedDepthMatchesUnitForUnitWeights) {
  Circuit qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.cx(1, 2);
  qc.h(2);
  EXPECT_DOUBLE_EQ(qc.weighted_depth(&unit_latency),
                   static_cast<double>(qc.unit_depth()));
}

TEST(Circuit, WeightedDepthUsesLatencies) {
  Circuit qc(2);
  qc.h(0);       // 0.1
  qc.cx(0, 1);   // 1.0, starts at 0.1
  qc.h(1);       // 0.1, starts at 1.1
  EXPECT_NEAR(qc.weighted_depth(&typed_latency), 1.2, 1e-12);
}

TEST(Circuit, WeightedDepthIndependentChainsOverlap) {
  Circuit qc(4);
  qc.cx(0, 1);
  qc.cx(2, 3);
  qc.cx(0, 1);
  EXPECT_NEAR(qc.weighted_depth(&typed_latency), 2.0, 1e-12);
}

TEST(Circuit, ExtendAppendsGates) {
  Circuit a(3), b(3);
  a.h(0);
  b.cx(0, 1);
  b.h(2);
  a.extend(b);
  EXPECT_EQ(a.num_gates(), 3u);
  EXPECT_EQ(a.gate(1).kind, GateKind::CX);
}

TEST(Circuit, ExtendRejectsWiderCircuit) {
  Circuit narrow(2), wide(4);
  wide.h(3);
  EXPECT_THROW(narrow.extend(wide), PreconditionError);
}

TEST(Circuit, NameRoundTrip) {
  Circuit qc(1, "my-circuit");
  EXPECT_EQ(qc.name(), "my-circuit");
  qc.set_name("renamed");
  EXPECT_EQ(qc.name(), "renamed");
}

TEST(Circuit, ToStringListsGates) {
  Circuit qc(2, "demo");
  qc.h(0);
  qc.cx(0, 1);
  const std::string s = qc.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("cx q0, q1"), std::string::npos);
}

}  // namespace
}  // namespace dqcsim
